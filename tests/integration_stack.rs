//! Cross-crate integration tests: the full SushiSched → SushiAbs →
//! SushiAccel pipeline over real zoo SuperNets.

use std::sync::Arc;

use sushi::accel::config::zcu104;
use sushi::accel::exec::Accelerator;
use sushi::core::metrics::summarize;
use sushi::core::stream::{uniform_stream, ConstraintSpace};
use sushi::core::variants::{build_stack, build_table, Variant};
use sushi::sched::Policy;
use sushi::wsnet::zoo;

fn space_for(stack: &sushi::core::SushiStack) -> ConstraintSpace {
    let accs: Vec<f64> = stack.subnets().iter().map(|p| p.accuracy).collect();
    let lats: Vec<f64> =
        (0..stack.subnets().len()).map(|i| stack.scheduler().table().latency_ms(i, 0)).collect();
    ConstraintSpace::from_serving_set(&accs, &lats)
}

fn mobv3_stack(variant: Variant, policy: Policy) -> sushi::core::SushiStack {
    let net = Arc::new(zoo::mobilenet_v3_supernet());
    let picks = zoo::paper_subnets(&net);
    build_stack(variant, net, picks, &zcu104(), policy, 10, 10, 123)
}

#[test]
fn end_to_end_strict_accuracy_never_violated() {
    let mut stack = mobv3_stack(Variant::Sushi, Policy::StrictAccuracy);
    let queries = uniform_stream(&space_for(&stack), 250, 9);
    for r in stack.serve_stream(&queries) {
        assert!(
            r.served_accuracy + 1e-12 >= r.query.accuracy_constraint,
            "q{} accuracy violated",
            r.query.id
        );
    }
}

#[test]
fn end_to_end_pipeline_is_deterministic() {
    let run = || {
        let mut stack = mobv3_stack(Variant::Sushi, Policy::StrictLatency);
        let queries = uniform_stream(&space_for(&stack), 120, 5);
        stack.serve_stream(&queries)
    };
    assert_eq!(run(), run(), "whole pipeline must be reproducible");
}

#[test]
fn variant_ordering_holds_on_both_workloads() {
    // SUSHI <= SUSHI w/o Sched <= No-SUSHI (small tolerance for the
    // state-unaware comparison, which can tie).
    for (net, q) in [
        (Arc::new(zoo::resnet50_supernet()), 8usize),
        (Arc::new(zoo::mobilenet_v3_supernet()), 10usize),
    ] {
        let picks = zoo::paper_subnets(&net);
        let mean = |variant| {
            let mut stack = build_stack(
                variant,
                Arc::clone(&net),
                picks.clone(),
                &zcu104(),
                Policy::StrictAccuracy,
                q,
                10,
                7,
            );
            let queries = uniform_stream(&space_for(&stack), 300, 11);
            summarize(&stack.serve_stream(&queries)).mean_latency_ms
        };
        let no_sushi = mean(Variant::NoSushi);
        let no_sched = mean(Variant::SushiNoSched);
        let full = mean(Variant::Sushi);
        assert!(full < no_sushi, "{}: SUSHI {full} !< No-SUSHI {no_sushi}", net.name);
        assert!(full <= no_sched * 1.01, "{}: SUSHI {full} !<= state-unaware {no_sched}", net.name);
    }
}

#[test]
fn table_predictions_match_accelerator_measurements() {
    // SushiAbs contract: the table's latency estimate for (SubNet, cached
    // SubGraph) equals what the accelerator actually delivers in steady
    // state with that SubGraph installed.
    let net = zoo::resnet50_supernet();
    let picks = zoo::paper_subnets(&net);
    let config = zcu104();
    let table = build_table(&net, &picks, &config, 6, 3);
    let mut accel = Accelerator::new(config);
    for j in 1..table.num_columns().min(4) {
        accel.install_cache(&net, table.column(j).graph.clone());
        let _pay_reload = accel.serve(&net, &picks[0]);
        for (i, sn) in picks.iter().enumerate() {
            let measured = accel.serve(&net, sn).latency_ms;
            let predicted = table.latency_ms(i, j);
            assert!(
                (measured - predicted).abs() < 1e-9,
                "row {i} col {j}: measured {measured} vs predicted {predicted}"
            );
        }
    }
}

#[test]
fn scheduler_is_hardware_agnostic_across_boards() {
    // The same Scheduler type drives tables built from *different*
    // accelerators — the SushiAbs decoupling claim. Selection quality holds
    // on both: hard accuracy constraints are met everywhere.
    let net = Arc::new(zoo::mobilenet_v3_supernet());
    let picks = zoo::paper_subnets(&net);
    for config in [zcu104(), sushi::accel::config::alveo_u50()] {
        let mut stack = build_stack(
            Variant::Sushi,
            Arc::clone(&net),
            picks.clone(),
            &config,
            Policy::StrictAccuracy,
            10,
            8,
            21,
        );
        let queries = uniform_stream(&space_for(&stack), 100, 13);
        let records = stack.serve_stream(&queries);
        assert!(records.iter().all(|r| r.served_accuracy >= r.query.accuracy_constraint));
    }
}

#[test]
fn cache_hit_ratio_reaches_papers_regime() {
    // Appendix A.4 reports 66% (ResNet50) / 78% (MobV3). Our PB covers a
    // smaller byte fraction, but the vector-norm hit metric should still
    // be substantial and ordered MobV3 > ResNet50.
    let ratio = |net: Arc<sushi::wsnet::SuperNet>, q: usize| {
        let picks = zoo::paper_subnets(&net);
        let mut stack =
            build_stack(Variant::Sushi, net, picks, &zcu104(), Policy::StrictAccuracy, q, 10, 17);
        let queries = uniform_stream(&space_for(&stack), 300, 23);
        let records = stack.serve_stream(&queries);
        summarize(&records[q..]).mean_hit_ratio
    };
    let r50 = ratio(Arc::new(zoo::resnet50_supernet()), 8);
    let mob = ratio(Arc::new(zoo::mobilenet_v3_supernet()), 10);
    assert!(r50 > 0.25, "ResNet50 hit ratio {r50}");
    assert!(mob > r50, "MobV3 {mob} should exceed ResNet50 {r50}");
}

#[test]
fn accuracy_band_of_serving_matches_paper_figures() {
    // Fig. 15/16 y-axes: served accuracy lives in the 75–80% band.
    let mut stack = mobv3_stack(Variant::Sushi, Policy::StrictLatency);
    let queries = uniform_stream(&space_for(&stack), 150, 31);
    let records = stack.serve_stream(&queries);
    for r in &records {
        assert!(
            (0.75..=0.805).contains(&r.served_accuracy),
            "served accuracy {} outside the paper band",
            r.served_accuracy
        );
    }
}

#[test]
fn energy_decreases_when_caching_is_enabled() {
    let mut no_pb = mobv3_stack(Variant::NoSushi, Policy::StrictAccuracy);
    let mut with_pb = mobv3_stack(Variant::Sushi, Policy::StrictAccuracy);
    let queries = uniform_stream(&space_for(&with_pb), 200, 37);
    let base = summarize(&no_pb.serve_stream(&queries));
    let ours = summarize(&with_pb.serve_stream(&queries));
    assert!(
        ours.total_offchip_mj < base.total_offchip_mj,
        "off-chip energy {} !< {}",
        ours.total_offchip_mj,
        base.total_offchip_mj
    );
}
