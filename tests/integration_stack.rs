//! Cross-crate integration tests: the full SushiSched → SushiAbs →
//! SushiAccel pipeline over real zoo SuperNets, assembled through the
//! unified `Engine` API.

use sushi::accel::config::zcu104;
use sushi::accel::exec::Accelerator;
use sushi::core::engine::{Engine, EngineBuilder, ModelZoo};
use sushi::core::metrics::summarize;
use sushi::core::stream::uniform_stream;
use sushi::core::Variant;
use sushi::sched::Policy;
use sushi::wsnet::zoo;

fn mobv3_engine(variant: Variant, policy: Policy) -> Engine {
    EngineBuilder::new()
        .zoo(ModelZoo::MobileNetV3)
        .variant(variant)
        .policy(policy)
        .q_window(10)
        .candidates(10)
        .seed(123)
        .build()
        .expect("valid engine configuration")
}

#[test]
fn end_to_end_strict_accuracy_never_violated() {
    let mut engine = mobv3_engine(Variant::Sushi, Policy::StrictAccuracy);
    let queries = uniform_stream(&engine.constraint_space(), 250, 9);
    for r in engine.serve_stream(&queries).unwrap() {
        assert!(
            r.served_accuracy + 1e-12 >= r.query.accuracy_constraint,
            "q{} accuracy violated",
            r.query.id
        );
    }
}

#[test]
fn end_to_end_pipeline_is_deterministic() {
    let run = || {
        let mut engine = mobv3_engine(Variant::Sushi, Policy::StrictLatency);
        let queries = uniform_stream(&engine.constraint_space(), 120, 5);
        engine.serve_stream(&queries).unwrap()
    };
    assert_eq!(run(), run(), "whole pipeline must be reproducible");
}

#[test]
fn variant_ordering_holds_on_both_workloads() {
    // SUSHI <= SUSHI w/o Sched <= No-SUSHI (small tolerance for the
    // state-unaware comparison, which can tie).
    for (model, q) in [(ModelZoo::ResNet50, 8usize), (ModelZoo::MobileNetV3, 10usize)] {
        let mean = |variant| {
            let mut engine = EngineBuilder::new()
                .zoo(model)
                .variant(variant)
                .q_window(q)
                .candidates(10)
                .seed(7)
                .build()
                .unwrap();
            let queries = uniform_stream(&engine.constraint_space(), 300, 11);
            summarize(&engine.serve_stream(&queries).unwrap()).mean_latency_ms
        };
        let no_sushi = mean(Variant::NoSushi);
        let no_sched = mean(Variant::SushiNoSched);
        let full = mean(Variant::Sushi);
        assert!(full < no_sushi, "{model:?}: SUSHI {full} !< No-SUSHI {no_sushi}");
        assert!(full <= no_sched * 1.01, "{model:?}: SUSHI {full} !<= state-unaware {no_sched}");
    }
}

#[test]
fn table_predictions_match_accelerator_measurements() {
    // SushiAbs contract: the table's latency estimate for (SubNet, cached
    // SubGraph) equals what the accelerator actually delivers in steady
    // state with that SubGraph installed.
    let config = zcu104();
    let engine =
        EngineBuilder::new().zoo(ModelZoo::ResNet50).candidates(6).seed(3).build().unwrap();
    let net = zoo::resnet50_supernet();
    let picks = zoo::paper_subnets(&net);
    let table = engine.table();
    let mut accel = Accelerator::new(config);
    for j in 1..table.num_columns().min(4) {
        accel.install_cache(&net, table.column(j).graph.clone());
        let _pay_reload = accel.serve(&net, &picks[0]);
        for (i, sn) in picks.iter().enumerate() {
            let measured = accel.serve(&net, sn).latency_ms;
            let predicted = table.latency_ms(i, j);
            assert!(
                (measured - predicted).abs() < 1e-9,
                "row {i} col {j}: measured {measured} vs predicted {predicted}"
            );
        }
    }
}

#[test]
fn scheduler_is_hardware_agnostic_across_boards() {
    // The same Scheduler type drives tables built from *different*
    // accelerators — the SushiAbs decoupling claim. Selection quality holds
    // on both: hard accuracy constraints are met everywhere.
    for config in [zcu104(), sushi::accel::config::alveo_u50()] {
        let mut engine = EngineBuilder::new()
            .accel_config(config)
            .q_window(10)
            .candidates(8)
            .seed(21)
            .build()
            .unwrap();
        let queries = uniform_stream(&engine.constraint_space(), 100, 13);
        let records = engine.serve_stream(&queries).unwrap();
        assert!(records.iter().all(|r| r.served_accuracy >= r.query.accuracy_constraint));
    }
}

#[test]
fn cache_hit_ratio_reaches_papers_regime() {
    // Appendix A.4 reports 66% (ResNet50) / 78% (MobV3). Our PB covers a
    // smaller byte fraction, but the vector-norm hit metric should still
    // be substantial and ordered MobV3 > ResNet50.
    let ratio = |model: ModelZoo, q: usize| {
        let mut engine =
            EngineBuilder::new().zoo(model).q_window(q).candidates(10).seed(17).build().unwrap();
        let queries = uniform_stream(&engine.constraint_space(), 300, 23);
        let records = engine.serve_stream(&queries).unwrap();
        summarize(&records[q..]).mean_hit_ratio
    };
    let r50 = ratio(ModelZoo::ResNet50, 8);
    let mob = ratio(ModelZoo::MobileNetV3, 10);
    assert!(r50 > 0.25, "ResNet50 hit ratio {r50}");
    assert!(mob > r50, "MobV3 {mob} should exceed ResNet50 {r50}");
}

#[test]
fn accuracy_band_of_serving_matches_paper_figures() {
    // Fig. 15/16 y-axes: served accuracy lives in the 75–80% band.
    let mut engine = mobv3_engine(Variant::Sushi, Policy::StrictLatency);
    let queries = uniform_stream(&engine.constraint_space(), 150, 31);
    let records = engine.serve_stream(&queries).unwrap();
    for r in &records {
        assert!(
            (0.75..=0.805).contains(&r.served_accuracy),
            "served accuracy {} outside the paper band",
            r.served_accuracy
        );
    }
}

#[test]
fn energy_decreases_when_caching_is_enabled() {
    let mut no_pb = mobv3_engine(Variant::NoSushi, Policy::StrictAccuracy);
    let mut with_pb = mobv3_engine(Variant::Sushi, Policy::StrictAccuracy);
    let queries = uniform_stream(&with_pb.constraint_space(), 200, 37);
    let base = summarize(&no_pb.serve_stream(&queries).unwrap());
    let ours = summarize(&with_pb.serve_stream(&queries).unwrap());
    assert!(
        ours.total_offchip_mj < base.total_offchip_mj,
        "off-chip energy {} !< {}",
        ours.total_offchip_mj,
        base.total_offchip_mj
    );
}
