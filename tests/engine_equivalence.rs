//! API-transition equivalence: the builder-driven `Engine` must reproduce
//! the pre-redesign constructors' results **bit for bit**.
//!
//! The `EXPECTED_*` constants were captured from the legacy entry points
//! (`variants::build_stack`, `ServingSim::new` + `with_functional`)
//! immediately before their deletion, by hashing every numeric field of
//! every record with the FNV digest below. All three pipelines are fully
//! deterministic (simulated time, seeded randomness), so equality here is
//! exact on every platform. A change to any constant means the redesign
//! changed serving *semantics*, not just the API.

use std::sync::Arc;

use sushi::core::engine::{BackendKind, EngineBuilder, FunctionalOptions};
use sushi::core::serving::{ArrivalProcess, BatchPolicy, DropPolicy, SimResult};
use sushi::core::stream::attach_arrivals;
use sushi::core::stream::uniform_stream;
use sushi::wsnet::zoo;

/// FNV-1a over the little-endian bytes of each 64-bit word.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
    fn f(&mut self, v: f64) {
        self.word(v.to_bits());
    }
}

fn timed_digest(result: &SimResult) -> u64 {
    let mut h = Fnv::new();
    for s in &result.served {
        h.word(s.query.id);
        h.f(s.arrival_ms);
        h.f(s.start_ms);
        h.f(s.completion_ms);
        h.word(s.subnet_row as u64);
        h.word(s.batch_size as u64);
        h.word(s.worker as u64);
    }
    for d in &result.dropped {
        h.word(d.timed.query.id);
    }
    let sum = result.summary();
    for v in [
        sum.p50_ms,
        sum.p95_ms,
        sum.p99_ms,
        sum.mean_latency_ms,
        sum.goodput_qps,
        sum.slo_violation_rate,
        sum.mean_queue_depth,
        sum.swap_ms,
        sum.makespan_ms,
    ] {
        h.f(v);
    }
    h.word(sum.completed as u64);
    h.word(sum.dropped as u64);
    h.word(sum.cache_installs as u64);
    h.0
}

/// Pre-redesign `build_stack(Sushi, MobV3, zcu104, StrictAccuracy, Q=10,
/// candidates=8, seed=42)` + `serve_stream(uniform_stream(space, 40, 7))`.
const EXPECTED_STREAM_DIGEST: u64 = 0xca23_3b0e_95ef_168c;
const EXPECTED_STREAM_LAT_SUM_BITS: u64 = 0x4078_5035_49f9_4859; // 389.0130100000002 ms

#[test]
fn serve_stream_reproduces_pre_redesign_records() {
    let mut engine =
        EngineBuilder::new().q_window(10).candidates(8).seed(42).build().expect("engine");
    let records = engine.serve_stream(&uniform_stream(&engine.constraint_space(), 40, 7)).unwrap();
    let mut h = Fnv::new();
    let mut lat_sum = 0.0;
    for r in &records {
        h.word(r.subnet_row as u64);
        h.f(r.served_accuracy);
        h.f(r.served_latency_ms);
        h.f(r.hit_ratio);
        h.f(r.offchip_mj);
        h.f(r.onchip_mj);
        h.word(u64::from(r.cache_updated));
        lat_sum += r.served_latency_ms;
        assert_eq!(r.prediction, None, "analytical backend records no predictions");
    }
    assert_eq!(h.0, EXPECTED_STREAM_DIGEST, "serve_stream records drifted from fixtures");
    assert_eq!(lat_sum.to_bits(), EXPECTED_STREAM_LAT_SUM_BITS, "latency sum {lat_sum}");
}

/// Pre-redesign `ServingSim::new(MobV3 table(candidates=8, seed=42),
/// zcu104, StrictAccuracy, MinDistanceToAvg, Q=8, workers=2, capacity=16,
/// DropNewest, batch(4, 2.0))` over 150 queries of Poisson-120qps traffic.
///
/// Re-pinned when replica routing replaced the lowest-index-free worker
/// pick (`RoutingPolicy::LeastLoaded` + routed installs): the 2-worker
/// schedule legitimately changed. The 1-worker digests above and below
/// are unchanged — routing is the identity for a single replica.
const EXPECTED_TIMED_DIGEST: u64 = 0x9181_952e_e371_08fd;
const EXPECTED_TIMED_P99_BITS: u64 = 0x403e_da3a_2cd4_7d70; // 30.852450181844176 ms

#[test]
fn serve_timed_reproduces_pre_redesign_analytical_run() {
    let mut engine = EngineBuilder::new()
        .q_window(8)
        .candidates(8)
        .seed(42)
        .workers(2)
        .queue_capacity(16)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(4, 2.0))
        .build()
        .expect("engine");
    let qs = uniform_stream(&engine.constraint_space(), 150, 9);
    let ts = ArrivalProcess::Poisson { rate_qps: 120.0 }.timestamps(150, 9 ^ 0xD15);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).unwrap();
    assert_eq!(timed_digest(&result), EXPECTED_TIMED_DIGEST, "timed run drifted from fixtures");
    assert_eq!(result.summary().p99_ms.to_bits(), EXPECTED_TIMED_P99_BITS);
}

/// Pre-redesign `ServingSim::new(toy-MobileNet table(candidates=3,
/// seed=11), …, Q=4, workers=1, capacity=16, DropNewest, batch(3, 0.1))
/// .with_functional(FunctionalContext::new(DpeArray::new(4, 4), net, 42))`
/// over 12 queries of Poisson-20kqps traffic.
const EXPECTED_FUNCTIONAL_DIGEST: u64 = 0x2790_0d49_6f89_8acf;
const EXPECTED_FUNCTIONAL_PREDICTIONS: [usize; 12] =
    [30, 30, 30, 30, 30, 30, 30, 30, 30, 30, 5, 30];

#[test]
fn serve_timed_reproduces_pre_redesign_functional_run() {
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&net), picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(1)
        .queue_capacity(16)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(3, 0.1))
        .build()
        .expect("functional engine");
    let mut space = engine.constraint_space();
    space.lat_lo *= 4.0;
    space.lat_hi *= 10.0;
    let qs = uniform_stream(&space, 12, 5);
    let ts = ArrivalProcess::Poisson { rate_qps: 20_000.0 }.timestamps(12, 5);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).unwrap();

    let mut h = Fnv::new();
    let mut predictions = Vec::new();
    for s in &result.served {
        h.word(s.query.id);
        h.f(s.arrival_ms);
        h.f(s.start_ms);
        h.f(s.completion_ms);
        h.word(s.subnet_row as u64);
        h.word(s.batch_size as u64);
        h.word(s.worker as u64);
        let p = s.prediction.expect("functional predictions");
        h.word(p as u64);
        predictions.push(p);
    }
    h.word(result.dropped.len() as u64);
    assert_eq!(h.0, EXPECTED_FUNCTIONAL_DIGEST, "functional run drifted from fixtures");
    assert_eq!(predictions, EXPECTED_FUNCTIONAL_PREDICTIONS);
}
