//! Cross-crate functional-mode integration: the bit-exact DPE datapath
//! executing whole weight-shared SubNets.

use sushi::accel::dpe::DpeArray;
use sushi::accel::functional::{act_quant, forward};
use sushi::tensor::quant::quantize_tensor;
use sushi::tensor::{DetRng, Shape4, Tensor};
use sushi::wsnet::sampler::ConfigSampler;
use sushi::wsnet::{zoo, WeightStore};

fn rand_image(hw: usize, seed: u64) -> Tensor<i8> {
    let shape = Shape4::new(1, 3, hw, hw);
    let mut rng = DetRng::new(seed);
    let f =
        Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect())
            .unwrap();
    quantize_tensor(&f, act_quant())
}

#[test]
fn every_sampled_toy_subnet_executes() {
    for net in [zoo::toy_supernet(), zoo::toy_mobilenet_supernet()] {
        let store = WeightStore::synthesize(&net, 5);
        let image = rand_image(net.input_hw, 1);
        let dpe = DpeArray::new(4, 4);
        for sn in ConfigSampler::new(&net, 9).sample_subnets(6) {
            let out = forward(&dpe, &net, &store, &sn, &image)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", net.name, sn.name));
            assert!(!out.logits.is_empty());
            assert!(out.logits.iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn shared_prefix_of_weights_drives_both_subnets() {
    // Weight sharing end-to-end: zeroing a weight INSIDE the shared slice
    // changes both SubNets' outputs.
    let net = zoo::toy_supernet();
    let store_a = WeightStore::synthesize(&net, 6);
    let mut store_b = store_a.clone();
    {
        // Shift every weight of the first block conv — its top-left slice
        // is inside every SubNet. A bulk shift survives int8 requantization
        // where a single-weight flip would be rounded away.
        let t = store_b.layer_mut_for_tests(1);
        for v in t.as_mut_slice() {
            *v = v.wrapping_add(64);
        }
    }
    let image = rand_image(net.input_hw, 2);
    let dpe = DpeArray::new(2, 2);
    let small = net.materialize("min", &net.min_config()).unwrap();
    let large = net.materialize("max", &net.max_config()).unwrap();
    for sn in [&small, &large] {
        let a = forward(&dpe, &net, &store_a, sn, &image).unwrap();
        let b = forward(&dpe, &net, &store_b, sn, &image).unwrap();
        assert_ne!(a.logits, b.logits, "{} unaffected by shared-weight change", sn.name);
    }
}

#[test]
fn functional_and_timing_modes_agree_on_workload_ordering() {
    // The timing model and the functional model describe the same machine:
    // a strictly larger SubNet must cost more simulated cycles (timing
    // mode). Functional mode has no timing, but its FLOPs proxy must order
    // the same way — tying the two views together.
    let net = zoo::toy_supernet();
    let small = net.materialize("min", &net.min_config()).unwrap();
    let large = net.materialize("max", &net.max_config()).unwrap();
    let mut accel = sushi::accel::exec::Accelerator::new(sushi::accel::config::zcu104());
    let t_small = accel.serve(&net, &small).cycles.total();
    let t_large = accel.serve(&net, &large).cycles.total();
    assert!(t_small < t_large);
    assert!(small.flops < large.flops);
}

#[test]
fn dpe_geometry_never_changes_results_end_to_end() {
    let net = zoo::toy_mobilenet_supernet();
    let store = WeightStore::synthesize(&net, 8);
    let image = rand_image(net.input_hw, 3);
    let sn = net.materialize("max", &net.max_config()).unwrap();
    let reference = forward(&DpeArray::new(1, 1), &net, &store, &sn, &image).unwrap();
    for (kp, cp) in [(2, 3), (5, 7), (16, 18), (32, 32)] {
        let out = forward(&DpeArray::new(kp, cp), &net, &store, &sn, &image).unwrap();
        assert_eq!(out.logits, reference.logits, "geometry {kp}x{cp} diverged");
    }
}
