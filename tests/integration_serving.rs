//! Cross-crate integration tests for the serving runtime: arrival
//! processes → admission queue → scheduler → batched executor pool, end to
//! end through the `sushi` facade and the unified `Engine` API.

use std::sync::Arc;

use sushi::core::engine::{BackendKind, EngineBuilder, FunctionalOptions};
use sushi::core::experiments::{run, ExpOptions};
use sushi::core::serving::{run_scenario, ArrivalProcess, BatchPolicy, DropPolicy, ServePreset};
use sushi::core::stream::{attach_arrivals, uniform_stream};
use sushi::tensor::KernelPolicy;
use sushi::wsnet::zoo;

#[test]
fn serve_experiment_is_deterministic_end_to_end() {
    let opts = ExpOptions::quick();
    let a = run("serve", &opts).expect("serve id registered").render();
    let b = run("serve", &opts).expect("serve id registered").render();
    assert_eq!(a, b, "same seed must produce a bit-identical serving report");
    assert!(a.contains("steady") && a.contains("multi_tenant"));
}

#[test]
fn preset_summaries_are_internally_consistent() {
    let opts = ExpOptions::quick();
    for preset in ServePreset::ALL {
        let result = run_scenario(preset, &opts).expect("preset scenario");
        let s = result.summary();
        assert_eq!(s.offered, opts.queries, "{}", preset.name());
        assert_eq!(s.offered, s.completed + s.dropped);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms, "{}", preset.name());
        assert!(s.goodput_qps > 0.0, "{}", preset.name());
        assert!((0.0..=1.0).contains(&s.slo_violation_rate));
        assert!(s.mean_batch >= 1.0);
        // Causality of every served record.
        for q in &result.served {
            assert!(q.start_ms >= q.arrival_ms && q.completion_ms > q.start_ms);
        }
    }
}

#[test]
fn burst_preset_sheds_load_steady_does_not() {
    // Static scheduling: this pins the pre-adaptive drop path. (Under the
    // default adaptive loop the burst preset degrades instead of dropping —
    // that behavior is covered by tests/integration_adaptive.rs.)
    let mut opts = ExpOptions::quick();
    opts.adaptive = false;
    let steady = run_scenario(ServePreset::Steady, &opts).unwrap().summary();
    let burst = run_scenario(ServePreset::Burst, &opts).unwrap().summary();
    assert_eq!(steady.dropped, 0, "steady load must not overflow the queue");
    assert!(burst.dropped > 0, "burst load must exercise the drop path");
    assert!(burst.p99_ms > steady.p99_ms);
}

#[test]
fn worker_override_changes_service_capacity() {
    let mut wide = ExpOptions::quick();
    wide.workers = Some(4);
    let base = run_scenario(ServePreset::Burst, &ExpOptions::quick()).unwrap().summary();
    let wider = run_scenario(ServePreset::Burst, &wide).unwrap().summary();
    assert!(
        wider.p99_ms <= base.p99_ms,
        "doubling workers must not worsen the tail: {} vs {}",
        wider.p99_ms,
        base.p99_ms
    );
}

#[test]
fn functional_backend_builds_with_a_multi_worker_pool() {
    // The single-worker restriction is gone: N replicas share one
    // pack-once cache (Arc-shared panels, per-worker scratch arenas).
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let engine = EngineBuilder::new()
        .workload(net, picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(4)
        .build()
        .expect("functional engine with 4 workers");
    assert_eq!(engine.backend_name(), "functional");
    assert_eq!(engine.sim_config().workers, 4);
}

#[test]
fn functional_serving_runs_real_forwards_through_the_facade() {
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };

    let n = 12;
    let build = |policy: KernelPolicy| {
        let mut engine = EngineBuilder::new()
            .workload(Arc::clone(&net), picks.clone())
            .q_window(4)
            .candidates(3)
            .seed(11)
            .backend(BackendKind::Functional)
            .functional_options(
                FunctionalOptions::default()
                    .with_dpe(4, 4)
                    .with_kernel_policy(policy)
                    .with_seed(42),
            )
            .workers(1)
            .queue_capacity(16)
            .drop_policy(DropPolicy::DropNewest)
            .batch_policy(BatchPolicy::new(3, 0.1))
            .build()
            .expect("functional toy engine");
        let mut space = engine.constraint_space();
        space.lat_lo *= 4.0;
        space.lat_hi *= 10.0;
        let queries = uniform_stream(&space, n, 5);
        let arrivals = ArrivalProcess::Poisson { rate_qps: 20_000.0 }.timestamps(n, 5);
        let stream = attach_arrivals(&queries, &arrivals);
        engine.serve_timed(&stream).expect("functional serve")
    };
    let naive = build(KernelPolicy::Naive);
    assert!(!naive.served.is_empty());
    assert!(naive.served.iter().all(|q| q.prediction.is_some()));
    // The executor's kernel policy changes host speed, never results: the
    // whole simulation — timings *and* predictions — is policy-invariant.
    let gemm = build(KernelPolicy::Im2colGemm);
    assert_eq!(naive, gemm);
}
