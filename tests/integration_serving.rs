//! Cross-crate integration tests for the serving runtime: arrival
//! processes → admission queue → scheduler → batched executor pool, end to
//! end through the `sushi` facade.

use std::sync::Arc;

use sushi::accel::dpe::DpeArray;
use sushi::core::experiments::{run, ExpOptions};
use sushi::core::serving::{
    run_scenario, ArrivalProcess, BatchPolicy, DropPolicy, FunctionalContext, ServePreset,
    ServingSim, SimConfig,
};
use sushi::core::stream::{attach_arrivals, uniform_stream, ConstraintSpace};
use sushi::core::variants::build_table;
use sushi::sched::{CacheSelection, Policy};
use sushi::tensor::KernelPolicy;
use sushi::wsnet::zoo;

#[test]
fn serve_experiment_is_deterministic_end_to_end() {
    let opts = ExpOptions::quick();
    let a = run("serve", &opts).expect("serve id registered").render();
    let b = run("serve", &opts).expect("serve id registered").render();
    assert_eq!(a, b, "same seed must produce a bit-identical serving report");
    assert!(a.contains("steady") && a.contains("multi_tenant"));
}

#[test]
fn preset_summaries_are_internally_consistent() {
    let opts = ExpOptions::quick();
    for preset in ServePreset::ALL {
        let result = run_scenario(preset, &opts);
        let s = result.summary();
        assert_eq!(s.offered, opts.queries, "{}", preset.name());
        assert_eq!(s.offered, s.completed + s.dropped);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms, "{}", preset.name());
        assert!(s.goodput_qps > 0.0, "{}", preset.name());
        assert!((0.0..=1.0).contains(&s.slo_violation_rate));
        assert!(s.mean_batch >= 1.0);
        // Causality of every served record.
        for q in &result.served {
            assert!(q.start_ms >= q.arrival_ms && q.completion_ms > q.start_ms);
        }
    }
}

#[test]
fn burst_preset_sheds_load_steady_does_not() {
    let opts = ExpOptions::quick();
    let steady = run_scenario(ServePreset::Steady, &opts).summary();
    let burst = run_scenario(ServePreset::Burst, &opts).summary();
    assert_eq!(steady.dropped, 0, "steady load must not overflow the queue");
    assert!(burst.dropped > 0, "burst load must exercise the drop path");
    assert!(burst.p99_ms > steady.p99_ms);
}

#[test]
fn functional_serving_runs_real_forwards_through_the_facade() {
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let board = sushi::accel::config::zcu104();
    let table = build_table(&net, &picks, &board, 3, 11);
    let accs: Vec<f64> = picks.iter().map(|p| p.accuracy).collect();
    let lats: Vec<f64> = (0..table.num_rows()).map(|i| table.latency_ms(i, 0)).collect();
    let mut space = ConstraintSpace::from_serving_set(&accs, &lats);
    space.lat_lo *= 4.0;
    space.lat_hi *= 10.0;

    let n = 12;
    let queries = uniform_stream(&space, n, 5);
    let arrivals = ArrivalProcess::Poisson { rate_qps: 20_000.0 }.timestamps(n, 5);
    let stream = attach_arrivals(&queries, &arrivals);

    let build = |policy: KernelPolicy| {
        let mut sim = ServingSim::new(
            Arc::clone(&net),
            picks.clone(),
            build_table(&net, &picks, &board, 3, 11),
            &board,
            Policy::StrictAccuracy,
            CacheSelection::MinDistanceToAvg,
            4,
            SimConfig {
                workers: 2,
                queue_capacity: 16,
                drop_policy: DropPolicy::DropNewest,
                batch: BatchPolicy::new(3, 0.1),
            },
        )
        .with_functional(FunctionalContext::new(
            DpeArray::new(4, 4).with_policy(policy),
            &net,
            42,
        ));
        sim.run(&stream)
    };
    let naive = build(KernelPolicy::Naive);
    assert!(!naive.served.is_empty());
    assert!(naive.served.iter().all(|q| q.prediction.is_some()));
    // The executor's kernel policy changes host speed, never results: the
    // whole simulation — timings *and* predictions — is policy-invariant.
    let gemm = build(KernelPolicy::Im2colGemm);
    assert_eq!(naive, gemm);
}
