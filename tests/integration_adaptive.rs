//! Cross-crate integration tests for load-adaptive SubNet scheduling:
//! monotone degradation under rising load, recovery after bursts, the
//! bit-identity of the no-adaptation path, and (behind `--ignored`) a
//! 100k-query overload soak with memory-boundedness checks.

use std::sync::Arc;

use sushi::core::engine::{BackendKind, EngineBuilder, FunctionalOptions};
use sushi::core::experiments::ExpOptions;
use sushi::core::serving::{run_scenario, BatchPolicy, DropPolicy, ServePreset};
use sushi::core::stream::{attach_arrivals, uniform_stream, TimedQuery};
use sushi::sched::adaptive::AdaptiveOptions;
use sushi::wsnet::zoo;

/// Quick sizing with adaptation enabled (the default).
fn quick() -> ExpOptions {
    ExpOptions::quick()
}

/// Quick sizing pinned to the static pre-adaptive runtime.
fn static_quick() -> ExpOptions {
    let mut opts = ExpOptions::quick();
    opts.adaptive = false;
    opts
}

#[test]
fn degradation_is_monotone_under_rising_load() {
    // A stream whose arrival gaps shrink linearly: load only ever rises
    // while arrivals last, so the controller's walk to its deepest level
    // must be a monotone climb — one degrade per dwell window, no
    // oscillation on the way down the ladder. (After the peak it may
    // legitimately step back up: degradation raises service capacity, and
    // discovering that the degraded ladder absorbs the load IS the point.)
    // A probe engine yields the serving set's mean cold latency so the
    // real engine can pin an explicit 4x dwell: long enough that the
    // transient pressure spikes of the early (comfortable) ramp phase
    // never flip the level, keeping the climb itself the only signal.
    let mean_cold_ms = {
        let probe = EngineBuilder::new().q_window(10).candidates(8).seed(7).build().unwrap();
        let t = probe.table();
        (0..t.num_rows()).map(|i| t.latency_ms(i, 0)).sum::<f64>() / t.num_rows() as f64
    };
    let dwell_ms = 4.0 * mean_cold_ms;
    let mut engine = EngineBuilder::new()
        .q_window(10)
        .candidates(8)
        .seed(7)
        .workers(1)
        .queue_capacity(32)
        // FIFO so sustained overload pins the queue full (the deadline
        // sweep would empty it and make occupancy oscillate).
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(4, 1.0))
        .adaptive(AdaptiveOptions::default().with_dwell_ms(dwell_ms))
        .build()
        .expect("adaptive engine");
    let mut space = engine.constraint_space();
    // Uniformly loose deadlines: the ramp must be read through queue
    // occupancy, not through one tight query's head-of-line slack spike.
    space.lat_hi *= 2.5;
    space.lat_lo = 0.9 * space.lat_hi;
    let n = 400;
    let queries = uniform_stream(&space, n, 3);
    // Gaps ramp from comfortable (2x mean service) to crushing (0.05x).
    let mut arrivals = Vec::with_capacity(n);
    let mut t = 0.0;
    for i in 0..n {
        let frac = i as f64 / n as f64;
        t += mean_cold_ms * (2.0 * (1.0 - frac) + 0.05 * frac);
        arrivals.push(t);
    }
    let result = engine.serve_timed(&attach_arrivals(&queries, &arrivals)).expect("serve");

    let trace = result.adaptation.expect("adaptive run records a trace");
    assert!(trace.degrades > 0, "rising load must force degradation");
    let peak = trace.events.iter().map(|e| e.level).max().unwrap();
    assert!(peak >= 2, "the ramp should push through several levels, peaked at {peak}");
    let climb = trace.events.iter().position(|e| e.level == peak).unwrap();
    // Monotone climb: the walk to the peak is all degrades, one level at
    // a time — 1, 2, ..., peak, with no upgrade interleaved.
    for (i, ev) in trace.events[..=climb].iter().enumerate() {
        assert_eq!(
            ev.level,
            i + 1,
            "climb to peak {peak} was not monotone: event {i} sits at level {}",
            ev.level
        );
    }
    // The dwell guard holds over the whole trace: no two level changes
    // within the explicit 4x window.
    let mut prev_level = 0usize;
    let mut prev_at = f64::NEG_INFINITY;
    for ev in &trace.events {
        assert_eq!(
            ev.level.abs_diff(prev_level),
            1,
            "levels move one step at a time ({prev_level} -> {} at {} ms)",
            ev.level,
            ev.at_ms
        );
        assert!(
            ev.at_ms - prev_at >= dwell_ms - 1e-9,
            "changes at {prev_at} and {} ms violate the dwell window",
            ev.at_ms
        );
        prev_level = ev.level;
        prev_at = ev.at_ms;
    }
}

#[test]
fn adaptation_recovers_after_the_failover_burst() {
    // The failover preset ends with calm traffic after its recovery
    // burst: whatever level the burst forced, the controller must walk
    // back up before the run ends.
    let result = run_scenario(ServePreset::Failover, &quick()).expect("failover");
    let trace = result.adaptation.expect("adaptive trace");
    let peak = trace.events.iter().map(|e| e.level).max().unwrap_or(0);
    assert!(trace.degrades > 0, "the recovery burst must trigger degradation");
    assert!(trace.upgrades > 0, "calm traffic after the burst must trigger recovery");
    // Recovery: once the burst backlog clears, the controller walks back
    // below the peak it was forced to. (The run ends at the last
    // completion, so a walk all the way to level 0 is not guaranteed —
    // under marginal load the level legitimately hovers.)
    let peak_idx = trace.events.iter().position(|e| e.level == peak).unwrap();
    let post_min = trace.events[peak_idx..].iter().map(|e| e.level).min().unwrap();
    assert!(post_min < peak, "level never came back below its peak {peak}");
}

#[test]
fn adaptive_beats_static_on_the_burst_preset() {
    // The acceptance criterion, checked end to end through the facade:
    // degradation turns burst SLO violations into accuracy dips at no
    // goodput cost.
    let adaptive = run_scenario(ServePreset::Burst, &quick()).unwrap().summary();
    let fixed = run_scenario(ServePreset::Burst, &static_quick()).unwrap().summary();
    assert!(
        adaptive.slo_violation_rate < fixed.slo_violation_rate,
        "adaptive {} !< static {}",
        adaptive.slo_violation_rate,
        fixed.slo_violation_rate
    );
    assert!(
        adaptive.goodput_qps >= fixed.goodput_qps,
        "adaptive goodput {} regressed below static {}",
        adaptive.goodput_qps,
        fixed.goodput_qps
    );
}

#[test]
fn no_adaptation_is_bit_identical_to_the_pre_adaptive_runtime() {
    // `adaptive: false` must reproduce the static runtime's numbers
    // bit-for-bit (the same pins are enforced crate-side; this checks the
    // facade path end to end). Re-pinned when least-loaded replica routing
    // replaced the lowest-index-free worker pick.
    let opts = static_quick();
    let steady = run_scenario(ServePreset::Steady, &opts).unwrap();
    assert!(steady.adaptation.is_none(), "static runs must not record a trace");
    let s = steady.summary();
    assert!((s.p99_ms - 23.382_301_440).abs() < 1e-6, "steady p99 {}", s.p99_ms);
    assert!((s.goodput_qps - 74.346_097_348).abs() < 1e-6, "steady goodput {}", s.goodput_qps);
    assert_eq!(s.dropped, 0);
    assert_eq!((s.degrades, s.upgrades), (0, 0));

    let b = run_scenario(ServePreset::Burst, &opts).unwrap().summary();
    assert!((b.p99_ms - 96.176_223_914).abs() < 1e-6, "burst p99 {}", b.p99_ms);
    assert!((b.goodput_qps - 47.201_943_536).abs() < 1e-6, "burst goodput {}", b.goodput_qps);
    assert_eq!(b.dropped, 26);
}

/// 100k-query soak at 10x the burst arrival rate (run in CI bench-smoke
/// via `--ignored`): the run must complete without panicking, account for
/// every query, keep the queue inside its cap, and — on the functional
/// companion — hold backend memory flat once every SubNet is packed.
#[test]
#[ignore = "soak: ~100k simulated queries, run explicitly or in bench-smoke"]
fn soak_extreme_overload_drains_and_stays_bounded() {
    let queue_capacity = 32;
    let mut engine = EngineBuilder::new()
        .q_window(10)
        .candidates(8)
        .seed(11)
        .workers(2)
        .queue_capacity(queue_capacity)
        .drop_policy(DropPolicy::DeadlineAware)
        .batch_policy(BatchPolicy::new(4, 1.0))
        .adaptive(AdaptiveOptions::default())
        .build()
        .expect("soak engine");
    let mean_cold_ms = {
        let t = engine.table();
        (0..t.num_rows()).map(|i| t.latency_ms(i, 0)).sum::<f64>() / t.num_rows() as f64
    };
    let mut space = engine.constraint_space();
    space.lat_lo *= 2.0;
    space.lat_hi *= 2.5;
    // 10x the burst preset's peak (1.8x capacity): deep, sustained overload.
    let capacity_qps = 2.0 * 1e3 / mean_cold_ms;
    let n = 100_000;
    let queries = uniform_stream(&space, n, 13);
    let arrivals = sushi::core::serving::ArrivalProcess::Poisson { rate_qps: 18.0 * capacity_qps }
        .timestamps(n, 17);
    let stream: Vec<TimedQuery> = attach_arrivals(&queries, &arrivals);
    let result = engine.serve_timed(&stream).expect("soak run");

    // Drained: every query is either served or accounted as dropped.
    assert_eq!(result.served.len() + result.dropped.len(), n);
    assert!(result.max_queue_depth <= queue_capacity, "queue escaped its cap");
    let trace = result.adaptation.expect("soak runs adaptive");
    assert_eq!(trace.degrades + trace.upgrades, trace.events.len());
    assert!(trace.degrades > 0, "sustained overload must degrade");
    // Analytical backend holds no execution state.
    assert_eq!(engine.memory_stats(), None);

    // Functional companion (toy zoo): arena + pack-once caches must stop
    // growing once the serving set is packed — the steady state allocates
    // nothing per query.
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let serving_set = picks.len();
    let mut func = EngineBuilder::new()
        .workload(Arc::clone(&net), picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(1)
        .queue_capacity(16)
        .drop_policy(DropPolicy::DeadlineAware)
        .batch_policy(BatchPolicy::new(3, 0.1))
        .adaptive(AdaptiveOptions::default())
        .build()
        .expect("functional soak engine");
    let mut fspace = func.constraint_space();
    fspace.lat_lo *= 4.0;
    fspace.lat_hi *= 10.0;
    let m = 300;
    let fq = uniform_stream(&fspace, m, 5);
    let fa = sushi::core::serving::ArrivalProcess::Poisson { rate_qps: 40_000.0 }.timestamps(m, 5);
    let first = func.serve_timed(&attach_arrivals(&fq, &fa)).expect("functional warmup");
    assert_eq!(first.served.len() + first.dropped.len(), m);
    let warm = func.memory_stats().expect("functional backend reports memory");
    assert!(warm.arena_reserved_bytes > 0);
    assert!(warm.packed_subnets <= serving_set);
    // Second leg, arrivals strictly after the first makespan.
    let offset = first.makespan_ms + 1.0;
    let fa2: Vec<f64> = fa.iter().map(|t| t + offset).collect();
    let fq2 = uniform_stream(&fspace, m, 6);
    let second = func.serve_timed(&attach_arrivals(&fq2, &fa2)).expect("functional steady state");
    assert_eq!(second.served.len() + second.dropped.len(), m);
    let steady = func.memory_stats().expect("stats after steady state");
    assert_eq!(
        steady, warm,
        "backend memory grew after warmup: {warm:?} -> {steady:?} (per-query allocation leak)"
    );
}
