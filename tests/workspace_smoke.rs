//! Workspace smoke test: pins the README / `src/lib.rs` quickstart path as
//! a real integration test, so the facade API (`sushi::…` re-exports, stack
//! construction, stream serving, and the per-record guarantees) cannot
//! silently drift from the documented entry point.

use sushi::core::engine::EngineBuilder;
use sushi::core::stream::{uniform_stream, ConstraintSpace};
use sushi::sched::Policy;
use sushi::wsnet::zoo;

#[test]
fn quickstart_serves_20_queries_within_constraints() {
    let mut engine = EngineBuilder::new()
        .q_window(10) // cache re-decision window Q
        .candidates(8) // SubGraph candidate set size
        .seed(42) // stream seed
        .build()
        .expect("paper-default engine builds");

    let space = ConstraintSpace { acc_lo: 0.76, acc_hi: 0.79, lat_lo: 2.0, lat_hi: 30.0 };
    let stream = uniform_stream(&space, 20, 1);
    let records = engine.serve_stream(&stream).expect("analytical serve");

    assert_eq!(records.len(), 20, "every query must produce a record");
    for record in &records {
        assert!(
            record.served_accuracy >= record.query.accuracy_constraint,
            "query {} served {:.4} below its constraint {:.4}",
            record.query.id,
            record.served_accuracy,
            record.query.accuracy_constraint
        );
        assert!(
            record.served_latency_ms > 0.0,
            "query {} has non-positive latency",
            record.query.id
        );
    }
}

#[test]
fn facade_reexports_resolve_the_whole_stack() {
    // One symbol per re-exported crate: breaks if a `pub use` disappears.
    let _t = sushi::tensor::Shape4::new(1, 1, 1, 1);
    let net = zoo::toy_supernet();
    let _g = sushi::wsnet::SubGraph::new(vec![]);
    let cfg = sushi::accel::config::zcu104();
    let _a = sushi::accel::exec::Accelerator::new(cfg);
    let _p: Policy = Policy::StrictAccuracy;
    let _b = sushi::core::BackendKind::Analytical;
    assert!(net.num_layers() > 0);
}
