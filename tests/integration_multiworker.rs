//! Multi-worker functional serving, end to end through the `Engine`
//! facade: the packed int8 datapath must produce *bit-identical* per-query
//! predictions no matter how many replicas serve the stream — workers
//! change when queries complete, never what they compute — and the
//! backend's memory accounting must count the Arc-shared packed panels
//! once while summing the per-worker scratch arenas.

use std::collections::BTreeMap;
use std::sync::Arc;

use sushi::core::engine::{BackendKind, EngineBuilder, FunctionalOptions};
use sushi::core::serving::{ArrivalProcess, BatchPolicy, DropPolicy, RoutingPolicy, SimResult};
use sushi::core::stream::{attach_arrivals, uniform_stream};
use sushi::sched::AdaptiveOptions;
use sushi::wsnet::zoo;

/// Serves one fixed toy-zoo stream on `workers` functional replicas and
/// returns `(query id -> prediction, memory stats)`.
fn serve_with_workers(
    workers: usize,
    routing: RoutingPolicy,
) -> (BTreeMap<u64, usize>, sushi::accel::MemoryStats) {
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&net), picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(workers)
        .routing(routing)
        .queue_capacity(32)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(3, 0.1))
        .build()
        .expect("functional engine");
    let mut space = engine.constraint_space();
    space.lat_lo *= 4.0;
    space.lat_hi *= 10.0;
    let n = 24;
    let qs = uniform_stream(&space, n, 5);
    let ts = ArrivalProcess::Poisson { rate_qps: 20_000.0 }.timestamps(n, 5);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).expect("functional serve");
    assert!(result.dropped.is_empty(), "the stream must fit the queue at every pool size");
    let predictions = result
        .served
        .iter()
        .map(|s| (s.query.id, s.prediction.expect("functional prediction")))
        .collect();
    (predictions, engine.memory_stats().expect("functional backend reports memory"))
}

#[test]
fn predictions_are_bit_identical_across_worker_counts() {
    let (base, base_stats) = serve_with_workers(1, RoutingPolicy::LeastLoaded);
    assert_eq!(base.len(), 24, "every query must be served");
    for (workers, routing) in [
        (2, RoutingPolicy::LeastLoaded),
        (4, RoutingPolicy::RoundRobin),
        (4, RoutingPolicy::CacheAffinity),
    ] {
        let (preds, stats) = serve_with_workers(workers, routing);
        assert_eq!(
            preds, base,
            "{workers}-worker ({routing}) predictions drifted from the 1-worker run"
        );
        // The pack-once caches are shared: the packed-SubNet count is
        // pool-size-invariant; only the scratch-arena accounting grows.
        assert_eq!(stats.packed_subnets, base_stats.packed_subnets);
        assert!(stats.arena_workers >= 1 && stats.arena_workers <= workers);
        assert!(stats.arena_reserved_bytes >= base_stats.arena_reserved_bytes / 2);
    }
}

/// Serves a burst-overload toy-zoo stream with the adaptive controller
/// enabled on `workers` functional replicas.
///
/// The knobs conspire to make the *adaptation trajectory itself*
/// pool-size-invariant: arrivals land every 5 µs (200k qps) while the
/// first batch cannot dispatch before the 0.1 ms batch-wait expires, so
/// the controller sees an identical, completion-free event stream on
/// every pool size until well past the point where the hair-trigger
/// thresholds (degrade at 5% occupancy, 20 µs dwell) have already driven
/// the ladder to its deepest rung. From there the queue stays saturated
/// until the last arrival, so no pool size can upgrade mid-stream and
/// every admission is shaped at the same level everywhere.
fn serve_adaptive_with_workers(workers: usize, routing: RoutingPolicy) -> SimResult {
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&net), picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(workers)
        .routing(routing)
        .queue_capacity(120)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(3, 0.1))
        .adaptive(AdaptiveOptions::default().with_thresholds(0.05, 0.01).with_dwell_ms(0.02))
        .build()
        .expect("adaptive functional engine");
    let mut space = engine.constraint_space();
    space.lat_lo *= 4.0;
    space.lat_hi *= 10.0;
    let n = 96;
    let qs = uniform_stream(&space, n, 5);
    let ts = ArrivalProcess::Poisson { rate_qps: 200_000.0 }.timestamps(n, 5);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).expect("adaptive serve");
    assert!(result.dropped.is_empty(), "the overload stream must still fit the queue");
    result
}

/// The latent gap this suite used to have: adaptation and multi-worker
/// dispatch were never exercised together. The combined contract is the
/// same determinism ladder as the static matrix — shaping changes *which*
/// SubNet serves a query, never *what* that SubNet computes — checked at
/// three strengths:
///
/// 1. every matrix point is run-to-run deterministic,
/// 2. `(subnet row -> prediction)` agreement: any two pool sizes that
///    route a query to the same row produce the same bits,
/// 3. once every pool size has saturated the ladder (sustained overload
///    guarantees it), the trailing queries are shaped identically, so
///    their predictions match across the whole matrix bit for bit.
#[test]
fn adaptive_matrix_is_deterministic_across_workers_and_routing() {
    let matrix = [
        (1, RoutingPolicy::LeastLoaded),
        (2, RoutingPolicy::LeastLoaded),
        (2, RoutingPolicy::RoundRobin),
        (4, RoutingPolicy::RoundRobin),
        (4, RoutingPolicy::CacheAffinity),
    ];
    let runs: Vec<(usize, RoutingPolicy, SimResult)> =
        matrix.iter().map(|&(w, r)| (w, r, serve_adaptive_with_workers(w, r))).collect();

    for (w, r, result) in &runs {
        let trace = result.adaptation.as_ref().expect("adaptive runs carry a trace");
        assert!(trace.degrades > 0, "{w}-worker ({r}) overload never degraded");
        assert!(trace.shaped > 0, "{w}-worker ({r}) overload never shaped a query");
        assert_eq!(result.served.len(), 96, "{w}-worker ({r}) lost queries");

        // Strength 1: replaying the same matrix point is bit-identical.
        let replay = serve_adaptive_with_workers(*w, *r);
        for (a, b) in result.served.iter().zip(replay.served.iter()) {
            assert_eq!((a.query.id, a.subnet_row), (b.query.id, b.subnet_row));
            assert_eq!(a.prediction, b.prediction, "{w}-worker ({r}) replay drifted");
            assert_eq!(a.completion_ms.to_bits(), b.completion_ms.to_bits());
        }
    }

    // Strength 2: the datapath is row-deterministic across the matrix.
    let by_id = |result: &SimResult| -> BTreeMap<u64, (usize, usize)> {
        result
            .served
            .iter()
            .map(|s| (s.query.id, (s.subnet_row, s.prediction.expect("functional prediction"))))
            .collect()
    };
    let base = by_id(&runs[0].2);
    for (w, r, result) in &runs[1..] {
        for (id, (row, pred)) in by_id(result) {
            let (base_row, base_pred) = base[&id];
            if row == base_row {
                assert_eq!(
                    pred, base_pred,
                    "query {id} on row {row}: {w}-worker ({r}) computed different bits"
                );
            }
        }
    }

    // Strength 3: the ladder saturates before the first dispatch (see
    // `serve_adaptive_with_workers`), so the level at every admission —
    // and therefore every row choice and prediction — is pool-size-
    // invariant for the *entire* stream, not just a tail window.
    for (w, r, result) in &runs[1..] {
        assert_eq!(
            by_id(result),
            base,
            "{w}-worker ({r}) adaptive predictions drifted from the 1-worker run"
        );
    }
}

#[test]
fn multi_worker_pools_actually_parallelize_the_schedule() {
    // Guard against the bit-identity above passing vacuously because every
    // batch landed on worker 0: with 4 replicas and round-robin routing,
    // the schedule must spread across workers.
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let mut engine = EngineBuilder::new()
        .workload(net, picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(4)
        .routing(RoutingPolicy::RoundRobin)
        .queue_capacity(32)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(3, 0.1))
        .build()
        .expect("functional engine");
    let mut space = engine.constraint_space();
    space.lat_lo *= 4.0;
    space.lat_hi *= 10.0;
    let qs = uniform_stream(&space, 24, 5);
    let ts = ArrivalProcess::Poisson { rate_qps: 20_000.0 }.timestamps(24, 5);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).expect("functional serve");
    let workers_used: std::collections::BTreeSet<usize> =
        result.served.iter().map(|s| s.worker).collect();
    assert!(workers_used.len() > 1, "pool never fanned out: {workers_used:?}");
}
