//! Multi-worker functional serving, end to end through the `Engine`
//! facade: the packed int8 datapath must produce *bit-identical* per-query
//! predictions no matter how many replicas serve the stream — workers
//! change when queries complete, never what they compute — and the
//! backend's memory accounting must count the Arc-shared packed panels
//! once while summing the per-worker scratch arenas.

use std::collections::BTreeMap;
use std::sync::Arc;

use sushi::core::engine::{BackendKind, EngineBuilder, FunctionalOptions};
use sushi::core::serving::{ArrivalProcess, BatchPolicy, DropPolicy, RoutingPolicy};
use sushi::core::stream::{attach_arrivals, uniform_stream};
use sushi::wsnet::zoo;

/// Serves one fixed toy-zoo stream on `workers` functional replicas and
/// returns `(query id -> prediction, memory stats)`.
fn serve_with_workers(
    workers: usize,
    routing: RoutingPolicy,
) -> (BTreeMap<u64, usize>, sushi::accel::MemoryStats) {
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&net), picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(workers)
        .routing(routing)
        .queue_capacity(32)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(3, 0.1))
        .build()
        .expect("functional engine");
    let mut space = engine.constraint_space();
    space.lat_lo *= 4.0;
    space.lat_hi *= 10.0;
    let n = 24;
    let qs = uniform_stream(&space, n, 5);
    let ts = ArrivalProcess::Poisson { rate_qps: 20_000.0 }.timestamps(n, 5);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).expect("functional serve");
    assert!(result.dropped.is_empty(), "the stream must fit the queue at every pool size");
    let predictions = result
        .served
        .iter()
        .map(|s| (s.query.id, s.prediction.expect("functional prediction")))
        .collect();
    (predictions, engine.memory_stats().expect("functional backend reports memory"))
}

#[test]
fn predictions_are_bit_identical_across_worker_counts() {
    let (base, base_stats) = serve_with_workers(1, RoutingPolicy::LeastLoaded);
    assert_eq!(base.len(), 24, "every query must be served");
    for (workers, routing) in [
        (2, RoutingPolicy::LeastLoaded),
        (4, RoutingPolicy::RoundRobin),
        (4, RoutingPolicy::CacheAffinity),
    ] {
        let (preds, stats) = serve_with_workers(workers, routing);
        assert_eq!(
            preds, base,
            "{workers}-worker ({routing}) predictions drifted from the 1-worker run"
        );
        // The pack-once caches are shared: the packed-SubNet count is
        // pool-size-invariant; only the scratch-arena accounting grows.
        assert_eq!(stats.packed_subnets, base_stats.packed_subnets);
        assert!(stats.arena_workers >= 1 && stats.arena_workers <= workers);
        assert!(stats.arena_reserved_bytes >= base_stats.arena_reserved_bytes / 2);
    }
}

#[test]
fn multi_worker_pools_actually_parallelize_the_schedule() {
    // Guard against the bit-identity above passing vacuously because every
    // batch landed on worker 0: with 4 replicas and round-robin routing,
    // the schedule must spread across workers.
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let mut engine = EngineBuilder::new()
        .workload(net, picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(4)
        .routing(RoutingPolicy::RoundRobin)
        .queue_capacity(32)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(3, 0.1))
        .build()
        .expect("functional engine");
    let mut space = engine.constraint_space();
    space.lat_lo *= 4.0;
    space.lat_hi *= 10.0;
    let qs = uniform_stream(&space, 24, 5);
    let ts = ArrivalProcess::Poisson { rate_qps: 20_000.0 }.timestamps(24, 5);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).expect("functional serve");
    let workers_used: std::collections::BTreeSet<usize> =
        result.served.iter().map(|s| s.worker).collect();
    assert!(workers_used.len() > 1, "pool never fanned out: {workers_used:?}");
}
