//! Tenant-tiered serving: end-to-end wins and backward compatibility.
//!
//! Two gates, mirroring the adaptive-serving suite one level up:
//!
//! 1. **The tiers must pay for themselves.** On the `multi_tenant` preset
//!    the tiered controller (AV tenant latency-critical, ICU tenant
//!    best-effort with the arrival predictor) must beat the tierless
//!    global controller on the latency-critical tenant's SLO violation
//!    rate without giving up aggregate goodput.
//! 2. **Opting out must be free.** With no tenant configuration
//!    (`tenants(None)`, the default) the serving loop must reproduce the
//!    tierless runtime's records bit for bit, on both backends — pinned
//!    with the same FNV digests the API-transition suite uses.

use std::sync::Arc;

use sushi::core::engine::{BackendKind, EngineBuilder, FunctionalOptions};
use sushi::core::experiments::common::ExpOptions;
use sushi::core::serving::{
    run_scenario, ArrivalProcess, BatchPolicy, DropPolicy, ServePreset, SimResult,
};
use sushi::core::stream::{attach_arrivals, uniform_stream};
use sushi::sched::TenantTier;
use sushi::wsnet::zoo;

/// FNV-1a over the little-endian bytes of each 64-bit word (the same
/// digest `engine_equivalence.rs` pins the API transition with).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
    fn f(&mut self, v: f64) {
        self.word(v.to_bits());
    }
}

fn timed_digest(result: &SimResult) -> u64 {
    let mut h = Fnv::new();
    for s in &result.served {
        h.word(s.query.id);
        h.f(s.arrival_ms);
        h.f(s.start_ms);
        h.f(s.completion_ms);
        h.word(s.subnet_row as u64);
        h.word(s.batch_size as u64);
        h.word(s.worker as u64);
    }
    for d in &result.dropped {
        h.word(d.timed.query.id);
    }
    let sum = result.summary();
    for v in [
        sum.p50_ms,
        sum.p95_ms,
        sum.p99_ms,
        sum.mean_latency_ms,
        sum.goodput_qps,
        sum.slo_violation_rate,
        sum.mean_queue_depth,
        sum.swap_ms,
        sum.makespan_ms,
    ] {
        h.f(v);
    }
    h.word(sum.completed as u64);
    h.word(sum.dropped as u64);
    h.word(sum.cache_installs as u64);
    h.0
}

/// The tierless adaptive `multi_tenant` row this PR must beat (pinned in
/// `BENCH_serve.json` before tiering landed): aggregate SLO violation
/// rate and goodput at full sizing, 2 workers, least-loaded routing.
const TIERLESS_ADAPTIVE_SLO_VIOLATION_RATE: f64 = 0.246_666_666_666_666_67;
const TIERLESS_ADAPTIVE_GOODPUT_QPS: f64 = 79.015_610;

#[test]
fn tiered_multi_tenant_beats_tierless_adaptive_on_lc_slo() {
    let tiered = run_scenario(ServePreset::MultiTenant, &ExpOptions::default()).unwrap();
    let mut tierless_opts = ExpOptions::default();
    tierless_opts.tenants = false;
    let tierless = run_scenario(ServePreset::MultiTenant, &tierless_opts).unwrap();

    // Tenant 0 is the AV navigation stream — latency-critical under
    // tiering, just another flow to the tierless global controller.
    let lc_tiered = tiered.tier_summary(TenantTier::LatencyCritical);
    let av_tierless = tierless.tenant_summary(0);
    let agg_tiered = tiered.summary();
    let agg_tierless = tierless.summary();
    eprintln!(
        "tiered   LC: viol {:.6} p99 {:.3} | aggregate: goodput {:.6} viol {:.6} dropped {}",
        lc_tiered.slo_violation_rate,
        lc_tiered.p99_ms,
        agg_tiered.goodput_qps,
        agg_tiered.slo_violation_rate,
        agg_tiered.dropped,
    );
    eprintln!(
        "tierless AV: viol {:.6} p99 {:.3} | aggregate: goodput {:.6} viol {:.6} dropped {}",
        av_tierless.slo_violation_rate,
        av_tierless.p99_ms,
        agg_tierless.goodput_qps,
        agg_tierless.slo_violation_rate,
        agg_tierless.dropped,
    );
    let be_tiered = tiered.tier_summary(TenantTier::BestEffort);
    eprintln!(
        "tiered   BE: viol {:.6} p99 {:.3} offered {}",
        be_tiered.slo_violation_rate, be_tiered.p99_ms, be_tiered.offered
    );
    if let Some(trace) = &tiered.adaptation {
        for t in &trace.tiers {
            eprintln!(
                "tier {:?}: final {} degrades {} upgrades {}",
                t.tier, t.final_level, t.degrades, t.upgrades
            );
        }
    }

    assert!(
        lc_tiered.slo_violation_rate < av_tierless.slo_violation_rate,
        "tiered LC violations {} !< tierless AV {}",
        lc_tiered.slo_violation_rate,
        av_tierless.slo_violation_rate
    );
    // The ISSUE's absolute acceptance bar: strictly below the pinned
    // tierless adaptive aggregate, at equal-or-better aggregate goodput.
    assert!(
        lc_tiered.slo_violation_rate < TIERLESS_ADAPTIVE_SLO_VIOLATION_RATE,
        "tiered LC violations {} !< pinned tierless aggregate {}",
        lc_tiered.slo_violation_rate,
        TIERLESS_ADAPTIVE_SLO_VIOLATION_RATE
    );
    assert!(
        agg_tiered.goodput_qps >= TIERLESS_ADAPTIVE_GOODPUT_QPS,
        "tiered aggregate goodput {} < pinned tierless {}",
        agg_tiered.goodput_qps,
        TIERLESS_ADAPTIVE_GOODPUT_QPS
    );
}

#[test]
fn tiered_run_records_per_tier_trace_and_partitions_load() {
    let tiered = run_scenario(ServePreset::MultiTenant, &ExpOptions::quick()).unwrap();
    let trace = tiered.adaptation.as_ref().expect("tiered runs carry a trace");
    assert_eq!(trace.tiers.len(), 3, "one ladder trace per tier");
    let lc = tiered.tier_summary(TenantTier::LatencyCritical);
    let std = tiered.tier_summary(TenantTier::Standard);
    let be = tiered.tier_summary(TenantTier::BestEffort);
    assert_eq!(lc.offered + std.offered + be.offered, ExpOptions::quick().queries);
    assert_eq!(std.offered, 0, "no tenant maps to Standard in this preset");
    // Depth ordering carries to the trace: BE never shallower than LC.
    let final_of = |tier| {
        trace.tiers.iter().find(|t| t.tier == tier).map(|t| t.final_level).expect("tier trace")
    };
    assert!(final_of(TenantTier::LatencyCritical) <= final_of(TenantTier::BestEffort));
}

/// `tenants(None)` — explicit or by default — must leave the analytical
/// timed run bit-identical to the pre-tenancy runtime (same pinned digest
/// as `engine_equivalence.rs`).
const EXPECTED_TIMED_DIGEST: u64 = 0x9181_952e_e371_08fd;

#[test]
fn tenants_none_is_bit_identical_analytical() {
    let mut engine = EngineBuilder::new()
        .q_window(8)
        .candidates(8)
        .seed(42)
        .workers(2)
        .queue_capacity(16)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(4, 2.0))
        .tenants(None)
        .build()
        .expect("engine");
    let qs = uniform_stream(&engine.constraint_space(), 150, 9);
    let ts = ArrivalProcess::Poisson { rate_qps: 120.0 }.timestamps(150, 9 ^ 0xD15);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).unwrap();
    assert_eq!(
        timed_digest(&result),
        EXPECTED_TIMED_DIGEST,
        "tenants(None) drifted from the tierless fixtures"
    );
    assert!(result.served.iter().all(|s| s.tier == TenantTier::Standard));
}

/// Same contract on the functional backend (real int8 forwards).
const EXPECTED_FUNCTIONAL_DIGEST: u64 = 0x2790_0d49_6f89_8acf;

#[test]
fn tenants_none_is_bit_identical_functional() {
    let net = Arc::new(zoo::toy_mobilenet_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 3);
        s.sample_subnets(3)
    };
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&net), picks)
        .q_window(4)
        .candidates(3)
        .seed(11)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(4, 4).with_seed(42))
        .workers(1)
        .queue_capacity(16)
        .drop_policy(DropPolicy::DropNewest)
        .batch_policy(BatchPolicy::new(3, 0.1))
        .tenants(None)
        .build()
        .expect("functional engine");
    let mut space = engine.constraint_space();
    space.lat_lo *= 4.0;
    space.lat_hi *= 10.0;
    let qs = uniform_stream(&space, 12, 5);
    let ts = ArrivalProcess::Poisson { rate_qps: 20_000.0 }.timestamps(12, 5);
    let result = engine.serve_timed(&attach_arrivals(&qs, &ts)).unwrap();
    let mut h = Fnv::new();
    for s in &result.served {
        h.word(s.query.id);
        h.f(s.arrival_ms);
        h.f(s.start_ms);
        h.f(s.completion_ms);
        h.word(s.subnet_row as u64);
        h.word(s.batch_size as u64);
        h.word(s.worker as u64);
        h.word(s.prediction.expect("functional predictions") as u64);
    }
    h.word(result.dropped.len() as u64);
    assert_eq!(
        h.0, EXPECTED_FUNCTIONAL_DIGEST,
        "tenants(None) functional run drifted from the tierless fixtures"
    );
}

#[test]
fn adaptive_and_tenants_together_are_rejected() {
    let err = EngineBuilder::new()
        .q_window(8)
        .candidates(8)
        .seed(42)
        .adaptive(sushi::sched::AdaptiveOptions::default())
        .tenants(Some(sushi::sched::TenantOptions::default()))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("mutually exclusive"), "{err}");
}
