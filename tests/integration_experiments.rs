//! Smoke-level integration of the experiment regenerators: every paper
//! table/figure id must run end-to-end (quick scale) and produce non-empty,
//! well-formed output.

use sushi::core::experiments::{run, ExpOptions, ALL_IDS};

#[test]
fn every_experiment_id_runs_and_renders() {
    let opts = ExpOptions::quick();
    for &id in ALL_IDS {
        let report = run(id, &opts).unwrap_or_else(|| panic!("unknown id {id}"));
        assert_eq!(report.id, id);
        assert!(!report.sections.is_empty(), "{id} has no sections");
        let text = report.render();
        assert!(text.contains(&format!("=== {id}")), "{id} render header missing");
        assert!(text.len() > 100, "{id} output suspiciously short");
    }
}

#[test]
fn experiment_outputs_are_deterministic() {
    let opts = ExpOptions::quick();
    for id in ["fig10", "fig16", "tab5", "hit_ratio"] {
        let a = run(id, &opts).unwrap().render();
        let b = run(id, &opts).unwrap().render();
        assert_eq!(a, b, "{id} not reproducible");
    }
}

#[test]
fn quick_and_full_options_differ_only_in_scale() {
    let quick = ExpOptions::quick();
    let full = ExpOptions::default();
    assert!(quick.queries < full.queries);
    assert_eq!(quick.seed, full.seed);
}
