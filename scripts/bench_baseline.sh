#!/usr/bin/env bash
# Gates and regenerates the committed benchmark baselines:
#
#   BENCH_kernels.json  naive-vs-gemm wall-clock (kernel_bench; 20% perf
#                       tolerance + 5x headline-speedup floor)
#   BENCH_serve.json    serving-runtime simulated metrics (serve_bench;
#                       deterministic, near-zero drift tolerance)
#
#   scripts/bench_baseline.sh            # measure + gate vs committed baselines
#   scripts/bench_baseline.sh --update   # measure, then rewrite baselines
#
# Kernel numbers are wall-clock, so the gate tolerates noise but refuses to
# ratchet: a failing run never becomes the baseline. Serve numbers are
# simulated and deterministic, so any drift is a semantic change; --update
# is the explicit acknowledgment that rewrites the serve baseline without
# re-checking it.
set -euo pipefail
cd "$(dirname "$0")/.."

KERNEL_BASELINE=BENCH_kernels.json
SERVE_BASELINE=BENCH_serve.json
RUNS="${RUNS:-2}"

cargo build --release -p sushi-core --bin kernel_bench --bin serve_bench

echo "== kernel baseline ($KERNEL_BASELINE) =="
args=(--runs "$RUNS" --min-speedup 5.0)
if [ -f "$KERNEL_BASELINE" ]; then
  args+=(--check "$KERNEL_BASELINE")
fi
if [ "${1:-}" = "--update" ]; then
  args+=(--out "$KERNEL_BASELINE")
fi
./target/release/kernel_bench "${args[@]}"

echo
echo "== serve baseline ($SERVE_BASELINE) =="
if [ "${1:-}" = "--update" ]; then
  ./target/release/serve_bench --out "$SERVE_BASELINE"
elif [ -f "$SERVE_BASELINE" ]; then
  ./target/release/serve_bench --check "$SERVE_BASELINE"
else
  echo "no $SERVE_BASELINE yet; run with --update to create it" >&2
  exit 1
fi
