#!/usr/bin/env bash
# Gates and regenerates BENCH_kernels.json, the naive-vs-gemm kernel
# baseline that anchors the repo's perf trajectory.
#
#   scripts/bench_baseline.sh            # measure + gate vs committed baseline
#   scripts/bench_baseline.sh --update   # measure + gate, then rewrite baseline
#
# The run fails (exit 1) if the GEMM path regressed by more than 20% against
# the committed baseline on any workload, or if the headline speedup on the
# largest zoo SubNet drops below 5x. Rewriting is opt-in (--update) so
# repeated sub-threshold slowdowns cannot silently ratchet the baseline;
# kernel_bench additionally refuses to write a baseline from a failing run.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_kernels.json
RUNS="${RUNS:-2}"

cargo build --release -p sushi-core --bin kernel_bench

args=(--runs "$RUNS" --min-speedup 5.0)
if [ -f "$BASELINE" ]; then
  args+=(--check "$BASELINE")
fi
if [ "${1:-}" = "--update" ]; then
  args+=(--out "$BASELINE")
fi

./target/release/kernel_bench "${args[@]}"
