#!/usr/bin/env bash
# Gates and regenerates the committed benchmark baselines:
#
#   BENCH_kernels.json  kernel wall-clock, schema v3 (kernel_bench): naive /
#                       gemm / packed (pack-amortized) / fused (IR-lowered
#                       epilogue fusion) / cold-pack columns; 20% tolerance
#                       on gemm_ms, packed_ms AND fused_ms, plus an 8x
#                       floor on the largest workload's *fused* speedup
#   BENCH_serve.json    serving-runtime simulated metrics, schema v5
#                       (serve_bench): rows keyed by (scenario, adaptive,
#                       workers, routing, tier, faults) — adaptive + static
#                       rows for every preset, per-tier slices of the
#                       tenant-tiered multi_tenant run, the fault-injected
#                       chaos preset with its unsupervised ablation row,
#                       plus the scale_functional worker-scaling sweep and
#                       its routing ablation (deterministic, near-zero
#                       drift tolerance)
#
#   scripts/bench_baseline.sh            # measure + gate vs committed baselines
#   scripts/bench_baseline.sh --update   # measure, then rewrite baselines
#
# Kernel numbers are wall-clock, so the gate tolerates noise but refuses to
# ratchet: a failing run never becomes the baseline. Serve numbers are
# simulated and deterministic, so any drift is a semantic change; --update
# is the explicit acknowledgment that rewrites the serve baseline without
# re-checking it.
set -euo pipefail
cd "$(dirname "$0")/.."

KERNEL_BASELINE=BENCH_kernels.json
SERVE_BASELINE=BENCH_serve.json
# Best-of-N per backend; 3 damps scoped-thread scheduling noise on the
# full-size nets enough for the 20% gate to be stable run to run.
RUNS="${RUNS:-3}"

cargo build --release -p sushi-core --bin kernel_bench --bin serve_bench

echo "== kernel baseline ($KERNEL_BASELINE) =="
args=(--runs "$RUNS" --min-speedup 8.0)
if [ -f "$KERNEL_BASELINE" ]; then
  args+=(--check "$KERNEL_BASELINE")
fi
if [ "${1:-}" = "--update" ]; then
  args+=(--out "$KERNEL_BASELINE")
fi
./target/release/kernel_bench "${args[@]}"
# A freshly written baseline must also clear CI's machine-independent
# schema gate, so --update can never commit a file CI will reject.
./target/release/kernel_bench --check-schema "$KERNEL_BASELINE"

echo
echo "== serve baseline ($SERVE_BASELINE) =="
if [ "${1:-}" = "--update" ]; then
  ./target/release/serve_bench --out "$SERVE_BASELINE"
elif [ -f "$SERVE_BASELINE" ]; then
  ./target/release/serve_bench --check "$SERVE_BASELINE"
else
  echo "no $SERVE_BASELINE yet; run with --update to create it" >&2
  exit 1
fi
