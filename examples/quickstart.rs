//! Quickstart: serve a constrained query stream on the full SUSHI stack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the OFA-MobileNetV3 SuperNet with the paper's seven Pareto
//! SubNets, assembles the SushiSched → SushiAbs → SushiAccel pipeline on a
//! ZCU104-class accelerator, and serves 200 random `(accuracy, latency)`
//! constrained queries — printing how SubGraph-Stationary caching warms up.

use sushi::core::engine::EngineBuilder;
use sushi::core::metrics::summarize;
use sushi::core::stream::uniform_stream;

fn main() {
    // 1. The vertically integrated stack (§3.1): MobileNetV3 with the
    //    paper's seven Pareto SubNets on a ZCU104-class config — the
    //    builder's defaults, with the knobs spelled out.
    let mut engine = EngineBuilder::new()
        .q_window(10) // cache window Q
        .candidates(12) // SubGraph candidates in SushiAbs
        .seed(42)
        .build()
        .expect("paper-default engine");

    // 2. The weight-shared SuperNet and its serving SubNets (§2.1).
    let net = engine.net();
    println!("SuperNet: {} ({} conv layers)", net.name, net.num_layers());
    for p in engine.subnets() {
        println!(
            "  SubNet {}: {:5.2} MB, {:4.2} GFLOPs, top-1 {:.2}%",
            p.name,
            p.weight_mb(),
            p.gflops(),
            p.accuracy_pct()
        );
    }
    let shared = net.shared_subgraph(engine.subnets());
    println!(
        "  shared weights across all picks: {:.2} MB (the SGS opportunity)\n",
        net.subgraph_weight_bytes(&shared) as f64 / 1e6
    );

    // 3. A stream of 200 random constrained queries (§5.6).
    let space = engine.constraint_space();
    let queries = uniform_stream(&space, 200, 7);

    println!("serving {} queries (strict-accuracy policy) ...", queries.len());
    let records = engine.serve_stream(&queries).expect("analytical serve");
    for r in records.iter().take(12) {
        println!(
            "  q{:<3} wants acc>={:.2}%  ->  served {} ({:.2}%) in {:5.2} ms  [PB hit {:4.1}%{}]",
            r.query.id,
            r.query.accuracy_constraint * 100.0,
            r.subnet,
            r.served_accuracy * 100.0,
            r.served_latency_ms,
            r.hit_ratio * 100.0,
            if r.cache_updated { ", cache updated" } else { "" },
        );
    }

    // 4. Aggregate metrics (§5.7 / Appendix A.4).
    let s = summarize(&records);
    println!("\nsummary over {} queries:", s.queries);
    println!("  mean served latency : {:.3} ms", s.mean_latency_ms);
    println!("  mean served accuracy: {:.2}%", s.mean_accuracy * 100.0);
    println!("  accuracy attainment : {:.1}%", s.accuracy_attainment * 100.0);
    println!("  mean PB hit ratio   : {:.1}%", s.mean_hit_ratio * 100.0);
    println!("  off-chip energy     : {:.2} mJ total", s.total_offchip_mj);
}
