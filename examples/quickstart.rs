//! Quickstart: serve a constrained query stream on the full SUSHI stack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the OFA-MobileNetV3 SuperNet with the paper's seven Pareto
//! SubNets, assembles the SushiSched → SushiAbs → SushiAccel pipeline on a
//! ZCU104-class accelerator, and serves 200 random `(accuracy, latency)`
//! constrained queries — printing how SubGraph-Stationary caching warms up.

use std::sync::Arc;

use sushi::core::metrics::summarize;
use sushi::core::stream::{uniform_stream, ConstraintSpace};
use sushi::core::variants::{build_stack, Variant};
use sushi::sched::Policy;
use sushi::wsnet::zoo;

fn main() {
    // 1. The weight-shared SuperNet and its serving SubNets (§2.1).
    let net = Arc::new(zoo::mobilenet_v3_supernet());
    let picks = zoo::paper_subnets(&net);
    println!("SuperNet: {} ({} conv layers)", net.name, net.num_layers());
    for p in &picks {
        println!(
            "  SubNet {}: {:5.2} MB, {:4.2} GFLOPs, top-1 {:.2}%",
            p.name,
            p.weight_mb(),
            p.gflops(),
            p.accuracy_pct()
        );
    }
    let shared = net.shared_subgraph(&picks);
    println!(
        "  shared weights across all picks: {:.2} MB (the SGS opportunity)\n",
        net.subgraph_weight_bytes(&shared) as f64 / 1e6
    );

    // 2. The vertically integrated stack (§3.1) on a ZCU104-class config.
    let config = sushi::accel::config::zcu104();
    let mut stack = build_stack(
        Variant::Sushi,
        Arc::clone(&net),
        picks,
        &config,
        Policy::StrictAccuracy,
        10, // cache window Q
        12, // SubGraph candidates in SushiAbs
        42,
    );

    // 3. A stream of 200 random constrained queries (§5.6).
    let accs: Vec<f64> = stack.subnets().iter().map(|p| p.accuracy).collect();
    let lats: Vec<f64> =
        (0..stack.subnets().len()).map(|i| stack.scheduler().table().latency_ms(i, 0)).collect();
    let space = ConstraintSpace::from_serving_set(&accs, &lats);
    let queries = uniform_stream(&space, 200, 7);

    println!("serving {} queries (strict-accuracy policy) ...", queries.len());
    let records = stack.serve_stream(&queries);
    for r in records.iter().take(12) {
        println!(
            "  q{:<3} wants acc>={:.2}%  ->  served {} ({:.2}%) in {:5.2} ms  [PB hit {:4.1}%{}]",
            r.query.id,
            r.query.accuracy_constraint * 100.0,
            r.subnet,
            r.served_accuracy * 100.0,
            r.served_latency_ms,
            r.hit_ratio * 100.0,
            if r.cache_updated { ", cache updated" } else { "" },
        );
    }

    // 4. Aggregate metrics (§5.7 / Appendix A.4).
    let s = summarize(&records);
    println!("\nsummary over {} queries:", s.queries);
    println!("  mean served latency : {:.3} ms", s.mean_latency_ms);
    println!("  mean served accuracy: {:.2}%", s.mean_accuracy * 100.0);
    println!("  accuracy attainment : {:.1}%", s.accuracy_attainment * 100.0);
    println!("  mean PB hit ratio   : {:.1}%", s.mean_hit_ratio * 100.0);
    println!("  off-chip energy     : {:.2} mJ total", s.total_offchip_mj);
}
