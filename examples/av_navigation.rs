//! Autonomous-vehicle navigation scenario (§1's motivating application).
//!
//! ```text
//! cargo run --release --example av_navigation
//! ```
//!
//! An AV's perception stack alternates between *sparse suburban* terrain
//! (relaxed deadlines — demand top accuracy) and *dense urban* terrain
//! (tight deadlines — latency is the hard constraint). A single static
//! model is suboptimal in both regimes; SUSHI navigates the
//! latency/accuracy tradeoff in real time and SGS caching exploits the
//! temporal locality *within* each phase.

use std::collections::BTreeMap;

use sushi::core::engine::{EngineBuilder, ModelZoo};
use sushi::core::stream::{av_navigation_stream, TerrainPhase};
use sushi::sched::Policy;

fn main() {
    let mut engine = EngineBuilder::new()
        .zoo(ModelZoo::ResNet50)
        // Urban driving misses frames rather than deadlines: latency is hard.
        .policy(Policy::StrictLatency)
        .q_window(8)
        .candidates(12)
        .seed(42)
        .build()
        .expect("AV engine");

    let space = engine.constraint_space();

    // 400 frames alternating phases every 50 frames.
    let trace = av_navigation_stream(&space, 400, 50, 11);
    println!("AV trace: {} frames, phase length 50\n", trace.len());

    let mut per_phase: BTreeMap<&str, Vec<(f64, f64, bool)>> = BTreeMap::new();
    let mut subnet_usage: BTreeMap<(String, String), usize> = BTreeMap::new();
    for (phase, query) in &trace {
        let r = engine.serve(query).expect("analytical serve");
        let name = match phase {
            TerrainPhase::SparseSuburban => "suburban",
            TerrainPhase::DenseUrban => "urban",
        };
        per_phase.entry(name).or_default().push((
            r.served_latency_ms,
            r.served_accuracy,
            r.served_latency_ms <= query.latency_constraint_ms,
        ));
        *subnet_usage.entry((name.to_string(), r.subnet.clone())).or_insert(0) += 1;
    }

    for (phase, rows) in &per_phase {
        let n = rows.len() as f64;
        let mean_lat = rows.iter().map(|r| r.0).sum::<f64>() / n;
        let mean_acc = rows.iter().map(|r| r.1).sum::<f64>() / n * 100.0;
        let slo = rows.iter().filter(|r| r.2).count() as f64 / n * 100.0;
        println!(
            "{phase:9}: mean latency {mean_lat:6.2} ms | mean accuracy {mean_acc:.2}% | deadline attainment {slo:5.1}%"
        );
        let mut used: Vec<(&String, &usize)> = subnet_usage
            .iter()
            .filter(|((p, _), _)| p == phase)
            .map(|((_, sn), c)| (sn, c))
            .collect();
        used.sort_by(|a, b| b.1.cmp(a.1));
        let summary: Vec<String> = used.iter().map(|(sn, c)| format!("{sn}x{c}")).collect();
        println!("           SubNets served: {}", summary.join(", "));
    }

    println!(
        "\nThe scheduler shifts to small, fast SubNets in dense-urban phases and to large, \
         accurate ones in sparse-suburban phases — the 'agile navigation of the \
         latency/accuracy tradeoff space' the paper targets."
    );
}
