//! Hardware design-space exploration (§5.3, Fig. 12) as a user workflow:
//! "I have a ZCU104-class on-chip storage budget — how large should the
//! Persistent Buffer be for my workload?"
//!
//! ```text
//! cargo run --release --example design_space
//! ```
//!
//! Sweeps the PB share of the fixed on-chip budget (the PB competes with
//! the ping-pong Dynamic Buffers), bandwidth, and DPE-array geometry, then
//! prints the best design point per workload.

use sushi::accel::dse::{evaluate_point, DseGrid};
use sushi::wsnet::zoo;

fn main() {
    let grid = DseGrid::paper_grid();
    let base = sushi::accel::config::zcu104();

    for (label, net) in
        [("ResNet50", zoo::resnet50_supernet()), ("MobV3", zoo::mobilenet_v3_supernet())]
    {
        let picks = zoo::paper_subnets(&net);
        println!("=== {label}: PB size sweep at 19.2 GB/s, 16x18 array ===");
        println!("{:>9} {:>14} {:>14} {:>9}", "PB (MB)", "w/o PB (ms)", "w/ PB (ms)", "save %");
        let mut best = (f64::NEG_INFINITY, 0.0);
        for &pb in &grid.pb_bytes {
            let p = evaluate_point(&base, &net, &picks, pb, 19.2, (16, 18));
            println!(
                "{:>9.2} {:>14.3} {:>14.3} {:>8.1}%",
                p.pb_mb,
                p.latency_wo_pb_ms,
                p.latency_w_pb_ms,
                p.time_save_pct()
            );
            if p.time_save_pct() > best.0 {
                best = (p.time_save_pct(), p.pb_mb);
            }
        }
        println!("best PB size: {:.2} MB ({:.1}% saved)\n", best.1, best.0);

        println!("--- bandwidth sensitivity at the best PB size ---");
        println!("{:>10} {:>9}", "BW (GB/s)", "save %");
        for &bw in &grid.bw_gbps {
            let p = evaluate_point(
                &base,
                &net,
                &picks,
                (best.1 * 1024.0 * 1024.0) as u64,
                bw,
                (16, 18),
            );
            println!("{bw:>10.1} {:>8.1}%", p.time_save_pct());
        }

        println!("--- throughput sensitivity (DPE array geometry) ---");
        println!("{:>10} {:>9}", "MACs/cy", "save %");
        for &geo in &grid.geometries {
            let p =
                evaluate_point(&base, &net, &picks, (best.1 * 1024.0 * 1024.0) as u64, 19.2, geo);
            println!("{:>10} {:>8.1}%", p.macs_per_cycle, p.time_save_pct());
        }
        println!();
    }

    println!(
        "Shape to expect (paper Fig. 12): bigger PB and more compute increase the saving, \
         more bandwidth decreases it, and MobV3 gains less than ResNet50."
    );
}
