//! Bursty multi-tenant serving, end-to-end through the serving runtime.
//!
//! ```text
//! cargo run --release --example serving_sim
//! ```
//!
//! Part 1 replays the `multi_tenant` preset — an autonomous-vehicle tenant
//! (steady Poisson traffic) sharing the stack with an ICU tenant (MMPP
//! admission waves) — and reports tail latency, goodput and SLO violations
//! per tenant. Part 2 re-runs a small bursty scenario on the toy zoo with
//! the **functional** execution backend, so every dispatched batch executes
//! the *real* int8 datapath under the chosen kernel policy — demonstrating
//! that batching changes scheduling, never logits.

use std::sync::Arc;

use sushi::core::engine::{BackendKind, EngineBuilder, FunctionalOptions};
use sushi::core::experiments::ExpOptions;
use sushi::core::serving::{
    run_scenario, ArrivalProcess, BatchPolicy, DropPolicy, RoutingPolicy, ServePreset,
};
use sushi::core::stream::{attach_arrivals, uniform_stream};
use sushi::wsnet::zoo;

fn main() {
    // ── Part 1: the multi-tenant preset on MobileNetV3 / ZCU104 ─────────
    let opts = ExpOptions::default();
    let result = run_scenario(ServePreset::MultiTenant, &opts).expect("preset scenario");
    let total = result.summary();
    println!(
        "multi_tenant preset: {} offered, {} served in {} batches, {} dropped, \
         {} cache installs ({:.1} ms swap time)\n",
        total.offered,
        total.completed,
        result.batches,
        total.dropped,
        total.cache_installs,
        total.swap_ms
    );
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "tenant", "offered", "dropped", "p50(ms)", "p95(ms)", "p99(ms)", "goodput", "SLO viol"
    );
    for (tenant, label) in [(0u32, "AV"), (1u32, "ICU")] {
        let s = result.tenant_summary(tenant);
        println!(
            "{label:<8} {:>8} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>8.1} q/s {:>9.1}%",
            s.offered,
            s.dropped,
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            s.goodput_qps,
            100.0 * s.slo_violation_rate
        );
    }
    println!(
        "\nThe ICU tenant's admission waves transiently exceed capacity: the deadline-aware \
         queue sheds the most hopeless queries while the AV tenant keeps its tail.\n"
    );

    // ── Part 2: real int8 forwards per dispatched batch (toy zoo) ───────
    let net = Arc::new(zoo::toy_supernet());
    let picks = {
        let mut s = sushi::wsnet::sampler::ConfigSampler::new(&net, 5);
        s.sample_subnets(4)
    };
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&net), picks)
        .q_window(4)
        .candidates(4)
        .seed(42)
        .backend(BackendKind::Functional)
        .functional_options(FunctionalOptions::default().with_dpe(8, 8).with_seed(99))
        // The pack-once weight caches are Arc-shared across replicas, so a
        // multi-worker pool serves real parallel int8 forwards; affinity
        // routing keeps batches on the replica whose PB is already warm.
        .workers(2)
        .routing(RoutingPolicy::CacheAffinity)
        .queue_capacity(16)
        .drop_policy(DropPolicy::DeadlineAware)
        .batch_policy(BatchPolicy::new(4, 0.05))
        .build()
        .expect("functional toy engine");

    // Toy SubNets serve in ~0.05 ms; give end-to-end deadlines room for
    // queueing and batching delay (cf. the preset scenarios).
    let mut space = engine.constraint_space();
    space.lat_lo *= 4.0;
    space.lat_hi *= 8.0;

    let n = 24;
    let queries = uniform_stream(&space, n, 7);
    let arrivals = ArrivalProcess::Mmpp {
        calm_qps: 8_000.0,
        burst_qps: 60_000.0,
        mean_calm_ms: 0.8,
        mean_burst_ms: 0.3,
    }
    .timestamps(n, 7);
    let stream = attach_arrivals(&queries, &arrivals);
    let run = engine.serve_timed(&stream).expect("functional serve");

    println!("functional backend (toy zoo): every batch ran the real int8 datapath");
    for q in run.served.iter().take(8) {
        println!(
            "  query {:>2}  batch of {}  SubNet row {}  latency {:>7.3} ms  prediction {}",
            q.query.id,
            q.batch_size,
            q.subnet_row,
            q.latency_ms(),
            q.prediction.expect("functional mode records predictions")
        );
    }
    let batched = run.served.iter().filter(|q| q.batch_size > 1).count();
    println!(
        "  … {} of {} served queries rode shared-weight batches; logits are identical to \
         unbatched execution by construction (see proptest_batch).",
        batched,
        run.served.len()
    );
}
