//! Bit-exact functional execution of the DPE-array datapath (§4.2).
//!
//! ```text
//! cargo run --release --example functional_inference
//! ```
//!
//! Runs real int8 forward passes of two weight-sharing SubNets through the
//! simulated Dot-Product-Engine array — including the Zero-Subtraction
//! stage, residual adds and squeeze-excite gating — and demonstrates the
//! weight-sharing property numerically: the SubNets disagree on outputs
//! while physically sharing the smaller SubNet's weights.

use sushi::accel::dpe::DpeArray;
use sushi::accel::functional::{act_quant, forward};
use sushi::tensor::quant::quantize_tensor;
use sushi::tensor::{DetRng, Shape4, Tensor};
use sushi::wsnet::{zoo, WeightStore};

fn main() {
    for net in [zoo::toy_supernet(), zoo::toy_mobilenet_supernet()] {
        println!("=== {} (input {0}x{1}x{1})", net.name, net.input_hw);
        let store = WeightStore::synthesize(&net, 2024);
        println!(
            "  SuperNet weights: {} KB across {} layers",
            store.stored_bytes() / 1024,
            store.num_layers()
        );

        let small = net.materialize("small", &net.min_config()).expect("min config");
        let large = net.materialize("large", &net.max_config()).expect("max config");
        assert!(small.graph.is_subset_of(&large.graph));
        println!(
            "  small SubNet: {} KB | large SubNet: {} KB | small ⊆ large: {}",
            small.weight_bytes / 1024,
            large.weight_bytes / 1024,
            small.graph.is_subset_of(&large.graph),
        );

        // A deterministic synthetic image, quantized to the datapath's int8.
        let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
        let mut rng = DetRng::new(7);
        let image_f = Tensor::from_vec(
            shape,
            (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect(),
        )
        .expect("shape matches");
        let image = quantize_tensor(&image_f, act_quant());

        // ZCU104-geometry DPE array; results are geometry-independent.
        let dpe = DpeArray::new(16, 18);
        for sn in [&small, &large] {
            let out = forward(&dpe, &net, &store, sn, &image).expect("forward pass");
            let top: Vec<String> = {
                let mut idx: Vec<usize> = (0..out.logits.len()).collect();
                idx.sort_by(|&a, &b| out.logits[b].partial_cmp(&out.logits[a]).unwrap());
                idx.iter().take(3).map(|&i| format!("{}:{:.3}", i, out.logits[i])).collect()
            };
            println!(
                "  {} SubNet prediction: class {} | top-3 logits {}",
                sn.name,
                out.prediction,
                top.join(", ")
            );
        }

        // Geometry independence: a 1x1 "array" computes the same numbers.
        let tiny = DpeArray::new(1, 1);
        let a = forward(&dpe, &net, &store, &small, &image).expect("forward");
        let b = forward(&tiny, &net, &store, &small, &image).expect("forward");
        assert_eq!(a.logits, b.logits);
        println!("  DPE-geometry independence verified (16x18 == 1x1 array results)\n");
    }

    println!(
        "The same schedule is validated bit-exactly against the reference convolution in \
         sushi-accel's test suite; full-size workloads use the timing-only mode."
    );
}
