//! ICU patient-triage scenario (§1: "variable number of patients triaged
//! in the ICU or ER", HOLMES-style bedside inference).
//!
//! ```text
//! cargo run --release --example icu_triage
//! ```
//!
//! Stability-score queries arrive in bursts (admission waves). Clinical
//! constraints keep accuracy demands high at all times; during bursts the
//! per-patient latency budget collapses. We compare the three §5.7 serving
//! variants on the same bursty trace and report burst-window SLO
//! attainment — where the PB + state-aware scheduling matter most.

use sushi::core::engine::EngineBuilder;
use sushi::core::metrics::summarize;
use sushi::core::stream::icu_burst_stream;
use sushi::core::Variant;
use sushi::sched::{Policy, Query};

fn main() {
    // Constraint space from the serving set (a candidate-free PB-less
    // probe, as the comparison baseline sees it).
    let probe = EngineBuilder::new()
        .variant(Variant::NoSushi)
        .q_window(10)
        .candidates(0)
        .seed(42)
        .build()
        .expect("probe engine");
    let space = probe.constraint_space();

    // 600 queries; a 12-query burst every 40 queries.
    let trace = icu_burst_stream(&space, 600, 40, 12, 99);
    let queries: Vec<Query> = trace.iter().map(|(_, q)| *q).collect();
    let burst_mask: Vec<bool> = trace.iter().map(|(b, _)| *b).collect();
    println!(
        "ICU trace: {} queries, {} in admission bursts\n",
        queries.len(),
        burst_mask.iter().filter(|&&b| b).count()
    );

    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "variant", "latency(ms)", "accuracy(%)", "SLO all", "SLO in-burst"
    );
    for variant in [Variant::NoSushi, Variant::SushiNoSched, Variant::Sushi] {
        let mut engine = EngineBuilder::new()
            .variant(variant)
            .policy(Policy::StrictLatency)
            .q_window(10)
            .candidates(12)
            .seed(42)
            .build()
            .expect("ICU engine");
        let records = engine.serve_stream(&queries).expect("analytical serve");
        let all = summarize(&records);
        let burst_records: Vec<_> =
            records.iter().zip(&burst_mask).filter(|(_, &b)| b).map(|(r, _)| r.clone()).collect();
        let burst = summarize(&burst_records);
        println!(
            "{:<14} {:>12.3} {:>12.2} {:>13.1}% {:>13.1}%",
            variant.label(),
            all.mean_latency_ms,
            all.mean_accuracy * 100.0,
            all.latency_slo_attainment * 100.0,
            burst.latency_slo_attainment * 100.0,
        );
    }

    println!(
        "\nDuring bursts every fetched byte counts: SUSHI's cached SubGraph keeps the \
         fast SubNets' weights resident, so tight per-patient deadlines survive the wave."
    );
}
