//! Bit-exactness contracts of the IR-lowered fused datapath.
//!
//! Two layers of defense, per the fusion design rule ("rewrites change
//! *where* bias/requant/activation run, never their arithmetic"):
//!
//! * a property test drives arbitrary zoo SubNets (random elastic configs,
//!   random inputs) through [`SubgraphCache::build_fused`] and the plain
//!   [`SubgraphCache::build`] oracle and requires identical logits, and
//! * pinned FNV-1a digests of the *fusion-off* path guard the pre-IR
//!   datapath itself: the digests below were captured before the IR
//!   subsystem existed, so any drift in the unfused interpreter — however
//!   it is routed — is caught bit-for-bit.

use proptest::prelude::*;

use sushi_accel::dpe::DpeArray;
use sushi_accel::functional::{act_quant, forward_cached, SubgraphCache};
use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{Arena, DetRng, KernelPolicy, Shape4, Tensor};
use sushi_wsnet::sampler::ConfigSampler;
use sushi_wsnet::{zoo, SuperNet, WeightStore};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn logits_digest(logits: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(logits.len() * 4);
    for v in logits {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}

fn rand_input(net: &SuperNet, seed: u64) -> Tensor<i8> {
    let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
    let mut rng = DetRng::new(seed);
    let f =
        Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect())
            .expect("shape matches");
    quantize_tensor(&f, act_quant())
}

/// Digests of the **unfused** serving path captured before the IR
/// subsystem was introduced (weight seeds 71/72, input seed `wseed ^
/// 0xABCD`, `DpeArray::new(4, 4)`). The fusion-off datapath must still
/// produce these exact bits; both kernel policies must agree because
/// backend selection never changes logits.
const PRE_IR_DIGESTS: [(&str, &str, u64); 4] = [
    ("Toy-ResNet", "max", 0x1469_3ca5_11cc_9d5f),
    ("Toy-ResNet", "min", 0xcc8c_f89d_0625_55f4),
    ("Toy-MobileNet", "max", 0x7bf6_e6ac_71cc_b60e),
    ("Toy-MobileNet", "min", 0x00ec_a05f_d80a_9f75),
];

fn toy_net(name: &str) -> (SuperNet, u64) {
    match name {
        "Toy-ResNet" => (zoo::toy_supernet(), 71),
        "Toy-MobileNet" => (zoo::toy_mobilenet_supernet(), 72),
        other => panic!("unknown pinned net {other}"),
    }
}

/// Fusion off: the packed interpreter path is bit-identical to the
/// datapath that existed before the IR subsystem (pinned digests).
#[test]
fn fusion_off_digests_match_the_pre_ir_datapath() {
    for (net_name, cfg_name, want) in PRE_IR_DIGESTS {
        let (net, wseed) = toy_net(net_name);
        let store = WeightStore::synthesize(&net, wseed);
        let cfg = if cfg_name == "max" { net.max_config() } else { net.min_config() };
        let sn = net.materialize(cfg_name, &cfg).expect("pinned config");
        let input = rand_input(&net, wseed ^ 0xABCD);
        let cache = SubgraphCache::build(&net, &store, &sn.graph).expect("unfused cache");
        assert!(cache.plan().is_none(), "plain build must not carry a plan");
        let mut arena = Arena::new();
        for policy in [KernelPolicy::Auto, KernelPolicy::Im2colGemm] {
            let dpe = DpeArray::new(4, 4).with_policy(policy);
            let out = forward_cached(&dpe, &net, &store, &sn, Some(&cache), &mut arena, &input)
                .expect("unfused forward");
            assert_eq!(
                logits_digest(&out.logits),
                want,
                "{net_name}/{cfg_name} ({policy:?}): fusion-off logits drifted from the \
                 pre-IR datapath"
            );
        }
    }
}

/// Fusion on: the IR-lowered plan produces the *same* pinned bits — the
/// rewrite pipeline relocates arithmetic without changing it.
#[test]
fn fused_digests_match_the_same_pins() {
    for (net_name, cfg_name, want) in PRE_IR_DIGESTS {
        let (net, wseed) = toy_net(net_name);
        let store = WeightStore::synthesize(&net, wseed);
        let cfg = if cfg_name == "max" { net.max_config() } else { net.min_config() };
        let sn = net.materialize(cfg_name, &cfg).expect("pinned config");
        let input = rand_input(&net, wseed ^ 0xABCD);
        let cache = SubgraphCache::build_fused(&net, &store, &sn).expect("fused cache");
        assert!(cache.plan().is_some(), "build_fused must install a plan");
        let mut arena = Arena::new();
        let dpe = DpeArray::new(4, 4);
        let out = forward_cached(&dpe, &net, &store, &sn, Some(&cache), &mut arena, &input)
            .expect("fused forward");
        assert_eq!(
            logits_digest(&out.logits),
            want,
            "{net_name}/{cfg_name}: fused logits diverged from the pinned oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary zoo SubNets: the fused cache's forward is bit-identical
    /// to the unfused oracle for random elastic configs and inputs, on
    /// both toy families (dense/residual and depthwise/SE coverage).
    #[test]
    fn fused_forward_matches_unfused_oracle(
        mobile in prop_oneof![Just(false), Just(true)],
        cfg_seed in 0u64..10_000,
        weight_seed in 0u64..1_000,
        input_seed in 0u64..10_000,
    ) {
        let net = if mobile { zoo::toy_mobilenet_supernet() } else { zoo::toy_supernet() };
        let store = WeightStore::synthesize(&net, weight_seed);
        let mut sampler = ConfigSampler::new(&net, cfg_seed);
        let cfg = sampler.sample_config();
        let sn = net.materialize("prop", &cfg).expect("sampled config must be valid");
        let input = rand_input(&net, input_seed);
        let plain = SubgraphCache::build(&net, &store, &sn.graph).expect("unfused cache");
        let fused = SubgraphCache::build_fused(&net, &store, &sn).expect("fused cache");
        let dpe = DpeArray::new(4, 4);
        let mut arena = Arena::new();
        let a = forward_cached(&dpe, &net, &store, &sn, Some(&plain), &mut arena, &input)
            .expect("unfused forward");
        let b = forward_cached(&dpe, &net, &store, &sn, Some(&fused), &mut arena, &input)
            .expect("fused forward");
        prop_assert_eq!(a.logits, b.logits);
    }
}
