//! Install-time determinism of the IR pipeline — the contract CI's
//! `ir-smoke` step rides on: lowering the same SubNet twice (graph build →
//! rewrite fixpoint → plan) must yield byte-identical plans, and building
//! the fused cache twice must fuse the same layers. Nondeterminism here
//! would make cache installs unreproducible across replicas, breaking the
//! shared-cache serving model.

use sushi_accel::functional::SubgraphCache;
use sushi_wsnet::ir_build::build_plan;
use sushi_wsnet::{zoo, WeightStore};

/// The full zoo (paper-scale + toy): graph construction, the rewrite
/// engine's fixpoint, and slot allocation are all deterministic.
#[test]
fn lowering_the_full_zoo_twice_yields_identical_plans() {
    let nets = [
        zoo::toy_supernet(),
        zoo::toy_mobilenet_supernet(),
        zoo::resnet50_supernet(),
        zoo::mobilenet_v3_supernet(),
    ];
    for net in &nets {
        for (label, cfg) in [("max", net.max_config()), ("min", net.min_config())] {
            let sn = net.materialize(label, &cfg).expect("zoo config");
            let a = build_plan(net, &sn).expect("first lowering");
            let b = build_plan(net, &sn).expect("second lowering");
            assert_eq!(a, b, "{}/{label}: lowering is nondeterministic", net.name);
            assert!(!a.steps.is_empty());
        }
    }
}

/// Fused cache installs are reproducible: same net, same weights → the
/// same layers fused, the same plan driving the executor.
#[test]
fn building_the_fused_cache_twice_fuses_identically() {
    for (net, seed) in [(zoo::toy_supernet(), 7u64), (zoo::toy_mobilenet_supernet(), 8u64)] {
        let store = WeightStore::synthesize(&net, seed);
        let sn = net.materialize("max", &net.max_config()).expect("max config");
        let a = SubgraphCache::build_fused(&net, &store, &sn).expect("first install");
        let b = SubgraphCache::build_fused(&net, &store, &sn).expect("second install");
        assert_eq!(a.fused_layers(), b.fused_layers(), "{}: fusion set drifted", net.name);
        assert!(a.fused_layers() > 0, "{}: nothing fused on the max config", net.name);
        assert_eq!(a.plan(), b.plan(), "{}: installed plans differ", net.name);
    }
}
