//! Pins the subgraph-stationary packing contract: installing a SubGraph
//! packs its weights exactly once, and no amount of serving under that
//! cache ever packs again — while logits stay bit-identical to the naive
//! (direct-loop) oracle.
//!
//! This test lives in its own integration binary because
//! [`sushi_tensor::ops::pack::pack_invocations`] is a process-global
//! counter: unit tests running concurrently in another binary's process
//! would make exact-count assertions racy.

use sushi_accel::dpe::DpeArray;
use sushi_accel::exec::Accelerator;
use sushi_accel::functional::{act_quant, forward, forward_cached, SubgraphCache};
use sushi_tensor::ops::pack::pack_invocations;
use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{Arena, DetRng, KernelPolicy, Shape4, Tensor};
use sushi_wsnet::layer::ConvKind;
use sushi_wsnet::{zoo, SuperNet, WeightStore};

fn rand_input(net: &SuperNet, seed: u64) -> Tensor<i8> {
    let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
    let mut rng = DetRng::new(seed);
    let f =
        Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect())
            .unwrap();
    quantize_tensor(&f, act_quant())
}

#[test]
fn install_packs_exactly_once_and_serving_never_repacks() {
    let net = zoo::toy_supernet();
    let store = WeightStore::synthesize(&net, 404);
    let sn = net.materialize("max", &net.max_config()).unwrap();
    let mut acc = Accelerator::new(sushi_accel::config::zcu104());

    // Install: weight packing happens here, once per dense active layer.
    let before_install = pack_invocations();
    acc.install_cache_with_weights(&net, sn.graph.clone(), &store).expect("PB present");
    let after_install = pack_invocations();
    let cache = acc.packed_weights().expect("packed at install");
    let dense_active = net
        .layers
        .iter()
        .enumerate()
        .filter(|(i, l)| l.kind == ConvKind::Dense && !sn.graph.slice(*i).is_empty())
        .count();
    assert_eq!(cache.packed_layers(), dense_active);
    assert_eq!(
        after_install - before_install,
        dense_active,
        "install must pack each dense active layer exactly once"
    );

    // The naive oracle (direct loops never pack anything).
    let dpe = DpeArray::new(8, 8);
    let x = rand_input(&net, 7);
    let naive =
        forward(&dpe.with_policy(KernelPolicy::Naive), &net, &store, &sn, &x).expect("oracle");
    assert_eq!(pack_invocations(), after_install, "the naive oracle must not pack");

    // Steady state: timing serves + functional forwards through the
    // installed panels. Zero further packs; logits bit-identical to naive.
    let mut arena = Arena::new();
    for round in 0..4 {
        let _ = acc.serve(&net, &sn);
        let _ = acc.serve_batch(&net, &sn, 3);
        let cache = acc.packed_weights().expect("cache survives serving");
        let out = forward_cached(&dpe, &net, &store, &sn, Some(cache), &mut arena, &x)
            .expect("cached forward");
        assert_eq!(out, naive, "round {round}: cached serving changed the logits");
    }
    assert_eq!(pack_invocations(), after_install, "serving must never repack weights");

    // Re-installing the resident SubGraph is free: no reload, no re-pack.
    acc.install_cache_with_weights(&net, sn.graph.clone(), &store).expect("PB present");
    assert_eq!(pack_invocations(), after_install, "re-install of resident SubGraph repacked");

    // Installing a *different* SubGraph packs again (once).
    let min_sn = net.materialize("min", &net.min_config()).unwrap();
    acc.install_cache_with_weights(&net, min_sn.graph.clone(), &store).expect("PB present");
    assert!(pack_invocations() > after_install, "new SubGraph must pack its own panels");
}

#[test]
fn cached_forward_rejects_mismatched_subgraph() {
    let net = zoo::toy_supernet();
    let store = WeightStore::synthesize(&net, 405);
    let max_sn = net.materialize("max", &net.max_config()).unwrap();
    let min_sn = net.materialize("min", &net.min_config()).unwrap();
    let cache = SubgraphCache::build(&net, &store, &min_sn.graph).unwrap();
    let err = forward_cached(
        &DpeArray::new(4, 4),
        &net,
        &store,
        &max_sn,
        Some(&cache),
        &mut Arena::new(),
        &rand_input(&net, 9),
    )
    .unwrap_err();
    assert!(format!("{err:?}").contains("different SubGraph"));
}
