//! Property-based tests for the accelerator simulator: timing invariants
//! and bit-exactness of the functional DPE schedule on random shapes.

use proptest::prelude::*;

use sushi_accel::config::zcu104;
use sushi_accel::dpe::DpeArray;
use sushi_accel::timing::layer_timing;
use sushi_tensor::ops::conv::{conv2d_i8, Conv2dParams};
use sushi_tensor::{DetRng, QuantParams, Shape4, Tensor};
use sushi_wsnet::layer::{ConvKind, ConvLayerDesc, LayerId, LayerRole, LayerSlice};

fn layer_strategy() -> impl Strategy<Value = (ConvLayerDesc, LayerSlice)> {
    (
        prop_oneof![Just(ConvKind::Dense), Just(ConvKind::Depthwise)],
        8usize..256,
        8usize..256,
        prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        2usize..32,
        1usize..=2,
    )
        .prop_map(|(kind, k, c, ks, hw, stride)| {
            let (c, ks) = match kind {
                ConvKind::Dense => (c, ks),
                ConvKind::Depthwise => (1, ks.max(3)),
            };
            let layer = ConvLayerDesc {
                id: LayerId(0),
                name: "prop".into(),
                stage: 0,
                block: 0,
                role: LayerRole::Spatial,
                kind,
                max_kernels: k,
                max_channels: c,
                max_kernel_size: ks,
                elastic_kernel: false,
                stride,
                in_h: hw,
                in_w: hw,
            };
            let slice = LayerSlice::new(k, c, ks);
            (layer, slice)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Weight traffic is conserved: PB hits + off-chip fetches always equal
    /// the slice's total weight bytes, for any partial cache.
    #[test]
    fn weight_traffic_is_conserved(
        (layer, slice) in layer_strategy(),
        cache_k_frac in 0.0f64..1.2,
        cache_c_frac in 0.0f64..1.2,
    ) {
        let cfg = zcu104();
        let cached = LayerSlice::new(
            (slice.kernels as f64 * cache_k_frac) as usize,
            (slice.channels as f64 * cache_c_frac).max(1.0) as usize,
            slice.kernel_size,
        );
        let t = layer_timing(&cfg, &layer, &slice, &cached);
        prop_assert_eq!(
            t.traffic.offchip_weights + t.traffic.pb_weights,
            layer.weight_bytes(&slice)
        );
    }

    /// Caching any SubGraph slice never increases a layer's latency.
    #[test]
    fn caching_never_hurts((layer, slice) in layer_strategy(), frac in 0.0f64..1.0) {
        let cfg = zcu104();
        let cached = LayerSlice::new(
            (slice.kernels as f64 * frac) as usize,
            slice.channels,
            slice.kernel_size,
        );
        let cold = layer_timing(&cfg, &layer, &slice, &LayerSlice::empty()).cycles.total();
        let warm = layer_timing(&cfg, &layer, &slice, &cached).cycles.total();
        prop_assert!(warm <= cold, "warm {warm} > cold {cold} (frac {frac})");
    }

    /// Latency is monotone in bandwidth: doubling effective bandwidth never
    /// slows a layer down.
    #[test]
    fn more_bandwidth_never_hurts((layer, slice) in layer_strategy()) {
        let slow = zcu104();
        let mut fast = zcu104();
        fast.effective_bw_fraction *= 2.0;
        let t_slow = layer_timing(&slow, &layer, &slice, &LayerSlice::empty()).cycles.total();
        let t_fast = layer_timing(&fast, &layer, &slice, &LayerSlice::empty()).cycles.total();
        prop_assert!(t_fast <= t_slow);
    }

    /// Latency is monotone in the slice: activating fewer kernels can only
    /// be as fast or faster.
    #[test]
    fn smaller_slices_are_not_slower((layer, slice) in layer_strategy(), frac in 0.1f64..1.0) {
        let cfg = zcu104();
        let smaller = LayerSlice::new(
            ((slice.kernels as f64 * frac) as usize).max(1),
            slice.channels,
            slice.kernel_size,
        );
        let full = layer_timing(&cfg, &layer, &slice, &LayerSlice::empty()).cycles.total();
        let part = layer_timing(&cfg, &layer, &smaller, &LayerSlice::empty()).cycles.total();
        prop_assert!(part <= full);
    }

    /// The critical path is at least the pure-compute lower bound and at
    /// least the unhidden-fetch lower bound when nothing is cached.
    #[test]
    fn critical_path_lower_bounds((layer, slice) in layer_strategy()) {
        let cfg = zcu104();
        let t = layer_timing(&cfg, &layer, &slice, &LayerSlice::empty());
        let compute = sushi_accel::timing::compute_cycles(&layer, &slice, cfg.kp, cfg.cp);
        prop_assert!(t.cycles.total() >= compute);
    }

    /// The functional DPE schedule is bit-exact against the reference conv
    /// for random shapes, zero points and array geometries.
    #[test]
    fn dpe_matches_reference_conv(
        kp in 1usize..8,
        cp in 1usize..8,
        k in 1usize..10,
        c in 1usize..10,
        hw in 3usize..8,
        ks in prop_oneof![Just(1usize), Just(3usize)],
        stride in 1usize..=2,
        zp_in in -20i8..20,
        zp_w in -20i8..20,
        seed in 0u64..10_000,
    ) {
        let ishape = Shape4::new(1, c, hw, hw);
        let wshape = Shape4::new(k, c, ks, ks);
        let mut rng = DetRng::new(seed);
        let x = Tensor::from_vec(ishape, (0..ishape.volume()).map(|_| rng.next_i8()).collect()).unwrap();
        let w = Tensor::from_vec(wshape, (0..wshape.volume()).map(|_| rng.next_i8()).collect()).unwrap();
        let in_q = QuantParams::new(0.05, zp_in);
        let w_q = QuantParams::new(0.02, zp_w);
        let out_q = QuantParams::new(0.4, 0);
        let params = Conv2dParams::new(ks, ks).with_stride(stride).with_padding(ks / 2);
        let reference = conv2d_i8(&x, in_q, &w, w_q, None, out_q, &params).unwrap();
        let dpe = DpeArray::new(kp, cp).conv2d_i8(&x, in_q, &w, w_q, None, out_q, &params).unwrap();
        prop_assert_eq!(reference, dpe);
    }

    /// Depthwise DPE schedule is also bit-exact.
    #[test]
    fn dpe_matches_reference_depthwise(
        kp in 1usize..6,
        k in 1usize..12,
        hw in 4usize..9,
        ks in prop_oneof![Just(3usize), Just(5usize)],
        seed in 0u64..10_000,
    ) {
        let ishape = Shape4::new(1, k, hw, hw);
        let wshape = Shape4::new(k, 1, ks, ks);
        let mut rng = DetRng::new(seed);
        let x = Tensor::from_vec(ishape, (0..ishape.volume()).map(|_| rng.next_i8()).collect()).unwrap();
        let w = Tensor::from_vec(wshape, (0..wshape.volume()).map(|_| rng.next_i8()).collect()).unwrap();
        let q = QuantParams::new(0.03, 5);
        let params = Conv2dParams::new(ks, ks).with_padding(ks / 2).with_groups(k);
        let reference = conv2d_i8(&x, q, &w, q, None, q, &params).unwrap();
        let dpe = DpeArray::new(kp, 3).conv2d_i8(&x, q, &w, q, None, q, &params).unwrap();
        prop_assert_eq!(reference, dpe);
    }
}
