//! Property-based pinning of batched-execution equivalence: for random
//! SubNets, batch sizes, inputs and kernel policies, the batched functional
//! forward returns logits bit-identical to per-query forwards.
//!
//! This is the serving layer's license to batch: dynamic batching (and the
//! `KernelPolicy` the executor runs under) may change *when* work executes,
//! never *what* it computes.

use proptest::prelude::*;

use sushi_accel::dpe::DpeArray;
use sushi_accel::functional::{act_quant, forward, forward_batch};
use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{DetRng, KernelPolicy, Shape4, Tensor};
use sushi_wsnet::sampler::ConfigSampler;
use sushi_wsnet::zoo;
use sushi_wsnet::{SuperNet, WeightStore};

fn rand_input(net: &SuperNet, seed: u64) -> Tensor<i8> {
    let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
    let mut rng = DetRng::new(seed);
    let f =
        Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect())
            .expect("shape matches");
    quantize_tensor(&f, act_quant())
}

fn policy_strategy() -> impl Strategy<Value = KernelPolicy> {
    prop_oneof![Just(KernelPolicy::Naive), Just(KernelPolicy::Im2colGemm), Just(KernelPolicy::Auto),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched == unbatched logits on random toy-ResNet SubNets, for every
    /// kernel policy and batch size.
    #[test]
    fn batched_forward_equals_unbatched_resnet(
        subnet_seed in 0u64..1_000,
        input_seed in 0u64..1_000,
        batch in 1usize..5,
        policy in policy_strategy(),
    ) {
        let net = zoo::toy_supernet();
        let store = WeightStore::synthesize(&net, subnet_seed ^ 0xAB);
        let sn = ConfigSampler::new(&net, subnet_seed).sample_subnets(1).remove(0);
        let dpe = DpeArray::new(4, 4).with_policy(policy);
        let inputs: Vec<Tensor<i8>> =
            (0..batch).map(|i| rand_input(&net, input_seed ^ (i as u64) << 7)).collect();
        let batched = forward_batch(&dpe, &net, &store, &sn, &inputs).expect("batched forward");
        prop_assert_eq!(batched.len(), batch);
        for (input, out) in inputs.iter().zip(&batched) {
            let single = forward(&dpe, &net, &store, &sn, input).expect("single forward");
            prop_assert_eq!(&single, out);
        }
    }

    /// Same property on the toy MobileNet (depthwise + squeeze-excite +
    /// h-swish paths, which exercise the batched SE gating).
    #[test]
    fn batched_forward_equals_unbatched_mobilenet(
        subnet_seed in 0u64..1_000,
        input_seed in 0u64..1_000,
        batch in 1usize..4,
        policy in policy_strategy(),
    ) {
        let net = zoo::toy_mobilenet_supernet();
        let store = WeightStore::synthesize(&net, subnet_seed ^ 0xCD);
        let sn = ConfigSampler::new(&net, subnet_seed).sample_subnets(1).remove(0);
        let dpe = DpeArray::new(4, 4).with_policy(policy);
        let inputs: Vec<Tensor<i8>> =
            (0..batch).map(|i| rand_input(&net, input_seed ^ (i as u64) << 9)).collect();
        let batched = forward_batch(&dpe, &net, &store, &sn, &inputs).expect("batched forward");
        for (input, out) in inputs.iter().zip(&batched) {
            let single = forward(&dpe, &net, &store, &sn, input).expect("single forward");
            prop_assert_eq!(&single, out);
        }
    }

    /// Kernel policy is irrelevant to batched results too: Naive and GEMM
    /// batched forwards agree bit-for-bit.
    #[test]
    fn batched_forward_is_policy_invariant(
        subnet_seed in 0u64..1_000,
        input_seed in 0u64..1_000,
        batch in 1usize..4,
    ) {
        let net = zoo::toy_supernet();
        let store = WeightStore::synthesize(&net, subnet_seed ^ 0xEF);
        let sn = ConfigSampler::new(&net, subnet_seed).sample_subnets(1).remove(0);
        let inputs: Vec<Tensor<i8>> =
            (0..batch).map(|i| rand_input(&net, input_seed ^ (i as u64) << 11)).collect();
        let naive = forward_batch(
            &DpeArray::new(4, 4).with_policy(KernelPolicy::Naive), &net, &store, &sn, &inputs,
        ).expect("naive batch");
        let gemm = forward_batch(
            &DpeArray::new(4, 4).with_policy(KernelPolicy::Im2colGemm), &net, &store, &sn, &inputs,
        ).expect("gemm batch");
        prop_assert_eq!(naive, gemm);
    }
}
