//! Pins the multi-worker packing contract: weight packing is driven by the
//! set of SubNets served — never by how many workers serve them — and
//! concurrent dispatch groups produce logits bit-identical to sequential
//! execution, at every worker count.
//!
//! Like `pack_once.rs`, this lives in its own integration binary because
//! [`sushi_tensor::ops::pack::pack_invocations`] is a process-global
//! counter: unit tests in the same process would make exact-count
//! assertions racy.

use sushi_accel::backend::{ExecutionBackend, ExecutionJob, Functional};
use sushi_accel::config::zcu104;
use sushi_accel::dpe::DpeArray;
use sushi_accel::exec::Accelerator;
use sushi_accel::functional::FunctionalOutput;
use sushi_tensor::ops::pack::pack_invocations;
use sushi_wsnet::{zoo, SubNet, SuperNet};

/// A fixed dispatch schedule: batches (subnet row, query ids) replayed
/// identically at every worker count — only the grouping changes.
fn schedule() -> Vec<(usize, Vec<u64>)> {
    vec![
        (0, vec![0, 1, 2]),
        (1, vec![3, 4]),
        (2, vec![5, 6, 7]),
        (0, vec![8]),
        (2, vec![9, 10]),
        (1, vec![11, 12, 13]),
        (0, vec![14, 15]),
        (1, vec![16]),
    ]
}

/// Replays the schedule through `execute_concurrent` in groups of up to
/// `workers` batches (batch `j` of a group on worker `j`), returning the
/// flattened per-query outputs in schedule order plus the pack delta.
fn run_with_workers(
    net: &SuperNet,
    picks: &[SubNet],
    workers: usize,
) -> (Vec<FunctionalOutput>, usize) {
    let mut backend = Functional::new(DpeArray::new(4, 4), net, 99);
    let mut accels: Vec<Accelerator> = (0..workers).map(|_| Accelerator::new(zcu104())).collect();
    let before = pack_invocations();
    let mut outputs = Vec::new();
    for group in schedule().chunks(workers) {
        let mut slots: Vec<Option<&mut Accelerator>> = accels.iter_mut().map(Some).collect();
        let mut jobs: Vec<ExecutionJob<'_>> = group
            .iter()
            .enumerate()
            .map(|(j, (row, ids))| ExecutionJob {
                worker: j,
                accel: slots[j].take().expect("distinct workers"),
                subnet: &picks[*row],
                query_ids: ids,
            })
            .collect();
        let execs = backend.execute_concurrent(net, &mut jobs).expect("group executes");
        for exec in execs {
            outputs.extend(exec.outputs.expect("functional outputs"));
        }
    }
    let stats = backend.memory_stats().expect("functional backend reports memory");
    assert_eq!(stats.packed_subnets, picks.len(), "every served SubNet packed exactly once");
    assert_eq!(stats.arena_workers, workers.min(schedule().len()));
    (outputs, pack_invocations() - before)
}

#[test]
fn pack_count_is_worker_count_independent_and_logits_are_bit_identical() {
    let net = zoo::toy_supernet();
    let picks = {
        let mut s = sushi_wsnet::sampler::ConfigSampler::new(&net, 5);
        s.sample_subnets(3)
    };

    let (base_outputs, base_packs) = run_with_workers(&net, &picks, 1);
    assert!(base_packs > 0, "the schedule must exercise the packing path");
    assert_eq!(base_outputs.len(), schedule().iter().map(|(_, ids)| ids.len()).sum::<usize>());

    for workers in [2, 4] {
        let (outputs, packs) = run_with_workers(&net, &picks, workers);
        assert_eq!(packs, base_packs, "{workers}-worker run packed differently than 1 worker");
        assert_eq!(
            outputs, base_outputs,
            "{workers}-worker logits drifted from the sequential run"
        );
    }
}
