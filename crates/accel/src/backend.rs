//! Pluggable execution backends: the seam between *what* the serving stack
//! decides and *how* a dispatched batch is executed.
//!
//! The SUSHI stack makes one kind of decision (which SubNet serves which
//! query, and which SubGraph the Persistent Buffer holds) but has two ways
//! of executing it:
//!
//! * [`Analytical`] — the cycle-approximate timing/energy model
//!   ([`Accelerator::serve_batch`]) behind every §5 experiment. Nothing
//!   numeric runs; full-size SuperNets simulate in microseconds.
//! * [`Functional`] — the same timing model *plus* the bit-exact packed
//!   int8 datapath ([`crate::functional::forward_batch_cached`]): every
//!   dispatched batch executes for real and records per-query predictions.
//!   Weights are sliced and panel-packed once per SubNet (the
//!   subgraph-stationary pack-once state) and all kernel scratch lives in
//!   one reused [`Arena`]. Intended for the toy zoo; full-size nets take
//!   seconds per forward.
//!
//! Both implement [`ExecutionBackend`], which the `sushi-core` engine
//! dispatches through — per serving-stack worker, against that worker's own
//! [`Accelerator`] replica (its Persistent-Buffer state), so the timing
//! semantics are identical across backends and only the presence of real
//! outputs differs.

use std::collections::HashMap;
use std::fmt;

use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{Arena, DetRng, Shape4, Tensor, TensorError};
use sushi_wsnet::{SubNet, SuperNet, WeightStore};

use crate::dpe::DpeArray;
use crate::exec::{Accelerator, BatchReport};
use crate::functional::{act_quant, forward_batch_cached, FunctionalOutput, SubgraphCache};

/// Failures raised by an [`ExecutionBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BackendError {
    /// A batch with zero queries was dispatched.
    EmptyBatch,
    /// The SubNet does not belong to the SuperNet being served.
    SubnetMismatch {
        /// Layer count of the offending SubNet.
        subnet_layers: usize,
        /// Layer count of the SuperNet.
        net_layers: usize,
    },
    /// The functional datapath failed (weight packing or layer execution).
    Execution(TensorError),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::EmptyBatch => write!(f, "cannot execute an empty batch"),
            BackendError::SubnetMismatch { subnet_layers, net_layers } => {
                write!(f, "SubNet has {subnet_layers} layers but the SuperNet has {net_layers}")
            }
            BackendError::Execution(e) => write!(f, "functional datapath failed: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<TensorError> for BackendError {
    fn from(e: TensorError) -> Self {
        BackendError::Execution(e)
    }
}

/// What executing one batch produced: the accelerator's timing/energy
/// report, plus real per-query outputs when the backend runs the datapath.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct Execution {
    /// Batched timing/energy report (identical across backends).
    pub report: BatchReport,
    /// Per-query functional outputs, in query order (`None` for the
    /// analytical backend).
    pub outputs: Option<Vec<FunctionalOutput>>,
}

/// Execution-state memory footprint of a backend: the pack-once weight
/// caches plus reusable kernel scratch. The serving soak tests assert this
/// stays bounded over long runs (steady state allocates nothing per query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes the kernel-scratch [`Arena`] has reserved (high-water mark of
    /// one batch, reused by all later batches).
    pub arena_reserved_bytes: usize,
    /// SubNets whose weights have been sliced and panel-packed (each at
    /// most once, on first dispatch — bounded by the serving-set size).
    pub packed_subnets: usize,
}

/// How a dispatched batch of same-SubNet queries is executed.
///
/// The caller owns the [`Accelerator`] (one replica per serving worker, so
/// Persistent-Buffer state stays per-worker); the backend owns whatever
/// execution state it needs across batches (e.g. the functional backend's
/// pack-once weight caches). Timing flows through the accelerator either
/// way, so swapping backends never changes *when* things complete — only
/// whether real outputs exist.
pub trait ExecutionBackend: fmt::Debug {
    /// Stable backend label (used in reports and CLI flags).
    fn name(&self) -> &'static str;

    /// Executes `query_ids` (one batch, all resolved to `subnet`) on
    /// `accel`, advancing its timing state.
    ///
    /// # Errors
    /// Returns an error on an empty batch, a SubNet/SuperNet mismatch, or
    /// a functional datapath failure.
    fn execute_batch(
        &mut self,
        accel: &mut Accelerator,
        net: &SuperNet,
        subnet: &SubNet,
        query_ids: &[u64],
    ) -> Result<Execution, BackendError>;

    /// Memory held as execution state across batches (`None` for stateless
    /// backends like [`Analytical`]).
    fn memory_stats(&self) -> Option<MemoryStats> {
        None
    }
}

/// Checks the invariants shared by every backend before touching the
/// accelerator (whose own entry points panic on programmer error).
fn validate_batch(net: &SuperNet, subnet: &SubNet, query_ids: &[u64]) -> Result<(), BackendError> {
    if query_ids.is_empty() {
        return Err(BackendError::EmptyBatch);
    }
    if subnet.graph.num_layers() != net.num_layers() {
        return Err(BackendError::SubnetMismatch {
            subnet_layers: subnet.graph.num_layers(),
            net_layers: net.num_layers(),
        });
    }
    Ok(())
}

/// Timing-only execution through the analytic latency/energy model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Analytical;

impl ExecutionBackend for Analytical {
    fn name(&self) -> &'static str {
        "analytical"
    }

    fn execute_batch(
        &mut self,
        accel: &mut Accelerator,
        net: &SuperNet,
        subnet: &SubNet,
        query_ids: &[u64],
    ) -> Result<Execution, BackendError> {
        validate_batch(net, subnet, query_ids)?;
        Ok(Execution { report: accel.serve_batch(net, subnet, query_ids.len()), outputs: None })
    }
}

/// Real-datapath execution: the analytic timing model *plus* bit-exact
/// packed int8 forwards for every dispatched batch.
///
/// Synthesizes a deterministic input per query id and executes whole
/// batches through [`forward_batch_cached`] under the backend's `DpeArray`
/// kernel policy. The backend is the serving stack's *subgraph-stationary*
/// software state: the first batch served under a SubNet builds its
/// [`SubgraphCache`] (sliced weights + packed GEMM panels); every later
/// batch under that SubNet reads the panels in place, and all kernel
/// scratch lives in one [`Arena`] reused across queries — the steady state
/// allocates nothing per query.
#[derive(Debug)]
pub struct Functional {
    dpe: DpeArray,
    store: WeightStore,
    input_seed: u64,
    caches: HashMap<String, SubgraphCache>,
    arena: Arena,
}

impl Functional {
    /// Creates a backend with synthesized weights for `net`.
    #[must_use]
    pub fn new(dpe: DpeArray, net: &SuperNet, seed: u64) -> Self {
        Self {
            dpe,
            store: WeightStore::synthesize(net, seed),
            input_seed: seed ^ 0x1A7E,
            caches: HashMap::new(),
            arena: Arena::new(),
        }
    }

    /// The synthesized weight store (shared across all SubNets).
    #[must_use]
    pub fn store(&self) -> &WeightStore {
        &self.store
    }

    /// Number of SubNets whose weights have been packed so far (each packed
    /// exactly once, on first dispatch).
    #[must_use]
    pub fn packed_subnets(&self) -> usize {
        self.caches.len()
    }

    /// The deterministic input tensor for a query id.
    #[must_use]
    pub fn input_for(&self, net: &SuperNet, query_id: u64) -> Tensor<i8> {
        let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
        let mut rng = DetRng::new(self.input_seed ^ query_id.wrapping_mul(0x9E37_79B9));
        let f = Tensor::from_vec(
            shape,
            (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect(),
        )
        .expect("shape matches");
        quantize_tensor(&f, act_quant())
    }
}

impl ExecutionBackend for Functional {
    fn name(&self) -> &'static str {
        "functional"
    }

    fn execute_batch(
        &mut self,
        accel: &mut Accelerator,
        net: &SuperNet,
        subnet: &SubNet,
        query_ids: &[u64],
    ) -> Result<Execution, BackendError> {
        validate_batch(net, subnet, query_ids)?;
        let inputs: Vec<Tensor<i8>> = query_ids.iter().map(|&id| self.input_for(net, id)).collect();
        let Self { dpe, store, caches, arena, .. } = self;
        if !caches.get(&subnet.name).is_some_and(|c| c.matches(&subnet.graph)) {
            // First dispatch under this SubNet (or same name, different
            // SubGraph — defensive): slice + pack once.
            let cache = SubgraphCache::build(net, store, &subnet.graph)?;
            caches.insert(subnet.name.clone(), cache);
        }
        let cache = caches.get(&subnet.name);
        let outputs = forward_batch_cached(dpe, net, store, subnet, cache, arena, &inputs)?;
        Ok(Execution {
            report: accel.serve_batch(net, subnet, query_ids.len()),
            outputs: Some(outputs),
        })
    }

    fn memory_stats(&self) -> Option<MemoryStats> {
        Some(MemoryStats {
            arena_reserved_bytes: self.arena.reserved_bytes(),
            packed_subnets: self.caches.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::zcu104;
    use crate::functional::forward;
    use sushi_wsnet::zoo;

    fn toy_setup() -> (SuperNet, Vec<SubNet>) {
        let net = zoo::toy_supernet();
        let picks = {
            let mut s = sushi_wsnet::sampler::ConfigSampler::new(&net, 5);
            s.sample_subnets(3)
        };
        (net, picks)
    }

    #[test]
    fn analytical_matches_serve_batch_and_has_no_outputs() {
        let (net, picks) = toy_setup();
        let mut a = Accelerator::new(zcu104());
        let mut b = Accelerator::new(zcu104());
        let expect = a.serve_batch(&net, &picks[0], 3);
        let exec = Analytical.execute_batch(&mut b, &net, &picks[0], &[0, 1, 2]).unwrap();
        assert_eq!(exec.report, expect);
        assert!(exec.outputs.is_none());
        assert_eq!(Analytical.name(), "analytical");
    }

    #[test]
    fn empty_batch_is_an_error_not_a_panic() {
        let (net, picks) = toy_setup();
        let mut accel = Accelerator::new(zcu104());
        let err = Analytical.execute_batch(&mut accel, &net, &picks[0], &[]).unwrap_err();
        assert_eq!(err, BackendError::EmptyBatch);
        let mut func = Functional::new(DpeArray::new(2, 2), &net, 7);
        let err = func.execute_batch(&mut accel, &net, &picks[0], &[]).unwrap_err();
        assert_eq!(err, BackendError::EmptyBatch);
    }

    #[test]
    fn subnet_mismatch_is_an_error() {
        let (net, _) = toy_setup();
        let other = zoo::toy_mobilenet_supernet();
        let foreign = other.materialize("max", &other.max_config()).unwrap();
        let mut accel = Accelerator::new(zcu104());
        let err = Analytical.execute_batch(&mut accel, &net, &foreign, &[0]).unwrap_err();
        assert!(matches!(err, BackendError::SubnetMismatch { .. }));
    }

    #[test]
    fn functional_outputs_match_single_query_forwards_and_pack_once() {
        let (net, picks) = toy_setup();
        let mut accel = Accelerator::new(zcu104());
        let mut backend = Functional::new(DpeArray::new(4, 4), &net, 77);
        let exec = backend.execute_batch(&mut accel, &net, &picks[0], &[0, 1, 2]).unwrap();
        let outs = exec.outputs.expect("functional outputs");
        assert_eq!(outs.len(), 3);
        assert_eq!(backend.packed_subnets(), 1, "first dispatch packs the SubNet once");
        let again = backend.execute_batch(&mut accel, &net, &picks[0], &[0, 1, 2]).unwrap();
        assert_eq!(again.outputs.as_deref(), Some(&outs[..]));
        assert_eq!(backend.packed_subnets(), 1);
        for (&id, out) in [0u64, 1, 2].iter().zip(&outs) {
            let single = forward(
                &DpeArray::new(4, 4),
                &net,
                backend.store(),
                &picks[0],
                &backend.input_for(&net, id),
            )
            .unwrap();
            assert_eq!(&single, out);
        }
    }

    #[test]
    fn memory_stats_are_bounded_and_absent_for_analytical() {
        let (net, picks) = toy_setup();
        assert_eq!(Analytical.memory_stats(), None);
        let mut accel = Accelerator::new(zcu104());
        let mut backend = Functional::new(DpeArray::new(4, 4), &net, 3);
        assert_eq!(backend.memory_stats(), Some(MemoryStats::default()));
        let _ = backend.execute_batch(&mut accel, &net, &picks[0], &[0, 1]).unwrap();
        let after_first = backend.memory_stats().unwrap();
        assert!(after_first.arena_reserved_bytes > 0);
        assert_eq!(after_first.packed_subnets, 1);
        // Steady state: re-dispatching the same SubNet grows nothing.
        for _ in 0..4 {
            let _ = backend.execute_batch(&mut accel, &net, &picks[0], &[2, 3]).unwrap();
        }
        assert_eq!(backend.memory_stats(), Some(after_first));
    }

    #[test]
    fn backends_agree_on_timing() {
        let (net, picks) = toy_setup();
        let mut a = Accelerator::new(zcu104());
        let mut f = Accelerator::new(zcu104());
        let ana = Analytical.execute_batch(&mut a, &net, &picks[1], &[4, 5]).unwrap();
        let mut backend = Functional::new(DpeArray::new(2, 2), &net, 9);
        let fun = backend.execute_batch(&mut f, &net, &picks[1], &[4, 5]).unwrap();
        assert_eq!(ana.report, fun.report, "backends must agree on simulated timing");
    }
}
