//! Pluggable execution backends: the seam between *what* the serving stack
//! decides and *how* a dispatched batch is executed.
//!
//! The SUSHI stack makes one kind of decision (which SubNet serves which
//! query, and which SubGraph the Persistent Buffer holds) but has two ways
//! of executing it:
//!
//! * [`Analytical`] — the cycle-approximate timing/energy model
//!   ([`Accelerator::serve_batch`]) behind every §5 experiment. Nothing
//!   numeric runs; full-size SuperNets simulate in microseconds.
//! * [`Functional`] — the same timing model *plus* the bit-exact packed
//!   int8 datapath ([`crate::functional::forward_batch_cached`]): every
//!   dispatched batch executes for real and records per-query predictions.
//!   Weights are sliced and panel-packed once per SubNet (the
//!   subgraph-stationary pack-once state, shared across workers behind
//!   `Arc` — panels are immutable after the build) while kernel scratch
//!   stays private: one reused [`Arena`] per worker. Intended for the toy
//!   zoo; full-size nets take seconds per forward.
//!
//! Both implement [`ExecutionBackend`], which the `sushi-core` engine
//! dispatches through — per serving-stack worker, against that worker's own
//! [`Accelerator`] replica (its Persistent-Buffer state), so the timing
//! semantics are identical across backends and only the presence of real
//! outputs differs. Batches dispatched to *different* workers at the same
//! simulated instant go through [`ExecutionBackend::execute_concurrent`];
//! the functional backend runs them as real parallel int8 forwards under
//! [`std::thread::scope`], all reading the same pack-once caches.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{Arena, DetRng, Shape4, Tensor, TensorError};
use sushi_wsnet::{SubNet, SuperNet, WeightStore};

use crate::dpe::DpeArray;
use crate::exec::{Accelerator, BatchReport};
use crate::functional::{act_quant, forward_batch_cached, FunctionalOutput, SubgraphCache};

/// Failures raised by an [`ExecutionBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BackendError {
    /// A batch with zero queries was dispatched.
    EmptyBatch,
    /// The SubNet does not belong to the SuperNet being served.
    SubnetMismatch {
        /// Layer count of the offending SubNet.
        subnet_layers: usize,
        /// Layer count of the SuperNet.
        net_layers: usize,
    },
    /// The functional datapath failed (weight packing or layer execution).
    Execution(TensorError),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::EmptyBatch => write!(f, "cannot execute an empty batch"),
            BackendError::SubnetMismatch { subnet_layers, net_layers } => {
                write!(f, "SubNet has {subnet_layers} layers but the SuperNet has {net_layers}")
            }
            BackendError::Execution(e) => write!(f, "functional datapath failed: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<TensorError> for BackendError {
    fn from(e: TensorError) -> Self {
        BackendError::Execution(e)
    }
}

/// What executing one batch produced: the accelerator's timing/energy
/// report, plus real per-query outputs when the backend runs the datapath.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct Execution {
    /// Batched timing/energy report (identical across backends).
    pub report: BatchReport,
    /// Per-query functional outputs, in query order (`None` for the
    /// analytical backend).
    pub outputs: Option<Vec<FunctionalOutput>>,
}

/// Execution-state memory footprint of a backend: the pack-once weight
/// caches plus reusable kernel scratch. The serving soak tests assert this
/// stays bounded over long runs (steady state allocates nothing per query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Bytes reserved by the per-worker kernel-scratch [`Arena`]s, summed
    /// over workers (each arena holds the high-water mark of one batch,
    /// reused by all later batches on that worker).
    pub arena_reserved_bytes: usize,
    /// SubNets whose weights have been sliced and panel-packed (each at
    /// most once, on first dispatch — bounded by the serving-set size).
    /// Packed panels are shared by every worker, so they are counted once
    /// here no matter how many replicas read them.
    pub packed_subnets: usize,
    /// Workers that have materialized a private scratch arena (grown
    /// lazily on first dispatch to that worker index).
    pub arena_workers: usize,
}

/// One worker's slice of a concurrent dispatch group: a same-SubNet batch
/// bound to the worker's own [`Accelerator`] replica.
///
/// Worker indices within one group must be distinct — each names the
/// private scratch arena the batch executes with.
#[derive(Debug)]
pub struct ExecutionJob<'a> {
    /// Worker (replica) index executing this batch.
    pub worker: usize,
    /// That worker's accelerator (Persistent-Buffer + timing state).
    pub accel: &'a mut Accelerator,
    /// The SubNet every query in the batch resolved to.
    pub subnet: &'a SubNet,
    /// The batched query ids.
    pub query_ids: &'a [u64],
}

/// How a dispatched batch of same-SubNet queries is executed.
///
/// The caller owns the [`Accelerator`] (one replica per serving worker, so
/// Persistent-Buffer state stays per-worker); the backend owns whatever
/// execution state it needs across batches (e.g. the functional backend's
/// pack-once weight caches). Timing flows through the accelerator either
/// way, so swapping backends never changes *when* things complete — only
/// whether real outputs exist.
pub trait ExecutionBackend: fmt::Debug {
    /// Stable backend label (used in reports and CLI flags).
    fn name(&self) -> &'static str;

    /// Executes `query_ids` (one batch, all resolved to `subnet`) on
    /// `accel`, advancing its timing state.
    ///
    /// # Errors
    /// Returns an error on an empty batch, a SubNet/SuperNet mismatch, or
    /// a functional datapath failure.
    fn execute_batch(
        &mut self,
        accel: &mut Accelerator,
        net: &SuperNet,
        subnet: &SubNet,
        query_ids: &[u64],
    ) -> Result<Execution, BackendError>;

    /// Executes a group of batches dispatched to distinct workers at the
    /// same simulated instant, returning one [`Execution`] per job in job
    /// order.
    ///
    /// The default runs the jobs sequentially through
    /// [`ExecutionBackend::execute_batch`] — correct for any backend, and
    /// all the timing-only [`Analytical`] backend needs (simulated time is
    /// advanced per-worker either way). [`Functional`] overrides it to run
    /// the real int8 forwards concurrently. Results are independent of the
    /// execution interleaving by construction, so both paths produce
    /// bit-identical outputs.
    ///
    /// # Errors
    /// Returns the first per-batch failure (empty batch, SubNet mismatch,
    /// datapath error), checked in job order.
    fn execute_concurrent(
        &mut self,
        net: &SuperNet,
        jobs: &mut [ExecutionJob<'_>],
    ) -> Result<Vec<Execution>, BackendError> {
        jobs.iter_mut()
            .map(|job| self.execute_batch(job.accel, net, job.subnet, job.query_ids))
            .collect()
    }

    /// Memory held as execution state across batches (`None` for stateless
    /// backends like [`Analytical`]).
    fn memory_stats(&self) -> Option<MemoryStats> {
        None
    }
}

/// Checks the invariants shared by every backend before touching the
/// accelerator (whose own entry points panic on programmer error).
fn validate_batch(net: &SuperNet, subnet: &SubNet, query_ids: &[u64]) -> Result<(), BackendError> {
    if query_ids.is_empty() {
        return Err(BackendError::EmptyBatch);
    }
    if subnet.graph.num_layers() != net.num_layers() {
        return Err(BackendError::SubnetMismatch {
            subnet_layers: subnet.graph.num_layers(),
            net_layers: net.num_layers(),
        });
    }
    Ok(())
}

/// Timing-only execution through the analytic latency/energy model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Analytical;

impl ExecutionBackend for Analytical {
    fn name(&self) -> &'static str {
        "analytical"
    }

    fn execute_batch(
        &mut self,
        accel: &mut Accelerator,
        net: &SuperNet,
        subnet: &SubNet,
        query_ids: &[u64],
    ) -> Result<Execution, BackendError> {
        validate_batch(net, subnet, query_ids)?;
        Ok(Execution { report: accel.serve_batch(net, subnet, query_ids.len()), outputs: None })
    }
}

/// Real-datapath execution: the analytic timing model *plus* bit-exact
/// packed int8 forwards for every dispatched batch.
///
/// Synthesizes a deterministic input per query id and executes whole
/// batches through [`forward_batch_cached`] under the backend's `DpeArray`
/// kernel policy. The backend is the serving stack's *subgraph-stationary*
/// software state: the first batch served under a SubNet builds its
/// [`SubgraphCache`] (sliced weights + packed GEMM panels) exactly once;
/// every later batch under that SubNet reads the panels in place. The
/// caches are `Arc`-shared — panels are immutable after the build, so any
/// number of workers read one pack-once copy concurrently
/// ([`ExecutionBackend::execute_concurrent`]) while each worker owns a
/// private scratch [`Arena`] reused across its queries — the steady state
/// allocates nothing per query, and
/// [`sushi_tensor::ops::pack::pack_invocations`] is independent of worker
/// count.
#[derive(Debug)]
pub struct Functional {
    dpe: DpeArray,
    store: WeightStore,
    input_seed: u64,
    /// Whether cache installs lower the SubNet IR and fuse conv epilogues
    /// onto the k-pair datapath (on by default; logits are bit-identical
    /// either way).
    fusion: bool,
    caches: HashMap<String, Arc<SubgraphCache>>,
    /// Per-worker scratch, grown lazily to the highest worker index seen
    /// (`arenas[w]` is worker `w`'s private arena).
    arenas: Vec<Arena>,
    /// Times an existing cache entry was rebuilt because the same SubNet
    /// name arrived with a different SubGraph (first-time packs excluded).
    repacks: usize,
}

impl Functional {
    /// Creates a backend with synthesized weights for `net`. IR fusion is
    /// on by default; see [`Functional::with_fusion`].
    #[must_use]
    pub fn new(dpe: DpeArray, net: &SuperNet, seed: u64) -> Self {
        Self {
            dpe,
            store: WeightStore::synthesize(net, seed),
            input_seed: seed ^ 0x1A7E,
            fusion: true,
            caches: HashMap::new(),
            arenas: Vec::new(),
            repacks: 0,
        }
    }

    /// Enables or disables install-time IR fusion. With fusion off, cache
    /// installs use [`SubgraphCache::build`] and queries run the per-layer
    /// interpreter — the pre-IR datapath, bit for bit.
    #[must_use]
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Builds (or reuses) the shared pack-once cache for `subnet`.
    ///
    /// Packing happens here, on the dispatching thread, *before* any
    /// worker fans out — so the pack count depends only on the set of
    /// SubNets served, never on how many workers serve them.
    fn ensure_cache(
        &mut self,
        net: &SuperNet,
        subnet: &SubNet,
    ) -> Result<Arc<SubgraphCache>, BackendError> {
        if !self.caches.get(&subnet.name).is_some_and(|c| c.matches(&subnet.graph)) {
            // First dispatch under this SubNet (or same name, different
            // SubGraph — defensive): slice + pack once (plus the IR
            // lowering and k-pair pack when fusion is on).
            let cache = if self.fusion {
                SubgraphCache::build_fused(net, &self.store, subnet)?
            } else {
                SubgraphCache::build(net, &self.store, &subnet.graph)?
            };
            if self.caches.insert(subnet.name.clone(), Arc::new(cache)).is_some() {
                self.repacks += 1;
            }
        }
        Ok(Arc::clone(&self.caches[&subnet.name]))
    }

    /// The private scratch arena for worker `worker`, growing the
    /// per-worker set if this index has not executed before.
    fn arena_for(&mut self, worker: usize) -> &mut Arena {
        if self.arenas.len() <= worker {
            self.arenas.resize_with(worker + 1, Arena::new);
        }
        &mut self.arenas[worker]
    }

    /// The synthesized weight store (shared across all SubNets).
    #[must_use]
    pub fn store(&self) -> &WeightStore {
        &self.store
    }

    /// Number of SubNets whose weights have been packed so far (each packed
    /// exactly once, on first dispatch).
    #[must_use]
    pub fn packed_subnets(&self) -> usize {
        self.caches.len()
    }

    /// Times a cache entry was *re*built — the same SubNet name served
    /// with a different SubGraph after its first pack. Zero in healthy
    /// serving (names are stable); nonzero flags a zoo whose SubNet
    /// identities churn, each churn paying a full slice + pack.
    #[must_use]
    pub fn repacks(&self) -> usize {
        self.repacks
    }

    /// The deterministic input tensor for a query id.
    #[must_use]
    pub fn input_for(&self, net: &SuperNet, query_id: u64) -> Tensor<i8> {
        let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
        let mut rng = DetRng::new(self.input_seed ^ query_id.wrapping_mul(0x9E37_79B9));
        let f = Tensor::from_vec(
            shape,
            (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect(),
        )
        .expect("shape matches");
        quantize_tensor(&f, act_quant())
    }
}

impl ExecutionBackend for Functional {
    fn name(&self) -> &'static str {
        "functional"
    }

    fn execute_batch(
        &mut self,
        accel: &mut Accelerator,
        net: &SuperNet,
        subnet: &SubNet,
        query_ids: &[u64],
    ) -> Result<Execution, BackendError> {
        validate_batch(net, subnet, query_ids)?;
        let inputs: Vec<Tensor<i8>> = query_ids.iter().map(|&id| self.input_for(net, id)).collect();
        let cache = self.ensure_cache(net, subnet)?;
        // A lone batch executes on the dispatching thread with worker 0's
        // scratch; only concurrent groups fan out to per-worker arenas.
        let _ = self.arena_for(0);
        let Self { dpe, store, arenas, .. } = self;
        let outputs =
            forward_batch_cached(dpe, net, store, subnet, Some(&cache), &mut arenas[0], &inputs)?;
        Ok(Execution {
            report: accel.serve_batch(net, subnet, query_ids.len()),
            outputs: Some(outputs),
        })
    }

    fn execute_concurrent(
        &mut self,
        net: &SuperNet,
        jobs: &mut [ExecutionJob<'_>],
    ) -> Result<Vec<Execution>, BackendError> {
        // Validate, synthesize inputs, and build any missing caches
        // *serially* before fanning out: packing stays deterministic and
        // provably worker-count-independent, and every error surfaces in
        // job order.
        let mut prepared: Vec<(Arc<SubgraphCache>, Vec<Tensor<i8>>)> = Vec::new();
        for job in jobs.iter() {
            validate_batch(net, job.subnet, job.query_ids)?;
            let cache = self.ensure_cache(net, job.subnet)?;
            let inputs = job.query_ids.iter().map(|&id| self.input_for(net, id)).collect();
            prepared.push((cache, inputs));
        }
        let max_worker = jobs.iter().map(|j| j.worker).max().unwrap_or(0);
        let _ = self.arena_for(max_worker); // grow the per-worker set
        let mut arenas: Vec<Option<&mut Arena>> = self.arenas.iter_mut().map(Some).collect();
        let dpe = self.dpe;
        let store = &self.store;
        // One thread per job, each forwarding with its worker's private
        // arena; the shared caches are read-only behind Arc. Outputs are
        // per-query deterministic, so thread scheduling cannot change them.
        let forwards: Vec<Result<Vec<FunctionalOutput>, TensorError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .zip(&prepared)
                    .map(|(job, (cache, inputs))| {
                        let arena = arenas[job.worker]
                            .take()
                            .expect("dispatch group reuses a worker index");
                        let subnet = job.subnet;
                        scope.spawn(move || {
                            forward_batch_cached(
                                &dpe,
                                net,
                                store,
                                subnet,
                                Some(cache.as_ref()),
                                arena,
                                inputs,
                            )
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("forward thread panicked")).collect()
            });
        jobs.iter_mut()
            .zip(forwards)
            .map(|(job, outputs)| {
                Ok(Execution {
                    report: job.accel.serve_batch(net, job.subnet, job.query_ids.len()),
                    outputs: Some(outputs?),
                })
            })
            .collect()
    }

    fn memory_stats(&self) -> Option<MemoryStats> {
        Some(MemoryStats {
            arena_reserved_bytes: self.arenas.iter().map(Arena::reserved_bytes).sum(),
            packed_subnets: self.caches.len(),
            arena_workers: self.arenas.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::zcu104;
    use crate::functional::forward;
    use sushi_wsnet::zoo;

    fn toy_setup() -> (SuperNet, Vec<SubNet>) {
        let net = zoo::toy_supernet();
        let picks = {
            let mut s = sushi_wsnet::sampler::ConfigSampler::new(&net, 5);
            s.sample_subnets(3)
        };
        (net, picks)
    }

    #[test]
    fn analytical_matches_serve_batch_and_has_no_outputs() {
        let (net, picks) = toy_setup();
        let mut a = Accelerator::new(zcu104());
        let mut b = Accelerator::new(zcu104());
        let expect = a.serve_batch(&net, &picks[0], 3);
        let exec = Analytical.execute_batch(&mut b, &net, &picks[0], &[0, 1, 2]).unwrap();
        assert_eq!(exec.report, expect);
        assert!(exec.outputs.is_none());
        assert_eq!(Analytical.name(), "analytical");
    }

    #[test]
    fn empty_batch_is_an_error_not_a_panic() {
        let (net, picks) = toy_setup();
        let mut accel = Accelerator::new(zcu104());
        let err = Analytical.execute_batch(&mut accel, &net, &picks[0], &[]).unwrap_err();
        assert_eq!(err, BackendError::EmptyBatch);
        let mut func = Functional::new(DpeArray::new(2, 2), &net, 7);
        let err = func.execute_batch(&mut accel, &net, &picks[0], &[]).unwrap_err();
        assert_eq!(err, BackendError::EmptyBatch);
    }

    #[test]
    fn subnet_mismatch_is_an_error() {
        let (net, _) = toy_setup();
        let other = zoo::toy_mobilenet_supernet();
        let foreign = other.materialize("max", &other.max_config()).unwrap();
        let mut accel = Accelerator::new(zcu104());
        let err = Analytical.execute_batch(&mut accel, &net, &foreign, &[0]).unwrap_err();
        assert!(matches!(err, BackendError::SubnetMismatch { .. }));
    }

    #[test]
    fn functional_outputs_match_single_query_forwards_and_pack_once() {
        let (net, picks) = toy_setup();
        let mut accel = Accelerator::new(zcu104());
        let mut backend = Functional::new(DpeArray::new(4, 4), &net, 77);
        let exec = backend.execute_batch(&mut accel, &net, &picks[0], &[0, 1, 2]).unwrap();
        let outs = exec.outputs.expect("functional outputs");
        assert_eq!(outs.len(), 3);
        assert_eq!(backend.packed_subnets(), 1, "first dispatch packs the SubNet once");
        let again = backend.execute_batch(&mut accel, &net, &picks[0], &[0, 1, 2]).unwrap();
        assert_eq!(again.outputs.as_deref(), Some(&outs[..]));
        assert_eq!(backend.packed_subnets(), 1);
        for (&id, out) in [0u64, 1, 2].iter().zip(&outs) {
            let single = forward(
                &DpeArray::new(4, 4),
                &net,
                backend.store(),
                &picks[0],
                &backend.input_for(&net, id),
            )
            .unwrap();
            assert_eq!(&single, out);
        }
    }

    #[test]
    fn same_name_different_graph_counts_a_repack() {
        let (net, picks) = toy_setup();
        let mut accel = Accelerator::new(zcu104());
        let mut backend = Functional::new(DpeArray::new(4, 4), &net, 77);
        let _ = backend.execute_batch(&mut accel, &net, &picks[0], &[0]).unwrap();
        let _ = backend.execute_batch(&mut accel, &net, &picks[0], &[1]).unwrap();
        assert_eq!(backend.repacks(), 0, "stable identity never repacks");
        // Same name, a different SubGraph: the defensive rebuild path.
        let mut churned = picks[1].clone();
        churned.name = picks[0].name.clone();
        let _ = backend.execute_batch(&mut accel, &net, &churned, &[2]).unwrap();
        assert_eq!(backend.repacks(), 1, "identity churn pays a repack");
        assert_eq!(backend.packed_subnets(), 1, "the churned entry replaces, not adds");
    }

    #[test]
    fn memory_stats_are_bounded_and_absent_for_analytical() {
        let (net, picks) = toy_setup();
        assert_eq!(Analytical.memory_stats(), None);
        let mut accel = Accelerator::new(zcu104());
        let mut backend = Functional::new(DpeArray::new(4, 4), &net, 3);
        assert_eq!(backend.memory_stats(), Some(MemoryStats::default()));
        let _ = backend.execute_batch(&mut accel, &net, &picks[0], &[0, 1]).unwrap();
        let after_first = backend.memory_stats().unwrap();
        assert!(after_first.arena_reserved_bytes > 0);
        assert_eq!(after_first.packed_subnets, 1);
        // Steady state: re-dispatching the same SubNet grows nothing.
        for _ in 0..4 {
            let _ = backend.execute_batch(&mut accel, &net, &picks[0], &[2, 3]).unwrap();
        }
        assert_eq!(backend.memory_stats(), Some(after_first));
    }

    #[test]
    fn concurrent_group_matches_sequential_outputs_and_packs_once() {
        let (net, picks) = toy_setup();
        // Sequential oracle: the same batches, one at a time.
        let mut seq = Functional::new(DpeArray::new(4, 4), &net, 21);
        let mut oracle_accel = Accelerator::new(zcu104());
        let s0 = seq.execute_batch(&mut oracle_accel, &net, &picks[0], &[0, 1]).unwrap();
        let s1 = seq.execute_batch(&mut oracle_accel, &net, &picks[1], &[2, 3, 4]).unwrap();

        let mut par = Functional::new(DpeArray::new(4, 4), &net, 21);
        let mut accels = vec![Accelerator::new(zcu104()); 3];
        let mut it = accels.iter_mut();
        let (a0, a1, a2) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
        let mut jobs = vec![
            ExecutionJob { worker: 0, accel: a0, subnet: &picks[0], query_ids: &[0, 1] },
            ExecutionJob { worker: 1, accel: a1, subnet: &picks[1], query_ids: &[2, 3, 4] },
            ExecutionJob { worker: 2, accel: a2, subnet: &picks[0], query_ids: &[0, 1] },
        ];
        let execs = par.execute_concurrent(&net, &mut jobs).unwrap();
        assert_eq!(execs.len(), 3);
        assert_eq!(execs[0].outputs, s0.outputs, "worker 0 logits match sequential");
        assert_eq!(execs[1].outputs, s1.outputs, "worker 1 logits match sequential");
        assert_eq!(execs[2].outputs, s0.outputs, "two workers on one SubNet agree");
        assert_eq!(par.packed_subnets(), 2, "one shared pack per SubNet, not per worker");
        let stats = par.memory_stats().unwrap();
        assert_eq!(stats.arena_workers, 3, "each worker owns a private arena");
        assert_eq!(stats.packed_subnets, 2);
        assert!(stats.arena_reserved_bytes > 0);
    }

    #[test]
    fn backends_agree_on_timing() {
        let (net, picks) = toy_setup();
        let mut a = Accelerator::new(zcu104());
        let mut f = Accelerator::new(zcu104());
        let ana = Analytical.execute_batch(&mut a, &net, &picks[1], &[4, 5]).unwrap();
        let mut backend = Functional::new(DpeArray::new(2, 2), &net, 9);
        let fun = backend.execute_batch(&mut f, &net, &picks[1], &[4, 5]).unwrap();
        assert_eq!(ana.report, fun.report, "backends must agree on simulated timing");
    }
}
