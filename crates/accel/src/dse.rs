//! Design-space exploration (§5.3, Fig. 12).
//!
//! Sweeps the three main SushiAccel knobs — Persistent-Buffer size,
//! off-chip bandwidth, and DPE-array throughput — measuring the latency
//! saved by SGS caching ("Time Save %") when serving the paper's Pareto
//! SubNet sequence with the shared SubGraph cached.

use serde::{Deserialize, Serialize};

use sushi_wsnet::{SubNet, SuperNet};

use crate::config::AccelConfig;
use crate::exec::Accelerator;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// Persistent-Buffer capacity in MB.
    pub pb_mb: f64,
    /// Off-chip bandwidth in GB/s.
    pub bw_gbps: f64,
    /// DPE-array peak MACs/cycle.
    pub macs_per_cycle: u64,
    /// Mean per-query latency without the PB, in ms.
    pub latency_wo_pb_ms: f64,
    /// Mean per-query latency with the PB (steady-state), in ms.
    pub latency_w_pb_ms: f64,
}

impl DsePoint {
    /// Latency reduction from SGS caching, in percent.
    #[must_use]
    pub fn time_save_pct(&self) -> f64 {
        if self.latency_wo_pb_ms <= 0.0 {
            return 0.0;
        }
        100.0 * (self.latency_wo_pb_ms - self.latency_w_pb_ms) / self.latency_wo_pb_ms
    }
}

/// The swept axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseGrid {
    /// PB sizes in bytes.
    pub pb_bytes: Vec<u64>,
    /// Off-chip bandwidths in GB/s.
    pub bw_gbps: Vec<f64>,
    /// `(kp, cp)` array geometries.
    pub geometries: Vec<(usize, usize)>,
}

impl DseGrid {
    /// The Fig. 12 exploration grid around the ZCU104 design point.
    #[must_use]
    pub fn paper_grid() -> Self {
        Self {
            pb_bytes: vec![256 << 10, 512 << 10, 1024 << 10, 1728 << 10, 2560 << 10, 4096 << 10],
            bw_gbps: vec![4.8, 9.6, 19.2, 38.4],
            geometries: vec![(8, 9), (16, 18), (32, 18), (32, 36)],
        }
    }
}

/// Steady-state mean latency of serving `subnets` round-robin on `config`
/// with the given cache policy: `cache_shared == true` installs the shared
/// SubGraph (truncated to the PB) before serving; reload cost is excluded —
/// it amortizes to zero over a long stream.
fn mean_latency_ms(
    config: &AccelConfig,
    net: &SuperNet,
    subnets: &[SubNet],
    cache_shared: bool,
) -> f64 {
    let mut acc = Accelerator::new(config.clone());
    if cache_shared && config.buffers.has_pb() {
        let shared = net.shared_subgraph(subnets);
        acc.install_cache(net, shared);
        // Absorb the one-time reload outside the measured window.
        let _ = acc.serve(net, &subnets[0]);
    }
    let total: f64 = subnets.iter().map(|sn| acc.serve(net, sn).latency_ms).sum();
    total / subnets.len() as f64
}

/// Evaluates one design point.
#[must_use]
pub fn evaluate_point(
    base: &AccelConfig,
    net: &SuperNet,
    subnets: &[SubNet],
    pb_bytes: u64,
    bw_gbps: f64,
    geometry: (usize, usize),
) -> DsePoint {
    let mut cfg = base.with_pb_bytes(pb_bytes);
    cfg.offchip_gbps = bw_gbps;
    cfg.kp = geometry.0;
    cfg.cp = geometry.1;
    let with_pb = mean_latency_ms(&cfg, net, subnets, true);
    let without = mean_latency_ms(&cfg.without_pb(), net, subnets, false);
    DsePoint {
        pb_mb: pb_bytes as f64 / (1024.0 * 1024.0),
        bw_gbps,
        macs_per_cycle: cfg.peak_macs_per_cycle(),
        latency_wo_pb_ms: without,
        latency_w_pb_ms: with_pb,
    }
}

/// Sweeps the full grid, parallelized across design points.
#[must_use]
pub fn sweep(
    base: &AccelConfig,
    net: &SuperNet,
    subnets: &[SubNet],
    grid: &DseGrid,
) -> Vec<DsePoint> {
    let mut jobs = Vec::new();
    for &pb in &grid.pb_bytes {
        for &bw in &grid.bw_gbps {
            for &geo in &grid.geometries {
                jobs.push((pb, bw, geo));
            }
        }
    }
    std::thread::scope(|scope| {
        let workers =
            std::thread::available_parallelism().map_or(4, usize::from).min(jobs.len().max(1));
        let chunk = jobs.len().div_ceil(workers);
        let mut handles = Vec::new();
        for part in jobs.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                part.iter()
                    .map(|&(pb, bw, geo)| evaluate_point(base, net, subnets, pb, bw, geo))
                    .collect::<Vec<_>>()
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("DSE worker panicked")).collect::<Vec<_>>()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::zcu104;
    use sushi_wsnet::zoo;

    fn setup() -> (SuperNet, Vec<SubNet>) {
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        (net, picks)
    }

    #[test]
    fn larger_pb_saves_more_time() {
        let (net, picks) = setup();
        let base = zcu104();
        let small = evaluate_point(&base, &net, &picks, 256 << 10, 19.2, (16, 18));
        let large = evaluate_point(&base, &net, &picks, 4096 << 10, 19.2, (16, 18));
        assert!(
            large.time_save_pct() > small.time_save_pct(),
            "large {} !> small {}",
            large.time_save_pct(),
            small.time_save_pct()
        );
    }

    #[test]
    fn time_save_is_nonnegative_across_grid_sample() {
        let (net, picks) = setup();
        let base = zcu104();
        for &pb in &[512u64 << 10, 1728 << 10] {
            for &bw in &[9.6, 19.2] {
                let p = evaluate_point(&base, &net, &picks, pb, bw, (16, 18));
                assert!(p.time_save_pct() >= -0.5, "pb={pb} bw={bw}: {}", p.time_save_pct());
            }
        }
    }

    #[test]
    fn more_compute_increases_relative_benefit_of_caching() {
        // With more on-chip compute, layers become memory-bound, so removing
        // weight traffic matters more (Fig. 12's "more on-chip computation
        // -> latency improved" trend).
        let (net, picks) = setup();
        let base = zcu104();
        let small = evaluate_point(&base, &net, &picks, 1728 << 10, 9.6, (8, 9));
        let big = evaluate_point(&base, &net, &picks, 1728 << 10, 9.6, (32, 36));
        // At very low effective bandwidth both points are memory-bound, so
        // allow a small tolerance rather than strict monotonicity.
        assert!(
            big.time_save_pct() >= small.time_save_pct() - 0.5,
            "big {} vs small {}",
            big.time_save_pct(),
            small.time_save_pct()
        );
    }

    #[test]
    fn sweep_covers_whole_grid() {
        let (net, picks) = setup();
        let grid = DseGrid {
            pb_bytes: vec![512 << 10, 1728 << 10],
            bw_gbps: vec![19.2],
            geometries: vec![(16, 18)],
        };
        let points = sweep(&zcu104(), &net, &picks, &grid);
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn mobv3_gains_less_than_resnet50() {
        // §5.3.4: "the amount of improvement is lesser for MobV3 compared
        // with the ResNet50" at equal configurations.
        let r50 = zoo::resnet50_supernet();
        let r50_picks = zoo::paper_subnets(&r50);
        let mob = zoo::mobilenet_v3_supernet();
        let mob_picks = zoo::paper_subnets(&mob);
        let base = zcu104();
        let r = evaluate_point(&base, &r50, &r50_picks, 1024 << 10, 19.2, (16, 18));
        let m = evaluate_point(&base, &mob, &mob_picks, 1024 << 10, 19.2, (16, 18));
        // Compare absolute saved milliseconds: ResNet50 saves more.
        let r_saved = r.latency_wo_pb_ms - r.latency_w_pb_ms;
        let m_saved = m.latency_wo_pb_ms - m.latency_w_pb_ms;
        assert!(r_saved > m_saved, "R50 saved {r_saved} !> MobV3 saved {m_saved}");
    }
}
