//! Data-movement energy model.
//!
//! "Energy in data movement has been proved to dominate the entire power
//! consumption of neural network accelerators" (§5.4.3, citing Dally'20).
//! The paper estimates overall energy as `NumberAccess × EnergyPerAccess`
//! from profiled DRAM traffic; we do the same with configurable per-byte
//! costs (off-chip DRAM ≈ 66× on-chip SRAM, a standard 45nm-class ratio).

use serde::{Deserialize, Serialize};

use crate::timing::TrafficBytes;

/// Per-byte access energy in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// DRAM access energy per byte.
    pub offchip_pj_per_byte: f64,
    /// On-chip SRAM (PB/DB/SB) access energy per byte.
    pub onchip_pj_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self { offchip_pj_per_byte: 40.0, onchip_pj_per_byte: 0.6 }
    }
}

/// Energy consumed by one query (or one layer), split by location.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Off-chip data-access energy in millijoules.
    pub offchip_mj: f64,
    /// On-chip data-access energy in millijoules.
    pub onchip_mj: f64,
}

impl EnergyReport {
    /// Total data-movement energy in millijoules.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.offchip_mj + self.onchip_mj
    }

    /// Accumulates another report.
    pub fn add(&mut self, other: &EnergyReport) {
        self.offchip_mj += other.offchip_mj;
        self.onchip_mj += other.onchip_mj;
    }
}

impl EnergyModel {
    /// Energy for the given traffic. Off-chip counts DRAM transfers; on-chip
    /// counts PB hits plus one on-chip read of every byte that feeds the DPE
    /// array (fetched weights land in the DB and are read back; activations
    /// pass through SB/LB and OB).
    #[must_use]
    pub fn energy(&self, traffic: &TrafficBytes) -> EnergyReport {
        let offchip_bytes = traffic.offchip_total();
        let onchip_bytes = traffic.pb_weights
            + traffic.offchip_weights
            + traffic.offchip_iact
            + traffic.offchip_oact;
        EnergyReport {
            offchip_mj: offchip_bytes as f64 * self.offchip_pj_per_byte * 1e-9,
            onchip_mj: onchip_bytes as f64 * self.onchip_pj_per_byte * 1e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(iact: u64, w: u64, pb: u64, oact: u64) -> TrafficBytes {
        TrafficBytes { offchip_iact: iact, offchip_weights: w, pb_weights: pb, offchip_oact: oact }
    }

    #[test]
    fn offchip_dominates_per_byte() {
        let m = EnergyModel::default();
        assert!(m.offchip_pj_per_byte > 50.0 * m.onchip_pj_per_byte);
    }

    #[test]
    fn energy_scales_linearly_with_bytes() {
        let m = EnergyModel::default();
        let e1 = m.energy(&traffic(100, 100, 0, 100));
        let e2 = m.energy(&traffic(200, 200, 0, 200));
        assert!((e2.offchip_mj - 2.0 * e1.offchip_mj).abs() < 1e-15);
    }

    #[test]
    fn pb_hits_move_energy_from_offchip_to_onchip() {
        let m = EnergyModel::default();
        let without_pb = m.energy(&traffic(1000, 10_000, 0, 1000));
        let with_pb = m.energy(&traffic(1000, 2_000, 8_000, 1000));
        assert!(with_pb.offchip_mj < without_pb.offchip_mj);
        assert!(with_pb.total_mj() < without_pb.total_mj());
    }

    #[test]
    fn one_megabyte_offchip_is_forty_microjoules() {
        let m = EnergyModel::default();
        let e = m.energy(&traffic(0, 1_000_000, 0, 0));
        assert!((e.offchip_mj - 0.04).abs() < 1e-12);
    }

    #[test]
    fn report_accumulates() {
        let m = EnergyModel::default();
        let mut acc = EnergyReport::default();
        acc.add(&m.energy(&traffic(100, 0, 0, 0)));
        acc.add(&m.energy(&traffic(0, 100, 0, 0)));
        assert!((acc.total_mj() - m.energy(&traffic(100, 100, 0, 0)).total_mj()).abs() < 1e-15);
    }
}
