//! Analytic CPU inference-latency model.
//!
//! Substitutes the paper's Intel i7-10750H (45 W) measurement platform. A
//! sustained-GFLOPS roofline with per-layer dispatch overhead reproduces the
//! relevant *shape*: Fig. 13a needs the accelerator to win by 1.4–3.2×
//! depending on SubNet size, with the CPU comparatively better on small
//! SubNets (overhead-bound) than large ones (throughput-bound).

use serde::{Deserialize, Serialize};

use sushi_wsnet::{SubNet, SuperNet};

/// CPU latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Display name.
    pub name: String,
    /// Sustained conv throughput in GFLOP/s (int8 GEMM via vector units).
    pub sustained_gflops: f64,
    /// Fixed per-layer dispatch/framework overhead in milliseconds.
    pub per_layer_overhead_ms: f64,
}

impl Default for CpuModel {
    /// Calibrated to an i7-10750H-class mobile CPU running an int8 backend.
    fn default() -> Self {
        Self {
            name: "CPU (i7-10750H)".into(),
            sustained_gflops: 100.0,
            per_layer_overhead_ms: 0.08,
        }
    }
}

impl CpuModel {
    /// End-to-end latency for serving `subnet`, in milliseconds.
    #[must_use]
    pub fn latency_ms(&self, net: &SuperNet, subnet: &SubNet) -> f64 {
        let compute_ms = net
            .layers
            .iter()
            .zip(subnet.graph.slices())
            .filter(|(_, s)| !s.is_empty())
            .map(|(l, s)| l.flops(s) as f64 / (self.sustained_gflops * 1e9) * 1e3)
            .sum::<f64>();
        let overhead_ms = subnet.graph.active_layers() as f64 * self.per_layer_overhead_ms;
        compute_ms + overhead_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_wsnet::zoo;

    #[test]
    fn latency_grows_with_subnet_size() {
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let cpu = CpuModel::default();
        let lats: Vec<f64> = picks.iter().map(|p| cpu.latency_ms(&net, p)).collect();
        for w in lats.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn resnet50_latency_in_tens_of_ms() {
        // Fig. 13a shows CPU latencies up to ~80 ms for ResNet50 SubNets.
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let cpu = CpuModel::default();
        let max = cpu.latency_ms(&net, &picks[5]);
        assert!(max > 10.0 && max < 150.0, "{max} ms");
    }

    #[test]
    fn overhead_dominates_for_tiny_layers() {
        let net = zoo::toy_supernet();
        let sn = net.materialize("min", &net.min_config()).unwrap();
        let cpu = CpuModel::default();
        let lat = cpu.latency_ms(&net, &sn);
        let pure_overhead = sn.graph.active_layers() as f64 * cpu.per_layer_overhead_ms;
        assert!(lat < 2.0 * pure_overhead, "toy net should be overhead-bound");
    }

    #[test]
    fn faster_cpu_is_faster() {
        let net = zoo::resnet50_supernet();
        let sn = &zoo::paper_subnets(&net)[3];
        let slow = CpuModel { sustained_gflops: 100.0, ..CpuModel::default() };
        let fast = CpuModel { sustained_gflops: 400.0, ..CpuModel::default() };
        assert!(fast.latency_ms(&net, sn) < slow.latency_ms(&net, sn));
    }
}
