//! Comparison baselines: a CPU roofline model and an analytic Xilinx-DPU
//! model (§5.4.2, §5.5).

pub mod cpu;
pub mod dpu;

pub use cpu::CpuModel;
pub use dpu::DpuModel;
