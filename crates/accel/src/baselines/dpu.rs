//! Analytic model of the Xilinx DPU (DPUCZDX8G) baseline (§5.5, Fig. 14).
//!
//! The DPU is a weight-stationary accelerator with *pixel* parallelism in
//! addition to kernel/channel parallelism (Table 2: 2304 PeakOps/cycle =
//! 32 kernels × 8 channels × 9 pixels). Its dataflow shines on layers with
//! large spatial extent (high X·Y) and loses to SushiAccel's channel-major
//! DPE array on channel-heavy late layers — producing the paper's
//! layer-dependent 0.5–1.95× range and ~25% geomean SushiAccel advantage.
//! Like SushiAccel-w/o-PB it refetches all weights per query (no SubGraph
//! reuse, Table 4).

use serde::{Deserialize, Serialize};

use sushi_wsnet::layer::{ConvKind, ConvLayerDesc, LayerSlice};
use sushi_wsnet::{SubNet, SuperNet};

/// Xilinx DPU analytic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpuModel {
    /// Display name.
    pub name: String,
    /// Output-kernel parallelism.
    pub kernel_par: usize,
    /// Input-channel parallelism.
    pub channel_par: usize,
    /// Output-pixel parallelism.
    pub pixel_par: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Off-chip bandwidth in GB/s.
    pub offchip_gbps: f64,
    /// Fraction of modeled peak compute actually sustained. Vitis-AI
    /// benchmarks report 60–75% utilization on ResNet-class models due to
    /// instruction scheduling and im2col overheads.
    pub compute_efficiency: f64,
}

impl Default for DpuModel {
    /// DPUCZDX8G on ZCU104, normalized to 100 MHz as in Table 2
    /// (2304 ops/cycle = 32×8×9).
    fn default() -> Self {
        Self {
            name: "Xilinx DPU".into(),
            kernel_par: 32,
            channel_par: 8,
            pixel_par: 9,
            freq_mhz: 100.0,
            // Effective bandwidth, matched to SushiAccel's ZCU104 preset
            // (19.2 GB/s nominal x 0.15 DMA efficiency) for a fair Fig. 14.
            offchip_gbps: 2.88,
            compute_efficiency: 0.75,
        }
    }
}

impl DpuModel {
    /// Peak MACs per cycle.
    #[must_use]
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.kernel_par * self.channel_par * self.pixel_par) as u64
    }

    /// Compute cycles for one layer slice under the DPU's loop nest.
    #[must_use]
    pub fn compute_cycles(&self, layer: &ConvLayerDesc, slice: &LayerSlice) -> u64 {
        if slice.is_empty() {
            return 0;
        }
        let pixels = (layer.out_h() * layer.out_w()) as u64;
        let pixel_tiles = pixels.div_ceil(self.pixel_par as u64);
        let k_tiles = slice.kernels.div_ceil(self.kernel_par) as u64;
        let rs = (slice.kernel_size * slice.kernel_size) as u64;
        match layer.kind {
            ConvKind::Dense => {
                let c_tiles = slice.channels.div_ceil(self.channel_par) as u64;
                k_tiles * c_tiles * pixel_tiles * rs
            }
            // Depthwise: channel lanes idle, one kernel per lane group.
            ConvKind::Depthwise => {
                slice.kernels.div_ceil(self.channel_par) as u64 * pixel_tiles * rs
            }
        }
    }

    /// Per-layer latency in cycles: weight-stationary means weights load
    /// once per layer (not hidden behind compute of the *same* layer's
    /// first tile), then compute proceeds with activations streaming.
    #[must_use]
    pub fn layer_cycles(&self, layer: &ConvLayerDesc, slice: &LayerSlice) -> u64 {
        if slice.is_empty() {
            return 0;
        }
        let bpc = self.offchip_gbps * 1e9 / (self.freq_mhz * 1e6);
        let weight_cycles = (layer.weight_bytes(slice) as f64 / bpc).ceil() as u64;
        let act_cycles =
            ((layer.iact_bytes(slice) + layer.oact_bytes(slice)) as f64 / bpc).ceil() as u64;
        let compute =
            (self.compute_cycles(layer, slice) as f64 / self.compute_efficiency).ceil() as u64;
        // Activation streaming overlaps compute, but the weight-stationary
        // dataflow loads each layer's weights up front — unlike SushiAccel's
        // ping-pong Dynamic Buffers, nothing hides that load within the
        // layer. This is exactly the gap Fig. 14 attributes the PB-less
        // SushiAccel advantage to.
        compute.max(act_cycles) + weight_cycles
    }

    /// Per-layer latency in milliseconds.
    #[must_use]
    pub fn layer_latency_ms(&self, layer: &ConvLayerDesc, slice: &LayerSlice) -> f64 {
        self.layer_cycles(layer, slice) as f64 / (self.freq_mhz * 1e3)
    }

    /// End-to-end SubNet latency in milliseconds.
    #[must_use]
    pub fn latency_ms(&self, net: &SuperNet, subnet: &SubNet) -> f64 {
        net.layers.iter().zip(subnet.graph.slices()).map(|(l, s)| self.layer_latency_ms(l, s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_wsnet::zoo;

    #[test]
    fn peak_matches_table2() {
        assert_eq!(DpuModel::default().peak_macs_per_cycle(), 2304);
    }

    #[test]
    fn empty_slice_is_free() {
        let net = zoo::resnet50_supernet();
        let dpu = DpuModel::default();
        assert_eq!(dpu.layer_cycles(&net.layers[1], &LayerSlice::empty()), 0);
    }

    #[test]
    fn latency_monotone_in_subnet_size() {
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let dpu = DpuModel::default();
        let lats: Vec<f64> = picks.iter().map(|p| dpu.latency_ms(&net, p)).collect();
        for w in lats.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn pixel_parallelism_keeps_spatial_layers_efficient() {
        // A spatially large mid-network 3x3 layer (56x56) should achieve
        // MAC efficiency comparable to a channel-heavy 7x7 layer thanks to
        // the DPU's 9-pixel parallelism.
        let net = zoo::resnet50_supernet();
        let dpu = DpuModel::default();
        let wide = net
            .layers
            .iter()
            .find(|l| l.in_h == 56 && l.role == sushi_wsnet::layer::LayerRole::Spatial)
            .unwrap();
        let late = net
            .layers
            .iter()
            .find(|l| l.in_h == 7 && l.kind == ConvKind::Dense && l.max_kernel_size == 3)
            .unwrap();
        let eff = |l: &ConvLayerDesc| {
            let s = l.max_slice();
            l.macs(&s) as f64 / dpu.compute_cycles(l, &s) as f64
        };
        assert!(eff(wide) > 0.8 * eff(late), "wide {} vs late {}", eff(wide), eff(late));
    }
}
