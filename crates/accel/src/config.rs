//! Accelerator configuration: compute-array geometry, clock, off-chip
//! bandwidth and the on-chip buffer split.
//!
//! The paper's design space (§5.3) has three main knobs — bandwidth,
//! throughput (DPE-array parallelism) and Persistent-Buffer size — all
//! captured here. Presets reproduce the evaluation platforms of §5.1/§5.4.

use serde::{Deserialize, Serialize};

/// Size of each Dot-Product Engine: SushiAccel uses fixed-size DPEs of 9
/// multipliers (one 3×3 kernel position per cycle; §4.2.1).
pub const DPE_SIZE: usize = 9;

/// On-chip buffer capacities in bytes (§4.2.2, Table 3).
///
/// `#[non_exhaustive]`: construct via [`Default`] (the ZCU104 split) or a
/// preset ([`zcu104`], [`alveo_u50`], [`roofline_system`]) and adjust
/// fields, so future buffers can be added without breaking downstream
/// crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct BufferConfig {
    /// Persistent Buffer: SubGraph Reuse. Zero disables SGS caching
    /// ("w/o PB" baselines).
    pub pb_bytes: u64,
    /// Each of the two ping-pong Dynamic Buffers: distinct-weight tiles.
    pub db_bytes_each: u64,
    /// Streaming Buffer: whole-layer input activations (multi-kernel reuse).
    pub sb_bytes: u64,
    /// Line Buffer: sliding-window reuse (serial→parallel conversion).
    pub lb_bytes: u64,
    /// Output Buffer: in-place partial-sum accumulation.
    pub ob_bytes: u64,
    /// Zero-point/scale buffer for quantized inference.
    pub zsb_bytes: u64,
}

impl BufferConfig {
    /// Total on-chip storage across all buffers.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.pb_bytes
            + 2 * self.db_bytes_each
            + self.sb_bytes
            + self.lb_bytes
            + self.ob_bytes
            + self.zsb_bytes
    }

    /// Whether the Persistent Buffer exists.
    #[must_use]
    pub fn has_pb(&self) -> bool {
        self.pb_bytes > 0
    }

    /// Moves the PB capacity into the dynamic buffers, producing the
    /// equal-storage "w/o PB" comparison point used throughout §5
    /// ("both use the same amount of overall on-chip storage for a fair
    /// comparison").
    #[must_use]
    pub fn without_pb(&self) -> Self {
        Self { pb_bytes: 0, db_bytes_each: self.db_bytes_each + self.pb_bytes / 2, ..*self }
    }
}

impl Default for BufferConfig {
    /// The ZCU104 buffer split (Table 3).
    fn default() -> Self {
        zcu104().buffers
    }
}

/// Full accelerator configuration.
///
/// `#[non_exhaustive]`: construct via [`Default`] (the ZCU104 preset) or
/// one of the preset functions and adjust fields, so future knobs can be
/// added without breaking downstream crates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct AccelConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Kernel-level parallelism: DPE-array rows (§4.2.1).
    pub kp: usize,
    /// Channel-level parallelism: DPE-array columns.
    pub cp: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Nominal off-chip (DRAM) bandwidth in GB/s.
    pub offchip_gbps: f64,
    /// Fraction of the nominal bandwidth actually achievable. 1.0 for a
    /// dedicated embedded DRAM; well below 1.0 for a datacenter host whose
    /// "off-chip DRAM competition … dominates latency" (§5.4.2, Alveo U50).
    pub effective_bw_fraction: f64,
    /// Ratio of on-chip (PB/DB → DPE) bandwidth to off-chip bandwidth.
    pub onchip_bw_ratio: f64,
    /// Fixed per-DMA-transfer latency in cycles (models DRAM contention on
    /// datacenter hosts — §5.4.2's Alveo U50 observation).
    pub transfer_overhead_cycles: u64,
    /// On-chip buffer split.
    pub buffers: BufferConfig,
}

impl Default for AccelConfig {
    /// The ZCU104 embedded-board preset.
    fn default() -> Self {
        zcu104()
    }
}

impl AccelConfig {
    /// Peak MACs per cycle of the DPE array.
    #[must_use]
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.kp * self.cp * DPE_SIZE) as u64
    }

    /// Peak throughput in TFLOPS (2 FLOPs per MAC).
    #[must_use]
    pub fn peak_tflops(&self) -> f64 {
        2.0 * self.peak_macs_per_cycle() as f64 * self.freq_mhz * 1e6 / 1e12
    }

    /// Off-chip bytes transferable per cycle (effective, after contention).
    #[must_use]
    pub fn offchip_bytes_per_cycle(&self) -> f64 {
        self.offchip_gbps * self.effective_bw_fraction * 1e9 / (self.freq_mhz * 1e6)
    }

    /// On-chip bytes readable per cycle (PB/DB to the DPE array).
    #[must_use]
    pub fn onchip_bytes_per_cycle(&self) -> f64 {
        self.offchip_bytes_per_cycle() * self.onchip_bw_ratio
    }

    /// Cycles to move `bytes` over the off-chip interface, including the
    /// per-transfer overhead. Zero bytes cost zero cycles.
    #[must_use]
    pub fn offchip_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 / self.offchip_bytes_per_cycle()).ceil() as u64
            + self.transfer_overhead_cycles
    }

    /// Cycles to read `bytes` from on-chip storage.
    #[must_use]
    pub fn onchip_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 / self.onchip_bytes_per_cycle()).ceil() as u64
    }

    /// Converts cycles to milliseconds at this clock.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_mhz * 1e3)
    }

    /// Returns this configuration with the PB removed (equal total storage).
    #[must_use]
    pub fn without_pb(&self) -> Self {
        Self {
            name: format!("{} w/o PB", self.name),
            buffers: self.buffers.without_pb(),
            ..self.clone()
        }
    }

    /// Returns this configuration with a different PB size, shrinking or
    /// growing the dynamic buffers to keep total storage constant when
    /// possible.
    #[must_use]
    pub fn with_pb_bytes(&self, pb_bytes: u64) -> Self {
        let total = self.buffers.total_bytes();
        let fixed = self.buffers.sb_bytes
            + self.buffers.lb_bytes
            + self.buffers.ob_bytes
            + self.buffers.zsb_bytes;
        let db_pool = total.saturating_sub(fixed).saturating_sub(pb_bytes);
        Self {
            name: format!("{} (PB={} KB)", self.name, pb_bytes / 1024),
            buffers: BufferConfig {
                pb_bytes,
                db_bytes_each: (db_pool / 2).max(16 * 1024),
                ..self.buffers
            },
            ..self.clone()
        }
    }
}

/// ZCU104 embedded-board preset (§5.4, Tables 2–3): 19.2 GB/s DDR4, 100 MHz,
/// 16×18 DPE array (2592 ops/cycle = 259.2 GFLOPS), 1728 KB URAM PB.
#[must_use]
pub fn zcu104() -> AccelConfig {
    AccelConfig {
        name: "ZCU104".into(),
        kp: 16,
        cp: 18,
        freq_mhz: 100.0,
        offchip_gbps: 19.2,
        // Short-burst accelerator DMA sustains only a sliver of the DDR4
        // peak; calibrated so the board's end-to-end latencies land in the
        // paper's Fig. 13a band.
        effective_bw_fraction: 0.15,
        onchip_bw_ratio: 48.0,
        transfer_overhead_cycles: 32,
        buffers: BufferConfig {
            pb_bytes: 1728 * 1024,
            db_bytes_each: 576 * 1024,
            sb_bytes: 584 * 1024,
            lb_bytes: 54 * 1024,
            ob_bytes: 327 * 1024,
            zsb_bytes: 8 * 1024,
        },
    }
}

/// Alveo U50 datacenter preset (§5.4): 14.4 GB/s effective HBM slice under
/// host contention, 32×32 DPE array (9216 ops/cycle = 921.6 GFLOPS @100 MHz),
/// 1.69 MB PB, and a large per-transfer overhead modelling "off-chip DRAM
/// competition in data center cluster hosting Alveo U50" (§5.4.2).
#[must_use]
pub fn alveo_u50() -> AccelConfig {
    AccelConfig {
        name: "AlveoU50".into(),
        kp: 32,
        cp: 32,
        freq_mhz: 100.0,
        offchip_gbps: 14.4,
        // Worse than the embedded board: the HBM slice competes with the
        // datacenter host ("off-chip DRAM competition", §5.4.2).
        effective_bw_fraction: 0.15,
        onchip_bw_ratio: 64.0,
        transfer_overhead_cycles: 3400,
        buffers: BufferConfig {
            pb_bytes: 1731 * 1024, // 1.69 MB
            db_bytes_each: 1024 * 1024,
            sb_bytes: 1024 * 1024,
            lb_bytes: 108 * 1024,
            ob_bytes: 654 * 1024,
            zsb_bytes: 16 * 1024,
        },
    }
}

/// The §5.2 roofline-analysis system: 19.2 GB/s off-chip bandwidth and
/// 1.296 TFLOPS at 100 MHz (12 960 ops/cycle → 40×36 DPE array).
#[must_use]
pub fn roofline_system() -> AccelConfig {
    AccelConfig {
        name: "roofline-sys".into(),
        kp: 40,
        cp: 36,
        freq_mhz: 100.0,
        offchip_gbps: 19.2,
        effective_bw_fraction: 1.0,
        onchip_bw_ratio: 8.0,
        transfer_overhead_cycles: 32,
        buffers: BufferConfig {
            pb_bytes: 3 * 1024 * 1024,
            db_bytes_each: 1024 * 1024,
            sb_bytes: 1024 * 1024,
            lb_bytes: 108 * 1024,
            ob_bytes: 512 * 1024,
            zsb_bytes: 16 * 1024,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu104_peak_matches_table2() {
        let c = zcu104();
        // Table 2: PeakOps/cycle = 2592, GFlops @100MHz = 259.2.
        assert_eq!(c.peak_macs_per_cycle() * 2, 2592 * 2);
        assert!((c.peak_tflops() - 0.5184).abs() < 1e-9); // 2 FLOPs/MAC convention
    }

    #[test]
    fn alveo_peak_matches_table2() {
        let c = alveo_u50();
        assert_eq!(c.peak_macs_per_cycle(), 9216);
    }

    #[test]
    fn roofline_system_hits_1296_gops() {
        let c = roofline_system();
        // §5.2: 1.296 TFLOPS at 100 MHz counting MAC ops.
        assert_eq!(c.peak_macs_per_cycle(), 12_960);
    }

    #[test]
    fn offchip_bytes_per_cycle_applies_dma_efficiency() {
        let c = zcu104();
        // 19.2 GB/s nominal x 0.15 effective at 100 MHz = 28.8 B/cycle.
        assert!((c.offchip_bytes_per_cycle() - 28.8).abs() < 1e-9);
    }

    #[test]
    fn offchip_cycles_includes_overhead_only_when_nonzero() {
        let c = zcu104();
        assert_eq!(c.offchip_cycles(0), 0);
        assert_eq!(c.offchip_cycles(288), 10 + 32);
        assert_eq!(c.offchip_cycles(289), 11 + 32);
    }

    #[test]
    fn without_pb_preserves_total_storage() {
        let c = zcu104();
        let no_pb = c.without_pb();
        assert_eq!(no_pb.buffers.pb_bytes, 0);
        assert_eq!(no_pb.buffers.total_bytes(), c.buffers.total_bytes());
    }

    #[test]
    fn zcu104_buffer_split_matches_table3() {
        // Table 3 w/ PB: overall 397 KB BRAM + 3456 KB URAM = 3853 KB.
        let c = zcu104();
        assert_eq!(c.buffers.total_bytes(), 3853 * 1024);
        assert_eq!(c.buffers.pb_bytes, 1728 * 1024);
    }

    #[test]
    fn with_pb_bytes_keeps_total_when_feasible() {
        let c = zcu104();
        let resized = c.with_pb_bytes(1024 * 1024);
        assert_eq!(resized.buffers.pb_bytes, 1024 * 1024);
        assert_eq!(resized.buffers.total_bytes(), c.buffers.total_bytes());
    }

    #[test]
    fn cycles_to_ms_at_100mhz() {
        let c = zcu104();
        assert!((c.cycles_to_ms(100_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn u50_models_datacenter_contention() {
        assert!(alveo_u50().transfer_overhead_cycles > zcu104().transfer_overhead_cycles);
    }
}
