//! # sushi-accel
//!
//! **SushiAccel**: a cycle-approximate simulator of the SGS-aware DNN
//! accelerator from the SUSHI paper (MLSys'23, §4), substituting for the
//! authors' FPGA implementation per `DESIGN.md`.
//!
//! The accelerator is a 2-D array of 9-multiplier Dot-Product Engines with
//! a split on-chip buffer hierarchy. Its novel component is the
//! **Persistent Buffer (PB)**: a dedicated cache holding a SubGraph of the
//! weight-shared SuperNet so that consecutive queries activating
//! overlapping SubNets skip the off-chip fetch of shared weights —
//! *SubGraph-Stationary* (SGS) reuse, the first cross-query dataflow
//! optimization.
//!
//! Two execution modes:
//!
//! * **Timing-only** ([`exec::Accelerator::serve`]) — the analytic
//!   tile-pipelined latency/energy model behind every §5 experiment.
//! * **Functional** ([`functional::forward`]) — bit-exact int8 execution of
//!   the DPE schedule, validated against `sushi-tensor`'s reference ops.
//!
//! Supporting tools mirror the paper's evaluation apparatus: a roofline
//! analyzer with the SGS-roofline ([`roofline`]), a design-space explorer
//! ([`dse`]), an FPGA resource estimator ([`resources`]), buffer bandwidth
//! rules ([`buffers`]), and CPU/Xilinx-DPU baselines ([`baselines`]).
//!
//! # Example
//!
//! ```
//! use sushi_accel::config::zcu104;
//! use sushi_accel::exec::Accelerator;
//! use sushi_wsnet::zoo;
//!
//! let net = zoo::resnet50_supernet();
//! let picks = zoo::paper_subnets(&net);
//! let mut accel = Accelerator::new(zcu104());
//!
//! // Cold query: every weight streams from DRAM.
//! let cold = accel.serve(&net, &picks[2]);
//!
//! // Cache the weights shared by the Pareto picks, then serve again.
//! accel.install_cache(&net, net.shared_subgraph(&picks));
//! let _pays_reload = accel.serve(&net, &picks[2]);
//! let warm = accel.serve(&net, &picks[2]);
//! assert!(warm.latency_ms < cold.latency_ms);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod baselines;
pub mod buffers;
pub mod config;
pub mod dpe;
pub mod dse;
pub mod energy;
pub mod exec;
pub mod functional;
pub mod resources;
pub mod reuse;
pub mod roofline;
pub mod timing;

pub use backend::{Analytical, BackendError, Execution, ExecutionBackend, Functional, MemoryStats};
pub use config::{AccelConfig, BufferConfig};
pub use exec::{Accelerator, QueryReport};
pub use timing::{CycleBreakdown, LayerTiming, TrafficBytes};
