//! Functional (bit-exact) model of the Dot-Product-Engine array.
//!
//! §4.2.1: SushiAccel computes with fixed-size DPEs of 9 multipliers.
//! Weights stream down rows (kernel parallelism `KP`) and stay stationary;
//! iActs stream through columns (channel parallelism `CP`); an adder tree
//! reduces each row. 3×3 kernels map one-to-one onto a DPE; larger kernels
//! decompose into 3×3 passes; 1×1 kernels flatten channels across the 9
//! multipliers; the Zero-Subtraction stage computes
//! `(iAct − zp_a) · (w − zp_w)` before accumulation.
//!
//! This module *executes* that schedule on real int8 data. Because integer
//! accumulation is associative and the output stage requantizes exactly like
//! the reference, the result equals [`sushi_tensor::ops::conv::conv2d_i8`]
//! bit-for-bit — the property the tests pin down.
//!
//! Host-simulation speed is decoupled from the modeled schedule through a
//! [`KernelPolicy`]: under `Auto` (the default) large dense convolutions are
//! executed via the bit-identical im2col + blocked-GEMM fast path from
//! `sushi-tensor`, while `Naive` forces the cycle-faithful tiled schedule.
//! The policy can never change the numbers — only how fast the host
//! computes them.

use sushi_tensor::ops::conv::{conv2d_i8_in, conv2d_i8_prepacked, Conv2dParams};
use sushi_tensor::quant::requantize_accumulator;
use sushi_tensor::{Arena, KernelPolicy, PackedConv2d, QuantParams, Shape4, Tensor, TensorError};

use crate::config::DPE_SIZE;

/// A `KP × CP` array of 9-multiplier DPEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpeArray {
    /// Kernel-level parallelism (rows).
    pub kp: usize,
    /// Channel-level parallelism (columns).
    pub cp: usize,
    /// Host-simulation kernel policy (never affects results).
    policy: KernelPolicy,
}

impl DpeArray {
    /// Creates a DPE array with the default [`KernelPolicy::Auto`] host
    /// simulation policy.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(kp: usize, cp: usize) -> Self {
        assert!(kp > 0 && cp > 0, "DPE array dims must be positive");
        Self { kp, cp, policy: KernelPolicy::Auto }
    }

    /// Returns the same array with a different host-simulation policy.
    ///
    /// `Naive` pins the cycle-faithful tiled DPE schedule (the oracle);
    /// `Im2colGemm` forces the fast path; `Auto` picks per problem size.
    #[must_use]
    pub fn with_policy(mut self, policy: KernelPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active host-simulation policy.
    #[must_use]
    pub fn policy(&self) -> KernelPolicy {
        self.policy
    }

    /// Quantized convolution executed in the DPE array's tiled schedule.
    ///
    /// Supports dense convolutions (any odd kernel) and depthwise
    /// convolutions (`groups == K`, weights shaped `(K, 1, R, S)`).
    /// Allocates private scratch per call; the serving hot path uses
    /// [`DpeArray::conv2d_i8_in`] with a reused [`Arena`] and optional
    /// pre-packed weights instead.
    ///
    /// # Errors
    /// Returns an error on shape/parameter mismatch, mirroring the
    /// reference implementation.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_i8(
        &self,
        input: &Tensor<i8>,
        in_q: QuantParams,
        weights: &Tensor<i8>,
        w_q: QuantParams,
        bias: Option<&[i32]>,
        out_q: QuantParams,
        params: &Conv2dParams,
    ) -> Result<Tensor<i8>, TensorError> {
        self.conv2d_i8_in(&mut Arena::new(), input, in_q, weights, w_q, None, bias, out_q, params)
    }

    /// Quantized convolution with caller-owned scratch and optional
    /// pre-packed weight panels.
    ///
    /// When the resolved backend is the GEMM fast path and `packed` is
    /// given, the panels are read in place — no weight copy, subtraction or
    /// re-pack happens per query (the subgraph-stationary contract pinned
    /// by `tests/pack_once.rs`). The tiled DPE schedule and the direct
    /// fallback ignore `packed`. The policy can never change the numbers —
    /// only how fast the host computes them.
    ///
    /// # Errors
    /// Returns an error on shape/parameter mismatch, mirroring the
    /// reference implementation.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_i8_in(
        &self,
        arena: &mut Arena,
        input: &Tensor<i8>,
        in_q: QuantParams,
        weights: &Tensor<i8>,
        w_q: QuantParams,
        packed: Option<&PackedConv2d>,
        bias: Option<&[i32]>,
        out_q: QuantParams,
        params: &Conv2dParams,
    ) -> Result<Tensor<i8>, TensorError> {
        let ishape = input.shape();
        let wshape = weights.shape();
        if params.stride == 0 {
            return Err(TensorError::InvalidParam { what: "stride must be nonzero" });
        }
        let depthwise = params.groups > 1;
        if depthwise && (params.groups != wshape.n || wshape.c != 1) {
            return Err(TensorError::InvalidParam {
                what: "depthwise requires groups == K and C == 1",
            });
        }
        if !depthwise && wshape.c != ishape.c {
            return Err(TensorError::ShapeMismatch {
                what: "input channels",
                lhs: ishape,
                rhs: wshape,
            });
        }
        if let Some(b) = bias {
            if b.len() != wshape.n {
                return Err(TensorError::LengthMismatch { expected: wshape.n, actual: b.len() });
            }
        }
        let oh =
            sushi_tensor::shape::conv_out_dim(ishape.h, wshape.h, params.stride, params.padding)
                .ok_or(TensorError::EmptyOutput { input: ishape })?;
        let ow =
            sushi_tensor::shape::conv_out_dim(ishape.w, wshape.w, params.stride, params.padding)
                .ok_or(TensorError::EmptyOutput { input: ishape })?;

        // Fast host path: when the policy resolves to GEMM, execute the
        // layer through the bit-identical im2col + packed-GEMM lowering —
        // against pre-packed panels when the caller installed them. The
        // tiled schedule below remains the cycle-faithful oracle.
        if params.backend(ishape, wshape, oh, ow, self.policy)
            == sushi_tensor::ops::gemm::ConvBackend::Im2colGemm
        {
            if let Some(p) = packed {
                return conv2d_i8_prepacked(input, in_q, p, bias, out_q, params, arena);
            }
            return conv2d_i8_in(
                input,
                in_q,
                weights,
                w_q,
                bias,
                out_q,
                params,
                KernelPolicy::Im2colGemm,
                arena,
            );
        }

        let acc_scale = in_q.scale * w_q.scale / out_q.scale;
        let k_total = wshape.n;
        let mut out = Tensor::zeros(Shape4::new(ishape.n, k_total, oh, ow));
        // Output Buffer: in-place int32 accumulation per kernel tile.
        let mut ob = vec![0i32; self.kp * oh * ow];

        for n in 0..ishape.n {
            for k_tile in (0..k_total).step_by(self.kp) {
                let k_hi = (k_tile + self.kp).min(k_total);
                ob.iter_mut().for_each(|v| *v = 0);
                if depthwise {
                    self.depthwise_tile(
                        input, in_q, weights, w_q, params, n, k_tile, k_hi, oh, ow, &mut ob,
                    );
                } else {
                    self.dense_tile(
                        input, in_q, weights, w_q, params, n, k_tile, k_hi, oh, ow, &mut ob,
                    );
                }
                // Output stage: add bias, requantize, emit final oActs.
                for k in k_tile..k_hi {
                    let b = bias.map_or(0, |b| b[k]);
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let acc = ob[(k - k_tile) * oh * ow + oy * ow + ox] + b;
                            out.set(
                                n,
                                k,
                                oy,
                                ox,
                                requantize_accumulator(acc, acc_scale, out_q.zero_point),
                            );
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Dense tile: channel tiles of width `CP` stream through columns; each
    /// DPE performs a 9-MAC dot product (one 3×3 window pass, or 9 channels
    /// of a 1×1 kernel).
    #[allow(clippy::too_many_arguments)]
    fn dense_tile(
        &self,
        input: &Tensor<i8>,
        in_q: QuantParams,
        weights: &Tensor<i8>,
        w_q: QuantParams,
        params: &Conv2dParams,
        n: usize,
        k_tile: usize,
        k_hi: usize,
        oh: usize,
        ow: usize,
        ob: &mut [i32],
    ) {
        let ishape = input.shape();
        let wshape = weights.shape();
        let (r, s) = (wshape.h, wshape.w);
        let zp_a = i32::from(in_q.zero_point);
        let zp_w = i32::from(w_q.zero_point);

        if r == 1 && s == 1 {
            // 1x1: flatten channels across the 9 multipliers of each DPE and
            // across CP columns: CP*9 channels per pass.
            let cs = self.cp * DPE_SIZE;
            for c_tile in (0..ishape.c).step_by(cs) {
                let c_hi = (c_tile + cs).min(ishape.c);
                for k in k_tile..k_hi {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = oy * params.stride;
                            let ix = ox * params.stride;
                            let mut acc = 0i32;
                            for c in c_tile..c_hi {
                                let a = i32::from(input.get(n, c, iy, ix)) - zp_a;
                                let w = i32::from(weights.get(k, c, 0, 0)) - zp_w;
                                acc += a * w;
                            }
                            ob[(k - k_tile) * oh * ow + oy * ow + ox] += acc;
                        }
                    }
                }
            }
            return;
        }

        // R×S ≥ 3×3: decompose into 3×3 passes; one channel per column.
        for c_tile in (0..ishape.c).step_by(self.cp) {
            let c_hi = (c_tile + self.cp).min(ishape.c);
            for pr in (0..r).step_by(3) {
                for ps in (0..s).step_by(3) {
                    for k in k_tile..k_hi {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut acc = 0i32;
                                for c in c_tile..c_hi {
                                    // The 9-MAC dot product of one DPE.
                                    for dy in pr..(pr + 3).min(r) {
                                        let iy = (oy * params.stride + dy) as isize
                                            - params.padding as isize;
                                        if iy < 0 || iy >= ishape.h as isize {
                                            continue;
                                        }
                                        for dx in ps..(ps + 3).min(s) {
                                            let ix = (ox * params.stride + dx) as isize
                                                - params.padding as isize;
                                            if ix < 0 || ix >= ishape.w as isize {
                                                continue;
                                            }
                                            let a = i32::from(input.get(
                                                n,
                                                c,
                                                iy as usize,
                                                ix as usize,
                                            )) - zp_a;
                                            let w = i32::from(weights.get(k, c, dy, dx)) - zp_w;
                                            acc += a * w;
                                        }
                                    }
                                }
                                ob[(k - k_tile) * oh * ow + oy * ow + ox] += acc;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Depthwise tile: kernel k reads only channel k; columns idle.
    #[allow(clippy::too_many_arguments)]
    fn depthwise_tile(
        &self,
        input: &Tensor<i8>,
        in_q: QuantParams,
        weights: &Tensor<i8>,
        w_q: QuantParams,
        params: &Conv2dParams,
        n: usize,
        k_tile: usize,
        k_hi: usize,
        oh: usize,
        ow: usize,
        ob: &mut [i32],
    ) {
        let ishape = input.shape();
        let wshape = weights.shape();
        let (r, s) = (wshape.h, wshape.w);
        let zp_a = i32::from(in_q.zero_point);
        let zp_w = i32::from(w_q.zero_point);
        for k in k_tile..k_hi {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0i32;
                    for dy in 0..r {
                        let iy = (oy * params.stride + dy) as isize - params.padding as isize;
                        if iy < 0 || iy >= ishape.h as isize {
                            continue;
                        }
                        for dx in 0..s {
                            let ix = (ox * params.stride + dx) as isize - params.padding as isize;
                            if ix < 0 || ix >= ishape.w as isize {
                                continue;
                            }
                            let a = i32::from(input.get(n, k, iy as usize, ix as usize)) - zp_a;
                            let w = i32::from(weights.get(k, 0, dy, dx)) - zp_w;
                            acc += a * w;
                        }
                    }
                    ob[(k - k_tile) * oh * ow + oy * ow + ox] += acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_tensor::ops::conv::conv2d_i8_with;
    use sushi_tensor::DetRng;

    fn rand_i8(shape: Shape4, seed: u64) -> Tensor<i8> {
        let mut rng = DetRng::new(seed);
        Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.next_i8()).collect()).unwrap()
    }

    fn check_equal(
        arr: &DpeArray,
        input: Shape4,
        weights: Shape4,
        params: &Conv2dParams,
        bias: bool,
        seed: u64,
    ) {
        let x = rand_i8(input, seed);
        let w = rand_i8(weights, seed + 1);
        let in_q = QuantParams::new(0.05, 7);
        let w_q = QuantParams::new(0.02, -3);
        let out_q = QuantParams::new(0.3, 5);
        let b: Option<Vec<i32>> = bias.then(|| {
            let mut rng = DetRng::new(seed + 2);
            (0..weights.n).map(|_| (rng.next_u64() % 1000) as i32 - 500).collect()
        });
        let reference =
            conv2d_i8_with(&x, in_q, &w, w_q, b.as_deref(), out_q, params, KernelPolicy::Naive)
                .unwrap();
        // The cycle-faithful tiled schedule and the GEMM fast path must both
        // reproduce the naive oracle bit-for-bit.
        let tiled = arr
            .with_policy(KernelPolicy::Naive)
            .conv2d_i8(&x, in_q, &w, w_q, b.as_deref(), out_q, params)
            .unwrap();
        assert_eq!(reference, tiled, "DPE tiled schedule diverged from reference");
        let gemm = arr
            .with_policy(KernelPolicy::Im2colGemm)
            .conv2d_i8(&x, in_q, &w, w_q, b.as_deref(), out_q, params)
            .unwrap();
        assert_eq!(reference, gemm, "DPE GEMM fast path diverged from reference");
    }

    #[test]
    fn dense_3x3_matches_reference_bit_exactly() {
        let arr = DpeArray::new(4, 3);
        check_equal(
            &arr,
            Shape4::new(1, 7, 9, 9),
            Shape4::new(10, 7, 3, 3),
            &Conv2dParams::new(3, 3).with_padding(1),
            true,
            10,
        );
    }

    #[test]
    fn dense_1x1_matches_reference_bit_exactly() {
        let arr = DpeArray::new(4, 2);
        check_equal(
            &arr,
            Shape4::new(1, 40, 5, 5),
            Shape4::new(12, 40, 1, 1),
            &Conv2dParams::new(1, 1),
            false,
            20,
        );
    }

    #[test]
    fn dense_5x5_decomposition_matches_reference() {
        let arr = DpeArray::new(2, 2);
        check_equal(
            &arr,
            Shape4::new(1, 3, 11, 11),
            Shape4::new(5, 3, 5, 5),
            &Conv2dParams::new(5, 5).with_padding(2),
            true,
            30,
        );
    }

    #[test]
    fn dense_7x7_stride_2_matches_reference() {
        let arr = DpeArray::new(3, 3);
        check_equal(
            &arr,
            Shape4::new(1, 3, 16, 16),
            Shape4::new(6, 3, 7, 7),
            &Conv2dParams::new(7, 7).with_stride(2).with_padding(3),
            false,
            40,
        );
    }

    #[test]
    fn depthwise_matches_reference_bit_exactly() {
        let arr = DpeArray::new(4, 4);
        check_equal(
            &arr,
            Shape4::new(1, 10, 8, 8),
            Shape4::new(10, 1, 3, 3),
            &Conv2dParams::new(3, 3).with_padding(1).with_groups(10),
            true,
            50,
        );
    }

    #[test]
    fn depthwise_5x5_stride2_matches_reference() {
        let arr = DpeArray::new(8, 2);
        check_equal(
            &arr,
            Shape4::new(1, 12, 9, 9),
            Shape4::new(12, 1, 5, 5),
            &Conv2dParams::new(5, 5).with_stride(2).with_padding(2).with_groups(12),
            false,
            60,
        );
    }

    #[test]
    fn result_is_independent_of_array_geometry() {
        // Different KP/CP change the schedule, never the numbers.
        let x = rand_i8(Shape4::new(1, 9, 7, 7), 70);
        let w = rand_i8(Shape4::new(11, 9, 3, 3), 71);
        let q = QuantParams::new(0.04, 0);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let a = DpeArray::new(1, 1).conv2d_i8(&x, q, &w, q, None, q, &p).unwrap();
        let b = DpeArray::new(16, 18).conv2d_i8(&x, q, &w, q, None, q, &p).unwrap();
        let c = DpeArray::new(3, 7).conv2d_i8(&x, q, &w, q, None, q, &p).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn zero_subtraction_handles_nonzero_zero_points() {
        // Already exercised via check_equal's zp=7/-3; pin the padding case:
        // padded positions must contribute exactly zero after ZS.
        let arr = DpeArray::new(2, 2);
        let x = Tensor::filled(Shape4::new(1, 1, 3, 3), 7i8); // == zp -> real value 0
        let w = rand_i8(Shape4::new(1, 1, 3, 3), 80);
        let in_q = QuantParams::new(0.05, 7);
        let w_q = QuantParams::new(0.02, 0);
        let out_q = QuantParams::new(0.1, 0);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let out = arr.conv2d_i8(&x, in_q, &w, w_q, None, out_q, &p).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0), "all-zero input must give zero output");
    }

    #[test]
    fn policy_never_changes_results() {
        // The host-simulation policy is a pure speed knob; all three
        // settings must produce the same bytes, above and below the Auto
        // problem-size threshold.
        let q = QuantParams::new(0.03, -2);
        for (ishape, wshape, seed) in [
            (Shape4::new(1, 16, 12, 12), Shape4::new(24, 16, 3, 3), 100), // above threshold
            (Shape4::new(1, 2, 5, 5), Shape4::new(2, 2, 3, 3), 102),      // below threshold
        ] {
            let x = rand_i8(ishape, seed);
            let w = rand_i8(wshape, seed + 1);
            let p = Conv2dParams::new(3, 3).with_padding(1);
            let arr = DpeArray::new(4, 4);
            let a =
                arr.with_policy(KernelPolicy::Naive).conv2d_i8(&x, q, &w, q, None, q, &p).unwrap();
            let b = arr
                .with_policy(KernelPolicy::Im2colGemm)
                .conv2d_i8(&x, q, &w, q, None, q, &p)
                .unwrap();
            let c =
                arr.with_policy(KernelPolicy::Auto).conv2d_i8(&x, q, &w, q, None, q, &p).unwrap();
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn prepacked_panels_never_change_results() {
        // Pre-packed weights are a pure speed knob, like the policy: the
        // same bytes must come out with and without them, under every
        // policy (Naive resolves to Direct and simply ignores the panels).
        let x = rand_i8(Shape4::new(1, 8, 10, 10), 200);
        let w = rand_i8(Shape4::new(12, 8, 3, 3), 201);
        let in_q = QuantParams::new(0.05, 4);
        let w_q = QuantParams::new(0.02, -6);
        let out_q = QuantParams::new(0.3, 1);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let arr = DpeArray::new(4, 4);
        let plain = arr.conv2d_i8(&x, in_q, &w, w_q, None, out_q, &p).unwrap();
        let packed = PackedConv2d::pack(&w, w_q, &p).unwrap();
        let mut arena = Arena::new();
        for policy in [KernelPolicy::Naive, KernelPolicy::Im2colGemm, KernelPolicy::Auto] {
            let out = arr
                .with_policy(policy)
                .conv2d_i8_in(&mut arena, &x, in_q, &w, w_q, Some(&packed), None, out_q, &p)
                .unwrap();
            assert_eq!(plain, out, "prepacked panels changed results under {policy}");
        }
    }

    #[test]
    fn rejects_depthwise_with_bad_groups() {
        let arr = DpeArray::new(2, 2);
        let x = rand_i8(Shape4::new(1, 4, 4, 4), 90);
        let w = rand_i8(Shape4::new(4, 2, 3, 3), 91);
        let q = QuantParams::default();
        let p = Conv2dParams::new(3, 3).with_groups(4);
        assert!(arr.conv2d_i8(&x, q, &w, q, None, q, &p).is_err());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_array_rejected() {
        let _ = DpeArray::new(0, 4);
    }
}
