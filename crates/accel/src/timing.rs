//! Cycle-approximate per-layer timing model.
//!
//! Implements the dataflow of §4.3/Fig. 9: a convolution is processed in
//! weight tiles sized to half the ping-pong Dynamic Buffer. While tile `i`
//! computes, tile `i+1`'s *distinct* (non-PB-resident) weights stream in
//! from DRAM — the double-buffering hides whichever of the two is shorter.
//! Weights found in the Persistent Buffer (the cached SubGraph ∩ the served
//! slice) are read on-chip instead, which is how SGS converts memory-bound
//! layers toward compute-bound.
//!
//! The per-layer critical path decomposes into the five buckets of Fig. 10:
//! compute, off-chip iAct, off-chip weights, on-chip weights, off-chip oAct.

use serde::{Deserialize, Serialize};

use sushi_wsnet::layer::{ConvKind, ConvLayerDesc, LayerSlice};

use crate::config::{AccelConfig, DPE_SIZE};

/// Critical-path cycle attribution for one layer (the Fig. 10 buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles where the DPE array is the bottleneck.
    pub compute: u64,
    /// Cycles where off-chip input-activation movement is the bottleneck.
    pub offchip_iact: u64,
    /// Cycles where off-chip weight fetch is the bottleneck.
    pub offchip_weights: u64,
    /// Cycles where on-chip (PB) weight reads are the bottleneck.
    pub onchip_weights: u64,
    /// Cycles where off-chip output-activation writeback is the bottleneck.
    pub offchip_oact: u64,
}

impl CycleBreakdown {
    /// Total critical-path cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.compute
            + self.offchip_iact
            + self.offchip_weights
            + self.onchip_weights
            + self.offchip_oact
    }

    /// Elementwise accumulation.
    pub fn add(&mut self, other: &CycleBreakdown) {
        self.compute += other.compute;
        self.offchip_iact += other.offchip_iact;
        self.offchip_weights += other.offchip_weights;
        self.onchip_weights += other.onchip_weights;
        self.offchip_oact += other.offchip_oact;
    }
}

/// Byte-level traffic accounting for one layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficBytes {
    /// Input activations fetched from DRAM.
    pub offchip_iact: u64,
    /// Distinct weights fetched from DRAM.
    pub offchip_weights: u64,
    /// Weights served from the Persistent Buffer (SGS hits).
    pub pb_weights: u64,
    /// Output activations written to DRAM.
    pub offchip_oact: u64,
}

impl TrafficBytes {
    /// Total off-chip bytes moved.
    #[must_use]
    pub fn offchip_total(&self) -> u64 {
        self.offchip_iact + self.offchip_weights + self.offchip_oact
    }

    /// Elementwise accumulation.
    pub fn add(&mut self, other: &TrafficBytes) {
        self.offchip_iact += other.offchip_iact;
        self.offchip_weights += other.offchip_weights;
        self.pb_weights += other.pb_weights;
        self.offchip_oact += other.offchip_oact;
    }
}

/// Timing result for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Index into the SuperNet layer list.
    pub layer: usize,
    /// Critical-path attribution.
    pub cycles: CycleBreakdown,
    /// Byte traffic.
    pub traffic: TrafficBytes,
}

/// Pure-compute cycles of the DPE array for one layer slice (§4.2.1):
///
/// * dense `R×S ≥ 3×3`: each DPE computes one 3×3 kernel position per
///   cycle; larger kernels decompose into ⌈R/3⌉·⌈S/3⌉ passes of 3×3;
/// * dense `1×1`: input channels flatten across the 9 multipliers;
/// * depthwise: one kernel per DPE row, channel columns idle.
#[must_use]
pub fn compute_cycles(layer: &ConvLayerDesc, slice: &LayerSlice, kp: usize, cp: usize) -> u64 {
    if slice.is_empty() {
        return 0;
    }
    let spatial = (layer.out_h() * layer.out_w()) as u64;
    let k_tiles = slice.kernels.div_ceil(kp) as u64;
    match layer.kind {
        ConvKind::Dense if slice.kernel_size == 1 => {
            let c_tiles = slice.channels.div_ceil(cp * DPE_SIZE) as u64;
            k_tiles * c_tiles * spatial
        }
        ConvKind::Dense => {
            let passes = slice.kernel_size.div_ceil(3).pow(2) as u64;
            let c_tiles = slice.channels.div_ceil(cp) as u64;
            k_tiles * c_tiles * passes * spatial
        }
        ConvKind::Depthwise => {
            let passes = slice.kernel_size.div_ceil(3).pow(2) as u64;
            k_tiles * passes * spatial
        }
    }
}

/// Int8 bytes of one kernel of the slice (weights + scale/bias words).
fn per_kernel_bytes(layer: &ConvLayerDesc, slice: &LayerSlice) -> u64 {
    let rs = (slice.kernel_size * slice.kernel_size) as u64;
    let core = match layer.kind {
        ConvKind::Dense => slice.channels as u64 * rs,
        ConvKind::Depthwise => rs,
    };
    core + 8
}

/// Bytes of one kernel that hit the PB, given the cached slice of this layer.
/// Cached kernels share `min(C, C_cached)` channels of the center
/// `min(ks, ks_cached)²` window.
fn per_kernel_cached_bytes(layer: &ConvLayerDesc, slice: &LayerSlice, cached: &LayerSlice) -> u64 {
    if cached.is_empty() {
        return 0;
    }
    let ks = slice.kernel_size.min(cached.kernel_size) as u64;
    match layer.kind {
        ConvKind::Dense => slice.channels.min(cached.channels) as u64 * ks * ks + 8,
        ConvKind::Depthwise => ks * ks + 8,
    }
}

/// Simulates the tile-level double-buffered pipeline of Fig. 9b for one
/// layer and returns its timing.
///
/// `cached` is the layer's slice of the PB-resident SubGraph (pass
/// [`LayerSlice::empty`] for the "w/o PB" baselines).
#[must_use]
pub fn layer_timing(
    config: &AccelConfig,
    layer: &ConvLayerDesc,
    slice: &LayerSlice,
    cached: &LayerSlice,
) -> LayerTiming {
    if slice.is_empty() {
        return LayerTiming {
            layer: layer.id.0,
            cycles: CycleBreakdown::default(),
            traffic: TrafficBytes::default(),
        };
    }
    // Only a PB-equipped config can serve cached weights.
    let cached =
        if config.buffers.has_pb() { slice.intersect(cached) } else { LayerSlice::empty() };

    let pkb = per_kernel_bytes(layer, slice);
    let kernels_per_tile =
        ((config.buffers.db_bytes_each / pkb).max(1) as usize).min(slice.kernels);
    let num_tiles = slice.kernels.div_ceil(kernels_per_tile);

    let total_compute = compute_cycles(layer, slice, config.kp, config.cp);
    let compute_per_kernel = total_compute as f64 / slice.kernels as f64;

    let iact_bytes = layer.iact_bytes(slice);
    let oact_bytes = layer.oact_bytes(slice);
    let iact_cycles = config.offchip_cycles(iact_bytes);
    let oact_cycles = config.offchip_cycles(oact_bytes);

    // Per-tile fetch/compute/on-chip-read times.
    let cached_kernels = if cached.is_empty() { 0 } else { cached.kernels.min(slice.kernels) };
    let ckb = per_kernel_cached_bytes(layer, slice, &cached);
    let mut t_fetch = Vec::with_capacity(num_tiles);
    let mut t_comp = Vec::with_capacity(num_tiles);
    let mut t_onchip = Vec::with_capacity(num_tiles);
    let mut fetched_bytes = 0u64;
    let mut pb_bytes = 0u64;
    for t in 0..num_tiles {
        let k0 = t * kernels_per_tile;
        let k1 = ((t + 1) * kernels_per_tile).min(slice.kernels);
        let kn = (k1 - k0) as u64;
        let cached_in_tile = cached_kernels.clamp(k0, k1) - k0;
        let tile_cached = cached_in_tile as u64 * ckb;
        let tile_fetch = kn * pkb - tile_cached;
        fetched_bytes += tile_fetch;
        pb_bytes += tile_cached;
        t_fetch.push(config.offchip_cycles(tile_fetch));
        t_comp.push((compute_per_kernel * kn as f64).ceil() as u64);
        t_onchip.push(config.onchip_cycles(tile_cached));
    }

    // Pipeline: head (iAct load ∥ first fetch), steady state (compute tile
    // i−1 ∥ fetch tile i), tail (last compute + output flush).
    let mut cyc = CycleBreakdown::default();
    let head = iact_cycles.max(t_fetch[0]);
    if iact_cycles >= t_fetch[0] {
        cyc.offchip_iact += head;
    } else {
        cyc.offchip_weights += head;
    }
    for t in 1..num_tiles {
        let work = t_comp[t - 1].max(t_onchip[t - 1]);
        let stage = work.max(t_fetch[t]);
        if t_fetch[t] > work {
            cyc.offchip_weights += stage;
        } else if t_onchip[t - 1] > t_comp[t - 1] {
            cyc.onchip_weights += stage;
        } else {
            cyc.compute += stage;
        }
    }
    let last_work = t_comp[num_tiles - 1].max(t_onchip[num_tiles - 1]);
    if t_onchip[num_tiles - 1] > t_comp[num_tiles - 1] {
        cyc.onchip_weights += last_work;
    } else {
        cyc.compute += last_work;
    }
    // Output writeback: in-place OB accumulation lets all but the final
    // flush overlap compute; charge one tile's worth of oAct movement.
    cyc.offchip_oact += oact_cycles.div_ceil(num_tiles as u64);

    LayerTiming {
        layer: layer.id.0,
        cycles: cyc,
        traffic: TrafficBytes {
            offchip_iact: iact_bytes,
            offchip_weights: fetched_bytes,
            pb_weights: pb_bytes,
            offchip_oact: oact_bytes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::zcu104;
    use sushi_wsnet::layer::{LayerId, LayerRole};

    fn layer(kind: ConvKind, k: usize, c: usize, ks: usize, hw: usize) -> ConvLayerDesc {
        ConvLayerDesc {
            id: LayerId(0),
            name: "t".into(),
            stage: 0,
            block: 0,
            role: LayerRole::Spatial,
            kind,
            max_kernels: k,
            max_channels: c,
            max_kernel_size: ks,
            elastic_kernel: false,
            stride: 1,
            in_h: hw,
            in_w: hw,
        }
    }

    #[test]
    fn compute_cycles_dense_3x3() {
        let l = layer(ConvKind::Dense, 32, 36, 3, 8);
        // ceil(32/16)=2 k-tiles, ceil(36/18)=2 c-tiles, 64 pixels, 1 pass.
        assert_eq!(compute_cycles(&l, &l.max_slice(), 16, 18), 2 * 2 * 64);
    }

    #[test]
    fn compute_cycles_1x1_flattens_channels() {
        let l = layer(ConvKind::Dense, 16, 162, 1, 8);
        // ceil(162/(18*9)) = 1 channel tile.
        assert_eq!(compute_cycles(&l, &l.max_slice(), 16, 18), 64);
    }

    #[test]
    fn compute_cycles_5x5_decomposes_into_four_passes() {
        let l = layer(ConvKind::Dense, 16, 18, 5, 8);
        assert_eq!(compute_cycles(&l, &l.max_slice(), 16, 18), 4 * 64);
    }

    #[test]
    fn compute_cycles_depthwise_only_uses_rows() {
        let l = layer(ConvKind::Depthwise, 32, 1, 3, 8);
        assert_eq!(compute_cycles(&l, &LayerSlice::new(32, 1, 3), 16, 18), 2 * 64);
    }

    #[test]
    fn empty_slice_is_free() {
        let l = layer(ConvKind::Dense, 32, 32, 3, 8);
        let t = layer_timing(&zcu104(), &l, &LayerSlice::empty(), &LayerSlice::empty());
        assert_eq!(t.cycles.total(), 0);
        assert_eq!(t.traffic.offchip_total(), 0);
    }

    #[test]
    fn full_cache_hit_eliminates_offchip_weight_traffic() {
        let l = layer(ConvKind::Dense, 64, 64, 3, 14);
        let s = l.max_slice();
        let t = layer_timing(&zcu104(), &l, &s, &s);
        assert_eq!(t.traffic.offchip_weights, 0);
        assert_eq!(t.traffic.pb_weights, l.weight_bytes(&s));
    }

    #[test]
    fn no_cache_fetches_all_weights() {
        let l = layer(ConvKind::Dense, 64, 64, 3, 14);
        let s = l.max_slice();
        let t = layer_timing(&zcu104(), &l, &s, &LayerSlice::empty());
        assert_eq!(t.traffic.offchip_weights, l.weight_bytes(&s));
        assert_eq!(t.traffic.pb_weights, 0);
    }

    #[test]
    fn partial_cache_splits_traffic_conservatively() {
        let l = layer(ConvKind::Dense, 64, 64, 3, 14);
        let s = l.max_slice();
        let cached = LayerSlice::new(32, 64, 3);
        let t = layer_timing(&zcu104(), &l, &s, &cached);
        let total = l.weight_bytes(&s);
        assert_eq!(t.traffic.offchip_weights + t.traffic.pb_weights, total);
        assert!(t.traffic.pb_weights > 0 && t.traffic.offchip_weights > 0);
    }

    #[test]
    fn pb_disabled_config_ignores_cache() {
        let l = layer(ConvKind::Dense, 64, 64, 3, 14);
        let s = l.max_slice();
        let cfg = zcu104().without_pb();
        let t = layer_timing(&cfg, &l, &s, &s);
        assert_eq!(t.traffic.pb_weights, 0);
        assert_eq!(t.traffic.offchip_weights, l.weight_bytes(&s));
    }

    #[test]
    fn caching_never_increases_latency() {
        let cfg = zcu104();
        for (k, c, hw) in [(64, 64, 28), (256, 256, 7), (720, 720, 7), (88, 88, 56)] {
            let l = layer(ConvKind::Dense, k, c, 3, hw);
            let s = l.max_slice();
            let without = layer_timing(&cfg, &l, &s, &LayerSlice::empty()).cycles.total();
            let with = layer_timing(&cfg, &l, &s, &s).cycles.total();
            assert!(with <= without, "k={k} c={c} hw={hw}: {with} > {without}");
        }
    }

    #[test]
    fn memory_bound_layer_benefits_from_cache() {
        // 1x1 conv on a tiny 2x2 feature map: negligible compute, heavy
        // weights -> memory bound (cf. SE/head layers).
        let l = layer(ConvKind::Dense, 2048, 720, 1, 2);
        let cfg = zcu104();
        let s = l.max_slice();
        let without = layer_timing(&cfg, &l, &s, &LayerSlice::empty()).cycles.total();
        let with = layer_timing(&cfg, &l, &s, &s).cycles.total();
        assert!(
            (with as f64) < 0.7 * without as f64,
            "expected >30% saving on memory-bound layer: {with} vs {without}"
        );
    }

    #[test]
    fn compute_bound_layer_hides_weight_fetch() {
        // 3x3 conv at 56x56 with few weights: compute dominates, fetch hidden.
        let l = layer(ConvKind::Dense, 88, 88, 3, 56);
        let cfg = zcu104();
        let s = l.max_slice();
        let t = layer_timing(&cfg, &l, &s, &LayerSlice::empty());
        assert!(t.cycles.compute > t.cycles.offchip_weights);
    }

    #[test]
    fn breakdown_total_is_sum_of_buckets() {
        let l = layer(ConvKind::Dense, 256, 256, 3, 14);
        let t = layer_timing(&zcu104(), &l, &l.max_slice(), &LayerSlice::empty());
        let c = t.cycles;
        assert_eq!(
            c.total(),
            c.compute + c.offchip_iact + c.offchip_weights + c.onchip_weights + c.offchip_oact
        );
        assert!(c.total() > 0);
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let l = layer(ConvKind::Dense, 512, 512, 3, 7);
        let s = l.max_slice();
        let slow = zcu104();
        let mut fast = zcu104();
        fast.offchip_gbps = 38.4;
        let t_slow = layer_timing(&slow, &l, &s, &LayerSlice::empty()).cycles.total();
        let t_fast = layer_timing(&fast, &l, &s, &LayerSlice::empty()).cycles.total();
        assert!(t_fast <= t_slow);
    }

    #[test]
    fn traffic_bytes_match_layer_math() {
        let l = layer(ConvKind::Dense, 64, 32, 3, 14);
        let s = l.max_slice();
        let t = layer_timing(&zcu104(), &l, &s, &LayerSlice::empty());
        assert_eq!(t.traffic.offchip_iact, l.iact_bytes(&s));
        assert_eq!(t.traffic.offchip_oact, l.oact_bytes(&s));
        assert_eq!(t.traffic.offchip_weights, l.weight_bytes(&s));
    }
}
