//! Buffer bandwidth requirements (Table 1) and allocation sanity checks.
//!
//! Table 1 expresses each on-chip buffer's minimal width (bytes per cycle)
//! as the least common multiple of the producers/consumers it bridges:
//! a buffer filled from DRAM and drained by the DPE array needs a width
//! compatible with both.

use serde::{Deserialize, Serialize};

use crate::config::{AccelConfig, DPE_SIZE};

/// Buffer identity for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferKind {
    /// Ping-pong dynamic (distinct-weight) buffer.
    Db,
    /// Streaming buffer (whole-layer iActs).
    Sb,
    /// Line buffer (sliding windows).
    Lb,
    /// Output buffer (partial sums).
    Ob,
    /// Persistent buffer (cached SubGraph).
    Pb,
}

impl BufferKind {
    /// Short display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BufferKind::Db => "DB",
            BufferKind::Sb => "SB",
            BufferKind::Lb => "LB",
            BufferKind::Ob => "OB",
            BufferKind::Pb => "PB",
        }
    }
}

/// A Table-1 row: buffer and its minimal bandwidth in bytes/cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthRequirement {
    /// Which buffer.
    pub buffer: BufferKind,
    /// Minimal width in bytes per cycle.
    pub bytes_per_cycle: u64,
}

/// Least common multiple.
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Greatest common divisor (Euclid).
#[must_use]
pub fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Computes the Table-1 bandwidth requirements for a configuration and a
/// kernel footprint `r × s` (iAct data width 1 byte, oAct 1 byte).
#[must_use]
pub fn bandwidth_requirements(
    config: &AccelConfig,
    r: usize,
    s: usize,
) -> Vec<BandwidthRequirement> {
    let offchip = config.offchip_bytes_per_cycle().ceil() as u64;
    // The DPE array demands KP·CP·9 weight bytes per cycle at full rate.
    let dpe_demand = (config.kp * config.cp * DPE_SIZE) as u64;
    let sb_demand = (config.cp * r * s) as u64; // CP × R × S × iAct width
    let ob_demand = config.kp as u64; // KP × oAct width
    vec![
        BandwidthRequirement { buffer: BufferKind::Db, bytes_per_cycle: lcm(offchip, dpe_demand) },
        BandwidthRequirement { buffer: BufferKind::Sb, bytes_per_cycle: lcm(offchip, sb_demand) },
        BandwidthRequirement { buffer: BufferKind::Lb, bytes_per_cycle: dpe_demand },
        BandwidthRequirement { buffer: BufferKind::Ob, bytes_per_cycle: ob_demand },
        BandwidthRequirement { buffer: BufferKind::Pb, bytes_per_cycle: lcm(offchip, dpe_demand) },
    ]
}

/// Checks that the buffer split fits a total on-chip budget, returning the
/// slack in bytes (negative means over budget).
#[must_use]
pub fn budget_slack(config: &AccelConfig, total_budget_bytes: u64) -> i64 {
    total_budget_bytes as i64 - config.buffers.total_bytes() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::zcu104;

    #[test]
    fn gcd_and_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(12, 18), 36);
        assert_eq!(lcm(7, 13), 91);
        assert_eq!(lcm(0, 5), 0);
    }

    #[test]
    fn lcm_is_multiple_of_both() {
        for (a, b) in [(192, 2592), (192, 162), (64, 48)] {
            let l = lcm(a, b);
            assert_eq!(l % a, 0);
            assert_eq!(l % b, 0);
        }
    }

    #[test]
    fn table1_has_all_five_buffers() {
        let rows = bandwidth_requirements(&zcu104(), 3, 3);
        assert_eq!(rows.len(), 5);
        let kinds: Vec<_> = rows.iter().map(|r| r.buffer).collect();
        assert!(kinds.contains(&BufferKind::Pb) && kinds.contains(&BufferKind::Lb));
    }

    #[test]
    fn db_and_pb_have_identical_requirements() {
        // Table 1: both bridge off-chip BW and the DPE demand.
        let rows = bandwidth_requirements(&zcu104(), 3, 3);
        let get = |k: BufferKind| rows.iter().find(|r| r.buffer == k).unwrap().bytes_per_cycle;
        assert_eq!(get(BufferKind::Db), get(BufferKind::Pb));
    }

    #[test]
    fn ob_requirement_is_kp() {
        let c = zcu104();
        let rows = bandwidth_requirements(&c, 3, 3);
        let ob = rows.iter().find(|r| r.buffer == BufferKind::Ob).unwrap();
        assert_eq!(ob.bytes_per_cycle, c.kp as u64);
    }

    #[test]
    fn larger_kernel_raises_sb_requirement() {
        let c = zcu104();
        let r3 = bandwidth_requirements(&c, 3, 3);
        let r7 = bandwidth_requirements(&c, 7, 7);
        let sb = |rows: &[BandwidthRequirement]| {
            rows.iter().find(|r| r.buffer == BufferKind::Sb).unwrap().bytes_per_cycle
        };
        assert!(sb(&r7) >= sb(&r3));
    }

    #[test]
    fn zcu104_fits_its_board_budget() {
        // ZCU104: 11 Mb BRAM + 27 Mb URAM ≈ 4.75 MB on-chip.
        let slack = budget_slack(&zcu104(), 4_980_736);
        assert!(slack >= 0, "over budget by {} bytes", -slack);
    }
}
