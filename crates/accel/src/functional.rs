//! End-to-end functional forward pass over a materialized SubNet.
//!
//! Chains the DPE-array datapath ([`crate::dpe::DpeArray`]) across the
//! SubNet's active layers — including residual connections, squeeze-excite
//! gating and the pooled classifier head — on real int8 data. Used by the
//! `functional_inference` example and the cross-crate validation tests;
//! full-size experiments use timing-only mode instead.

use sushi_ir::{Plan, Step};
use sushi_tensor::ops::activation::Activation;
use sushi_tensor::ops::conv::{conv2d_i8_fused, Conv2dParams};
use sushi_tensor::ops::pool::{global_avg_pool, max_pool, PoolParams};
use sushi_tensor::quant::{dequantize_tensor, quantize_tensor};
use sushi_tensor::{
    Arena, Epilogue, PackLayout, PackedConv2d, QuantParams, Shape4, Tensor, TensorError,
};
use sushi_wsnet::arch::NO_STAGE;
use sushi_wsnet::layer::{ConvKind, ConvLayerDesc, LayerRole, LayerSlice};
use sushi_wsnet::{Family, SubGraph, SubNet, SuperNet, WeightStore};

use crate::dpe::DpeArray;

/// Activation quantization shared across the network (symmetric ±8 range).
const ACT_Q: QuantParams = QuantParams { scale: 8.0 / 127.0, zero_point: 0 };

/// Conv hyper-parameters for one layer under one SubNet slice — the single
/// source shared by the per-query runtime and the pack-once cache builder.
fn layer_conv_params(layer: &ConvLayerDesc, slice: &LayerSlice) -> Conv2dParams {
    let groups = match layer.kind {
        ConvKind::Dense => 1,
        ConvKind::Depthwise => slice.kernels,
    };
    Conv2dParams::new(slice.kernel_size, slice.kernel_size)
        .with_stride(layer.stride)
        .with_padding(slice.kernel_size / 2)
        .with_groups(groups)
}

/// Install-time state for one conv the IR lowered onto the fused k-pair
/// datapath: pair-interleaved weight panels plus the baked
/// bias/requantization/activation epilogue the microkernel applies at
/// writeback. Built once per cache install, read in place per query.
#[derive(Debug, Clone)]
pub struct FusedLayer {
    /// K-pair packed weight panels for the `pmaddwd` microkernel.
    pub packed: PackedConv2d,
    /// The fused writeback: bias + (per-channel) requantization +
    /// activation.
    pub epilogue: Epilogue,
}

/// One layer's install-time state: the sliced weights/bias (so queries
/// never re-slice the shared SuperNet store) plus, for dense layers, the
/// panel-packed weight matrix the GEMM fast path reads in place.
#[derive(Debug, Clone)]
pub struct CachedLayer {
    /// Weights sliced to the SubNet (`(K, C/g, R, S)`).
    pub weights: Tensor<i8>,
    /// Bias sliced to the SubNet.
    pub bias: Vec<i32>,
    /// Weight quantization.
    pub w_q: QuantParams,
    /// Pre-packed GEMM panels (dense layers only; depthwise stays on the
    /// direct schedule, which reads `weights` directly).
    pub packed: Option<PackedConv2d>,
    /// Fused-datapath state when the IR plan routed this layer through the
    /// k-pair kernel ([`SubgraphCache::build_fused`] installs only).
    pub fused: Option<FusedLayer>,
    /// The conv hyper-parameters the slice resolves to.
    pub params: Conv2dParams,
}

/// Install-time weight state for one SubGraph: what the paper's Persistent
/// Buffer holds, in host-software form.
///
/// Built **once** per cache install ([`SubgraphCache::build`], or
/// [`crate::exec::Accelerator::install_cache_with_weights`]); every
/// subsequent [`forward_cached`] / [`forward_batch_cached`] under the same
/// SubGraph reads the sliced weights and packed panels in place. Weight
/// slicing and packing are thereby *subgraph-stationary*: their cost is
/// charged once per install and amortized across all queries served under
/// the cached SubGraph, never paid per query (pinned by
/// `tests/pack_once.rs` via [`sushi_tensor::ops::pack::pack_invocations`]).
#[derive(Debug, Clone)]
pub struct SubgraphCache {
    layers: Vec<Option<CachedLayer>>,
    graph: SubGraph,
    /// The lowered IR plan ([`SubgraphCache::build_fused`] installs only);
    /// its presence routes [`forward_cached`] through the fused executor.
    plan: Option<Plan>,
}

impl SubgraphCache {
    /// Slices and packs every active layer of `graph` out of `store`.
    ///
    /// # Errors
    /// Returns an error when a layer's weights cannot be packed
    /// (inconsistent zoo definitions — a programming error).
    pub fn build(
        net: &SuperNet,
        store: &WeightStore,
        graph: &SubGraph,
    ) -> Result<Self, TensorError> {
        let mut layers = Vec::with_capacity(net.num_layers());
        for (idx, layer) in net.layers.iter().enumerate() {
            let slice = graph.slice(idx);
            if slice.is_empty() {
                layers.push(None);
                continue;
            }
            let weights = store
                .slice_tensor(idx, &slice)
                .ok_or(TensorError::InvalidParam { what: "active slice without weights" })?;
            let bias = store.bias_slice(idx, &slice).to_vec();
            let w_q = store.layer(idx).w_q;
            let params = layer_conv_params(layer, &slice);
            let packed = match layer.kind {
                ConvKind::Dense => Some(PackedConv2d::pack(&weights, w_q, &params)?),
                ConvKind::Depthwise => None,
            };
            layers.push(Some(CachedLayer { weights, bias, w_q, packed, fused: None, params }));
        }
        Ok(Self { layers, graph: graph.clone(), plan: None })
    }

    /// [`SubgraphCache::build`] plus the IR lowering: translates `subnet` to
    /// the typed op-graph, runs the fusion rewrites, lowers the plan, and
    /// for every conv the plan routed onto the k-pair datapath packs
    /// pair-interleaved panels and bakes the bias/requant/activation
    /// [`Epilogue`]. [`forward_cached`] under this cache executes the plan;
    /// logits stay bit-identical to [`SubgraphCache::build`] installs
    /// (pinned by `tests/proptest_fusion.rs`).
    ///
    /// # Errors
    /// Returns an error when weights cannot be packed or the SubNet's IR
    /// fails to build, normalize or lower (inconsistent zoo definitions —
    /// a programming error).
    pub fn build_fused(
        net: &SuperNet,
        store: &WeightStore,
        subnet: &SubNet,
    ) -> Result<Self, TensorError> {
        let mut cache = Self::build(net, store, &subnet.graph)?;
        let plan = sushi_wsnet::ir_build::build_plan(net, subnet)
            .map_err(|_| TensorError::InvalidParam { what: "SubNet IR failed to lower" })?;
        for step in &plan.steps {
            let Step::FusedConv { layer, bias, act, bn, .. } = step else {
                continue;
            };
            let cl = cache.layers[*layer]
                .as_mut()
                .ok_or(TensorError::InvalidParam { what: "fused step on an inactive layer" })?;
            let packed =
                PackedConv2d::pack_with_layout(&cl.weights, cl.w_q, &cl.params, PackLayout::KPair)?;
            let kernels = cl.weights.shape().n;
            let bias_vec = if *bias { cl.bias.clone() } else { vec![0i32; kernels] };
            // Same accumulator→output rescale expression as the unfused
            // datapath (`conv2d_i8_in`), so the no-batch-norm epilogue is
            // bit-identical to requantize-then-activate.
            let acc_scale = ACT_Q.scale * cl.w_q.scale / ACT_Q.scale;
            let epilogue = match bn {
                None => Epilogue::uniform(bias_vec, acc_scale, ACT_Q, *act)?,
                Some(fold) => {
                    let scales = fold.scale.iter().map(|s| acc_scale * s).collect();
                    // IR batch-norm offsets are in real units; the epilogue
                    // wants output quanta.
                    let offsets = fold.offset.iter().map(|o| o / ACT_Q.scale).collect();
                    Epilogue::per_channel(bias_vec, scales, offsets, ACT_Q, *act)?
                }
            };
            cl.fused = Some(FusedLayer { packed, epilogue });
        }
        cache.plan = Some(plan);
        Ok(cache)
    }

    /// The lowered IR plan, when this cache was built with
    /// [`SubgraphCache::build_fused`].
    #[must_use]
    pub fn plan(&self) -> Option<&Plan> {
        self.plan.as_ref()
    }

    /// Number of layers holding fused k-pair state.
    #[must_use]
    pub fn fused_layers(&self) -> usize {
        self.layers.iter().flatten().filter(|l| l.fused.is_some()).count()
    }

    /// Whether this cache was built for exactly `graph`.
    #[must_use]
    pub fn matches(&self, graph: &SubGraph) -> bool {
        &self.graph == graph
    }

    /// The cached state for layer `idx` (`None` when inactive).
    #[must_use]
    pub fn layer(&self, idx: usize) -> Option<&CachedLayer> {
        self.layers.get(idx).and_then(Option::as_ref)
    }

    /// Number of layers holding pre-packed GEMM panels.
    #[must_use]
    pub fn packed_layers(&self) -> usize {
        self.layers.iter().flatten().filter(|l| l.packed.is_some()).count()
    }

    /// Bytes held by the packed panels (excluding the sliced weight copies).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.layers
            .iter()
            .flatten()
            .filter_map(|l| l.packed.as_ref())
            .map(|p| p.packed_bytes())
            .sum()
    }
}

/// Output of a functional forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalOutput {
    /// Dequantized classifier scores.
    pub logits: Vec<f32>,
    /// Index of the maximum score.
    pub prediction: usize,
}

/// Runs a full int8 forward pass of `subnet` on `input`.
///
/// `input` must be an NCHW `(1, 3, H, W)` tensor quantized with the
/// activation parameters returned by [`act_quant`], at the SuperNet's input
/// resolution.
///
/// Every convolution executes through `dpe`, so the array's
/// [`sushi_tensor::KernelPolicy`] (see [`DpeArray::with_policy`]) governs
/// host-simulation speed: `Naive` pins the cycle-faithful tiled schedule,
/// `Auto`/`Im2colGemm` route large dense layers through the bit-identical
/// im2col + blocked-GEMM fast path. Logits are unaffected by the policy.
///
/// # Errors
/// Returns an error when the input shape does not match the SuperNet, or a
/// layer fails to execute (programming error in the zoo definitions).
pub fn forward(
    dpe: &DpeArray,
    net: &SuperNet,
    store: &WeightStore,
    subnet: &SubNet,
    input: &Tensor<i8>,
) -> Result<FunctionalOutput, TensorError> {
    forward_cached(dpe, net, store, subnet, None, &mut Arena::new(), input)
}

/// [`forward`] with install-time state: an optional [`SubgraphCache`] whose
/// sliced weights and packed panels are read in place, and a caller-owned
/// [`Arena`] reused across queries so the steady state performs no
/// per-query scratch allocation. Logits are bit-identical to the uncached
/// path under every [`sushi_tensor::KernelPolicy`].
///
/// # Errors
/// Returns an error when the input shape does not match the SuperNet, the
/// cache was built for a different SubGraph, or a layer fails to execute.
pub fn forward_cached(
    dpe: &DpeArray,
    net: &SuperNet,
    store: &WeightStore,
    subnet: &SubNet,
    cache: Option<&SubgraphCache>,
    arena: &mut Arena,
    input: &Tensor<i8>,
) -> Result<FunctionalOutput, TensorError> {
    let expect = Shape4::new(1, 3, net.input_hw, net.input_hw);
    if input.shape() != expect {
        return Err(TensorError::ShapeMismatch {
            what: "network input",
            lhs: input.shape(),
            rhs: expect,
        });
    }
    let mut rt = Runtime::new(dpe, net, store, subnet, cache, arena)?;
    let logits_t = rt.run(input)?;
    Ok(split_outputs(&logits_t).remove(0))
}

/// Runs one int8 forward pass over a whole batch of inputs at once.
///
/// Each input must be a `(1, 3, H, W)` tensor quantized with [`act_quant`]
/// at the SuperNet's input resolution. The inputs are stacked along the
/// batch dimension and flow through the datapath as a single `(B, 3, H, W)`
/// pass — every convolution touches each weight once per *batch* instead of
/// once per *query*, the within-batch analogue of SubGraph-Stationary
/// reuse. Outputs are returned in input order.
///
/// Batching is a speed knob, never semantics: int8 accumulation per output
/// element is independent of the batch dimension, so
/// `forward_batch(&[a, b])` returns bit-identical logits to
/// `[forward(a), forward(b)]` under every [`sushi_tensor::KernelPolicy`]
/// (pinned by `tests/proptest_batch.rs`).
///
/// # Errors
/// Returns an error when the batch is empty, an input shape does not match
/// the SuperNet, or a layer fails to execute.
pub fn forward_batch(
    dpe: &DpeArray,
    net: &SuperNet,
    store: &WeightStore,
    subnet: &SubNet,
    inputs: &[Tensor<i8>],
) -> Result<Vec<FunctionalOutput>, TensorError> {
    forward_batch_cached(dpe, net, store, subnet, None, &mut Arena::new(), inputs)
}

/// [`forward_batch`] with install-time state; see [`forward_cached`].
///
/// # Errors
/// Returns an error when the batch is empty, an input shape does not match
/// the SuperNet, the cache was built for a different SubGraph, or a layer
/// fails to execute.
pub fn forward_batch_cached(
    dpe: &DpeArray,
    net: &SuperNet,
    store: &WeightStore,
    subnet: &SubNet,
    cache: Option<&SubgraphCache>,
    arena: &mut Arena,
    inputs: &[Tensor<i8>],
) -> Result<Vec<FunctionalOutput>, TensorError> {
    if inputs.is_empty() {
        return Err(TensorError::InvalidParam { what: "forward_batch on empty batch" });
    }
    let expect = Shape4::new(1, 3, net.input_hw, net.input_hw);
    let mut data = Vec::with_capacity(expect.volume() * inputs.len());
    for input in inputs {
        if input.shape() != expect {
            return Err(TensorError::ShapeMismatch {
                what: "network input",
                lhs: input.shape(),
                rhs: expect,
            });
        }
        data.extend_from_slice(input.as_slice());
    }
    let stacked = Tensor::from_vec(Shape4::new(inputs.len(), 3, net.input_hw, net.input_hw), data)?;
    let mut rt = Runtime::new(dpe, net, store, subnet, cache, arena)?;
    let logits_t = rt.run(&stacked)?;
    Ok(split_outputs(&logits_t))
}

/// Splits a `(B, classes, 1, 1)` logits tensor into per-item outputs.
fn split_outputs(logits_t: &Tensor<f32>) -> Vec<FunctionalOutput> {
    let shape = logits_t.shape();
    let per_item = shape.volume() / shape.n;
    logits_t
        .as_slice()
        .chunks_exact(per_item)
        .map(|logits| FunctionalOutput {
            logits: logits.to_vec(),
            prediction: sushi_tensor::ops::linear::argmax(logits).unwrap_or(0),
        })
        .collect()
}

/// The activation quantization used by [`forward`]; quantize inputs with it.
#[must_use]
pub fn act_quant() -> QuantParams {
    ACT_Q
}

struct Runtime<'a> {
    dpe: &'a DpeArray,
    net: &'a SuperNet,
    store: &'a WeightStore,
    subnet: &'a SubNet,
    cache: Option<&'a SubgraphCache>,
    arena: &'a mut Arena,
}

impl<'a> Runtime<'a> {
    fn new(
        dpe: &'a DpeArray,
        net: &'a SuperNet,
        store: &'a WeightStore,
        subnet: &'a SubNet,
        cache: Option<&'a SubgraphCache>,
        arena: &'a mut Arena,
    ) -> Result<Self, TensorError> {
        if let Some(c) = cache {
            if !c.matches(&subnet.graph) {
                return Err(TensorError::InvalidParam {
                    what: "weight cache built for a different SubGraph",
                });
            }
        }
        Ok(Self { dpe, net, store, subnet, cache, arena })
    }

    fn slice(&self, idx: usize) -> LayerSlice {
        self.subnet.graph.slice(idx)
    }

    fn layer_active(&self, idx: usize) -> bool {
        !self.slice(idx).is_empty()
    }

    /// Applies conv layer `idx` to `x` (which must have the slice's input
    /// channels), returning int8 activations (no nonlinearity).
    ///
    /// With an installed [`SubgraphCache`] the per-query work touches only
    /// install-time state: sliced weights, bias and packed panels are read
    /// in place, and all scratch comes from the reused arena.
    fn conv(&mut self, idx: usize, x: &Tensor<i8>) -> Result<Tensor<i8>, TensorError> {
        if let Some(cl) = self.cache.and_then(|c| c.layer(idx)) {
            return self.dpe.conv2d_i8_in(
                self.arena,
                x,
                ACT_Q,
                &cl.weights,
                cl.w_q,
                cl.packed.as_ref(),
                Some(&cl.bias),
                ACT_Q,
                &cl.params,
            );
        }
        let layer = &self.net.layers[idx];
        let slice = self.slice(idx);
        let weights = self
            .store
            .slice_tensor(idx, &slice)
            .ok_or(TensorError::InvalidParam { what: "conv on inactive layer" })?;
        let bias = self.store.bias_slice(idx, &slice);
        let params = layer_conv_params(layer, &slice);
        self.dpe.conv2d_i8_in(
            self.arena,
            x,
            ACT_Q,
            &weights,
            self.store.layer(idx).w_q,
            None,
            Some(bias),
            ACT_Q,
            &params,
        )
    }

    fn conv_act(
        &mut self,
        idx: usize,
        x: &Tensor<i8>,
        act: Activation,
    ) -> Result<Tensor<i8>, TensorError> {
        let y = self.conv(idx, x)?;
        Ok(apply_activation(&y, act))
    }

    /// Runs the datapath on a (possibly batched) input, returning the
    /// dequantized `(B, classes, 1, 1)` logits tensor.
    ///
    /// A cache installed with [`SubgraphCache::build_fused`] carries a
    /// lowered IR plan; execution then goes through the slot machine in
    /// [`Runtime::run_plan`] (fused convs on the k-pair kernel). Otherwise
    /// this is the per-layer interpreter.
    fn run(&mut self, input: &Tensor<i8>) -> Result<Tensor<f32>, TensorError> {
        if let Some(plan) = self.cache.and_then(SubgraphCache::plan) {
            return self.run_plan(plan, input);
        }
        let layers = &self.net.layers;
        let mut idx = 0usize;
        // Stem.
        debug_assert_eq!(layers[idx].role, LayerRole::Stem);
        let mut x = self.conv_act(idx, input, Activation::Relu)?;
        idx += 1;
        if self.net.family == Family::OfaResNet50 {
            // Stem max-pool (3x3, stride 2) on the real datapath.
            x = i8_max_pool(&x, &PoolParams { window: 3, stride: 2, padding: 1 })?;
        }
        // Stages.
        while idx < layers.len() && layers[idx].stage != NO_STAGE {
            let (next_idx, y) = self.run_block(idx, &x)?;
            if let Some(y) = y {
                x = y;
            }
            idx = next_idx;
        }
        // Head: global pool then 1x1 convs on pooled features.
        let pooled_f = global_avg_pool(&dequantize_tensor(&x, ACT_Q));
        let mut h = quantize_tensor(&pooled_f, ACT_Q);
        let mut last = h.clone();
        while idx < layers.len() {
            debug_assert_eq!(layers[idx].role, LayerRole::Head);
            let act = if idx + 1 < layers.len() { Activation::Relu } else { Activation::None };
            h = self.conv_act(idx, &h, act)?;
            last = h.clone();
            idx += 1;
        }
        Ok(dequantize_tensor(&last, ACT_Q))
    }

    /// Executes a lowered IR plan: steps in order over a dense slot table,
    /// freeing each slot after its last read (`drop_after`), so peak memory
    /// matches the sequential interpreter. Fused conv steps run the k-pair
    /// `pmaddwd` kernel with the baked epilogue; everything else reuses the
    /// interpreter's primitives, so logits are bit-identical either way.
    fn run_plan(&mut self, plan: &Plan, input: &Tensor<i8>) -> Result<Tensor<f32>, TensorError> {
        fn fetch(slots: &[Option<Tensor<i8>>], s: usize) -> Result<&Tensor<i8>, TensorError> {
            slots
                .get(s)
                .and_then(Option::as_ref)
                .ok_or(TensorError::InvalidParam { what: "plan read an empty slot" })
        }
        let mut slots: Vec<Option<Tensor<i8>>> = vec![None; plan.slots];
        slots[plan.input_slot] = Some(input.clone());
        for (i, step) in plan.steps.iter().enumerate() {
            let (dst, out) = match *step {
                Step::Conv { layer, act, src, dst, .. } => {
                    let x = fetch(&slots, src)?;
                    (dst, self.conv_act(layer, x, act)?)
                }
                Step::FusedConv { layer, src, dst, .. } => {
                    let cl = self
                        .cache
                        .and_then(|c| c.layer(layer))
                        .ok_or(TensorError::InvalidParam { what: "fused step without cache" })?;
                    let fl = cl.fused.as_ref().ok_or(TensorError::InvalidParam {
                        what: "fused step without k-pair panels",
                    })?;
                    let x = fetch(&slots, src)?;
                    let y = conv2d_i8_fused(
                        x,
                        ACT_Q,
                        &fl.packed,
                        &fl.epilogue,
                        &cl.params,
                        self.arena,
                    )?;
                    (dst, y)
                }
                Step::Act { act, src, dst } => (dst, apply_activation(fetch(&slots, src)?, act)),
                Step::Add { a, b, act, dst } => {
                    let sum = saturating_add_i8(fetch(&slots, a)?, fetch(&slots, b)?)?;
                    (dst, apply_activation(&sum, act))
                }
                Step::SqueezeExcite { reduce, expand, src, dst } => {
                    let x = fetch(&slots, src)?;
                    (dst, self.squeeze_excite(reduce, expand, x)?)
                }
                Step::MaxPool { window, stride, padding, src, dst } => {
                    let p = PoolParams { window, stride, padding };
                    (dst, i8_max_pool(fetch(&slots, src)?, &p)?)
                }
                Step::GlobalAvgPool { src, dst } => {
                    let x = fetch(&slots, src)?;
                    (dst, quantize_tensor(&global_avg_pool(&dequantize_tensor(x, ACT_Q)), ACT_Q))
                }
            };
            slots[dst] = Some(out);
            for &s in &plan.drop_after[i] {
                slots[s] = None;
            }
        }
        let last = slots[plan.logits_slot]
            .take()
            .ok_or(TensorError::InvalidParam { what: "plan finished with empty logits slot" })?;
        Ok(dequantize_tensor(&last, ACT_Q))
    }

    /// Executes one block starting at layer `idx`; returns the index after
    /// the block and the block output (`None` when the block is inactive).
    fn run_block(
        &mut self,
        idx: usize,
        x: &Tensor<i8>,
    ) -> Result<(usize, Option<Tensor<i8>>), TensorError> {
        let layers = &self.net.layers;
        let stage = layers[idx].stage;
        let block = layers[idx].block;
        let mut end = idx;
        while end < layers.len() && layers[end].stage == stage && layers[end].block == block {
            end += 1;
        }
        if !self.layer_active(idx) {
            return Ok((end, None));
        }
        let find =
            |role: LayerRole| -> Option<usize> { (idx..end).find(|&i| layers[i].role == role) };
        match self.net.family {
            Family::OfaResNet50 => {
                let c1 = find(LayerRole::Expand).expect("bottleneck conv1");
                let c2 = find(LayerRole::Spatial).expect("bottleneck conv2");
                let c3 = find(LayerRole::Project).expect("bottleneck conv3");
                let y = self.conv_act(c1, x, Activation::Relu)?;
                let y = self.conv_act(c2, &y, Activation::Relu)?;
                let y = self.conv(c3, &y)?;
                let identity = if let Some(ds) = find(LayerRole::Downsample) {
                    Some(self.conv(ds, x)?)
                } else if x.shape() == y.shape() {
                    Some(x.clone())
                } else {
                    None
                };
                let summed = match identity {
                    Some(id) => saturating_add_i8(&y, &id)?,
                    None => y,
                };
                Ok((end, Some(apply_activation(&summed, Activation::Relu))))
            }
            Family::OfaMobileNetV3 => {
                let ex = find(LayerRole::Expand).expect("mbconv expand");
                let dw = find(LayerRole::Spatial).expect("mbconv depthwise");
                let pj = find(LayerRole::Project).expect("mbconv project");
                let y = self.conv_act(ex, x, Activation::HSwish)?;
                let mut y = self.conv_act(dw, &y, Activation::HSwish)?;
                if let (Some(se_r), Some(se_e)) =
                    (find(LayerRole::SeReduce), find(LayerRole::SeExpand))
                {
                    y = self.squeeze_excite(se_r, se_e, &y)?;
                }
                let y = self.conv(pj, &y)?;
                let out = if x.shape() == y.shape() { saturating_add_i8(&y, x)? } else { y };
                Ok((end, Some(out)))
            }
        }
    }

    /// SE module: pooled 1×1 reduce (ReLU) → 1×1 expand (h-sigmoid) →
    /// channel-wise rescale of `y`.
    fn squeeze_excite(
        &mut self,
        se_r: usize,
        se_e: usize,
        y: &Tensor<i8>,
    ) -> Result<Tensor<i8>, TensorError> {
        let pooled = quantize_tensor(&global_avg_pool(&dequantize_tensor(y, ACT_Q)), ACT_Q);
        let g = self.conv_act(se_r, &pooled, Activation::Relu)?;
        let g = self.conv(se_e, &g)?;
        let gate_f = Activation::HSigmoid.apply_tensor(&dequantize_tensor(&g, ACT_Q));
        // Channel-wise multiply in the dequantized domain, then requantize.
        // Gates are per (batch item, channel): pooling and the SE convs all
        // preserve the batch dimension.
        let mut yf = dequantize_tensor(y, ACT_Q);
        let shape = yf.shape();
        for n in 0..shape.n {
            for c in 0..shape.c {
                let gv = gate_f.get(n, c, 0, 0);
                for h in 0..shape.h {
                    for v in yf.row_mut(n, c, h) {
                        *v *= gv;
                    }
                }
            }
        }
        Ok(quantize_tensor(&yf, ACT_Q))
    }

    #[allow(dead_code)]
    fn layer_desc(&self, idx: usize) -> &ConvLayerDesc {
        &self.net.layers[idx]
    }
}

/// Int8 activation: ReLU is exact on zero-point-0 data; the h-family applies
/// in the dequantized domain and requantizes.
fn apply_activation(x: &Tensor<i8>, act: Activation) -> Tensor<i8> {
    match act {
        Activation::None => x.clone(),
        Activation::Relu => x.map(|v| v.max(0)),
        _ => quantize_tensor(&act.apply_tensor(&dequantize_tensor(x, ACT_Q)), ACT_Q),
    }
}

/// Saturating elementwise int8 add of equal-scale activations.
fn saturating_add_i8(a: &Tensor<i8>, b: &Tensor<i8>) -> Result<Tensor<i8>, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            what: "residual add",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x.saturating_add(y)).collect();
    Tensor::from_vec(a.shape(), data)
}

/// Max-pool on int8 data (monotone quantization makes this exact).
fn i8_max_pool(x: &Tensor<i8>, p: &PoolParams) -> Result<Tensor<i8>, TensorError> {
    let f = dequantize_tensor(x, ACT_Q);
    Ok(quantize_tensor(&max_pool(&f, p)?, ACT_Q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_tensor::DetRng;
    use sushi_wsnet::zoo;

    fn rand_input(net: &SuperNet, seed: u64) -> Tensor<i8> {
        let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
        let mut rng = DetRng::new(seed);
        let f = Tensor::from_vec(
            shape,
            (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect(),
        )
        .unwrap();
        quantize_tensor(&f, ACT_Q)
    }

    #[test]
    fn toy_resnet_forward_produces_logits() {
        let net = zoo::toy_supernet();
        let store = WeightStore::synthesize(&net, 11);
        let sn = net.materialize("max", &net.max_config()).unwrap();
        let out = forward(&DpeArray::new(4, 4), &net, &store, &sn, &rand_input(&net, 1)).unwrap();
        assert_eq!(out.logits.len(), net.head_channels[0]);
        assert!(out.prediction < out.logits.len());
    }

    #[test]
    fn toy_mobilenet_forward_produces_logits() {
        let net = zoo::toy_mobilenet_supernet();
        let store = WeightStore::synthesize(&net, 12);
        let sn = net.materialize("max", &net.max_config()).unwrap();
        let out = forward(&DpeArray::new(4, 4), &net, &store, &sn, &rand_input(&net, 2)).unwrap();
        assert_eq!(out.logits.len(), *net.head_channels.last().unwrap());
    }

    #[test]
    fn forward_is_deterministic() {
        let net = zoo::toy_supernet();
        let store = WeightStore::synthesize(&net, 13);
        let sn = net.materialize("min", &net.min_config()).unwrap();
        let x = rand_input(&net, 3);
        let a = forward(&DpeArray::new(2, 3), &net, &store, &sn, &x).unwrap();
        let b = forward(&DpeArray::new(2, 3), &net, &store, &sn, &x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn forward_independent_of_dpe_geometry() {
        let net = zoo::toy_mobilenet_supernet();
        let store = WeightStore::synthesize(&net, 14);
        let sn = net.materialize("min", &net.min_config()).unwrap();
        let x = rand_input(&net, 4);
        let a = forward(&DpeArray::new(1, 1), &net, &store, &sn, &x).unwrap();
        let b = forward(&DpeArray::new(8, 8), &net, &store, &sn, &x).unwrap();
        assert_eq!(a.logits, b.logits);
    }

    #[test]
    fn forward_is_independent_of_kernel_policy() {
        use sushi_tensor::KernelPolicy;
        let net = zoo::toy_mobilenet_supernet();
        let store = WeightStore::synthesize(&net, 18);
        let sn = net.materialize("max", &net.max_config()).unwrap();
        let x = rand_input(&net, 8);
        let base = DpeArray::new(4, 4);
        let naive = forward(&base.with_policy(KernelPolicy::Naive), &net, &store, &sn, &x).unwrap();
        let gemm =
            forward(&base.with_policy(KernelPolicy::Im2colGemm), &net, &store, &sn, &x).unwrap();
        let auto = forward(&base, &net, &store, &sn, &x).unwrap();
        assert_eq!(naive, gemm, "kernel policy must not change logits");
        assert_eq!(naive, auto);
    }

    #[test]
    fn batched_forward_matches_unbatched() {
        for net in [zoo::toy_supernet(), zoo::toy_mobilenet_supernet()] {
            let store = WeightStore::synthesize(&net, 21);
            let sn = net.materialize("max", &net.max_config()).unwrap();
            let dpe = DpeArray::new(4, 4);
            let inputs: Vec<Tensor<i8>> = (0..3).map(|i| rand_input(&net, 30 + i)).collect();
            let batched = forward_batch(&dpe, &net, &store, &sn, &inputs).unwrap();
            assert_eq!(batched.len(), 3);
            for (input, out) in inputs.iter().zip(&batched) {
                let single = forward(&dpe, &net, &store, &sn, input).unwrap();
                assert_eq!(&single, out, "batched logits must equal unbatched ({})", net.name);
            }
        }
    }

    #[test]
    fn batched_forward_rejects_empty_and_bad_shapes() {
        let net = zoo::toy_supernet();
        let store = WeightStore::synthesize(&net, 22);
        let sn = net.materialize("min", &net.min_config()).unwrap();
        let dpe = DpeArray::new(2, 2);
        assert!(forward_batch(&dpe, &net, &store, &sn, &[]).is_err());
        let bad = Tensor::<i8>::zeros(Shape4::new(1, 3, 8, 8));
        assert!(forward_batch(&dpe, &net, &store, &sn, &[rand_input(&net, 1), bad]).is_err());
    }

    #[test]
    fn different_subnets_generally_disagree() {
        let net = zoo::toy_supernet();
        let store = WeightStore::synthesize(&net, 15);
        let small = net.materialize("min", &net.min_config()).unwrap();
        let big = net.materialize("max", &net.max_config()).unwrap();
        let x = rand_input(&net, 5);
        let a = forward(&DpeArray::new(4, 4), &net, &store, &small, &x).unwrap();
        let b = forward(&DpeArray::new(4, 4), &net, &store, &big, &x).unwrap();
        assert_ne!(a.logits, b.logits, "distinct SubNets should compute different functions");
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let net = zoo::toy_supernet();
        let store = WeightStore::synthesize(&net, 16);
        let sn = net.materialize("min", &net.min_config()).unwrap();
        let bad = Tensor::<i8>::zeros(Shape4::new(1, 3, 8, 8));
        assert!(forward(&DpeArray::new(2, 2), &net, &store, &sn, &bad).is_err());
    }

    #[test]
    fn weight_sharing_small_subnet_weights_affect_large_subnet() {
        // The prediction pathway genuinely shares weights: outputs of the
        // max SubNet on two stores differing ONLY outside the min SubNet's
        // slice must differ, while min SubNet outputs agree.
        let net = zoo::toy_supernet();
        let store_a = WeightStore::synthesize(&net, 17);
        let mut store_b = store_a.clone();
        // Perturb one weight beyond the min slice of layer 1.
        let min_sn = net.materialize("min", &net.min_config()).unwrap();
        let max_sn = net.materialize("max", &net.max_config()).unwrap();
        // Find a layer where max has more kernels than min.
        let (li, _) = net
            .layers
            .iter()
            .enumerate()
            .find(|(i, _)| {
                let a = min_sn.graph.slice(*i);
                let b = max_sn.graph.slice(*i);
                !a.is_empty() && b.kernels > a.kernels
            })
            .expect("some layer must grow");
        // Rebuild store_b with a different seed only for that layer by
        // tweaking the stored tensor directly.
        {
            let lw = store_b_layer_mut(&mut store_b, li);
            let k_beyond = min_sn.graph.slice(li).kernels; // first kernel not in min
            let shape = lw.shape();
            for c in 0..shape.c {
                for y in 0..shape.h {
                    for x in 0..shape.w {
                        let old = lw.get(k_beyond, c, y, x);
                        lw.set(k_beyond, c, y, x, old.wrapping_add(64));
                    }
                }
            }
        }
        let x = rand_input(&net, 6);
        let dpe = DpeArray::new(4, 4);
        let min_a = forward(&dpe, &net, &store_a, &min_sn, &x).unwrap();
        let min_b = forward(&dpe, &net, &store_b, &min_sn, &x).unwrap();
        assert_eq!(
            min_a.logits, min_b.logits,
            "perturbation outside min slice must not affect min SubNet"
        );
        let max_a = forward(&dpe, &net, &store_a, &max_sn, &x).unwrap();
        let max_b = forward(&dpe, &net, &store_b, &max_sn, &x).unwrap();
        assert_ne!(
            max_a.logits, max_b.logits,
            "perturbation inside max slice must affect max SubNet"
        );
    }

    /// Test helper: mutable access to a stored kernel tensor.
    fn store_b_layer_mut(store: &mut WeightStore, layer: usize) -> &mut Tensor<i8> {
        // WeightStore has no public mutator (callers shouldn't mutate), so
        // tests go through a serde round-trip free clone instead: rebuild
        // via transmute-free approach — expose through bincode? Simplest:
        // use the fact that WeightStore is Clone + the test-only accessor.
        store.layer_mut_for_tests(layer)
    }
}
