//! FPGA resource estimation (Tables 2–3).
//!
//! The paper reports post-synthesis utilization; we substitute a documented
//! linear estimator fitted to the paper's own two design points (ZCU104
//! 16×18 and Alveo U50 32×32 arrays):
//!
//! * `DSP ≈ 0.4879 · mults + 242` — each DPE multiplier maps to roughly
//!   half a DSP48 (int8 packing two mults per slice) plus control.
//! * `LUT ≈ 25.74 · mults − 5538`, plus ~3.1 k for the PB datapath.
//! * `FF  ≈ 49.49 · mults − 21088`, plus ~10.5 k for the PB datapath.
//! * URAM banks: 72 KB each; the PB design doubles banking for the extra
//!   read port (Table 2: 48 → 96 URAM on ZCU104).
//! * BRAM: small buffers (LB/OB/ZSB and SB overflow) at 4.5 KB per 36 Kb
//!   block with double-banking for dual ports.

use serde::{Deserialize, Serialize};

use crate::config::AccelConfig;

/// Estimated FPGA resource utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops / registers.
    pub registers: u64,
    /// 36 Kb BRAM blocks (halves allowed, reported ×2).
    pub bram_36k: f64,
    /// UltraRAM banks (288 Kb / 36 KB each; counted as 72 KB dual columns).
    pub uram: u64,
    /// DSP slices.
    pub dsp: u64,
    /// Peak MAC ops per cycle.
    pub peak_ops_per_cycle: u64,
}

/// Estimates resources for a configuration.
#[must_use]
pub fn estimate(config: &AccelConfig) -> ResourceEstimate {
    let mults = (config.kp * config.cp * crate::config::DPE_SIZE) as f64;
    let has_pb = config.buffers.has_pb();

    let mut lut = 25.74 * mults - 5538.0;
    let mut registers = 49.49 * mults - 21088.0;
    let dsp = 0.4879 * mults + 242.0;
    if has_pb {
        lut += 3127.0;
        registers += 10508.0;
    }

    // URAM holds the big weight buffers (DB, PB and the SB's bulk).
    let uram_kb = (config.buffers.pb_bytes
        + 2 * config.buffers.db_bytes_each
        + config.buffers.sb_bytes.saturating_sub(8 * 1024))
        / 1024;
    let uram_banks = uram_kb.div_ceil(72) * if has_pb { 2 } else { 1 };

    // BRAM holds LB, OB, ZSB and the SB head, double-banked for dual ports.
    let bram_kb =
        (config.buffers.lb_bytes + config.buffers.ob_bytes + config.buffers.zsb_bytes + 8 * 1024)
            / 1024;
    let bram = (bram_kb as f64 / 4.5 * 2.18 * 10.0).round() / 10.0;

    ResourceEstimate {
        lut: lut.max(0.0) as u64,
        registers: registers.max(0.0) as u64,
        bram_36k: bram,
        uram: uram_banks,
        dsp: dsp as u64,
        peak_ops_per_cycle: config.peak_macs_per_cycle(),
    }
}

/// Reference utilization of the Xilinx DPU (DPUCZDX8G on ZCU104) from
/// Table 2, for side-by-side reporting.
#[must_use]
pub fn dpu_reference() -> ResourceEstimate {
    ResourceEstimate {
        lut: 41640,
        registers: 69180,
        bram_36k: 0.0,
        uram: 60,
        dsp: 438,
        peak_ops_per_cycle: 2304 / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{alveo_u50, zcu104};

    fn within_pct(actual: f64, expected: f64, pct: f64) -> bool {
        (actual - expected).abs() / expected * 100.0 <= pct
    }

    #[test]
    fn zcu104_with_pb_matches_table2_within_10pct() {
        let e = estimate(&zcu104());
        assert!(within_pct(e.lut as f64, 64307.0, 10.0), "LUT {}", e.lut);
        assert!(within_pct(e.registers as f64, 117724.0, 10.0), "FF {}", e.registers);
        assert!(within_pct(e.dsp as f64, 1459.0, 10.0), "DSP {}", e.dsp);
        assert_eq!(e.uram, 96);
    }

    #[test]
    fn zcu104_without_pb_matches_table2_within_10pct() {
        let e = estimate(&zcu104().without_pb());
        assert!(within_pct(e.lut as f64, 61180.0, 10.0), "LUT {}", e.lut);
        assert!(within_pct(e.registers as f64, 107216.0, 10.0), "FF {}", e.registers);
        assert!(within_pct(e.dsp as f64, 1507.0, 10.0), "DSP {}", e.dsp);
        assert_eq!(e.uram, 48);
    }

    #[test]
    fn alveo_u50_scale_up_matches_table2_within_10pct() {
        let e = estimate(&alveo_u50());
        assert!(within_pct(e.lut as f64, 244969.0, 10.0), "LUT {}", e.lut);
        assert!(within_pct(e.dsp as f64, 4740.0, 10.0), "DSP {}", e.dsp);
        assert_eq!(e.peak_ops_per_cycle, 9216);
    }

    #[test]
    fn pb_adds_logic_but_not_dsp() {
        let with = estimate(&zcu104());
        let without = estimate(&zcu104().without_pb());
        assert!(with.lut > without.lut);
        assert!(with.registers > without.registers);
        assert_eq!(with.dsp, without.dsp);
    }

    #[test]
    fn bigger_array_uses_more_of_everything() {
        let small = estimate(&zcu104());
        let big = estimate(&alveo_u50());
        assert!(big.lut > small.lut && big.dsp > small.dsp);
    }
}
