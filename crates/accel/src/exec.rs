//! The accelerator execution engine: serves SubNets under a cached SubGraph.
//!
//! [`Accelerator`] is the timing/energy simulator of SushiAccel. It holds
//! the Persistent-Buffer state (a [`SubGraph`] or empty) and serves queries
//! in *timing-only* mode (the common case — all §5 experiments) via
//! [`Accelerator::serve`]; the bit-exact functional datapath for small nets
//! lives in [`crate::dpe`].

use serde::{Deserialize, Serialize};

use sushi_wsnet::layer::LayerSlice;
use sushi_wsnet::{SubGraph, SubNet, SuperNet, WeightStore};

use crate::config::AccelConfig;
use crate::energy::{EnergyModel, EnergyReport};
use crate::functional::SubgraphCache;
use crate::timing::{layer_timing, CycleBreakdown, LayerTiming, TrafficBytes};

/// Result of serving one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryReport {
    /// Name of the served SubNet.
    pub subnet: String,
    /// Per-layer timings (active layers only).
    pub layers: Vec<LayerTiming>,
    /// Total critical-path attribution.
    pub cycles: CycleBreakdown,
    /// Cycles spent (re)loading the PB before this query, if a cache update
    /// was pending (stage B of Fig. 9a — paid once, then amortized across
    /// the queries that reuse the cached SubGraph).
    pub pb_reload_cycles: u64,
    /// Total byte traffic.
    pub traffic: TrafficBytes,
    /// Data-movement energy.
    pub energy: EnergyReport,
    /// End-to-end latency in milliseconds (including any PB reload).
    pub latency_ms: f64,
}

impl QueryReport {
    /// Fraction of weight bytes served from the Persistent Buffer.
    #[must_use]
    pub fn pb_hit_fraction(&self) -> f64 {
        let total = self.traffic.pb_weights + self.traffic.offchip_weights;
        if total == 0 {
            return 0.0;
        }
        self.traffic.pb_weights as f64 / total as f64
    }
}

/// Result of serving one *batch* of queries that all resolved to the same
/// SubNet (the serving runtime's dynamic batching path).
///
/// Weights are fetched once per batch — the within-batch analogue of the
/// cross-query SubGraph-Stationary reuse of §2.2 — while activations move
/// per item, so the marginal item pays only compute + activation traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Name of the served SubNet.
    pub subnet: String,
    /// Number of queries in the batch.
    pub batch: usize,
    /// Cycles spent (re)loading the PB before this batch, if a cache update
    /// was pending.
    pub pb_reload_cycles: u64,
    /// Total byte traffic for the whole batch (weights once, acts × batch).
    pub traffic: TrafficBytes,
    /// Data-movement energy for the whole batch.
    pub energy: EnergyReport,
    /// End-to-end latency of the whole batch in ms (including any PB
    /// reload). Every query in the batch completes at this point.
    pub total_latency_ms: f64,
    /// Latency the *first* item alone would have seen (weights + one item).
    pub first_item_ms: f64,
}

impl BatchReport {
    /// Mean per-item latency (`total / batch`) — the throughput view.
    ///
    /// # Panics
    /// Panics if the batch is empty (constructed only via
    /// [`Accelerator::serve_batch`], which rejects `batch == 0`).
    #[must_use]
    pub fn per_item_ms(&self) -> f64 {
        assert!(self.batch > 0);
        self.total_latency_ms / self.batch as f64
    }
}

/// The SushiAccel timing/energy simulator.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: AccelConfig,
    energy_model: EnergyModel,
    cached: Option<SubGraph>,
    packed: Option<SubgraphCache>,
    pending_reload_cycles: u64,
}

impl Accelerator {
    /// Creates an accelerator with an empty Persistent Buffer.
    #[must_use]
    pub fn new(config: AccelConfig) -> Self {
        Self {
            config,
            energy_model: EnergyModel::default(),
            cached: None,
            packed: None,
            pending_reload_cycles: 0,
        }
    }

    /// Overrides the energy model.
    #[must_use]
    pub fn with_energy_model(mut self, m: EnergyModel) -> Self {
        self.energy_model = m;
        self
    }

    /// The accelerator configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// The currently cached SubGraph, if any.
    #[must_use]
    pub fn cached(&self) -> Option<&SubGraph> {
        self.cached.as_ref()
    }

    /// Installs a new cached SubGraph (the scheduler's `St+Q` decision).
    ///
    /// The SubGraph is truncated to the PB capacity if needed, and the DRAM
    /// cost of loading it is charged to the next served query. Installing
    /// on a PB-less configuration is a no-op.
    ///
    /// Returns the SubGraph actually installed.
    pub fn install_cache(&mut self, net: &SuperNet, graph: SubGraph) -> Option<&SubGraph> {
        if !self.config.buffers.has_pb() {
            return None;
        }
        let fitted = net.subgraph_to_budget(&graph, self.config.buffers.pb_bytes);
        let bytes = net.subgraph_weight_bytes(&fitted);
        if self.cached.as_ref() == Some(&fitted) {
            return self.cached.as_ref(); // already resident: no reload
        }
        self.pending_reload_cycles += self.config.offchip_cycles(bytes);
        self.cached = Some(fitted);
        // Any packed weights belong to the previous SubGraph now.
        self.packed = None;
        self.cached.as_ref()
    }

    /// [`Accelerator::install_cache`] plus eager host-side weight packing:
    /// slices `store` to the fitted SubGraph and builds the per-layer
    /// [`SubgraphCache`] panels **once**, at install time — the cold-pack
    /// cost rides with the PB reload it models, and every subsequent
    /// functional serve under this SubGraph reads the panels in place via
    /// [`Accelerator::packed_weights`]. Re-installing the SubGraph already
    /// resident keeps the existing panels (no reload, no re-pack), exactly
    /// as the PB itself behaves — the property `tests/pack_once.rs` pins by
    /// counting pack invocations across repeated `serve`/`serve_batch`
    /// rounds.
    ///
    /// # Panics
    /// Panics if the fitted SubGraph's weights cannot be packed (zoo
    /// definitions are programmer-controlled).
    pub fn install_cache_with_weights(
        &mut self,
        net: &SuperNet,
        graph: SubGraph,
        store: &WeightStore,
    ) -> Option<&SubGraph> {
        // `install_cache` keeps `packed` when the SubGraph is already
        // resident and drops it when the PB contents change.
        if self.install_cache(net, graph).is_none() {
            return None;
        }
        let fitted = self.cached.clone().expect("install_cache set the PB");
        if self.packed.as_ref().is_none_or(|p| !p.matches(&fitted)) {
            self.packed = Some(SubgraphCache::build(net, store, &fitted).expect("packable zoo"));
        }
        self.cached.as_ref()
    }

    /// The pack-once weight state for the installed SubGraph, when the
    /// cache was installed via [`Accelerator::install_cache_with_weights`].
    #[must_use]
    pub fn packed_weights(&self) -> Option<&SubgraphCache> {
        self.packed.as_ref()
    }

    /// Clears the Persistent Buffer without charging a reload.
    pub fn clear_cache(&mut self) {
        self.cached = None;
        self.packed = None;
        self.pending_reload_cycles = 0;
    }

    /// Serves one query with the given SubNet (timing-only mode).
    ///
    /// # Panics
    /// Panics if the SubNet does not belong to `net` (layer count mismatch).
    pub fn serve(&mut self, net: &SuperNet, subnet: &SubNet) -> QueryReport {
        assert_eq!(subnet.graph.num_layers(), net.num_layers(), "SubNet does not match SuperNet");
        let empty = LayerSlice::empty();
        let mut layers = Vec::new();
        let mut cycles = CycleBreakdown::default();
        let mut traffic = TrafficBytes::default();
        for (idx, (layer, slice)) in net.layers.iter().zip(subnet.graph.slices()).enumerate() {
            if slice.is_empty() {
                continue;
            }
            let cached_slice = self.cached.as_ref().map_or(&empty, |g| {
                debug_assert_eq!(g.num_layers(), net.num_layers());
                &g.slices()[idx]
            });
            let t = layer_timing(&self.config, layer, slice, cached_slice);
            cycles.add(&t.cycles);
            traffic.add(&t.traffic);
            layers.push(t);
        }
        let pb_reload_cycles = std::mem::take(&mut self.pending_reload_cycles);
        // The PB reload itself is off-chip traffic (energy-wise).
        let mut energy_traffic = traffic;
        if pb_reload_cycles > 0 {
            if let Some(g) = &self.cached {
                energy_traffic.offchip_weights += net.subgraph_weight_bytes(g);
            }
        }
        let energy = self.energy_model.energy(&energy_traffic);
        let total_cycles = cycles.total() + pb_reload_cycles;
        QueryReport {
            subnet: subnet.name.clone(),
            layers,
            cycles,
            pb_reload_cycles,
            traffic,
            energy,
            latency_ms: self.config.cycles_to_ms(total_cycles),
        }
    }

    /// Serves `batch` queries of the same SubNet back-to-back (timing-only
    /// mode), fetching each layer's weights once for the whole batch.
    ///
    /// Per layer, the first item pays the full critical path (weight fetch
    /// overlapped with compute, per [`crate::timing::layer_timing`]); every
    /// additional item re-uses the now-resident weights and pays only its
    /// compute and activation-movement cycles. Weight traffic (off-chip and
    /// PB) is charged once; activation traffic `batch` times. A pending PB
    /// reload is charged once to the whole batch, exactly as
    /// [`Accelerator::serve`] charges it to a single query.
    ///
    /// `serve_batch(net, sn, 1)` agrees with [`Accelerator::serve`] on
    /// latency, traffic and energy.
    ///
    /// # Panics
    /// Panics if `batch == 0` or the SubNet does not belong to `net`.
    pub fn serve_batch(&mut self, net: &SuperNet, subnet: &SubNet, batch: usize) -> BatchReport {
        assert!(batch > 0, "cannot serve an empty batch");
        assert_eq!(subnet.graph.num_layers(), net.num_layers(), "SubNet does not match SuperNet");
        let empty = LayerSlice::empty();
        let mut cycles_first = 0u64;
        let mut cycles_marginal = 0u64;
        let mut traffic = TrafficBytes::default();
        for (idx, (layer, slice)) in net.layers.iter().zip(subnet.graph.slices()).enumerate() {
            if slice.is_empty() {
                continue;
            }
            let cached_slice = self.cached.as_ref().map_or(&empty, |g| {
                debug_assert_eq!(g.num_layers(), net.num_layers());
                &g.slices()[idx]
            });
            let t = layer_timing(&self.config, layer, slice, cached_slice);
            cycles_first += t.cycles.total();
            // Weights resident after item 1: the marginal item's critical
            // path keeps the compute and activation buckets and drops both
            // weight buckets.
            cycles_marginal += t.cycles.compute + t.cycles.offchip_iact + t.cycles.offchip_oact;
            let mut batch_traffic = t.traffic;
            batch_traffic.offchip_iact *= batch as u64;
            batch_traffic.offchip_oact *= batch as u64;
            traffic.add(&batch_traffic);
        }
        let pb_reload_cycles = std::mem::take(&mut self.pending_reload_cycles);
        let mut energy_traffic = traffic;
        if pb_reload_cycles > 0 {
            if let Some(g) = &self.cached {
                energy_traffic.offchip_weights += net.subgraph_weight_bytes(g);
            }
        }
        let energy = self.energy_model.energy(&energy_traffic);
        let total_cycles = pb_reload_cycles + cycles_first + (batch as u64 - 1) * cycles_marginal;
        BatchReport {
            subnet: subnet.name.clone(),
            batch,
            pb_reload_cycles,
            traffic,
            energy,
            total_latency_ms: self.config.cycles_to_ms(total_cycles),
            first_item_ms: self.config.cycles_to_ms(pb_reload_cycles + cycles_first),
        }
    }

    /// Serves a query *as if* the given SubGraph were cached, without
    /// changing accelerator state. Used to build latency tables offline.
    #[must_use]
    pub fn probe(&self, net: &SuperNet, subnet: &SubNet, cached: Option<&SubGraph>) -> QueryReport {
        let mut scratch = Self {
            config: self.config.clone(),
            energy_model: self.energy_model,
            cached: cached.cloned(),
            packed: None,
            pending_reload_cycles: 0,
        };
        scratch.serve(net, subnet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::zcu104;
    use sushi_wsnet::zoo;

    fn setup() -> (SuperNet, Vec<SubNet>, Accelerator) {
        let net = zoo::toy_supernet();
        let picks: Vec<SubNet> = {
            let mut s = sushi_wsnet::sampler::ConfigSampler::new(&net, 5);
            s.sample_subnets(4)
        };
        (net.clone(), picks, Accelerator::new(zcu104()))
    }

    #[test]
    fn serve_reports_positive_latency() {
        let (net, picks, mut acc) = setup();
        let r = acc.serve(&net, &picks[0]);
        assert!(r.latency_ms > 0.0);
        assert!(r.cycles.total() > 0);
        assert_eq!(r.subnet, picks[0].name);
    }

    #[test]
    fn active_layer_count_matches_subnet() {
        let (net, picks, mut acc) = setup();
        let r = acc.serve(&net, &picks[0]);
        assert_eq!(r.layers.len(), picks[0].graph.active_layers());
    }

    #[test]
    fn install_cache_charges_reload_once() {
        let (net, picks, mut acc) = setup();
        acc.install_cache(&net, picks[0].graph.clone());
        let r1 = acc.serve(&net, &picks[0]);
        assert!(r1.pb_reload_cycles > 0);
        let r2 = acc.serve(&net, &picks[0]);
        assert_eq!(r2.pb_reload_cycles, 0);
        assert!(r2.latency_ms < r1.latency_ms);
    }

    #[test]
    fn reinstalling_same_subgraph_is_free() {
        let (net, picks, mut acc) = setup();
        acc.install_cache(&net, picks[0].graph.clone());
        let _ = acc.serve(&net, &picks[0]);
        acc.install_cache(&net, picks[0].graph.clone());
        let r = acc.serve(&net, &picks[0]);
        assert_eq!(r.pb_reload_cycles, 0);
    }

    #[test]
    fn cache_hit_reduces_latency_and_offchip_traffic() {
        let (net, picks, mut acc) = setup();
        let cold = acc.serve(&net, &picks[1]);
        acc.install_cache(&net, picks[1].graph.clone());
        let _warmup = acc.serve(&net, &picks[1]); // pays reload
        let warm = acc.serve(&net, &picks[1]);
        assert!(warm.cycles.total() <= cold.cycles.total());
        assert!(warm.traffic.offchip_weights < cold.traffic.offchip_weights);
        assert!(warm.pb_hit_fraction() > 0.5);
    }

    #[test]
    fn pbless_accelerator_never_hits() {
        let (net, picks, _) = setup();
        let mut acc = Accelerator::new(zcu104().without_pb());
        assert!(acc.install_cache(&net, picks[0].graph.clone()).is_none());
        let r = acc.serve(&net, &picks[0]);
        assert_eq!(r.traffic.pb_weights, 0);
        assert_eq!(r.pb_hit_fraction(), 0.0);
    }

    #[test]
    fn oversized_subgraph_is_truncated_to_pb() {
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut acc = Accelerator::new(zcu104());
        // Largest pick (~28 MB) far exceeds the 1.7 MB PB.
        let installed = acc.install_cache(&net, picks[5].graph.clone()).unwrap().clone();
        assert!(net.subgraph_weight_bytes(&installed) <= acc.config().buffers.pb_bytes);
        assert!(net.subgraph_weight_bytes(&installed) > 0);
    }

    #[test]
    fn probe_does_not_mutate_state() {
        let (net, picks, acc) = setup();
        let before = acc.cached().cloned();
        let _ = acc.probe(&net, &picks[0], Some(&picks[1].graph));
        assert_eq!(acc.cached().cloned(), before);
    }

    #[test]
    fn probe_matches_serve_with_same_cache() {
        let (net, picks, mut acc) = setup();
        acc.install_cache(&net, picks[2].graph.clone());
        let _pay_reload = acc.serve(&net, &picks[0]);
        let served = acc.serve(&net, &picks[0]);
        let probed = acc.probe(&net, &picks[0], acc.cached());
        assert_eq!(served.cycles, probed.cycles);
    }

    #[test]
    fn energy_accounts_pb_reload_traffic() {
        let (net, picks, mut acc) = setup();
        let cold = acc.serve(&net, &picks[0]);
        acc.install_cache(&net, picks[0].graph.clone());
        let with_reload = acc.serve(&net, &picks[0]);
        // Reload adds off-chip energy on the reload query even though
        // steady-state queries save energy.
        assert!(with_reload.energy.offchip_mj > cold.energy.offchip_mj * 0.5);
    }

    #[test]
    fn bigger_subnet_takes_longer() {
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut acc = Accelerator::new(zcu104());
        let small = acc.serve(&net, &picks[0]);
        let large = acc.serve(&net, &picks[5]);
        assert!(large.latency_ms > small.latency_ms);
    }

    #[test]
    fn batch_of_one_matches_single_serve() {
        let (net, picks, mut acc) = setup();
        let single = acc.serve(&net, &picks[0]);
        let batch = acc.serve_batch(&net, &picks[0], 1);
        assert_eq!(batch.total_latency_ms, single.latency_ms);
        assert_eq!(batch.first_item_ms, single.latency_ms);
        assert_eq!(batch.traffic, single.traffic);
        assert_eq!(batch.energy, single.energy);
    }

    #[test]
    fn batching_amortizes_weight_fetch() {
        let (net, picks, mut acc) = setup();
        let single = acc.serve(&net, &picks[1]);
        let b = 8;
        let batch = acc.serve_batch(&net, &picks[1], b);
        // Cheaper than b independent serves...
        assert!(batch.total_latency_ms < single.latency_ms * b as f64);
        // ...but still at least the first item plus b-1 compute-bound items.
        assert!(batch.total_latency_ms >= single.latency_ms);
        assert!(batch.per_item_ms() < single.latency_ms);
        // Weight bytes unchanged, activation bytes scaled by b.
        assert_eq!(batch.traffic.offchip_weights, single.traffic.offchip_weights);
        assert_eq!(batch.traffic.offchip_iact, single.traffic.offchip_iact * b as u64);
    }

    #[test]
    fn batch_charges_pending_reload_once() {
        let (net, picks, mut acc) = setup();
        acc.install_cache(&net, picks[0].graph.clone());
        let b1 = acc.serve_batch(&net, &picks[0], 4);
        assert!(b1.pb_reload_cycles > 0);
        let b2 = acc.serve_batch(&net, &picks[0], 4);
        assert_eq!(b2.pb_reload_cycles, 0);
        assert!(b2.total_latency_ms < b1.total_latency_ms);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let (net, picks, mut acc) = setup();
        let _ = acc.serve_batch(&net, &picks[0], 0);
    }

    #[test]
    fn resnet50_latency_in_plausible_band() {
        // Fig. 13a: ZCU104 serves ResNet50 SubNets in the ~10-50 ms band.
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut acc = Accelerator::new(zcu104());
        let r = acc.serve(&net, &picks[0]);
        assert!(r.latency_ms > 1.0 && r.latency_ms < 100.0, "{} ms", r.latency_ms);
    }
}
