//! Roofline analysis and the SGS-roofline (§5.2, Figs. 2 and 11).
//!
//! SGS "virtually improves the overall off-chip bandwidth by saving
//! off-chip data access": caching a SubGraph in the PB removes its bytes
//! from the denominator of arithmetic intensity, pushing points rightward
//! toward (and past) the ridge into compute-bound territory.

use serde::{Deserialize, Serialize};

use sushi_wsnet::{SubGraph, SubNet, SuperNet};

use crate::config::AccelConfig;
use crate::exec::Accelerator;

/// Whether a workload point sits left (memory) or right (compute) of the
/// roofline ridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Boundedness {
    /// Attainable throughput limited by off-chip bandwidth.
    MemoryBound,
    /// Attainable throughput limited by peak compute.
    ComputeBound,
}

/// One point on the roofline plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// SubNet (or layer) label.
    pub name: String,
    /// Arithmetic intensity in FLOPs/byte of off-chip traffic.
    pub ai: f64,
    /// Attainable throughput in TFLOPS under the roofline.
    pub attainable_tflops: f64,
    /// Which side of the ridge the point falls on.
    pub bound: Boundedness,
}

/// The ridge point of a configuration: AI at which bandwidth and compute
/// rooflines intersect (FLOPs/byte).
#[must_use]
pub fn ridge_point(config: &AccelConfig) -> f64 {
    config.peak_tflops() * 1e12 / (config.offchip_gbps * config.effective_bw_fraction * 1e9)
}

/// Attainable TFLOPS at arithmetic intensity `ai` under the roofline.
#[must_use]
pub fn attainable_tflops(config: &AccelConfig, ai: f64) -> f64 {
    (ai * config.offchip_gbps * config.effective_bw_fraction * 1e9 / 1e12).min(config.peak_tflops())
}

/// Classifies an AI value against the ridge.
#[must_use]
pub fn classify(config: &AccelConfig, ai: f64) -> Boundedness {
    if ai < ridge_point(config) {
        Boundedness::MemoryBound
    } else {
        Boundedness::ComputeBound
    }
}

/// Per-layer arithmetic-intensity series for a SubNet (Fig. 2). Returns
/// `(layer index within active layers, AI)` pairs over the standalone
/// per-layer traffic (weights + iActs + oActs, no caching).
#[must_use]
pub fn layer_ai_series(net: &SuperNet, subnet: &SubNet) -> Vec<(usize, f64)> {
    net.layers
        .iter()
        .zip(subnet.graph.slices())
        .filter(|(_, s)| !s.is_empty())
        .enumerate()
        .map(|(i, (l, s))| (i, l.arithmetic_intensity(s)))
        .collect()
}

/// Roofline point of an entire SubNet, optionally under a cached SubGraph
/// (the *SGS roofline*, Fig. 11): AI uses the measured off-chip traffic so
/// PB hits raise it.
#[must_use]
pub fn subnet_roofline(
    config: &AccelConfig,
    net: &SuperNet,
    subnet: &SubNet,
    cached: Option<&SubGraph>,
) -> RooflinePoint {
    let acc = Accelerator::new(config.clone());
    let report = acc.probe(net, subnet, cached);
    let offchip = report.traffic.offchip_total().max(1);
    let ai = subnet.flops as f64 / offchip as f64;
    RooflinePoint {
        name: subnet.name.clone(),
        ai,
        attainable_tflops: attainable_tflops(config, ai),
        bound: classify(config, ai),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::roofline_system;
    use sushi_wsnet::zoo;

    #[test]
    fn ridge_point_matches_peak_over_bw() {
        let c = roofline_system();
        // 2 * 12960 ops/cy * 100 MHz = 2.592 TFLOPS over 19.2 GB/s = 135 F/B.
        assert!((ridge_point(&c) - 135.0).abs() < 1.0, "{}", ridge_point(&c));
    }

    #[test]
    fn attainable_saturates_at_peak() {
        let c = roofline_system();
        assert!(attainable_tflops(&c, 1e9) <= c.peak_tflops() + 1e-12);
        let low = attainable_tflops(&c, 1.0);
        assert!((low - 19.2e9 / 1e12).abs() < 1e-12);
    }

    #[test]
    fn classification_flips_at_ridge() {
        let c = roofline_system();
        let r = ridge_point(&c);
        assert_eq!(classify(&c, r * 0.5), Boundedness::MemoryBound);
        assert_eq!(classify(&c, r * 2.0), Boundedness::ComputeBound);
    }

    #[test]
    fn later_resnet_layers_have_lower_ai() {
        // Fig. 2's observation: arithmetic intensity drops in latter layers
        // (smaller spatial dims, weight-heavy 1x1s).
        let net = zoo::resnet50_supernet();
        let max = net.materialize("max", &net.max_config()).unwrap();
        let series = layer_ai_series(&net, &max);
        let n = series.len();
        let early: f64 =
            series[1..n / 4].iter().map(|(_, ai)| ai).sum::<f64>() / (n / 4 - 1) as f64;
        let late: f64 =
            series[3 * n / 4..].iter().map(|(_, ai)| ai).sum::<f64>() / (n - 3 * n / 4) as f64;
        assert!(late < early, "late {late} !< early {early}");
    }

    #[test]
    fn sgs_raises_subnet_ai() {
        // Fig. 11: caching the shared SubGraph pushes points toward
        // compute-bound (higher AI).
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let cfg = roofline_system();
        let shared = net.shared_subgraph(&picks);
        let cached = net.subgraph_to_budget(&shared, cfg.buffers.pb_bytes);
        for sn in &picks {
            let base = subnet_roofline(&cfg, &net, sn, None);
            let sgs = subnet_roofline(&cfg, &net, sn, Some(&cached));
            assert!(sgs.ai > base.ai, "{}: {} !> {}", sn.name, sgs.ai, base.ai);
        }
    }

    #[test]
    fn mobv3_has_lower_ai_than_resnet() {
        // §2.2: recent smaller models have lower arithmetic intensity.
        let r50 = zoo::resnet50_supernet();
        let mob = zoo::mobilenet_v3_supernet();
        let cfg = roofline_system();
        let r = subnet_roofline(&cfg, &r50, &zoo::paper_subnets(&r50)[0], None);
        let m = subnet_roofline(&cfg, &mob, &zoo::paper_subnets(&mob)[0], None);
        assert!(m.ai < r.ai, "MobV3 {} !< R50 {}", m.ai, r.ai);
    }
}
