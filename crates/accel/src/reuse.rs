//! Data-reuse capability matrix (Table 4).
//!
//! Prior accelerators achieve intra-model, cross-layer reuse; SUSHI adds
//! *cross-query* SubGraph reuse — spatially (the PB) and temporally
//! (across the query stream).

use serde::{Deserialize, Serialize};

/// Reuse capabilities of one accelerator design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseProfile {
    /// Design name.
    pub name: String,
    /// Input-activation reuse (sliding window / multi-kernel, Fig. 8a-b).
    pub iact_reuse: bool,
    /// Output-activation (partial-sum) reuse (Fig. 8c).
    pub oact_reuse: bool,
    /// Temporal weight reuse via iAct tiling within one query.
    pub weight_reuse_temporal: bool,
    /// Cross-query SubGraph reuse, spatial (dedicated buffer).
    pub subgraph_reuse_spatial: bool,
    /// Cross-query SubGraph reuse, temporal (persists across queries).
    pub subgraph_reuse_temporal: bool,
}

/// The Table-4 comparison rows.
#[must_use]
pub fn table4() -> Vec<ReuseProfile> {
    vec![
        ReuseProfile {
            name: "MAERI".into(),
            iact_reuse: true,
            oact_reuse: false,
            weight_reuse_temporal: true,
            subgraph_reuse_spatial: false,
            subgraph_reuse_temporal: false,
        },
        ReuseProfile {
            name: "NVDLA".into(),
            iact_reuse: false,
            oact_reuse: true,
            weight_reuse_temporal: true,
            subgraph_reuse_spatial: false,
            subgraph_reuse_temporal: false,
        },
        ReuseProfile {
            name: "Eyeriss".into(),
            iact_reuse: true,
            oact_reuse: false,
            weight_reuse_temporal: true,
            subgraph_reuse_spatial: false,
            subgraph_reuse_temporal: false,
        },
        ReuseProfile {
            name: "Xilinx DPU".into(),
            iact_reuse: true,
            oact_reuse: true,
            weight_reuse_temporal: true,
            subgraph_reuse_spatial: false,
            subgraph_reuse_temporal: false,
        },
        ReuseProfile {
            name: "SUSHI".into(),
            iact_reuse: true,
            oact_reuse: true,
            weight_reuse_temporal: true,
            subgraph_reuse_spatial: true,
            subgraph_reuse_temporal: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_sushi_has_subgraph_reuse() {
        for p in table4() {
            let is_sushi = p.name == "SUSHI";
            assert_eq!(p.subgraph_reuse_spatial, is_sushi, "{}", p.name);
            assert_eq!(p.subgraph_reuse_temporal, is_sushi, "{}", p.name);
        }
    }

    #[test]
    fn all_designs_reuse_weights_temporally() {
        assert!(table4().iter().all(|p| p.weight_reuse_temporal));
    }

    #[test]
    fn table_has_five_rows() {
        assert_eq!(table4().len(), 5);
    }
}
