//! The serving stack's error type: build and execution failures return
//! `Result` instead of panicking.

use std::fmt;

use sushi_accel::backend::BackendError;

/// Failures raised by [`crate::engine::EngineBuilder`] and the
/// [`crate::engine::Engine`] run modes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SushiError {
    /// An invalid or inconsistent configuration (e.g. zero workers, a
    /// functional backend shared across multiple workers, a latency table
    /// that does not match the serving set).
    Config(String),
    /// An invalid input stream handed to a run mode (empty, or not sorted
    /// by arrival time).
    Stream(String),
    /// The execution backend failed (empty batch, SubNet mismatch, or a
    /// functional datapath error).
    Backend(BackendError),
    /// A serving-loop invariant was violated (e.g. the routing policy
    /// declined every replica of a dispatch group). These indicate a bug
    /// in the event loop, surfaced as an error instead of a panic so a
    /// fault-injected run degrades gracefully.
    Internal(String),
}

impl fmt::Display for SushiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SushiError::Config(what) => write!(f, "invalid engine configuration: {what}"),
            SushiError::Stream(what) => write!(f, "invalid query stream: {what}"),
            SushiError::Backend(e) => write!(f, "execution backend failed: {e}"),
            SushiError::Internal(what) => {
                write!(f, "internal serving invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for SushiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SushiError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BackendError> for SushiError {
    fn from(e: BackendError) -> Self {
        SushiError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_failure_kind() {
        assert!(SushiError::Config("zero workers".into()).to_string().contains("zero workers"));
        assert!(SushiError::Stream("empty".into()).to_string().contains("empty"));
        let e = SushiError::from(BackendError::EmptyBatch);
        assert!(e.to_string().contains("empty batch"));
        let e = SushiError::Internal("routing declined every replica".into());
        assert!(e.to_string().contains("invariant"));
        assert!(e.to_string().contains("routing declined"));
    }

    #[test]
    fn backend_errors_expose_a_source() {
        use std::error::Error as _;
        assert!(SushiError::from(BackendError::EmptyBatch).source().is_some());
        assert!(SushiError::Config("x".into()).source().is_none());
    }
}
