//! # sushi-core
//!
//! **SUSHI**: the vertically integrated inference-serving stack of the
//! MLSys'23 paper, wiring [`sushi_sched`] (SushiSched + SushiAbs) to
//! [`sushi_accel`] (SushiAccel) over weight-shared SuperNets from
//! [`sushi_wsnet`].
//!
//! * [`stack::SushiStack`] — the per-query serving loop of Fig. 4.
//! * [`variants`] — the §5.7 comparison points (No-SUSHI, SUSHI w/o Sched,
//!   SUSHI).
//! * [`stream`] — deterministic query-constraint generators (random,
//!   AV-navigation phases, ICU bursts).
//! * [`metrics`] — served latency/accuracy, SLO attainment, cache-hit
//!   ratio, streaming latency percentiles.
//! * [`serving`] — the event-driven serving runtime: open-loop arrivals,
//!   bounded admission queue, dynamic batching, a multi-worker executor
//!   pool, and SLO accounting (`repro --serve`).
//! * [`experiments`] — a regenerator for **every** table and figure in the
//!   paper's evaluation (run them all via the `repro` binary:
//!   `cargo run -p sushi-core --release --bin repro -- all`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use sushi_core::stream::{uniform_stream, ConstraintSpace};
//! use sushi_core::variants::{build_stack, Variant};
//! use sushi_sched::Policy;
//! use sushi_wsnet::zoo;
//!
//! let net = Arc::new(zoo::mobilenet_v3_supernet());
//! let picks = zoo::paper_subnets(&net);
//! let mut stack = build_stack(
//!     Variant::Sushi,
//!     Arc::clone(&net),
//!     picks,
//!     &sushi_accel::config::zcu104(),
//!     Policy::StrictAccuracy,
//!     10,  // cache window Q
//!     8,   // SubGraph candidates
//!     42,  // seed
//! );
//! let space = ConstraintSpace { acc_lo: 0.76, acc_hi: 0.79, lat_lo: 2.0, lat_hi: 30.0 };
//! let records = stack.serve_stream(&uniform_stream(&space, 50, 7));
//! assert!(records.iter().all(|r| r.served_accuracy >= r.query.accuracy_constraint));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod serving;
pub mod stack;
pub mod stream;
pub mod variants;

pub use stack::{ServedRecord, SushiStack};
pub use variants::Variant;
