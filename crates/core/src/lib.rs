//! # sushi-core
//!
//! **SUSHI**: the vertically integrated inference-serving stack of the
//! MLSys'23 paper, wiring [`sushi_sched`] (SushiSched + SushiAbs) to
//! [`sushi_accel`] (SushiAccel) over weight-shared SuperNets from
//! [`sushi_wsnet`].
//!
//! * [`engine`] — **the** public entry point: [`engine::EngineBuilder`]
//!   (every knob named and defaulted) builds an [`engine::Engine`] with two
//!   run modes — `serve_stream` (the per-query replay loop of Fig. 4) and
//!   `serve_timed` (the event-driven serving simulation) — dispatching
//!   through a pluggable analytical or functional
//!   [`sushi_accel::backend::ExecutionBackend`].
//! * [`variants`] — the §5.7 comparison points (No-SUSHI, SUSHI w/o Sched,
//!   SUSHI).
//! * [`stream`] — deterministic query-constraint generators (random,
//!   AV-navigation phases, ICU bursts).
//! * [`metrics`] — served latency/accuracy, SLO attainment, cache-hit
//!   ratio, streaming latency percentiles.
//! * [`serving`] — the event-driven serving runtime: open-loop arrivals,
//!   bounded admission queue, dynamic batching, a multi-worker executor
//!   pool, and SLO accounting (`repro --serve`).
//! * [`experiments`] — a regenerator for **every** table and figure in the
//!   paper's evaluation (run them all via the `repro` binary:
//!   `cargo run -p sushi-core --release --bin repro -- all`).
//!
//! # Example
//!
//! ```
//! use sushi_core::engine::EngineBuilder;
//! use sushi_core::stream::{uniform_stream, ConstraintSpace};
//!
//! let mut engine = EngineBuilder::new()
//!     .q_window(10) // cache window Q
//!     .candidates(8) // SubGraph candidates
//!     .seed(42)
//!     .build()?;
//! let space = ConstraintSpace { acc_lo: 0.76, acc_hi: 0.79, lat_lo: 2.0, lat_hi: 30.0 };
//! let records = engine.serve_stream(&uniform_stream(&space, 50, 7))?;
//! assert!(records.iter().all(|r| r.served_accuracy >= r.query.accuracy_constraint));
//! # Ok::<(), sushi_core::SushiError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod error;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod serving;
pub mod stack;
pub mod stream;
pub mod variants;

pub use engine::{BackendKind, Engine, EngineBuilder, ModelZoo};
pub use error::SushiError;
pub use stack::{ServedRecord, SushiStack};
pub use variants::Variant;
