//! `serve`: the event-driven serving runtime under the traffic presets
//! (steady / burst / diurnal / multi-tenant / overload / deadline-mix /
//! failover).
//!
//! Unlike the §5 replays, this experiment measures *systems* behavior —
//! queueing, batching, drops, tail latency, and (by default) the
//! load-adaptive degradation loop's level walks — on simulated time, so
//! the whole report is deterministic: the same seed produces a
//! bit-identical report on any platform (that invariance is pinned by a
//! test, and the numbers feed the `BENCH_serve.json` regression gate via
//! `serve_bench`).

use crate::experiments::common::ExpOptions;
use crate::metrics::ServeSummary;
use crate::report::{fmt_f, fmt_pct, ExpReport, TextTable};
use crate::serving::{run_scenario, ServePreset};

fn push_summary_row(table: &mut TextTable, label: &str, s: &ServeSummary) {
    table.push_row(vec![
        label.to_string(),
        s.offered.to_string(),
        s.completed.to_string(),
        s.dropped.to_string(),
        fmt_f(s.p50_ms, 3),
        fmt_f(s.p95_ms, 3),
        fmt_f(s.p99_ms, 3),
        fmt_f(s.goodput_qps, 1),
        fmt_pct(100.0 * s.slo_violation_rate),
        fmt_f(s.mean_queue_depth, 2),
        fmt_f(s.mean_batch, 2),
        s.cache_installs.to_string(),
        s.degrades.to_string(),
        s.upgrades.to_string(),
    ]);
}

/// `serve`: scenario presets through the serving runtime.
#[must_use]
pub fn serve(opts: &ExpOptions) -> ExpReport {
    let mut report =
        ExpReport::new("serve", "Serving runtime: traffic presets, SLO and queue accounting");
    let mut table = TextTable::new(vec![
        "scenario", "offered", "done", "drop", "p50ms", "p95ms", "p99ms", "goodput", "SLO viol",
        "q-depth", "batch", "installs", "lvl down", "lvl up",
    ]);
    let mut tenants = TextTable::new(vec![
        "tenant", "tier", "offered", "done", "drop", "p50ms", "p99ms", "goodput", "SLO viol",
    ]);
    for preset in ServePreset::ALL {
        let result = match run_scenario(preset, opts) {
            Ok(result) => result,
            Err(e) => {
                report.add_note(format!("preset {} failed: {e}", preset.name()));
                continue;
            }
        };
        push_summary_row(&mut table, preset.name(), &result.summary());
        if preset == ServePreset::MultiTenant {
            for (tenant, label) in [(0u32, "AV"), (1u32, "ICU")] {
                let s = result.tenant_summary(tenant);
                // The tier every record of this tenant carries: Standard
                // on a tierless run, the preset mapping on a tiered one.
                let tier = result
                    .served
                    .iter()
                    .find(|q| q.tenant == tenant)
                    .map(|q| q.tier)
                    .or_else(|| {
                        result.dropped.iter().find(|d| d.timed.tenant == tenant).map(|d| d.tier)
                    })
                    .map_or("-", |t| t.name());
                tenants.push_row(vec![
                    label.to_string(),
                    tier.to_string(),
                    s.offered.to_string(),
                    s.completed.to_string(),
                    s.dropped.to_string(),
                    fmt_f(s.p50_ms, 3),
                    fmt_f(s.p99_ms, 3),
                    fmt_f(s.goodput_qps, 1),
                    fmt_pct(100.0 * s.slo_violation_rate),
                ]);
            }
        }
    }
    let workers = opts.workers.map_or("preset workers".to_string(), |w| format!("{w} workers"));
    let sched = if opts.adaptive { "adaptive" } else { "static" };
    report.add_section(
        format!(
            "Traffic presets (MobileNetV3 on ZCU104, {} backend, {workers}, {sched} scheduling)",
            opts.backend
        ),
        table,
    );
    report.add_section("multi_tenant breakdown", tenants);
    report.add_note(
        "Latency is end-to-end (queueing + PB swap + service); drops count as SLO \
         violations. All time is simulated, so this report is bit-identical across \
         runs and platforms for a fixed seed."
            .to_string(),
    );
    report.add_note(
        "Baseline gate: `serve_bench --check BENCH_serve.json` (see docs/SERVING.md).".to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_report_covers_all_presets() {
        let r = serve(&ExpOptions::quick());
        assert_eq!(r.id, "serve");
        let (_, table) = &r.sections[0];
        assert_eq!(table.num_rows(), ServePreset::ALL.len());
        for (i, p) in ServePreset::ALL.iter().enumerate() {
            assert_eq!(table.cell(i, 0), Some(p.name()));
        }
        let (_, tenants) = &r.sections[1];
        assert_eq!(tenants.num_rows(), 2);
    }

    #[test]
    fn serve_report_is_bit_identical_across_runs() {
        let opts = ExpOptions::quick();
        assert_eq!(serve(&opts).render(), serve(&opts).render());
    }
}
