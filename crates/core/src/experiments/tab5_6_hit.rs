//! Table 5 (latency gain vs table size), Table 6 (lookup latency) and the
//! Appendix A.4 cache-hit-ratio measurement.

use std::sync::Arc;
use std::time::Instant;

use sushi_sched::{CacheSelection, Policy};
use sushi_wsnet::NetVector;

use crate::engine::EngineBuilder;
use crate::experiments::common::{ExpOptions, Workload};
use crate::metrics::{reduction_pct, summarize};
use crate::report::{fmt_f, ExpReport, TextTable};
use crate::stream::uniform_stream;
use crate::variants::{build_table, Variant};

/// Serves a stream on an engine built from an explicit table.
fn run_with_table(
    wl: &Workload,
    table: sushi_sched::LatencyTable,
    selection: CacheSelection,
    q: usize,
    opts: &ExpOptions,
) -> f64 {
    let zcu = sushi_accel::config::zcu104();
    let space = wl.constraint_space(&zcu, opts);
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&wl.net), wl.picks.clone())
        .table(table)
        .cache_selection(selection)
        .q_window(q)
        .build()
        .expect("table-sweep configuration is valid");
    let queries = uniform_stream(&space, opts.queries, opts.seed ^ 0x5);
    summarize(&engine.serve_stream(&queries).expect("analytical serve")).mean_latency_ms
}

/// Table 5: average latency improvement (vs SUSHI w/o scheduler) as the
/// candidate-column count grows.
#[must_use]
pub fn tab5(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new(
        "tab5",
        "Latency improvement vs Latency-Table size (normalized to SUSHI w/o scheduler)",
    );
    let sizes: &[usize] = if opts.queries <= ExpOptions::quick().queries {
        &[10, 40, 100]
    } else {
        &[10, 40, 80, 100, 500]
    };
    let zcu = sushi_accel::config::zcu104();
    for wl in crate::experiments::common::both_workloads() {
        let max_cols = *sizes.last().unwrap();
        let full_table = build_table(&wl.net, &wl.picks, &zcu, max_cols, opts.seed);
        // Baseline: state-unaware caching with the small default table.
        let base_table = full_table.with_columns(opts.candidates);
        let base = run_with_table(&wl, base_table, CacheSelection::FollowLast, wl.q_window, opts);
        let mut t = TextTable::new(vec!["columns", "mean latency (ms)", "improvement"]);
        for &n in sizes {
            let table = full_table.with_columns(n);
            let lat =
                run_with_table(&wl, table, CacheSelection::MinDistanceToAvg, wl.q_window, opts);
            t.push_row(vec![
                n.to_string(),
                fmt_f(lat, 3),
                format!("{:.1}%", reduction_pct(base, lat)),
            ]);
        }
        report.add_section(format!("{} (baseline {:.3} ms)", wl.label, base), t);
    }
    report.add_note(
        "Paper: ResNet50 improves 4% -> 9% and saturates ~100 columns; MobV3 stays ~1% \
         (the PB already covers most of each SubNet).",
    );
    report
}

/// Table 6: wall-clock lookup latency of the scheduler's critical-path
/// operations (SubNet selection + cache-distance scan) vs column count.
#[must_use]
pub fn tab6(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("tab6", "Latency-table lookup time vs column count");
    let wl = crate::experiments::common::resnet50_workload();
    let zcu = sushi_accel::config::zcu104();
    let sizes: &[usize] = if opts.queries <= ExpOptions::quick().queries {
        &[100, 500]
    } else {
        &[100, 200, 500, 1000, 2000]
    };
    let max_cols = *sizes.last().unwrap();
    let full_table = build_table(&wl.net, &wl.picks, &zcu, max_cols, opts.seed);
    let avg = NetVector::encode(&wl.picks[2].graph);
    let mut t = TextTable::new(vec!["columns", "select (us)", "closest-column scan (us)"]);
    for &n in sizes {
        let table = full_table.with_columns(n);
        let iters = 2000u32;
        let start = Instant::now();
        let mut sink = 0usize;
        for i in 0..iters {
            sink = sink.wrapping_add(table.select(
                Policy::StrictAccuracy,
                0.78,
                10.0,
                (i as usize) % table.num_columns(),
            ));
        }
        let select_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
        let start = Instant::now();
        for _ in 0..iters {
            sink = sink.wrapping_add(table.closest_column(&avg));
        }
        let scan_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(iters);
        std::hint::black_box(sink);
        t.push_row(vec![n.to_string(), fmt_f(select_us, 2), fmt_f(scan_us, 2)]);
    }
    report.add_section("lookup latency", t);
    report.add_note(
        "Paper: 2–17 us for 100–2000 columns — under 1/1000 of inference latency, so lookups \
         do not interfere with the query critical path.",
    );
    report
}

/// Appendix A.4: the average cache-hit ratio ‖SNₜ ∩ Gₜ‖₂ / ‖SNₜ‖₂.
#[must_use]
pub fn hit_ratio(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("hit_ratio", "Cache-hit ratio over the query trace (A.4)");
    let zcu = sushi_accel::config::zcu104();
    let mut t = TextTable::new(vec!["model", "mean hit ratio", "paper"]);
    for wl in crate::experiments::common::both_workloads() {
        let space = wl.constraint_space(&zcu, opts);
        let mut engine = wl.engine(Variant::Sushi, &zcu, Policy::StrictAccuracy, wl.q_window, opts);
        let queries = uniform_stream(&space, opts.queries, opts.seed ^ 0xA4);
        let records = engine.serve_stream(&queries).expect("analytical serve");
        // Skip the cold-start window before the first cache install.
        let warm = &records[wl.q_window.min(records.len() - 1)..];
        let s = summarize(warm);
        let paper = if wl.label == "ResNet50" { "66%" } else { "78%" };
        t.push_row(vec![
            wl.label.to_string(),
            format!("{:.1}%", s.mean_hit_ratio * 100.0),
            paper.to_string(),
        ]);
    }
    report.add_section("hit ratio", t);
    report.add_note(
        "Paper: hit ratio is higher for smaller models — the shared SubGraph is a larger \
         fraction of the served SubNet.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab5_reports_improvements_for_both_models() {
        let r = tab5(&ExpOptions::quick());
        assert_eq!(r.sections.len(), 2);
        assert_eq!(r.sections[0].1.num_rows(), 3);
    }

    #[test]
    fn tab5_more_columns_never_hurt_much() {
        let r = tab5(&ExpOptions::quick());
        for (name, t) in &r.sections {
            let lat = |row: usize| -> f64 { t.cell(row, 1).unwrap().parse().unwrap() };
            let first = lat(0);
            let last = lat(t.num_rows() - 1);
            assert!(last <= first * 1.05, "{name}: {last} vs {first}");
        }
    }

    #[test]
    fn tab6_lookup_is_fast() {
        let r = tab6(&ExpOptions::quick());
        let t = &r.sections[0].1;
        for row in 0..t.num_rows() {
            let select_us: f64 = t.cell(row, 1).unwrap().parse().unwrap();
            assert!(select_us < 1000.0, "lookup too slow: {select_us} us");
        }
    }

    #[test]
    fn hit_ratio_is_substantial_and_higher_for_mobv3() {
        let r = hit_ratio(&ExpOptions::quick());
        let t = &r.sections[0].1;
        let parse =
            |row: usize| -> f64 { t.cell(row, 1).unwrap().trim_end_matches('%').parse().unwrap() };
        let r50 = parse(0);
        let mob = parse(1);
        assert!(r50 > 20.0, "ResNet50 hit ratio {r50}%");
        assert!(mob > r50, "MobV3 {mob}% !> ResNet50 {r50}%");
    }
}
