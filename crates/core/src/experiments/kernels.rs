//! Kernel-backend equivalence: the functional int8 datapath must compute
//! the same function under every [`KernelPolicy`].
//!
//! Runs real forward passes of the toy zoo SubNets under each backend and
//! fingerprints the logits. The report is deterministic and identical for
//! every `repro --kernel-policy` setting — that invariance *is* the
//! property being demonstrated. Wall-clock comparisons (which do vary run
//! to run) live in the `kernel_bench` binary and `BENCH_kernels.json`.

use sushi_accel::dpe::DpeArray;
use sushi_accel::functional::{act_quant, forward, FunctionalOutput};
use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{DetRng, KernelPolicy, Shape4, Tensor};
use sushi_wsnet::zoo;
use sushi_wsnet::{SuperNet, WeightStore};

use crate::experiments::common::ExpOptions;
use crate::report::{ExpReport, TextTable};

fn toy_input(net: &SuperNet, seed: u64) -> Tensor<i8> {
    let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
    let mut rng = DetRng::new(seed);
    let f =
        Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect())
            .expect("shape matches");
    quantize_tensor(&f, act_quant())
}

/// A compact deterministic fingerprint of a forward pass.
fn fingerprint(out: &FunctionalOutput) -> String {
    let sum: f32 = out.logits.iter().map(|v| v.abs()).sum();
    let peak = out.logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    format!("{sum:.4}/{peak:.4}")
}

/// `kernels`: functional-datapath equivalence across kernel backends.
#[must_use]
pub fn kernels(opts: &ExpOptions) -> ExpReport {
    let mut report =
        ExpReport::new("kernels", "Kernel backend equivalence on the functional datapath");
    for net in [zoo::toy_supernet(), zoo::toy_mobilenet_supernet()] {
        let store = WeightStore::synthesize(&net, opts.seed ^ 0x5EED);
        let input = toy_input(&net, opts.seed);
        let mut table =
            TextTable::new(vec!["subnet", "policy", "prediction", "logits |Σ|/max", "== naive"]);
        for (cfg_name, cfg) in [("min", net.min_config()), ("max", net.max_config())] {
            let sn = net.materialize(cfg_name, &cfg).expect("zoo config");
            let base = DpeArray::new(16, 18);
            let naive = forward(&base.with_policy(KernelPolicy::Naive), &net, &store, &sn, &input)
                .expect("naive forward");
            // `selected` exercises whatever --kernel-policy chose; its row
            // must be byte-identical across policies.
            let runs = [
                ("naive", KernelPolicy::Naive),
                ("gemm", KernelPolicy::Im2colGemm),
                ("auto", KernelPolicy::Auto),
                ("selected", opts.kernel_policy),
            ];
            let mut computed: Vec<(KernelPolicy, FunctionalOutput)> =
                vec![(KernelPolicy::Naive, naive.clone())];
            for (label, policy) in runs {
                // Each policy's forward pass runs once; later rows with the
                // same policy (`naive`, and `selected` under any setting)
                // reuse the cached output.
                let out = match computed.iter().find(|(p, _)| *p == policy) {
                    Some((_, out)) => out.clone(),
                    None => {
                        let out = forward(&base.with_policy(policy), &net, &store, &sn, &input)
                            .expect("forward pass");
                        computed.push((policy, out.clone()));
                        out
                    }
                };
                table.push_row(vec![
                    cfg_name.to_string(),
                    label.to_string(),
                    out.prediction.to_string(),
                    fingerprint(&out),
                    if out == naive { "yes".to_string() } else { "DIVERGED".to_string() },
                ]);
            }
        }
        report.add_section(net.name.clone(), table);
    }
    report.add_note(
        "int8 accumulation is associative, so every backend computes identical logits; \
         wall-clock comparisons live in `kernel_bench` / BENCH_kernels.json."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_report_shows_no_divergence() {
        let r = kernels(&ExpOptions::quick());
        assert_eq!(r.id, "kernels");
        assert_eq!(r.sections.len(), 2);
        for (_, table) in &r.sections {
            assert_eq!(table.num_rows(), 8); // 2 subnets x 4 policies
            for row in 0..table.num_rows() {
                assert_eq!(table.cell(row, 4), Some("yes"));
            }
        }
    }

    #[test]
    fn kernels_report_is_policy_invariant() {
        let mut a_opts = ExpOptions::quick();
        a_opts.kernel_policy = KernelPolicy::Naive;
        let mut b_opts = ExpOptions::quick();
        b_opts.kernel_policy = KernelPolicy::Im2colGemm;
        assert_eq!(kernels(&a_opts).render(), kernels(&b_opts).render());
    }
}
