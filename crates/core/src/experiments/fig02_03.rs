//! Fig. 2 (arithmetic intensity per layer) and Fig. 3 (latency of two
//! SubNet shapes as a function of the cached SubGraph's shape).

use sushi_accel::exec::Accelerator;
use sushi_accel::roofline::{classify, layer_ai_series, Boundedness};
use sushi_wsnet::SubNetConfig;

use crate::experiments::common::{roofline_board, ExpOptions};
use crate::report::{fmt_f, ExpReport, TextTable};

/// Fig. 2: per-layer arithmetic intensity of the two SuperNets' maximal
/// SubNets; lower AI in latter layers ⇒ memory-bound on the edge system.
#[must_use]
pub fn fig2(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("fig2", "Arithmetic intensity per conv layer (FLOPs/Byte)");
    let cfg = roofline_board();
    for wl in crate::experiments::common::both_workloads() {
        let max = wl.net.materialize("max", &wl.net.max_config()).expect("max config");
        let series = layer_ai_series(&wl.net, &max);
        let mut t = TextTable::new(vec!["layer", "AI (F/B)", "bound"]);
        let mut memory_bound = 0usize;
        for (i, ai) in &series {
            let bound = classify(&cfg, *ai);
            if bound == Boundedness::MemoryBound {
                memory_bound += 1;
            }
            t.push_row(vec![i.to_string(), fmt_f(*ai, 1), format!("{bound:?}")]);
        }
        report.add_note(format!(
            "{}: {}/{} conv layers are memory-bound on the 19.2 GB/s / 1.296 TFLOPS system",
            wl.label,
            memory_bound,
            series.len()
        ));
        report.add_section(format!("{} (max SubNet)", wl.label), t);
    }
    report.add_note(
        "Paper: 'a large fraction of convolution layers running on a canonical edge \
         accelerator are memory-bound', with MobV3 lower-AI than ResNet50.",
    );
    report
}

/// Fig. 3: a deep-and-thin SubNet vs a shallow-and-wide SubNet, served
/// under cached SubGraphs of different shapes at a fixed PB budget. Each
/// SubNet prefers the cache matching its own shape.
#[must_use]
pub fn fig3(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new(
        "fig3",
        "SubNet latency as a function of cached-SubGraph shape (fixed budget)",
    );
    let wl = crate::experiments::common::resnet50_workload();
    let net = &wl.net;
    let deep_thin = net
        .materialize("deep&thin", &SubNetConfig::new(vec![4; 4], vec![0.2; 4]).with_width(0.65))
        .expect("valid");
    let wide_shallow = net
        .materialize("wide&shallow", &SubNetConfig::new(vec![2; 4], vec![0.35; 4]).with_width(1.0))
        .expect("valid");
    let cfg = sushi_accel::config::zcu104();
    let budget = cfg.buffers.pb_bytes;
    let caches = [
        ("more-layers cache", net.subgraph_to_budget(&deep_thin.graph, budget)),
        ("more-width cache", net.subgraph_to_budget(&wide_shallow.graph, budget)),
    ];
    let acc = Accelerator::new(cfg);
    let mut t = TextTable::new(vec!["served SubNet", "cached SubGraph", "latency (ms)"]);
    let mut best: Vec<(String, String)> = Vec::new();
    for sn in [&deep_thin, &wide_shallow] {
        let mut best_name = String::new();
        let mut best_lat = f64::INFINITY;
        for (cname, cache) in &caches {
            let lat = acc.probe(net, sn, Some(cache)).latency_ms;
            if lat < best_lat {
                best_lat = lat;
                best_name = (*cname).to_string();
            }
            t.push_row(vec![sn.name.clone(), (*cname).to_string(), fmt_f(lat, 3)]);
        }
        best.push((sn.name.clone(), best_name));
    }
    report.add_section("latency matrix", t);
    for (sn, cache) in &best {
        report.add_note(format!("{sn} is fastest under the {cache}"));
    }
    report.add_note(
        "Paper: 'different cached SubGraphs are optimal for different served SubNets \
         with a non-trivial relationship based on the similarity of NN architecture parameters'.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reports_both_models() {
        let r = fig2(&ExpOptions::quick());
        assert_eq!(r.sections.len(), 2);
        assert!(r.sections[0].1.num_rows() > 30, "ResNet50 has >30 conv layers");
    }

    #[test]
    fn fig2_finds_memory_bound_layers() {
        let r = fig2(&ExpOptions::quick());
        // At least one note reports a nonzero memory-bound count.
        assert!(r.notes.iter().any(|n| n.contains("memory-bound") && !n.contains(" 0/")));
    }

    #[test]
    fn fig3_shape_affinity_holds() {
        // The headline claim: each SubNet is fastest under the cache shaped
        // like itself.
        let r = fig3(&ExpOptions::quick());
        let notes: Vec<&String> = r.notes.iter().filter(|n| n.contains("fastest")).collect();
        assert_eq!(notes.len(), 2);
        assert!(notes[0].contains("deep&thin") && notes[0].contains("more-layers"));
        assert!(notes[1].contains("wide&shallow") && notes[1].contains("more-width"));
    }
}
