//! Fig. 10 (latency breakdown w/ and w/o PB), Fig. 11 (SGS roofline) and
//! Fig. 12 (design-space exploration).

use sushi_accel::dse::{sweep, DseGrid};
use sushi_accel::exec::Accelerator;
use sushi_accel::roofline::{ridge_point, subnet_roofline};
use sushi_accel::CycleBreakdown;

use crate::experiments::common::{roofline_board, ExpOptions, Workload};
use crate::metrics::reduction_pct;
use crate::report::{fmt_f, ExpReport, TextTable};

fn breakdown_ms(cfg: &sushi_accel::AccelConfig, c: &CycleBreakdown) -> [f64; 6] {
    [
        cfg.cycles_to_ms(c.compute),
        cfg.cycles_to_ms(c.offchip_iact),
        cfg.cycles_to_ms(c.offchip_weights),
        cfg.cycles_to_ms(c.onchip_weights),
        cfg.cycles_to_ms(c.offchip_oact),
        cfg.cycles_to_ms(c.total()),
    ]
}

/// Per-workload Fig. 10 rows: two bars per SubNet (w/o PB, w/ PB with the
/// shared SubGraph cached), decomposed into the five critical-path buckets.
fn fig10_for(wl: &Workload, report: &mut ExpReport) -> (f64, f64) {
    let cfg = roofline_board();
    let acc = Accelerator::new(cfg.clone());
    let shared = wl.net.shared_subgraph(&wl.picks);
    let cached = wl.net.subgraph_to_budget(&shared, cfg.buffers.pb_bytes);
    let mut t = TextTable::new(vec![
        "SubNet",
        "PB",
        "compute",
        "iAct",
        "off-W",
        "on-W",
        "oAct",
        "total(ms)",
        "acc(%)",
    ]);
    let mut min_red = f64::INFINITY;
    let mut max_red = f64::NEG_INFINITY;
    for sn in &wl.picks {
        let cold = acc.probe(&wl.net, sn, None);
        let warm = acc.probe(&wl.net, sn, Some(&cached));
        for (tag, rep) in [("w/o", &cold), ("w/", &warm)] {
            let b = breakdown_ms(&cfg, &rep.cycles);
            t.push_row(vec![
                sn.name.clone(),
                tag.to_string(),
                fmt_f(b[0], 3),
                fmt_f(b[1], 3),
                fmt_f(b[2], 3),
                fmt_f(b[3], 3),
                fmt_f(b[4], 3),
                fmt_f(b[5], 3),
                fmt_f(sn.accuracy_pct(), 2),
            ]);
        }
        let red = reduction_pct(
            cfg.cycles_to_ms(cold.cycles.total()),
            cfg.cycles_to_ms(warm.cycles.total()),
        );
        min_red = min_red.min(red);
        max_red = max_red.max(red);
    }
    report.add_section(format!("{} latency breakdown", wl.label), t);
    (min_red, max_red)
}

/// Fig. 10: potential latency reduction with SGS.
#[must_use]
pub fn fig10(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new(
        "fig10",
        "Latency breakdown per SubNet, w/o PB vs w/ PB (shared SubGraph cached)",
    );
    for wl in crate::experiments::common::both_workloads() {
        let (lo, hi) = fig10_for(&wl, &mut report);
        report.add_note(format!(
            "{}: SGS reduces per-query latency by [{:.1}%, {:.1}%] across the Pareto picks",
            wl.label, lo, hi
        ));
    }
    report.add_note("Paper: reductions of [5.7%, 7.92%] for ResNet50 and [6%, 23.6%] for MobV3.");
    report
}

/// Fig. 11: roofline points per SubNet without and with SGS.
#[must_use]
pub fn fig11(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("fig11", "SGS pushes SubNets toward the compute-bound region");
    let cfg = roofline_board();
    report.add_note(format!("ridge point: {:.1} FLOPs/Byte", ridge_point(&cfg)));
    for wl in crate::experiments::common::both_workloads() {
        let shared = wl.net.shared_subgraph(&wl.picks);
        let cached = wl.net.subgraph_to_budget(&shared, cfg.buffers.pb_bytes);
        let mut t = TextTable::new(vec![
            "SubNet",
            "AI base",
            "AI SGS",
            "TFLOPS base",
            "TFLOPS SGS",
            "bound SGS",
        ]);
        for sn in &wl.picks {
            let base = subnet_roofline(&cfg, &wl.net, sn, None);
            let sgs = subnet_roofline(&cfg, &wl.net, sn, Some(&cached));
            t.push_row(vec![
                sn.name.clone(),
                fmt_f(base.ai, 1),
                fmt_f(sgs.ai, 1),
                fmt_f(base.attainable_tflops, 3),
                fmt_f(sgs.attainable_tflops, 3),
                format!("{:?}", sgs.bound),
            ]);
        }
        report.add_section(format!("{} roofline", wl.label), t);
    }
    report
}

/// Fig. 12: DSE over PB size × bandwidth × throughput; prints Time-Save %.
#[must_use]
pub fn fig12(opts: &ExpOptions) -> ExpReport {
    let mut report =
        ExpReport::new("fig12", "Design-space exploration: latency saved by SGS (Time Save %)");
    let grid = if opts.queries <= ExpOptions::quick().queries {
        DseGrid {
            pb_bytes: vec![512 << 10, 1728 << 10, 4096 << 10],
            bw_gbps: vec![9.6, 19.2],
            geometries: vec![(16, 18), (32, 36)],
        }
    } else {
        DseGrid::paper_grid()
    };
    for wl in crate::experiments::common::both_workloads() {
        let points = sweep(&sushi_accel::config::zcu104(), &wl.net, &wl.picks, &grid);
        let mut t = TextTable::new(vec![
            "PB (MB)",
            "BW (GB/s)",
            "MACs/cy",
            "w/o PB (ms)",
            "w/ PB (ms)",
            "save %",
        ]);
        let mut best = (0.0_f64, String::new());
        for p in &points {
            let save = p.time_save_pct();
            if save > best.0 {
                best = (
                    save,
                    format!("PB={:.2}MB BW={} MACs={}", p.pb_mb, p.bw_gbps, p.macs_per_cycle),
                );
            }
            t.push_row(vec![
                fmt_f(p.pb_mb, 2),
                fmt_f(p.bw_gbps, 1),
                p.macs_per_cycle.to_string(),
                fmt_f(p.latency_wo_pb_ms, 3),
                fmt_f(p.latency_w_pb_ms, 3),
                fmt_f(save, 1),
            ]);
        }
        report.add_note(format!("{}: best point {} saves {:.1}%", wl.label, best.1, best.0));
        report.add_section(format!("{} DSE", wl.label), t);
    }
    report.add_note(
        "Paper: larger PB, more compute and less bandwidth increase the saving; \
         MobV3 improves less than ResNet50 (smaller, depthwise, less reuse).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_reduction_bands_are_positive() {
        let r = fig10(&ExpOptions::quick());
        for wl in ["ResNet50", "MobV3"] {
            let note = r.notes.iter().find(|n| n.starts_with(wl)).unwrap();
            // "...by [lo%, hi%]..." -> lo must be >= 0.
            let lo: f64 = note
                .split('[')
                .nth(1)
                .and_then(|s| s.split('%').next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap();
            assert!(lo >= 0.0, "{note}");
        }
    }

    #[test]
    fn fig10_has_two_rows_per_pick() {
        let r = fig10(&ExpOptions::quick());
        assert_eq!(r.sections[0].1.num_rows(), 12); // 6 picks x 2 bars
        assert_eq!(r.sections[1].1.num_rows(), 14); // 7 picks x 2 bars
    }

    #[test]
    fn fig11_ai_increases_with_sgs() {
        let r = fig11(&ExpOptions::quick());
        let t = &r.sections[0].1;
        for row in 0..t.num_rows() {
            let base: f64 = t.cell(row, 1).unwrap().parse().unwrap();
            let sgs: f64 = t.cell(row, 2).unwrap().parse().unwrap();
            assert!(sgs > base, "row {row}: {sgs} !> {base}");
        }
    }

    #[test]
    fn fig12_quick_grid_runs() {
        let r = fig12(&ExpOptions::quick());
        assert_eq!(r.sections.len(), 2);
        assert_eq!(r.sections[0].1.num_rows(), 3 * 2 * 2);
    }
}
