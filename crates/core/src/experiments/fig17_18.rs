//! Figs. 17–18 (Appendix A.1): temporal analysis of the SubGraph caching
//! window `Q`.
//!
//! Small `Q` reacts fast but pays frequent PB reloads; large `Q` amortizes
//! reloads but works from stale history. The paper finds the sweet spot
//! near Q=4–8 (ResNet50) and Q=10 (MobV3).

use sushi_sched::Policy;

use crate::experiments::common::{ExpOptions, Workload};
use crate::metrics::summarize;
use crate::report::{fmt_f, ExpReport, TextTable};
use crate::stream::uniform_stream;
use crate::variants::Variant;

fn q_sweep(wl: &Workload, windows: &[usize], opts: &ExpOptions) -> TextTable {
    let zcu = sushi_accel::config::zcu104();
    let space = wl.constraint_space(&zcu, opts);
    let queries = uniform_stream(&space, opts.queries, opts.seed ^ 0x17);
    let mut t = TextTable::new(vec![
        "Q",
        "mean latency (ms)",
        "mean accuracy (%)",
        "hit ratio",
        "cache updates",
    ]);
    for &q in windows {
        let mut engine = wl.engine(Variant::Sushi, &zcu, Policy::StrictAccuracy, q, opts);
        let records = engine.serve_stream(&queries).expect("analytical serve");
        let s = summarize(&records);
        let updates = records.iter().filter(|r| r.cache_updated).count();
        t.push_row(vec![
            q.to_string(),
            fmt_f(s.mean_latency_ms, 3),
            fmt_f(s.mean_accuracy * 100.0, 2),
            fmt_f(s.mean_hit_ratio, 3),
            updates.to_string(),
        ]);
    }
    t
}

/// Fig. 17: ResNet50 window sweep (Q ∈ {1, 2, 4, 8, 10}).
#[must_use]
pub fn fig17(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("fig17", "Temporal analysis of SubGraph caching — ResNet50");
    let wl = crate::experiments::common::resnet50_workload();
    report.add_section("Q sweep", q_sweep(&wl, &[1, 2, 4, 8, 10, 20], opts));
    report.add_note(
        "Paper: per-query updates help but cost off-chip fetches; Q=4–8 best; 10+ degrades \
         as temporal locality fades.",
    );
    report
}

/// Fig. 18: MobV3 window sweep (Q ∈ {1, 4, 8, 15}).
#[must_use]
pub fn fig18(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("fig18", "Temporal analysis of SubGraph caching — MobV3");
    let wl = crate::experiments::common::mobv3_workload();
    report.add_section("Q sweep", q_sweep(&wl, &[1, 4, 8, 10, 15], opts));
    report.add_note("Paper: averaging over ~10 queries gives the best tradeoff for MobV3.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latencies(t: &crate::report::TextTable) -> Vec<f64> {
        (0..t.num_rows()).map(|r| t.cell(r, 1).unwrap().parse().unwrap()).collect()
    }

    #[test]
    fn fig17_covers_requested_windows() {
        let r = fig17(&ExpOptions::quick());
        assert_eq!(r.sections[0].1.num_rows(), 6);
    }

    #[test]
    fn fig17_more_frequent_updates_for_smaller_q() {
        let r = fig17(&ExpOptions::quick());
        let t = &r.sections[0].1;
        let updates: Vec<u64> =
            (0..t.num_rows()).map(|row| t.cell(row, 4).unwrap().parse().unwrap()).collect();
        assert!(updates[0] >= updates[t.num_rows() - 1], "{updates:?}");
    }

    #[test]
    fn fig18_some_amortization_beats_thrashing_or_staleness() {
        // The sweet spot (minimum latency) should not be at the extremes in
        // *both* workload sweeps simultaneously; assert for MobV3 that some
        // Q > 1 is at least as good as Q = 1 (reload thrash costs).
        let r = fig18(&ExpOptions::quick());
        let lats = latencies(&r.sections[0].1);
        let best = lats.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            lats[1..].iter().any(|&l| l <= lats[0] + 1e-9) || best == lats[0],
            "no amortized window competitive with Q=1: {lats:?}"
        );
    }

    #[test]
    fn fig17_accuracy_stays_in_band() {
        let r = fig17(&ExpOptions::quick());
        let t = &r.sections[0].1;
        for row in 0..t.num_rows() {
            let acc: f64 = t.cell(row, 2).unwrap().parse().unwrap();
            assert!((75.0..=81.0).contains(&acc), "Q row {row}: {acc}%");
        }
    }
}
