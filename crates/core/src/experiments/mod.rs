//! Experiment registry: one regenerator per paper table and figure.
//!
//! Every entry returns an [`crate::report::ExpReport`] whose rows mirror
//! the series the paper plots; `DESIGN.md` maps each id to its paper
//! source and `EXPERIMENTS.md` records paper-vs-measured values.

mod ablations;
pub mod common;
mod fig02_03;
mod fig10_11_12;
mod fig13_14;
mod fig15_16;
mod fig17_18;
mod kernels;
mod serve;
mod tab5_6_hit;
mod tables;

pub use ablations::{abl_candidates, abl_distance, abl_pb_split};
pub use common::ExpOptions;
pub use fig02_03::{fig2, fig3};
pub use fig10_11_12::{fig10, fig11, fig12};
pub use fig13_14::{fig13a, fig13b, fig14};
pub use fig15_16::{fig15, fig16};
pub use fig17_18::{fig17, fig18};
pub use kernels::kernels;
pub use serve::serve;
pub use tab5_6_hit::{hit_ratio, tab5, tab6};
pub use tables::{tab1, tab2, tab3, tab4};

use crate::report::ExpReport;

/// All experiment ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "fig2",
    "fig3",
    "fig10",
    "fig11",
    "fig12",
    "fig13a",
    "fig13b",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "tab1",
    "tab2",
    "tab3",
    "tab4",
    "tab5",
    "tab6",
    "hit_ratio",
    "kernels",
    "serve",
    "abl_distance",
    "abl_pb_split",
    "abl_candidates",
];

/// Runs one experiment by id. Returns `None` for an unknown id.
#[must_use]
pub fn run(id: &str, opts: &ExpOptions) -> Option<ExpReport> {
    let report = match id {
        "fig2" => fig2(opts),
        "fig3" => fig3(opts),
        "fig10" => fig10(opts),
        "fig11" => fig11(opts),
        "fig12" => fig12(opts),
        "fig13a" => fig13a(opts),
        "fig13b" => fig13b(opts),
        "fig14" => fig14(opts),
        "fig15" => fig15(opts),
        "fig16" => fig16(opts),
        "fig17" => fig17(opts),
        "fig18" => fig18(opts),
        "tab1" => tab1(opts),
        "tab2" => tab2(opts),
        "tab3" => tab3(opts),
        "tab4" => tab4(opts),
        "tab5" => tab5(opts),
        "tab6" => tab6(opts),
        "hit_ratio" => hit_ratio(opts),
        "kernels" => kernels(opts),
        "serve" => serve(opts),
        "abl_distance" => abl_distance(opts),
        "abl_pb_split" => abl_pb_split(opts),
        "abl_candidates" => abl_candidates(opts),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_returns_none() {
        assert!(run("fig99", &ExpOptions::quick()).is_none());
    }

    #[test]
    fn registry_ids_match_dispatch() {
        // Cheap experiments can actually run; expensive serving experiments
        // are covered by their own module tests — here only verify the
        // static tables dispatch.
        for id in ["tab1", "tab2", "tab3", "tab4"] {
            let r = run(id, &ExpOptions::quick()).unwrap();
            assert_eq!(r.id, id);
        }
        assert_eq!(ALL_IDS.len(), 24);
    }
}
