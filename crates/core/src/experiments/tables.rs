//! Tables 1–4: buffer bandwidth rules, resource utilization, buffer
//! configuration split, and the reuse-capability matrix.

use sushi_accel::buffers::bandwidth_requirements;
use sushi_accel::config::{alveo_u50, zcu104};
use sushi_accel::resources::{dpu_reference, estimate};
use sushi_accel::reuse::table4 as reuse_table;

use crate::experiments::common::ExpOptions;
use crate::report::{fmt_f, ExpReport, TextTable};

/// Table 1: minimal bandwidth per on-chip buffer.
#[must_use]
pub fn tab1(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("tab1", "Bandwidth requirement of on-chip buffers");
    for cfg in [zcu104(), alveo_u50()] {
        let mut t = TextTable::new(vec!["buffer", "min bandwidth (B/cycle)", "rule"]);
        for row in bandwidth_requirements(&cfg, 3, 3) {
            let rule = match row.buffer {
                sushi_accel::buffers::BufferKind::Db | sushi_accel::buffers::BufferKind::Pb => {
                    "LCM(off-chip BW, DPE demand)"
                }
                sushi_accel::buffers::BufferKind::Sb => "LCM(off-chip BW, CPxRxS)",
                sushi_accel::buffers::BufferKind::Lb => "DPE demand",
                sushi_accel::buffers::BufferKind::Ob => "KP x oAct width",
            };
            t.push_row(vec![
                row.buffer.name().to_string(),
                row.bytes_per_cycle.to_string(),
                rule.to_string(),
            ]);
        }
        report.add_section(format!("{} (3x3 kernels)", cfg.name), t);
    }
    report
}

/// Table 2: resource comparison of SushiAccel (w/, w/o PB, both boards)
/// against the Xilinx DPU.
#[must_use]
pub fn tab2(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("tab2", "Estimated FPGA resource utilization");
    let mut t = TextTable::new(vec!["design", "LUT", "FF", "BRAM36", "URAM", "DSP", "PeakOps/cy"]);
    let mut add = |name: String, e: sushi_accel::resources::ResourceEstimate| {
        t.push_row(vec![
            name,
            e.lut.to_string(),
            e.registers.to_string(),
            fmt_f(e.bram_36k, 1),
            e.uram.to_string(),
            e.dsp.to_string(),
            (e.peak_ops_per_cycle * 2).to_string(),
        ]);
    };
    for board in [zcu104(), alveo_u50()] {
        let wo = board.without_pb();
        add(wo.name.clone(), estimate(&wo));
        add(format!("{} w/ PB", board.name), estimate(&board));
    }
    add("Xilinx DPU (reported)".into(), dpu_reference());
    report.add_section("resources", t);
    report.add_note(
        "Estimator is a linear fit to the paper's synthesis results (see sushi-accel::resources); \
         ZCU104/U50 values match Table 2 within 10%.",
    );
    report
}

/// Table 3: per-buffer storage split on ZCU104, w/ and w/o PB.
#[must_use]
pub fn tab3(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("tab3", "Buffer configuration of SushiAccel (ZCU104)");
    let with = zcu104();
    let without = with.without_pb();
    let mut t = TextTable::new(vec!["buffer", "w/o PB (KB)", "w/ PB (KB)"]);
    let rows: Vec<(&str, u64, u64)> = vec![
        ("DB-Ping", without.buffers.db_bytes_each, with.buffers.db_bytes_each),
        ("DB-Pong", without.buffers.db_bytes_each, with.buffers.db_bytes_each),
        ("SB", without.buffers.sb_bytes, with.buffers.sb_bytes),
        ("LB", without.buffers.lb_bytes, with.buffers.lb_bytes),
        ("OB", without.buffers.ob_bytes, with.buffers.ob_bytes),
        ("ZSB", without.buffers.zsb_bytes, with.buffers.zsb_bytes),
        ("PB", without.buffers.pb_bytes, with.buffers.pb_bytes),
    ];
    for (name, wo, w) in rows {
        t.push_row(vec![name.to_string(), (wo / 1024).to_string(), (w / 1024).to_string()]);
    }
    t.push_row(vec![
        "Overall".to_string(),
        (without.buffers.total_bytes() / 1024).to_string(),
        (with.buffers.total_bytes() / 1024).to_string(),
    ]);
    report.add_section("buffer split", t);
    report.add_note("Both columns use the same total on-chip storage (fair comparison, §5.4.1).");
    report
}

/// Table 4: reuse comparison against prior accelerators.
#[must_use]
pub fn tab4(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("tab4", "Reuse comparison (prior works vs SUSHI)");
    let mut t = TextTable::new(vec!["work", "iAct", "oAct", "weights (temporal)", "SubGraph"]);
    let mark = |b: bool| if b { "Y" } else { "-" }.to_string();
    for p in reuse_table() {
        let subgraph = if p.subgraph_reuse_spatial && p.subgraph_reuse_temporal {
            "spatial+temporal".to_string()
        } else {
            "-".to_string()
        };
        t.push_row(vec![
            p.name.clone(),
            mark(p.iact_reuse),
            mark(p.oact_reuse),
            mark(p.weight_reuse_temporal),
            subgraph,
        ]);
    }
    report.add_section("capabilities", t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_lists_five_buffers_per_board() {
        let r = tab1(&ExpOptions::quick());
        assert_eq!(r.sections.len(), 2);
        assert_eq!(r.sections[0].1.num_rows(), 5);
    }

    #[test]
    fn tab2_has_five_designs() {
        let r = tab2(&ExpOptions::quick());
        assert_eq!(r.sections[0].1.num_rows(), 5);
    }

    #[test]
    fn tab3_overall_storage_is_equal() {
        let r = tab3(&ExpOptions::quick());
        let t = &r.sections[0].1;
        let last = t.num_rows() - 1;
        assert_eq!(t.cell(last, 1), t.cell(last, 2));
    }

    #[test]
    fn tab4_sushi_row_is_unique_in_subgraph_reuse() {
        let r = tab4(&ExpOptions::quick());
        let t = &r.sections[0].1;
        let mut sushi_rows = 0;
        for row in 0..t.num_rows() {
            if t.cell(row, 4) == Some("spatial+temporal") {
                assert_eq!(t.cell(row, 0), Some("SUSHI"));
                sushi_rows += 1;
            }
        }
        assert_eq!(sushi_rows, 1);
    }
}
