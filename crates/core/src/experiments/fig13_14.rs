//! Fig. 13 (real-board latency and energy) and Fig. 14 (layer-wise
//! comparison against the Xilinx DPU).

use sushi_accel::baselines::{CpuModel, DpuModel};
use sushi_accel::exec::Accelerator;
use sushi_accel::timing::layer_timing;
use sushi_wsnet::layer::LayerSlice;

use crate::experiments::common::{boards, ExpOptions, Workload};
use crate::metrics::{geomean, reduction_pct};
use crate::report::{fmt_f, ExpReport, TextTable};

/// Steady-state latency of each pick on a board, with the shared SubGraph
/// cached when the board has a PB.
fn board_latencies(cfg: &sushi_accel::AccelConfig, wl: &Workload) -> Vec<f64> {
    let acc = Accelerator::new(cfg.clone());
    let cached = cfg.buffers.has_pb().then(|| {
        let shared = wl.net.shared_subgraph(&wl.picks);
        wl.net.subgraph_to_budget(&shared, cfg.buffers.pb_bytes)
    });
    wl.picks.iter().map(|sn| acc.probe(&wl.net, sn, cached.as_ref()).latency_ms).collect()
}

/// Fig. 13a: CPU vs ZCU104 / Alveo U50, each w/o and w/ PB, on ResNet50.
#[must_use]
pub fn fig13a(_opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new("fig13a", "Board latency per ResNet50 SubNet (ms)");
    let wl = crate::experiments::common::resnet50_workload();
    let cpu = CpuModel::default();
    let cpu_lat: Vec<f64> = wl.picks.iter().map(|p| cpu.latency_ms(&wl.net, p)).collect();
    let mut columns: Vec<(String, Vec<f64>)> = vec![("CPU".into(), cpu_lat)];
    for board in boards() {
        let wo = board.without_pb();
        columns.push((format!("{} w/o PB", board.name), board_latencies(&wo, &wl)));
        columns.push((format!("{} w/ PB", board.name), board_latencies(&board, &wl)));
    }
    let mut headers = vec!["SubNet".to_string()];
    headers.extend(columns.iter().map(|(n, _)| n.clone()));
    let mut t = TextTable::new(headers);
    for (i, sn) in wl.picks.iter().enumerate() {
        let mut row = vec![sn.name.clone()];
        row.extend(columns.iter().map(|(_, lats)| fmt_f(lats[i], 2)));
        t.push_row(row);
    }
    // Speedup summaries vs CPU.
    let cpu_col = &columns[0].1;
    for (name, lats) in &columns[1..] {
        let speedups: Vec<f64> = cpu_col.iter().zip(lats).map(|(c, a)| c / a).collect();
        let lo = speedups.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        report.add_note(format!("{name}: {lo:.2}x – {hi:.2}x speedup over CPU"));
    }
    report.add_section("latency", t);
    report.add_note(
        "Paper: ZCU104 w/ PB 1.87–3.17x over CPU; U50 w/ PB 1.57–2.61x; the U50 \
         underperforms ZCU104 on small SubNets due to datacenter DRAM contention.",
    );
    report
}

/// Fig. 13b: off-chip/on-chip access energy per SubNet, w/o vs w/ PB.
#[must_use]
pub fn fig13b(_opts: &ExpOptions) -> ExpReport {
    let mut report =
        ExpReport::new("fig13b", "Data-access energy per SubNet (mJ), w/o PB vs w/ PB");
    let zcu = sushi_accel::config::zcu104();
    for wl in crate::experiments::common::both_workloads() {
        let shared = wl.net.shared_subgraph(&wl.picks);
        let cached = wl.net.subgraph_to_budget(&shared, zcu.buffers.pb_bytes);
        let acc_pb = Accelerator::new(zcu.clone());
        let acc_wo = Accelerator::new(zcu.without_pb());
        let mut t = TextTable::new(vec![
            "SubNet",
            "off-chip w/o",
            "on-chip w/o",
            "off-chip w/",
            "on-chip w/",
            "off-chip save %",
        ]);
        let mut saves = Vec::new();
        for sn in &wl.picks {
            let wo = acc_wo.probe(&wl.net, sn, None);
            let w = acc_pb.probe(&wl.net, sn, Some(&cached));
            let save = reduction_pct(wo.energy.offchip_mj, w.energy.offchip_mj);
            saves.push(save);
            t.push_row(vec![
                sn.name.clone(),
                fmt_f(wo.energy.offchip_mj, 3),
                fmt_f(wo.energy.onchip_mj, 3),
                fmt_f(w.energy.offchip_mj, 3),
                fmt_f(w.energy.onchip_mj, 3),
                fmt_f(save, 1),
            ]);
        }
        let lo = saves.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = saves.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        report.add_note(format!("{}: off-chip energy saved [{lo:.1}%, {hi:.1}%]", wl.label));
        report.add_section(format!("{} energy", wl.label), t);
    }
    report.add_note(
        "Paper: [14%, 52.6%] off-chip saving for ResNet50 and [43.6%, 78.7%] for MobV3 \
         (MobV3 saves proportionally more: the PB covers a larger fraction of the SubNet).",
    );
    report
}

/// Fig. 14: layer-wise latency of SushiAccel (w/o PB) vs the Xilinx DPU on
/// the 3×3 convolution layers of the ResNet50 min-SubNet (ZCU104).
#[must_use]
pub fn fig14(_opts: &ExpOptions) -> ExpReport {
    let mut report =
        ExpReport::new("fig14", "SushiAccel w/o PB vs Xilinx DPU, per 3x3 conv layer (ms)");
    let wl = crate::experiments::common::resnet50_workload();
    let min_sn = &wl.picks[0];
    let cfg = sushi_accel::config::zcu104().without_pb();
    let dpu = DpuModel::default();
    let empty = LayerSlice::empty();
    let mut t = TextTable::new(vec!["layer", "SushiAccel (ms)", "Xilinx DPU (ms)", "speedup"]);
    let mut speedups = Vec::new();
    for (layer, slice) in wl.net.layers.iter().zip(min_sn.graph.slices()) {
        if slice.is_empty() || slice.kernel_size != 3 {
            continue; // §5.5 considers 3x3 conv layers only
        }
        let ours = cfg.cycles_to_ms(layer_timing(&cfg, layer, slice, &empty).cycles.total());
        let theirs = dpu.layer_latency_ms(layer, slice);
        let speedup = theirs / ours;
        speedups.push(speedup);
        t.push_row(vec![layer.name.clone(), fmt_f(ours, 4), fmt_f(theirs, 4), fmt_f(speedup, 2)]);
    }
    let gm = geomean(&speedups);
    report.add_section("per-layer latency", t);
    report.add_note(format!(
        "Geomean speedup {:.1}% over Xilinx DPU (range {:.2}x – {:.2}x)",
        (gm - 1.0) * 100.0,
        speedups.iter().copied().fold(f64::INFINITY, f64::min),
        speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    ));
    report.add_note("Paper: 0.5–1.95x per layer, 25.1% geomean speedup.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13a_accelerators_beat_cpu() {
        let r = fig13a(&ExpOptions::quick());
        for note in r.notes.iter().filter(|n| n.contains("speedup over CPU")) {
            let lo: f64 = note
                .split(": ")
                .nth(1)
                .and_then(|s| s.split('x').next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap();
            assert!(lo > 1.0, "{note}");
        }
    }

    #[test]
    fn fig13a_pb_never_slower_steady_state() {
        let r = fig13a(&ExpOptions::quick());
        let t = &r.sections[0].1;
        for row in 0..t.num_rows() {
            // Columns: SubNet, CPU, Z w/o, Z w/, U w/o, U w/.
            let z_wo: f64 = t.cell(row, 2).unwrap().parse().unwrap();
            let z_w: f64 = t.cell(row, 3).unwrap().parse().unwrap();
            assert!(z_w <= z_wo + 1e-9);
        }
    }

    #[test]
    fn fig13b_mobv3_saves_larger_fraction_than_resnet() {
        let r = fig13b(&ExpOptions::quick());
        let span = |label: &str| -> (f64, f64) {
            let note = r.notes.iter().find(|n| n.starts_with(label)).unwrap();
            let inner = note.split('[').nth(1).unwrap();
            let lo: f64 = inner.split('%').next().unwrap().trim().parse().unwrap();
            let hi: f64 = inner
                .split(", ")
                .nth(1)
                .unwrap()
                .split('%')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            (lo, hi)
        };
        let (r_lo, r_hi) = span("ResNet50");
        let (m_lo, m_hi) = span("MobV3");
        assert!(m_hi > r_hi, "MobV3 max saving {m_hi}% !> ResNet50 {r_hi}%");
        assert!(r_lo >= 0.0 && m_lo >= 0.0);
    }

    #[test]
    fn fig14_geomean_speedup_in_paper_ballpark() {
        let r = fig14(&ExpOptions::quick());
        let note = r.notes.iter().find(|n| n.contains("Geomean")).unwrap();
        let gm: f64 = note
            .split("speedup ")
            .nth(1)
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.trim().parse().ok())
            .unwrap();
        // Paper: 25.1%. Accept a generous simulator band.
        assert!(gm > 5.0 && gm < 60.0, "geomean {gm}%");
    }

    #[test]
    fn fig14_only_3x3_layers_listed() {
        let r = fig14(&ExpOptions::quick());
        let t = &r.sections[0].1;
        assert!(t.num_rows() >= 8, "min SubNet has at least 8 3x3 convs");
        for row in 0..t.num_rows() {
            let name = t.cell(row, 0).unwrap();
            assert!(name.contains("conv2"), "unexpected layer {name}");
        }
    }
}
