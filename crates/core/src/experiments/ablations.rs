//! Ablations beyond the paper's figures, covering the design choices
//! `DESIGN.md` calls out:
//!
//! * `abl_distance` — Algorithm 1's similarity measure: L2 (the paper's
//!   choice) vs cosine distance vs state-unaware caching.
//! * `abl_pb_split` — §5.3.2's buffer competition: sweep the PB's share of
//!   a *fixed* total on-chip budget and serve a real query stream (unlike
//!   Fig. 12, which probes steady-state latency only).
//! * `abl_candidates` — SushiAbs candidate-set construction: uniform
//!   truncations only vs the shape-diverse tilted set.

use std::sync::Arc;

use sushi_sched::CacheSelection;

use crate::engine::EngineBuilder;
use crate::experiments::common::{ExpOptions, Workload};
use crate::metrics::summarize;
use crate::report::{fmt_f, ExpReport, TextTable};
use crate::stream::uniform_stream;
use crate::variants::Variant;

fn run_selection(wl: &Workload, selection: CacheSelection, opts: &ExpOptions) -> (f64, f64) {
    let zcu = sushi_accel::config::zcu104();
    let space = wl.constraint_space(&zcu, opts);
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&wl.net), wl.picks.clone())
        .cache_selection(selection)
        .q_window(wl.q_window)
        .candidates(opts.candidates)
        .seed(opts.seed)
        .build()
        .expect("ablation configuration is valid");
    let queries = uniform_stream(&space, opts.queries, opts.seed ^ 0xAB1);
    let records = engine.serve_stream(&queries).expect("analytical serve");
    let s = summarize(&records);
    (s.mean_latency_ms, s.mean_hit_ratio)
}

/// Distance-measure ablation for the caching decision.
#[must_use]
pub fn abl_distance(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new(
        "abl_distance",
        "Ablation: cache-selection similarity measure (L2 vs cosine vs state-unaware)",
    );
    for wl in crate::experiments::common::both_workloads() {
        let mut t = TextTable::new(vec!["selection", "mean latency (ms)", "hit ratio"]);
        for (name, sel) in [
            ("L2 to AvgNet (Alg. 1)", CacheSelection::MinDistanceToAvg),
            ("cosine to AvgNet", CacheSelection::MinCosineToAvg),
            ("follow-last (unaware)", CacheSelection::FollowLast),
            ("frozen first choice", CacheSelection::Frozen),
        ] {
            let (lat, hit) = run_selection(&wl, sel, opts);
            t.push_row(vec![name.to_string(), fmt_f(lat, 3), fmt_f(hit, 3)]);
        }
        report.add_section(format!("{} selection ablation", wl.label), t);
    }
    report.add_note(
        "L2 keeps scale information (how *much* of each layer is used); cosine only keeps \
         proportions, which can select an undersized cache column.",
    );
    report
}

/// PB-vs-DB partition ablation at a fixed total on-chip budget.
#[must_use]
pub fn abl_pb_split(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new(
        "abl_pb_split",
        "Ablation: PB share of a fixed on-chip budget (PB competes with the ping-pong DBs)",
    );
    let base = sushi_accel::config::zcu104();
    let shares: &[f64] = &[0.0, 0.15, 0.30, 0.45, 0.60];
    for wl in crate::experiments::common::both_workloads() {
        let mut t = TextTable::new(vec![
            "PB share",
            "PB (KB)",
            "DB each (KB)",
            "mean latency (ms)",
            "hit ratio",
        ]);
        let weight_pool = base.buffers.pb_bytes + 2 * base.buffers.db_bytes_each; // what PB and DBs split
        for &share in shares {
            let pb = (weight_pool as f64 * share) as u64;
            let cfg = base.with_pb_bytes(pb);
            let space = wl.constraint_space(&cfg, opts);
            let mut engine = wl.engine(
                Variant::Sushi,
                &cfg,
                sushi_sched::Policy::StrictAccuracy,
                wl.q_window,
                opts,
            );
            let queries = uniform_stream(&space, opts.queries, opts.seed ^ 0xAB2);
            let records = engine.serve_stream(&queries).expect("analytical serve");
            let s = summarize(&records);
            t.push_row(vec![
                format!("{:.0}%", share * 100.0),
                (cfg.buffers.pb_bytes / 1024).to_string(),
                (cfg.buffers.db_bytes_each / 1024).to_string(),
                fmt_f(s.mean_latency_ms, 3),
                fmt_f(s.mean_hit_ratio, 3),
            ]);
        }
        report.add_section(format!("{} PB/DB split", wl.label), t);
    }
    report.add_note(
        "Too little PB wastes the SGS opportunity; too much shrinks the DBs, forcing more \
         weight tiles per layer — the §5.3.2 balance.",
    );
    report
}

/// Candidate-set construction ablation: uniform truncations vs the
/// shape-diverse tilted set actually used.
#[must_use]
pub fn abl_candidates(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new(
        "abl_candidates",
        "Ablation: SushiAbs candidate set — uniform truncations vs shape-diverse tilts",
    );
    let zcu = sushi_accel::config::zcu104();
    for wl in crate::experiments::common::both_workloads() {
        let space = wl.constraint_space(&zcu, opts);
        let queries = uniform_stream(&space, opts.queries, opts.seed ^ 0xAB3);
        let mut t =
            TextTable::new(vec!["candidate set", "columns", "mean latency (ms)", "hit ratio"]);
        // Uniform-only: each pick truncated once (bias 0).
        let uniform: Vec<_> = wl
            .picks
            .iter()
            .map(|sn| wl.net.subgraph_to_budget(&sn.graph, zcu.buffers.pb_bytes))
            .collect();
        // Diverse: the default construction (tilts + samples).
        let diverse = sushi_sched::candidates::build_candidate_set(
            &wl.net,
            &wl.picks,
            zcu.buffers.pb_bytes,
            opts.candidates.max(12),
            opts.seed,
        );
        for (name, cands) in [("uniform picks", uniform), ("shape-diverse", diverse)] {
            let probe = sushi_accel::exec::Accelerator::new(zcu.clone());
            let table = sushi_sched::LatencyTable::build(&wl.picks, cands, |sn, cached| {
                probe.probe(&wl.net, sn, cached).latency_ms
            });
            let cols = table.num_columns() - 1;
            let mut engine = EngineBuilder::new()
                .workload(Arc::clone(&wl.net), wl.picks.clone())
                .table(table)
                .q_window(wl.q_window)
                .build()
                .expect("ablation configuration is valid");
            let records = engine.serve_stream(&queries).expect("analytical serve");
            let s = summarize(&records);
            t.push_row(vec![
                name.to_string(),
                cols.to_string(),
                fmt_f(s.mean_latency_ms, 3),
                fmt_f(s.mean_hit_ratio, 3),
            ]);
        }
        report.add_section(format!("{} candidate sets", wl.label), t);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abl_distance_covers_four_selections() {
        let r = abl_distance(&ExpOptions::quick());
        assert_eq!(r.sections[0].1.num_rows(), 4);
    }

    #[test]
    fn abl_distance_l2_not_worse_than_frozen() {
        let r = abl_distance(&ExpOptions::quick());
        for (name, t) in &r.sections {
            let lat = |row: usize| -> f64 { t.cell(row, 1).unwrap().parse().unwrap() };
            assert!(lat(0) <= lat(3) * 1.02, "{name}: L2 {} vs frozen {}", lat(0), lat(3));
        }
    }

    #[test]
    fn abl_pb_split_zero_share_has_zero_hits() {
        let r = abl_pb_split(&ExpOptions::quick());
        for (_, t) in &r.sections {
            let hit: f64 = t.cell(0, 4).unwrap().parse().unwrap();
            assert_eq!(hit, 0.0);
        }
    }

    #[test]
    fn abl_pb_split_some_pb_beats_none() {
        let r = abl_pb_split(&ExpOptions::quick());
        for (name, t) in &r.sections {
            let lat = |row: usize| -> f64 { t.cell(row, 3).unwrap().parse().unwrap() };
            let best_with_pb = (1..t.num_rows()).map(lat).fold(f64::INFINITY, f64::min);
            assert!(best_with_pb < lat(0), "{name}: no PB share helps");
        }
    }

    #[test]
    fn abl_candidates_diverse_not_worse() {
        let r = abl_candidates(&ExpOptions::quick());
        for (name, t) in &r.sections {
            let uniform: f64 = t.cell(0, 2).unwrap().parse().unwrap();
            let diverse: f64 = t.cell(1, 2).unwrap().parse().unwrap();
            assert!(diverse <= uniform * 1.02, "{name}: diverse {diverse} vs uniform {uniform}");
        }
    }
}
