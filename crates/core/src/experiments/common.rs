//! Shared experiment context: workloads, boards, option knobs.

use std::sync::Arc;

use sushi_accel::config::{alveo_u50, roofline_system, zcu104};
use sushi_accel::AccelConfig;
use sushi_sched::Policy;
use sushi_tensor::KernelPolicy;
use sushi_wsnet::{zoo, SubNet, SuperNet};

use crate::engine::{BackendKind, Engine, EngineBuilder};
use crate::serving::routing::RoutingPolicy;
use crate::stream::ConstraintSpace;
use crate::variants::{build_table, Variant};

/// Experiment sizing knobs. Defaults regenerate the paper-scale runs; the
/// benches shrink `queries` for quick iterations.
///
/// `#[non_exhaustive]`: construct via [`Default`] / [`ExpOptions::quick`]
/// and adjust fields, so future knobs are non-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ExpOptions {
    /// Query-stream length for serving experiments.
    pub queries: usize,
    /// Candidate-set size for the latency table.
    pub candidates: usize,
    /// Master seed.
    pub seed: u64,
    /// Kernel backend for experiments that execute the functional int8
    /// datapath (`repro --kernel-policy naive|gemm|auto`). Experiment
    /// *outputs* are policy-independent by construction; only wall time
    /// changes.
    pub kernel_policy: KernelPolicy,
    /// Execution backend for the serving-runtime experiments
    /// (`repro --backend analytical|functional`). The analytical default
    /// keeps full-size workloads fast; functional runs the real int8
    /// datapath, in parallel across however many workers are configured.
    pub backend: BackendKind,
    /// Worker-count override for the serving-runtime presets
    /// (`repro --workers N`; `None` keeps each preset's own sizing).
    pub workers: Option<usize>,
    /// Replica-routing override for the serving-runtime presets
    /// (`repro --routing <policy>`; `None` keeps each preset's own
    /// policy).
    pub routing: Option<RoutingPolicy>,
    /// Whether the serving-runtime presets run with load-adaptive
    /// degradation (`repro --no-adaptive` turns it off; the static path
    /// stays bit-identical to the pre-adaptive runtime).
    pub adaptive: bool,
    /// Whether the `multi_tenant` preset runs with tenant-tiered
    /// adaptation (`repro --no-tenants` falls back to the single global
    /// controller; no other preset defines tiers, so the knob is inert
    /// elsewhere). Requires `adaptive` — with adaptation off the preset
    /// is static either way.
    pub tenants: bool,
    /// Whether functional-backend cache installs lower SubNets through the
    /// typed IR and fuse bias/requant/activation into the conv epilogue
    /// (`repro --no-fusion` turns it off). Logits are bit-identical either
    /// way; only wall time changes.
    pub fusion: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            queries: 600,
            candidates: 16,
            seed: 0xC0FFEE,
            kernel_policy: KernelPolicy::Auto,
            backend: BackendKind::Analytical,
            workers: None,
            routing: None,
            adaptive: true,
            tenants: true,
            fusion: true,
        }
    }
}

impl ExpOptions {
    /// A reduced configuration for quick smoke runs and benches.
    #[must_use]
    pub fn quick() -> Self {
        Self { queries: 120, candidates: 8, ..Self::default() }
    }
}

/// One evaluated workload: a SuperNet and its paper Pareto picks.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The SuperNet.
    pub net: Arc<SuperNet>,
    /// The paper's serving SubNets (A.. in size order).
    pub picks: Vec<SubNet>,
    /// Short label (`"ResNet50"` / `"MobV3"`), as in the paper's figures.
    pub label: &'static str,
    /// The paper's best caching window `Q` for this workload (Appendix A.1).
    pub q_window: usize,
}

/// Loads the ResNet50 workload (Q = 8 per Fig. 17).
#[must_use]
pub fn resnet50_workload() -> Workload {
    let net = Arc::new(zoo::resnet50_supernet());
    let picks = zoo::paper_subnets(&net);
    Workload { net, picks, label: "ResNet50", q_window: 8 }
}

/// Loads the MobileNetV3 workload (Q = 10 per Fig. 18 / Appendix A.1).
#[must_use]
pub fn mobv3_workload() -> Workload {
    let net = Arc::new(zoo::mobilenet_v3_supernet());
    let picks = zoo::paper_subnets(&net);
    Workload { net, picks, label: "MobV3", q_window: 10 }
}

/// Both paper workloads.
#[must_use]
pub fn both_workloads() -> Vec<Workload> {
    vec![resnet50_workload(), mobv3_workload()]
}

/// The evaluation boards.
#[must_use]
pub fn boards() -> Vec<AccelConfig> {
    vec![zcu104(), alveo_u50()]
}

/// The §5.2 roofline system.
#[must_use]
pub fn roofline_board() -> AccelConfig {
    roofline_system()
}

impl Workload {
    /// Derives the constraint space from cold latencies on `config`.
    #[must_use]
    pub fn constraint_space(&self, config: &AccelConfig, opts: &ExpOptions) -> ConstraintSpace {
        let table = build_table(&self.net, &self.picks, config, 0, opts.seed);
        let accs: Vec<f64> = self.picks.iter().map(|p| p.accuracy).collect();
        let lats: Vec<f64> = (0..table.num_rows()).map(|i| table.latency_ms(i, 0)).collect();
        ConstraintSpace::from_serving_set(&accs, &lats)
    }

    /// Builds an analytical serving [`Engine`] for this workload.
    ///
    /// # Panics
    /// Panics only on programmer error: the experiment knobs passed here
    /// are always a valid engine configuration.
    #[must_use]
    pub fn engine(
        &self,
        variant: Variant,
        config: &AccelConfig,
        policy: Policy,
        q_window: usize,
        opts: &ExpOptions,
    ) -> Engine {
        EngineBuilder::new()
            .workload(Arc::clone(&self.net), self.picks.clone())
            .variant(variant)
            .accel_config(config.clone())
            .policy(policy)
            .q_window(q_window)
            .candidates(opts.candidates)
            .seed(opts.seed)
            .build()
            .expect("experiment workload configuration is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_pick_counts() {
        assert_eq!(resnet50_workload().picks.len(), 6);
        assert_eq!(mobv3_workload().picks.len(), 7);
    }

    #[test]
    fn constraint_space_is_sane() {
        let w = mobv3_workload();
        let s = w.constraint_space(&zcu104(), &ExpOptions::quick());
        assert!(s.acc_lo < s.acc_hi);
        assert!(s.lat_lo < s.lat_hi && s.lat_lo > 0.0);
    }

    #[test]
    fn quick_options_are_smaller() {
        assert!(ExpOptions::quick().queries < ExpOptions::default().queries);
    }
}
