//! Fig. 15 (scheduler functional evaluation) and Fig. 16 (end-to-end
//! latency/accuracy comparison of the three serving variants).

use sushi_sched::Policy;

use crate::experiments::common::{ExpOptions, Workload};
use crate::metrics::{reduction_pct, summarize};
use crate::report::{fmt_f, fmt_pct, ExpReport, TextTable};
use crate::stream::uniform_stream;
use crate::variants::Variant;

/// Fig. 15: served-vs-constraint scatter under each hard-constraint policy.
#[must_use]
pub fn fig15(opts: &ExpOptions) -> ExpReport {
    let mut report = ExpReport::new(
        "fig15",
        "SushiSched serves strictly better accuracy / strictly lesser latency",
    );
    let zcu = sushi_accel::config::zcu104();
    for wl in crate::experiments::common::both_workloads() {
        let space = wl.constraint_space(&zcu, opts);
        for policy in [Policy::StrictLatency, Policy::StrictAccuracy] {
            let mut engine = wl.engine(Variant::Sushi, &zcu, policy, wl.q_window, opts);
            let queries = uniform_stream(&space, opts.queries, opts.seed ^ 0x15);
            let records = engine.serve_stream(&queries).expect("analytical serve");
            let (label, satisfied) = match policy {
                Policy::StrictLatency => (
                    "strict latency",
                    records
                        .iter()
                        .filter(|r| r.served_latency_ms <= r.query.latency_constraint_ms)
                        .count(),
                ),
                Policy::StrictAccuracy => (
                    "strict accuracy",
                    records
                        .iter()
                        .filter(|r| r.served_accuracy >= r.query.accuracy_constraint)
                        .count(),
                ),
            };
            let mut t = TextTable::new(vec!["constraint", "served", "ok"]);
            for r in records.iter().step_by((records.len() / 20).max(1)) {
                let (c, s, ok) = match policy {
                    Policy::StrictLatency => (
                        r.query.latency_constraint_ms,
                        r.served_latency_ms,
                        r.served_latency_ms <= r.query.latency_constraint_ms,
                    ),
                    Policy::StrictAccuracy => (
                        r.query.accuracy_constraint * 100.0,
                        r.served_accuracy * 100.0,
                        r.served_accuracy >= r.query.accuracy_constraint,
                    ),
                };
                t.push_row(vec![fmt_f(c, 2), fmt_f(s, 2), ok.to_string()]);
            }
            report.add_note(format!(
                "{} / {label}: {}/{} queries satisfied the hard constraint",
                wl.label,
                satisfied,
                records.len()
            ));
            report.add_section(format!("{} — {label} (sampled scatter)", wl.label), t);
        }
    }
    report.add_note(
        "Paper: blue dots almost always below y=x (latency) / above y=x (accuracy); \
         infeasible constraints are served best-effort.",
    );
    report
}

/// Runs one variant over a stream and returns `(mean latency, mean acc %)`.
fn run_variant(wl: &Workload, variant: Variant, policy: Policy, opts: &ExpOptions) -> (f64, f64) {
    let zcu = sushi_accel::config::zcu104();
    let space = wl.constraint_space(&zcu, opts);
    let mut engine = wl.engine(variant, &zcu, policy, wl.q_window, opts);
    let queries = uniform_stream(&space, opts.queries, opts.seed ^ 0x16);
    let records = engine.serve_stream(&queries).expect("analytical serve");
    let s = summarize(&records);
    (s.mean_latency_ms, s.mean_accuracy * 100.0)
}

/// Fig. 16: No-SUSHI vs SUSHI-w/o-Sched vs SUSHI on random queries.
#[must_use]
pub fn fig16(opts: &ExpOptions) -> ExpReport {
    let mut report =
        ExpReport::new("fig16", "End-to-end latency/accuracy tradeoff across serving variants");
    for wl in crate::experiments::common::both_workloads() {
        let mut t = TextTable::new(vec!["variant", "mean latency (ms)", "mean accuracy (%)"]);
        let mut lat = std::collections::HashMap::new();
        for variant in [Variant::NoSushi, Variant::SushiNoSched, Variant::Sushi] {
            let (l, a) = run_variant(&wl, variant, Policy::StrictAccuracy, opts);
            lat.insert(variant.label(), l);
            t.push_row(vec![variant.label().to_string(), fmt_f(l, 3), fmt_f(a, 2)]);
        }
        // Accuracy head-to-head at equal latency budgets (strict-latency).
        let (_, acc_no) = run_variant(&wl, Variant::NoSushi, Policy::StrictLatency, opts);
        let (_, acc_sushi) = run_variant(&wl, Variant::Sushi, Policy::StrictLatency, opts);
        let latency_cut = reduction_pct(lat["No-Sushi"], lat["Sushi"]);
        report.add_note(format!(
            "{}: SUSHI cuts mean latency by {} at equal accuracy; at equal latency budgets it \
             serves +{:.2}% accuracy",
            wl.label,
            fmt_pct(latency_cut),
            acc_sushi - acc_no
        ));
        report.add_section(format!("{} variants", wl.label), t);
    }
    report.add_note(
        "Paper: 21% (ResNet50) / 25% (MobV3) average latency reduction at the same accuracy, \
         and up to 0.98% higher served accuracy for the same latency.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn satisfied_fraction(report: &ExpReport, model: &str, policy: &str) -> f64 {
        let note =
            report.notes.iter().find(|n| n.starts_with(model) && n.contains(policy)).unwrap();
        let frac = note.split(": ").nth(1).unwrap().split(' ').next().unwrap();
        let mut parts = frac.split('/');
        let num: f64 = parts.next().unwrap().parse().unwrap();
        let den: f64 = parts.next().unwrap().parse().unwrap();
        num / den
    }

    #[test]
    fn fig15_strict_accuracy_is_always_met() {
        let r = fig15(&ExpOptions::quick());
        for model in ["ResNet50", "MobV3"] {
            assert_eq!(satisfied_fraction(&r, model, "strict accuracy"), 1.0, "{model}");
        }
    }

    #[test]
    fn fig15_strict_latency_mostly_met() {
        let r = fig15(&ExpOptions::quick());
        for model in ["ResNet50", "MobV3"] {
            let f = satisfied_fraction(&r, model, "strict latency");
            assert!(f > 0.85, "{model}: only {f} satisfied");
        }
    }

    #[test]
    fn fig16_sushi_beats_no_sushi() {
        let r = fig16(&ExpOptions::quick());
        for section in &r.sections {
            let t = &section.1;
            let lat = |row: usize| -> f64 { t.cell(row, 1).unwrap().parse().unwrap() };
            let no_sushi = lat(0);
            let sushi = lat(2);
            assert!(sushi < no_sushi, "{}: {sushi} !< {no_sushi}", section.0);
        }
    }

    #[test]
    fn fig16_full_sushi_at_least_matches_state_unaware() {
        let r = fig16(&ExpOptions::quick());
        for section in &r.sections {
            let t = &section.1;
            let no_sched: f64 = t.cell(1, 1).unwrap().parse().unwrap();
            let sushi: f64 = t.cell(2, 1).unwrap().parse().unwrap();
            assert!(sushi <= no_sched * 1.02, "{}: {sushi} vs {no_sched}", section.0);
        }
    }
}
