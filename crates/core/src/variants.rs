//! The three §5.7 comparison points.
//!
//! * **No-SUSHI** — the same constraint-aware SubNet selection, but the
//!   accelerator has no Persistent Buffer (its capacity returned to the
//!   dynamic buffers) and nothing is ever cached.
//! * **SUSHI w/o Sched** — the PB exists but caching is *state-unaware*:
//!   the cache simply follows the most recently served SubNet instead of
//!   the AvgNet distance rule.
//! * **SUSHI** — the full co-design (Algorithm 1).
//!
//! Variants are assembled via [`crate::engine::EngineBuilder::variant`];
//! this module keeps the variant taxonomy and the latency-table builder.

use sushi_accel::exec::Accelerator;
use sushi_accel::AccelConfig;
use sushi_sched::candidates::build_candidate_set;
use sushi_sched::LatencyTable;
use sushi_wsnet::{SubNet, SuperNet};

/// Serving-stack variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// No Persistent Buffer at all.
    NoSushi,
    /// PB with state-unaware (follow-last) caching.
    SushiNoSched,
    /// Full SUSHI (state-aware caching via AvgNet distance).
    Sushi,
}

impl Variant {
    /// Display label used in reports (matches Fig. 16's legend).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Variant::NoSushi => "No-Sushi",
            Variant::SushiNoSched => "Sushi w/o Sch",
            Variant::Sushi => "Sushi",
        }
    }
}

/// Builds the latency table for a serving set on a given accelerator
/// configuration, with `num_candidates` cacheable SubGraphs truncated to
/// the PB budget.
#[must_use]
pub fn build_table(
    net: &SuperNet,
    subnets: &[SubNet],
    config: &AccelConfig,
    num_candidates: usize,
    seed: u64,
) -> LatencyTable {
    let budget = if config.buffers.has_pb() { config.buffers.pb_bytes } else { 0 };
    let candidates = if budget > 0 {
        build_candidate_set(net, subnets, budget, num_candidates, seed)
    } else {
        Vec::new()
    };
    let probe = Accelerator::new(config.clone());
    LatencyTable::build(subnets, candidates, |sn, cached| probe.probe(net, sn, cached).latency_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_accel::config::zcu104;
    use sushi_wsnet::zoo;

    #[test]
    fn labels_match_fig16_legend() {
        assert_eq!(Variant::NoSushi.label(), "No-Sushi");
        assert_eq!(Variant::SushiNoSched.label(), "Sushi w/o Sch");
        assert_eq!(Variant::Sushi.label(), "Sushi");
    }

    #[test]
    fn no_pb_table_has_only_empty_column() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let t = build_table(&net, &picks, &zcu104().without_pb(), 10, 1);
        assert_eq!(t.num_columns(), 1);
    }

    #[test]
    fn pb_table_has_requested_candidates() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let t = build_table(&net, &picks, &zcu104(), 10, 1);
        assert_eq!(t.num_columns(), 11);
        assert_eq!(t.num_rows(), picks.len());
    }

    #[test]
    fn cached_columns_reduce_table_latency() {
        let net = zoo::resnet50_supernet();
        let picks = zoo::paper_subnets(&net);
        let t = build_table(&net, &picks, &zcu104(), 8, 2);
        for i in 0..t.num_rows() {
            let cold = t.latency_ms(i, 0);
            let best_warm =
                (1..t.num_columns()).map(|j| t.latency_ms(i, j)).fold(f64::INFINITY, f64::min);
            assert!(best_warm < cold, "row {i}: no column helps");
        }
    }

    #[test]
    fn builder_produces_all_variants() {
        let picks = zoo::paper_subnets(&zoo::mobilenet_v3_supernet());
        for v in [Variant::NoSushi, Variant::SushiNoSched, Variant::Sushi] {
            let e = crate::engine::EngineBuilder::new()
                .variant(v)
                .q_window(8)
                .candidates(6)
                .seed(3)
                .build()
                .unwrap();
            assert_eq!(e.subnets().len(), picks.len());
        }
    }
}
