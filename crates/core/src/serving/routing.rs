//! Replica routing: which worker a ready batch is dispatched to.
//!
//! With per-replica cache state (each worker's [`Accelerator`] holds its
//! own resident SubGraph, and installs are routed — not broadcast), worker
//! choice becomes a placement decision: dispatching to a replica whose
//! resident SubGraph already covers the batch's SubNet serves from a warm
//! Persistent Buffer, while a mismatched replica pays cold latency. A
//! [`RoutingPolicy`] makes that choice from per-replica [`ReplicaView`]
//! snapshots — a pure function of the views (plus a round-robin cursor),
//! so routing is deterministic, platform-independent, and directly
//! property-testable without a pool in hand.
//!
//! [`Accelerator`]: sushi_accel::exec::Accelerator

use std::str::FromStr;

/// How a ready batch picks among free workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// The free replica that has been idle longest (earliest
    /// `busy_until`), lowest index on ties. Spreads load instead of
    /// hot-spotting worker 0 the way a lowest-index-free rule does.
    LeastLoaded,
    /// Cycle through replicas in index order, skipping busy ones.
    RoundRobin,
    /// Prefer the free replica whose resident SubGraph already covers the
    /// batch's SubNet (warm Persistent Buffer); fall back to
    /// [`RoutingPolicy::LeastLoaded`] order when no free replica is warm.
    CacheAffinity,
}

impl RoutingPolicy {
    /// Stable label, matching the `--routing` CLI flag values.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicy::LeastLoaded => "least_loaded",
            RoutingPolicy::RoundRobin => "round_robin",
            RoutingPolicy::CacheAffinity => "cache_affinity",
        }
    }

    /// Picks a worker for one batch, or `None` when every replica is busy.
    ///
    /// Deterministic in `(self, views, *rr_cursor)`; the cursor is only
    /// read/advanced by [`RoutingPolicy::RoundRobin`]. Starvation-free by
    /// construction: whenever any view is free, a free one is chosen.
    #[must_use]
    pub fn choose(self, views: &[ReplicaView], rr_cursor: &mut usize) -> Option<usize> {
        let least_loaded = |pred: &dyn Fn(&ReplicaView) -> bool| {
            views
                .iter()
                .enumerate()
                .filter(|(_, v)| v.free && pred(v))
                .min_by(|(ai, a), (bi, b)| {
                    a.busy_until_ms.total_cmp(&b.busy_until_ms).then(ai.cmp(bi))
                })
                .map(|(i, _)| i)
        };
        match self {
            RoutingPolicy::LeastLoaded => least_loaded(&|_| true),
            RoutingPolicy::RoundRobin => {
                if views.is_empty() {
                    return None;
                }
                let start = *rr_cursor % views.len();
                let picked =
                    (0..views.len()).map(|k| (start + k) % views.len()).find(|&i| views[i].free)?;
                *rr_cursor = picked + 1;
                Some(picked)
            }
            RoutingPolicy::CacheAffinity => {
                least_loaded(&|v| v.covers).or_else(|| least_loaded(&|_| true))
            }
        }
    }
}

impl FromStr for RoutingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "least_loaded" => Ok(RoutingPolicy::LeastLoaded),
            "round_robin" => Ok(RoutingPolicy::RoundRobin),
            "cache_affinity" => Ok(RoutingPolicy::CacheAffinity),
            other => Err(format!(
                "unknown routing policy '{other}' (expected least_loaded|round_robin|cache_affinity)"
            )),
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One replica, as the routing decision sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaView {
    /// Whether the replica can take a batch right now (idle and not
    /// already claimed by an earlier batch of the same dispatch group).
    pub free: bool,
    /// When the replica last became (or becomes) idle, ms — the
    /// least-loaded order key.
    pub busy_until_ms: f64,
    /// Whether the replica's resident SubGraph covers the batch's SubNet
    /// (a warm dispatch).
    pub covers: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(free: bool, busy_until_ms: f64, covers: bool) -> ReplicaView {
        ReplicaView { free, busy_until_ms, covers }
    }

    #[test]
    fn least_loaded_prefers_longest_idle_then_lowest_index() {
        let views = [view(true, 5.0, false), view(true, 2.0, false), view(true, 2.0, false)];
        let mut rr = 0;
        assert_eq!(RoutingPolicy::LeastLoaded.choose(&views, &mut rr), Some(1));
        assert_eq!(rr, 0, "least-loaded never touches the round-robin cursor");
    }

    #[test]
    fn round_robin_cycles_and_skips_busy() {
        let views = [view(true, 0.0, false), view(false, 9.0, false), view(true, 0.0, false)];
        let mut rr = 0;
        assert_eq!(RoutingPolicy::RoundRobin.choose(&views, &mut rr), Some(0));
        assert_eq!(RoutingPolicy::RoundRobin.choose(&views, &mut rr), Some(2));
        assert_eq!(RoutingPolicy::RoundRobin.choose(&views, &mut rr), Some(0));
    }

    #[test]
    fn cache_affinity_prefers_covering_replica_and_falls_back() {
        let views = [view(true, 0.0, false), view(true, 3.0, true)];
        let mut rr = 0;
        assert_eq!(RoutingPolicy::CacheAffinity.choose(&views, &mut rr), Some(1));
        let cold = [view(true, 0.0, false), view(true, 3.0, false)];
        assert_eq!(RoutingPolicy::CacheAffinity.choose(&cold, &mut rr), Some(0));
        let busy_warm = [view(true, 0.0, false), view(false, 3.0, true)];
        assert_eq!(
            RoutingPolicy::CacheAffinity.choose(&busy_warm, &mut rr),
            Some(0),
            "a busy warm replica never blocks dispatch"
        );
    }

    #[test]
    fn all_busy_yields_none() {
        let views = [view(false, 1.0, true), view(false, 2.0, true)];
        let mut rr = 7;
        for p in
            [RoutingPolicy::LeastLoaded, RoutingPolicy::RoundRobin, RoutingPolicy::CacheAffinity]
        {
            assert_eq!(p.choose(&views, &mut rr), None);
        }
        assert_eq!(RoutingPolicy::RoundRobin.choose(&[], &mut rr), None);
    }

    #[test]
    fn names_round_trip() {
        for p in
            [RoutingPolicy::LeastLoaded, RoutingPolicy::RoundRobin, RoutingPolicy::CacheAffinity]
        {
            assert_eq!(p.name().parse::<RoutingPolicy>().unwrap(), p);
        }
        assert!("random".parse::<RoutingPolicy>().is_err());
    }
}
