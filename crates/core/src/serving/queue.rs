//! Bounded admission queue with drop and deadline policies.
//!
//! Arriving queries are admitted into a single FIFO of bounded capacity.
//! When the queue is full, the configured [`DropPolicy`] picks a victim;
//! dropped queries count as SLO violations in the serving report (a shed
//! query is a broken promise, not a free pass). The queue also integrates
//! its depth over simulated time so the report can state the *time-weighted*
//! mean depth, not just a per-event average.

use std::collections::VecDeque;

use sushi_sched::TenantTier;

use crate::stream::TimedQuery;

/// What to evict when an arrival finds the queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPolicy {
    /// Reject the incoming query (tail drop).
    DropNewest,
    /// Evict the oldest queued query and admit the newcomer.
    DropOldest,
    /// Evict whichever query — queued or incoming — has the earliest
    /// deadline, i.e. the one least likely to meet its SLO anyway.
    DeadlineAware,
}

/// A query waiting for dispatch, with its admission-time SubNet decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedQuery {
    /// The query and its arrival time.
    pub timed: TimedQuery,
    /// SubNet row chosen by the scheduler at admission (the batching key).
    pub subnet_row: usize,
    /// Priority tier of the query's tenant ([`TenantTier::Standard`] when
    /// the run has no tenant configuration).
    pub tier: TenantTier,
}

/// Why a query was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Evicted by the queue's overflow policy.
    QueueFull,
    /// Its deadline lapsed while still queued (deadline-aware sweep), or a
    /// retry could not possibly restart before it (deadline-aware
    /// give-up).
    DeadlineLapsed,
    /// A transiently-failed query exhausted its retry attempts or its
    /// tier's retry budget (or failed with retries unsupervised/disabled).
    RetryBudgetExhausted,
    /// Still queued when the run ended with no replica left to serve it
    /// (every replica crashed without restart).
    ReplicaLost,
}

impl DropReason {
    /// Stable snake_case label for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::DeadlineLapsed => "deadline_lapsed",
            DropReason::RetryBudgetExhausted => "retry_budget_exhausted",
            DropReason::ReplicaLost => "replica_lost",
        }
    }
}

/// A dropped query and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DroppedQuery {
    /// The query that was shed.
    pub timed: TimedQuery,
    /// The reason it was shed.
    pub reason: DropReason,
    /// Priority tier of the shed query's tenant.
    pub tier: TenantTier,
}

/// Bounded FIFO admission queue with time-weighted depth accounting.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: usize,
    policy: DropPolicy,
    items: VecDeque<QueuedQuery>,
    depth_integral_ms: f64,
    last_event_ms: f64,
    max_depth: usize,
    ewma_depth: f64,
    depth_tau_ms: f64,
}

impl AdmissionQueue {
    /// Creates a queue.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            policy,
            items: VecDeque::with_capacity(capacity),
            depth_integral_ms: 0.0,
            last_event_ms: 0.0,
            max_depth: 0,
            ewma_depth: 0.0,
            depth_tau_ms: 0.0,
        }
    }

    /// Enables exponentially-smoothed depth tracking with time constant
    /// `tau_ms` (simulated milliseconds). With `tau_ms == 0.0` (the
    /// default) [`Self::smoothed_depth`] degenerates to the raw depth.
    ///
    /// # Panics
    /// Panics if `tau_ms` is negative or not finite.
    #[must_use]
    pub fn with_depth_tau(mut self, tau_ms: f64) -> Self {
        assert!(tau_ms.is_finite() && tau_ms >= 0.0, "depth tau must be finite and >= 0");
        self.depth_tau_ms = tau_ms;
        self
    }

    /// Current queue depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// Deepest the queue has ever been.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The oldest queued query, if any.
    #[must_use]
    pub fn head(&self) -> Option<&QueuedQuery> {
        self.items.front()
    }

    /// Number of queued queries that resolved to `subnet_row`.
    #[must_use]
    pub fn count_row(&self, subnet_row: usize) -> usize {
        self.items.iter().filter(|q| q.subnet_row == subnet_row).count()
    }

    /// Number of queued queries with `subnet_row` *and* `tier` — the
    /// tier-affine batching key.
    #[must_use]
    pub fn count_row_tier(&self, subnet_row: usize, tier: TenantTier) -> usize {
        self.items.iter().filter(|q| q.subnet_row == subnet_row && q.tier == tier).count()
    }

    /// Number of queued queries in `tier`.
    #[must_use]
    pub fn count_tier(&self, tier: TenantTier) -> usize {
        self.items.iter().filter(|q| q.tier == tier).count()
    }

    /// The oldest queued query in `tier`, if any (per-tier head-of-line
    /// signal).
    #[must_use]
    pub fn head_tier(&self, tier: TenantTier) -> Option<&QueuedQuery> {
        self.items.iter().find(|q| q.tier == tier)
    }

    /// Advances the depth integral (and the EWMA, if enabled) to `now`
    /// (call before any mutation).
    fn advance(&mut self, now_ms: f64) {
        debug_assert!(now_ms >= self.last_event_ms, "time must not run backwards");
        let dt = now_ms - self.last_event_ms;
        let depth = self.items.len() as f64;
        self.depth_integral_ms += depth * dt;
        if self.depth_tau_ms > 0.0 {
            // Depth was constant over [last_event, now], so the exact EWMA
            // relaxes toward it: e' = d + (e − d)·exp(−dt/τ).
            self.ewma_depth = depth + (self.ewma_depth - depth) * (-dt / self.depth_tau_ms).exp();
        }
        self.last_event_ms = now_ms;
    }

    /// Exponentially-smoothed queue depth as of `now_ms`. Read-only: the
    /// stored EWMA state is not advanced. Returns the raw depth when
    /// smoothing is disabled (see [`Self::with_depth_tau`]).
    #[must_use]
    pub fn smoothed_depth(&self, now_ms: f64) -> f64 {
        let depth = self.items.len() as f64;
        if self.depth_tau_ms <= 0.0 {
            return depth;
        }
        let dt = (now_ms - self.last_event_ms).max(0.0);
        depth + (self.ewma_depth - depth) * (-dt / self.depth_tau_ms).exp()
    }

    /// Offers an arriving query. Returns the victim if one was shed.
    ///
    /// Under [`DropPolicy::DeadlineAware`] a query whose deadline has
    /// already lapsed at `now_ms` is refused outright — admitting it would
    /// only burn queue capacity and accelerator time on a guaranteed
    /// violation that the dispatch-time sweep would shed anyway.
    pub fn offer(&mut self, now_ms: f64, item: QueuedQuery) -> Option<DroppedQuery> {
        self.advance(now_ms);
        if self.policy == DropPolicy::DeadlineAware && item.timed.deadline_ms() < now_ms {
            return Some(DroppedQuery {
                timed: item.timed,
                reason: DropReason::DeadlineLapsed,
                tier: item.tier,
            });
        }
        let victim = if self.items.len() < self.capacity {
            None
        } else {
            match self.policy {
                DropPolicy::DropNewest => {
                    return Some(DroppedQuery {
                        timed: item.timed,
                        reason: DropReason::QueueFull,
                        tier: item.tier,
                    });
                }
                DropPolicy::DropOldest => self.items.pop_front().map(|q| DroppedQuery {
                    timed: q.timed,
                    reason: DropReason::QueueFull,
                    tier: q.tier,
                }),
                DropPolicy::DeadlineAware => {
                    // Best-effort first: the victim is drawn from the
                    // most-droppable tier present (highest shed
                    // precedence); within that tier, earliest deadline
                    // loses and FIFO position breaks exact ties (oldest
                    // goes first). With a single tier this degenerates to
                    // the plain earliest-deadline rule.
                    let (idx, prec, earliest) = self
                        .items
                        .iter()
                        .enumerate()
                        .map(|(i, q)| (i, q.tier.shed_precedence(), q.timed.deadline_ms()))
                        .reduce(|best, cand| {
                            let worse_tier = cand.1 > best.1;
                            let same_tier_sooner = cand.1 == best.1 && cand.2 < best.2;
                            if worse_tier || same_tier_sooner {
                                cand
                            } else {
                                best
                            }
                        })
                        .expect("queue is full, hence non-empty");
                    let incoming_loses = item.tier.shed_precedence() > prec
                        || (item.tier.shed_precedence() == prec
                            && item.timed.deadline_ms() < earliest);
                    if incoming_loses {
                        return Some(DroppedQuery {
                            timed: item.timed,
                            reason: DropReason::QueueFull,
                            tier: item.tier,
                        });
                    }
                    self.items.remove(idx).map(|q| DroppedQuery {
                        timed: q.timed,
                        reason: DropReason::QueueFull,
                        tier: q.tier,
                    })
                }
            }
        };
        self.items.push_back(item);
        self.max_depth = self.max_depth.max(self.items.len());
        victim
    }

    /// Removes and returns every queued query whose deadline has already
    /// lapsed at `now_ms`. Only meaningful under
    /// [`DropPolicy::DeadlineAware`]; the FIFO policies let doomed queries
    /// occupy their slot (and later count as served-late violations).
    pub fn sweep_lapsed(&mut self, now_ms: f64) -> Vec<DroppedQuery> {
        self.advance(now_ms);
        if self.policy != DropPolicy::DeadlineAware {
            return Vec::new();
        }
        let mut lapsed = Vec::new();
        self.items.retain(|q| {
            if q.timed.deadline_ms() < now_ms {
                lapsed.push(DroppedQuery {
                    timed: q.timed,
                    reason: DropReason::DeadlineLapsed,
                    tier: q.tier,
                });
                false
            } else {
                true
            }
        });
        lapsed
    }

    /// Removes up to `max` queued queries with the given `subnet_row`, in
    /// FIFO order — the dynamic batcher's extraction step.
    pub fn take_row(&mut self, now_ms: f64, subnet_row: usize, max: usize) -> Vec<QueuedQuery> {
        self.advance(now_ms);
        let mut taken = Vec::new();
        self.items.retain(|q| {
            if taken.len() < max && q.subnet_row == subnet_row {
                taken.push(*q);
                false
            } else {
                true
            }
        });
        taken
    }

    /// [`take_row`](Self::take_row) restricted to one tier: removes up to
    /// `max` queued queries matching both `subnet_row` and `tier`, in
    /// FIFO order. Keeps batches tier-affine so a latency-critical query
    /// never rides (and waits for) a best-effort batch.
    pub fn take_row_tier(
        &mut self,
        now_ms: f64,
        subnet_row: usize,
        tier: TenantTier,
        max: usize,
    ) -> Vec<QueuedQuery> {
        self.advance(now_ms);
        let mut taken = Vec::new();
        self.items.retain(|q| {
            if taken.len() < max && q.subnet_row == subnet_row && q.tier == tier {
                taken.push(*q);
                false
            } else {
                true
            }
        });
        taken
    }

    /// Removes and returns everything still queued, in FIFO order (the
    /// serving loop's end-of-run drain when no replica is left to serve
    /// them).
    pub fn drain(&mut self, now_ms: f64) -> Vec<QueuedQuery> {
        self.advance(now_ms);
        self.items.drain(..).collect()
    }

    /// Time-weighted mean depth over `[0, end_ms]`.
    ///
    /// # Panics
    /// Panics if `end_ms` is not positive or precedes the last event.
    #[must_use]
    pub fn mean_depth(&self, end_ms: f64) -> f64 {
        assert!(end_ms > 0.0 && end_ms >= self.last_event_ms, "bad horizon");
        (self.depth_integral_ms + self.items.len() as f64 * (end_ms - self.last_event_ms)) / end_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_sched::Query;

    fn tq(id: u64, arrival: f64, lat_ms: f64) -> TimedQuery {
        TimedQuery::new(arrival, Query::new(id, 0.7, lat_ms))
    }

    fn qq(id: u64, arrival: f64, lat_ms: f64) -> QueuedQuery {
        QueuedQuery {
            timed: tq(id, arrival, lat_ms),
            subnet_row: (id % 3) as usize,
            tier: TenantTier::Standard,
        }
    }

    fn qq_tier(id: u64, arrival: f64, lat_ms: f64, tier: TenantTier) -> QueuedQuery {
        QueuedQuery { tier, ..qq(id, arrival, lat_ms) }
    }

    #[test]
    fn admits_until_capacity() {
        let mut q = AdmissionQueue::new(2, DropPolicy::DropNewest);
        assert!(q.offer(0.0, qq(0, 0.0, 10.0)).is_none());
        assert!(q.offer(1.0, qq(1, 1.0, 10.0)).is_none());
        assert_eq!(q.depth(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn drop_newest_rejects_incoming() {
        let mut q = AdmissionQueue::new(1, DropPolicy::DropNewest);
        let _ = q.offer(0.0, qq(0, 0.0, 10.0));
        let victim = q.offer(1.0, qq(1, 1.0, 10.0)).unwrap();
        assert_eq!(victim.timed.query.id, 1);
        assert_eq!(victim.reason, DropReason::QueueFull);
        assert_eq!(q.head().unwrap().timed.query.id, 0);
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let mut q = AdmissionQueue::new(1, DropPolicy::DropOldest);
        let _ = q.offer(0.0, qq(0, 0.0, 10.0));
        let victim = q.offer(1.0, qq(1, 1.0, 10.0)).unwrap();
        assert_eq!(victim.timed.query.id, 0);
        assert_eq!(q.head().unwrap().timed.query.id, 1);
    }

    #[test]
    fn deadline_aware_evicts_most_hopeless() {
        let mut q = AdmissionQueue::new(2, DropPolicy::DeadlineAware);
        let _ = q.offer(0.0, qq(0, 0.0, 100.0)); // deadline 100
        let _ = q.offer(1.0, qq(1, 1.0, 3.0)); // deadline 4 — the victim
        let victim = q.offer(2.0, qq(2, 2.0, 50.0)).unwrap();
        assert_eq!(victim.timed.query.id, 1);
        assert_eq!(q.depth(), 2);
        // An incoming query with the earliest deadline loses instead.
        let victim = q.offer(3.0, qq(3, 3.0, 0.5)).unwrap();
        assert_eq!(victim.timed.query.id, 3);
    }

    #[test]
    fn sweep_lapsed_removes_expired_only_when_deadline_aware() {
        let mut q = AdmissionQueue::new(4, DropPolicy::DeadlineAware);
        let _ = q.offer(0.0, qq(0, 0.0, 2.0)); // deadline 2
        let _ = q.offer(0.0, qq(1, 0.0, 50.0)); // deadline 50
        let lapsed = q.sweep_lapsed(10.0);
        assert_eq!(lapsed.len(), 1);
        assert_eq!(lapsed[0].timed.query.id, 0);
        assert_eq!(lapsed[0].reason, DropReason::DeadlineLapsed);
        assert_eq!(q.depth(), 1);

        let mut fifo = AdmissionQueue::new(4, DropPolicy::DropNewest);
        let _ = fifo.offer(0.0, qq(0, 0.0, 2.0));
        assert!(fifo.sweep_lapsed(10.0).is_empty());
        assert_eq!(fifo.depth(), 1);
    }

    #[test]
    fn take_row_extracts_fifo_order_and_respects_max() {
        let mut q = AdmissionQueue::new(8, DropPolicy::DropNewest);
        for id in 0..6 {
            let _ = q.offer(id as f64, qq(id, id as f64, 100.0)); // rows 0,1,2,0,1,2
        }
        let taken = q.take_row(6.0, 0, 1);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].timed.query.id, 0);
        assert_eq!(q.count_row(0), 1);
        let taken = q.take_row(6.0, 1, 8);
        assert_eq!(taken.iter().map(|t| t.timed.query.id).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn deadline_aware_sheds_best_effort_before_latency_critical() {
        let mut q = AdmissionQueue::new(2, DropPolicy::DeadlineAware);
        // A latency-critical query with the *earliest* deadline and a
        // best-effort one with a comfortable deadline.
        let _ = q.offer(0.0, qq_tier(0, 0.0, 2.0, TenantTier::LatencyCritical)); // deadline 2
        let _ = q.offer(0.0, qq_tier(1, 0.0, 100.0, TenantTier::BestEffort)); // deadline 100
                                                                              // The best-effort query loses despite its later deadline.
        let victim = q.offer(1.0, qq_tier(2, 1.0, 50.0, TenantTier::Standard)).unwrap();
        assert_eq!(victim.timed.query.id, 1);
        assert_eq!(victim.tier, TenantTier::BestEffort);
        // Queue now holds {LC dl 2, Std dl 51}. A best-effort arrival is
        // itself the most droppable thing in sight.
        let victim = q.offer(2.0, qq_tier(3, 2.0, 100.0, TenantTier::BestEffort)).unwrap();
        assert_eq!(victim.timed.query.id, 3);
        // Within one tier, earliest deadline still loses: a second
        // standard query with a sooner deadline displaces nothing — it is
        // refused in favor of keeping the later-deadline standard one.
        let victim = q.offer(3.0, qq_tier(4, 3.0, 1.0, TenantTier::Standard)).unwrap();
        assert_eq!(victim.timed.query.id, 4);
        // An incoming latency-critical query evicts the queued standard
        // one rather than being refused.
        let victim = q.offer(4.0, qq_tier(5, 4.0, 10.0, TenantTier::LatencyCritical)).unwrap();
        assert_eq!(victim.timed.query.id, 2);
        assert_eq!(victim.tier, TenantTier::Standard);
        assert_eq!(q.count_tier(TenantTier::LatencyCritical), 2);
    }

    #[test]
    fn tier_scoped_helpers_filter_by_tier() {
        let mut q = AdmissionQueue::new(8, DropPolicy::DropNewest);
        let _ = q.offer(0.0, qq_tier(0, 0.0, 100.0, TenantTier::BestEffort)); // row 0
        let _ = q.offer(1.0, qq_tier(1, 1.0, 100.0, TenantTier::Standard)); // row 1
        let _ = q.offer(2.0, qq_tier(3, 2.0, 100.0, TenantTier::BestEffort)); // row 0
        assert_eq!(q.count_row_tier(0, TenantTier::BestEffort), 2);
        assert_eq!(q.count_row_tier(0, TenantTier::Standard), 0);
        assert_eq!(q.count_tier(TenantTier::BestEffort), 2);
        assert_eq!(q.head_tier(TenantTier::Standard).unwrap().timed.query.id, 1);
        assert!(q.head_tier(TenantTier::LatencyCritical).is_none());
        let taken = q.take_row_tier(3.0, 0, TenantTier::BestEffort, 8);
        assert_eq!(taken.iter().map(|t| t.timed.query.id).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn drain_empties_in_fifo_order_and_updates_accounting() {
        let mut q = AdmissionQueue::new(4, DropPolicy::DropNewest);
        for id in 0..3 {
            let _ = q.offer(id as f64, qq(id, id as f64, 100.0));
        }
        let drained = q.drain(10.0);
        assert_eq!(drained.iter().map(|d| d.timed.query.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(q.is_empty());
        // The depth integral covered [0, 10] at the pre-drain depths.
        assert!(q.mean_depth(10.0) > 0.0);
    }

    #[test]
    fn drop_reason_names_are_stable() {
        assert_eq!(DropReason::QueueFull.name(), "queue_full");
        assert_eq!(DropReason::DeadlineLapsed.name(), "deadline_lapsed");
        assert_eq!(DropReason::RetryBudgetExhausted.name(), "retry_budget_exhausted");
        assert_eq!(DropReason::ReplicaLost.name(), "replica_lost");
    }

    #[test]
    fn mean_depth_is_time_weighted() {
        let mut q = AdmissionQueue::new(4, DropPolicy::DropNewest);
        let _ = q.offer(0.0, qq(0, 0.0, 100.0)); // depth 1 from t=0
        let _ = q.offer(5.0, qq(1, 5.0, 100.0)); // depth 2 from t=5
        let _ = q.take_row(10.0, 0, 4); // depth 1 from t=10
                                        // Integral: 1*5 + 2*5 + 1*10 = 25 over [0, 20].
        assert!((q.mean_depth(20.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn already_expired_query_is_refused_at_admission() {
        // Regression: the deadline-aware sweep only ran at dispatch time, so
        // a query whose deadline had lapsed before it reached the queue
        // could still be admitted and occupy a slot.
        let mut q = AdmissionQueue::new(4, DropPolicy::DeadlineAware);
        let victim = q.offer(10.0, qq(0, 0.0, 5.0)).unwrap(); // deadline 5 < now 10
        assert_eq!(victim.timed.query.id, 0);
        assert_eq!(victim.reason, DropReason::DeadlineLapsed);
        assert!(q.is_empty());
        // FIFO policies keep today's behavior: the doomed query is admitted
        // and later counts as a served-late violation.
        let mut fifo = AdmissionQueue::new(4, DropPolicy::DropNewest);
        assert!(fifo.offer(10.0, qq(0, 0.0, 5.0)).is_none());
        assert_eq!(fifo.depth(), 1);
    }

    #[test]
    fn smoothed_depth_defaults_to_raw_depth() {
        let mut q = AdmissionQueue::new(4, DropPolicy::DropNewest);
        let _ = q.offer(0.0, qq(0, 0.0, 100.0));
        let _ = q.offer(1.0, qq(1, 1.0, 100.0));
        assert!((q.smoothed_depth(5.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smoothed_depth_relaxes_toward_current_depth() {
        let mut q = AdmissionQueue::new(8, DropPolicy::DropNewest).with_depth_tau(10.0);
        for id in 0..4 {
            let _ = q.offer(0.0, qq(id, 0.0, 100.0));
        }
        // Immediately after the burst the EWMA still remembers the empty
        // queue; it relaxes toward depth 4 with time constant 10 ms.
        let s0 = q.smoothed_depth(0.0);
        assert!(s0 < 1.0, "fresh burst should not instantly read as depth 4, got {s0}");
        let s1 = q.smoothed_depth(10.0);
        let s2 = q.smoothed_depth(40.0);
        assert!(s0 < s1 && s1 < s2, "EWMA must relax monotonically: {s0} {s1} {s2}");
        assert!((s2 - 4.0).abs() < 0.1, "after 4 tau it should be close to 4, got {s2}");
        // The read-only getter must not advance state.
        assert!((q.smoothed_depth(10.0) - s1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = AdmissionQueue::new(0, DropPolicy::DropNewest);
    }
}
