//! The SUSHI serving runtime: an event-driven traffic simulator.
//!
//! The batch-replay experiments (§5.6–5.7) answer *which SubNet should
//! serve each query*; this module answers the systems question the paper's
//! premise raises but its evaluation replays offline: **what happens under
//! real traffic** — arrival processes, bounded queues, dynamic batching,
//! multi-worker concurrency, and tail-latency SLOs. It is a deterministic
//! discrete-event simulation: simulated milliseconds, seeded randomness,
//! bit-identical results across runs and platforms.
//!
//! The pieces compose bottom-up:
//!
//! * [`arrivals::ArrivalProcess`] — open-loop Poisson / MMPP / diurnal
//!   arrival-time generators, attached to constraint streams via
//!   [`crate::stream::attach_arrivals`] ([`crate::stream::TimedQuery`]).
//! * [`queue::AdmissionQueue`] — bounded admission with drop/deadline
//!   policies and time-weighted depth accounting.
//! * [`batch::BatchPolicy`] — size/timeout hybrid batching keyed on the
//!   scheduler's SubNet decision.
//! * [`routing::RoutingPolicy`] — which free replica a ready batch is
//!   dispatched to (least-loaded, round-robin, or cache-affinity over
//!   per-replica resident SubGraphs).
//! * [`fault::FaultOptions`] — deterministic, replayable fault injection
//!   (replica crashes, straggler episodes, transient batch errors) with a
//!   supervised [`fault::ReplicaHealth`] quarantine/recovery machine.
//! * [`supervise::SuperviseOptions`] — the supervision knobs: retry with
//!   exponential backoff and per-tier budgets, optional tail hedging, and
//!   quarantine thresholds.
//! * [`executor::ExecutorPool`] — accelerator-replica workers with
//!   per-replica cache state and routed (not broadcast) installs,
//!   dispatching batch groups through the engine's
//!   [`sushi_accel::backend::ExecutionBackend`] (analytical timing, or
//!   real parallel int8 forwards with per-query predictions).
//! * [`sim::ServingSim`] — the SLO-aware event loop tying scheduler,
//!   queue, batcher, router and pool together (the run state behind
//!   [`crate::engine::Engine::serve_timed`]).
//! * [`scenario`] — canned presets (`steady`, `burst`, `diurnal`,
//!   `multi_tenant`, …, `scale`) behind `repro --serve` and the
//!   `BENCH_serve.json` baseline.
//!
//! See `docs/SERVING.md` for the queueing model and SLO semantics.
//!
//! # Example
//!
//! ```
//! use sushi_core::engine::EngineBuilder;
//! use sushi_core::serving::{ArrivalProcess, BatchPolicy, DropPolicy};
//! use sushi_core::stream::{attach_arrivals, uniform_stream, ConstraintSpace};
//!
//! let mut engine = EngineBuilder::new()
//!     .q_window(10)
//!     .candidates(8)
//!     .seed(42)
//!     .workers(2)
//!     .queue_capacity(32)
//!     .drop_policy(DropPolicy::DropNewest)
//!     .batch_policy(BatchPolicy::new(4, 2.0))
//!     .build()?;
//!
//! // 50 uniform queries arriving as 120 qps Poisson traffic.
//! let space = ConstraintSpace { acc_lo: 0.76, acc_hi: 0.79, lat_lo: 2.0, lat_hi: 30.0 };
//! let queries = uniform_stream(&space, 50, 7);
//! let arrivals = ArrivalProcess::Poisson { rate_qps: 120.0 }.timestamps(50, 7);
//! let stream = attach_arrivals(&queries, &arrivals);
//!
//! let summary = engine.serve_timed(&stream)?.summary();
//! assert_eq!(summary.offered, 50);
//! assert!(summary.p50_ms <= summary.p99_ms);
//! # Ok::<(), sushi_core::SushiError>(())
//! ```

pub mod arrivals;
pub mod batch;
pub mod executor;
pub mod fault;
pub mod queue;
pub mod routing;
pub mod scenario;
pub mod sim;
pub mod supervise;

pub use arrivals::ArrivalProcess;
pub use batch::BatchPolicy;
pub use executor::ExecutorPool;
pub use fault::{FaultOptions, FaultSummary, ReplicaHealth};
pub use queue::{AdmissionQueue, DropPolicy, DropReason, DroppedQuery};
pub use routing::{ReplicaView, RoutingPolicy};
pub use scenario::{
    build_scenario, run_all_presets, run_functional_scaling, run_scenario,
    run_scenario_unsupervised, Scenario, ServePreset, FUNCTIONAL_SCALING_POINTS,
};
pub use sim::{AdaptationTrace, ServedQuery, ServingSim, SimConfig, SimResult, TierAdaptation};
pub use supervise::{HedgePolicy, QuarantinePolicy, RetryPolicy, SuperviseOptions};
