//! The SUSHI serving runtime: an event-driven traffic simulator.
//!
//! The batch-replay experiments (§5.6–5.7) answer *which SubNet should
//! serve each query*; this module answers the systems question the paper's
//! premise raises but its evaluation replays offline: **what happens under
//! real traffic** — arrival processes, bounded queues, dynamic batching,
//! multi-worker concurrency, and tail-latency SLOs. It is a deterministic
//! discrete-event simulation: simulated milliseconds, seeded randomness,
//! bit-identical results across runs and platforms.
//!
//! The pieces compose bottom-up:
//!
//! * [`arrivals::ArrivalProcess`] — open-loop Poisson / MMPP / diurnal
//!   arrival-time generators, attached to constraint streams via
//!   [`crate::stream::attach_arrivals`] ([`crate::stream::TimedQuery`]).
//! * [`queue::AdmissionQueue`] — bounded admission with drop/deadline
//!   policies and time-weighted depth accounting.
//! * [`batch::BatchPolicy`] — size/timeout hybrid batching keyed on the
//!   scheduler's SubNet decision.
//! * [`executor::ExecutorPool`] — accelerator-replica workers;
//!   [`executor::FunctionalContext`] optionally dispatches *real* int8
//!   forwards ([`sushi_accel::functional::forward_batch`]) per batch.
//! * [`sim::ServingSim`] — the SLO-aware event loop tying scheduler,
//!   queue, batcher and pool together.
//! * [`scenario`] — canned presets (`steady`, `burst`, `diurnal`,
//!   `multi_tenant`) behind `repro --serve` and the `BENCH_serve.json`
//!   baseline.
//!
//! See `docs/SERVING.md` for the queueing model and SLO semantics.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use sushi_core::serving::{ArrivalProcess, BatchPolicy, DropPolicy, ServingSim, SimConfig};
//! use sushi_core::stream::{attach_arrivals, uniform_stream, ConstraintSpace};
//! use sushi_core::variants::build_table;
//! use sushi_sched::{CacheSelection, Policy};
//! use sushi_wsnet::zoo;
//!
//! let net = Arc::new(zoo::mobilenet_v3_supernet());
//! let picks = zoo::paper_subnets(&net);
//! let board = sushi_accel::config::zcu104();
//! let table = build_table(&net, &picks, &board, 8, 42);
//!
//! // 50 uniform queries arriving as 120 qps Poisson traffic.
//! let space = ConstraintSpace { acc_lo: 0.76, acc_hi: 0.79, lat_lo: 2.0, lat_hi: 30.0 };
//! let queries = uniform_stream(&space, 50, 7);
//! let arrivals = ArrivalProcess::Poisson { rate_qps: 120.0 }.timestamps(50, 7);
//! let stream = attach_arrivals(&queries, &arrivals);
//!
//! let mut sim = ServingSim::new(
//!     Arc::clone(&net), picks, table, &board,
//!     Policy::StrictAccuracy, CacheSelection::MinDistanceToAvg, 10,
//!     SimConfig {
//!         workers: 2,
//!         queue_capacity: 32,
//!         drop_policy: DropPolicy::DropNewest,
//!         batch: BatchPolicy::new(4, 2.0),
//!     },
//! );
//! let result = sim.run(&stream);
//! let summary = result.summary();
//! assert_eq!(summary.offered, 50);
//! assert!(summary.p50_ms <= summary.p99_ms);
//! ```

pub mod arrivals;
pub mod batch;
pub mod executor;
pub mod queue;
pub mod scenario;
pub mod sim;

pub use arrivals::ArrivalProcess;
pub use batch::BatchPolicy;
pub use executor::{ExecutorPool, FunctionalContext};
pub use queue::{AdmissionQueue, DropPolicy, DropReason, DroppedQuery};
pub use scenario::{build_scenario, run_all_presets, run_scenario, Scenario, ServePreset};
pub use sim::{ServedQuery, ServingSim, SimConfig, SimResult};
