//! Scenario presets: canned traffic mixes for the serving runtime.
//!
//! Each preset pairs an arrival process with a constraint stream and a
//! serving-loop configuration, sized relative to the workload's own
//! service capacity (mean cold latency on the board) so the regimes stay
//! meaningful as the simulator or zoo evolves:
//!
//! | Preset | Arrivals | Constraints | Queue policy |
//! |--------|----------|-------------|--------------|
//! | `steady` | Poisson @ 50% capacity | uniform | drop-newest |
//! | `burst` | MMPP, 1.8× capacity bursts | ICU triage | deadline-aware |
//! | `diurnal` | sinusoidal ramp 25%→135% | uniform | drop-oldest |
//! | `multi_tenant` | AV Poisson + ICU MMPP | AV ∪ ICU | deadline-aware |
//! | `overload` | Poisson @ 160% capacity | uniform | deadline-aware |
//! | `deadline_mix` | Poisson @ 90% capacity | tight/loose interleave | deadline-aware |
//! | `failover` | Poisson @ 55%, outage → recovery burst | uniform | deadline-aware |
//! | `scale` | Poisson @ 10× the 2-worker rates, 8 replicas | accuracy-band interleave | deadline-aware |
//! | `chaos` | Poisson @ 1.4× the 2-worker anchor, 4 replicas + fault plan | uniform | deadline-aware |
//!
//! All presets run the full SUSHI stack (state-aware caching, dynamic
//! batching, a replica pool with routed installs) on the MobileNetV3
//! workload over the ZCU104 board model, and are deterministic in
//! `(preset, opts)`. Capacity is always anchored to the historical
//! two-worker pool so arrival rates stay comparable across presets;
//! `scale` is the scale-out regime — eight replicas, ten times the
//! baseline arrival rate, and a cache-swap-heavy accuracy mix routed with
//! [`RoutingPolicy::CacheAffinity`]. `chaos` is the robustness regime — a
//! four-replica pool under a deterministic fault plan (crashes with
//! outages, straggler episodes, transient batch failures) served by the
//! supervised executor pool; [`run_scenario_unsupervised`] is its
//! ablation baseline. With `opts.adaptive` (the default)
//! the serving loop degrades SubNet selection under pressure
//! ([`sushi_sched::AdaptivePolicy`]); `overload`, `deadline_mix` and
//! `failover` exist to exercise exactly that loop — sustained overload, a
//! deadline mix where only the loose half has slack to give, and a
//! recovery burst after an upstream outage.
//!
//! [`run_functional_scaling`] is the worker-scaling companion: one
//! cache-swap-heavy toy-zoo stream served by the *functional* backend at
//! 1/2/4/8 replicas (real parallel int8 forwards), reported as the
//! `scale_functional` rows of `BENCH_serve.json`.

use std::sync::Arc;

use sushi_accel::config::zcu104;
use sushi_sched::{AdaptiveOptions, PredictorOptions, Query, TenantOptions, TenantTier};

use crate::engine::EngineBuilder;
use crate::error::SushiError;
use crate::experiments::common::{mobv3_workload, ExpOptions, Workload};
use crate::metrics::ServeSummary;
use crate::serving::arrivals::ArrivalProcess;
use crate::serving::batch::BatchPolicy;
use crate::serving::fault::FaultOptions;
use crate::serving::queue::DropPolicy;
use crate::serving::routing::RoutingPolicy;
use crate::serving::sim::{SimConfig, SimResult};
use crate::stream::{
    attach_arrivals, av_navigation_stream, icu_burst_stream, merge_tenant_streams, uniform_stream,
    ConstraintSpace, TimedQuery,
};
use crate::variants::build_table;

/// The canned serving scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePreset {
    /// Steady Poisson traffic at comfortable load.
    Steady,
    /// Calm/burst MMPP traffic that transiently exceeds capacity.
    Burst,
    /// Slow sinusoidal load swing crossing capacity at the crest.
    Diurnal,
    /// An AV tenant and an ICU tenant sharing the same serving stack.
    MultiTenant,
    /// Sustained arrivals well above capacity: without degradation the
    /// queue pins at its cap and sheds continuously.
    Overload,
    /// Tight and loose deadlines interleaved near capacity: only the loose
    /// half has slack for the adaptive loop to spend.
    DeadlineMix,
    /// Calm traffic, an upstream outage, then the buffered backlog
    /// arriving as one recovery burst.
    Failover,
    /// The scale-out regime: eight replicas, arrivals at ten times the
    /// two-worker baseline rate, and an accuracy mix that bounces the
    /// scheduler between SubNets — the cache-swap-heavy load where
    /// per-replica cache state and affinity routing matter.
    Scale,
    /// The fault-injection regime: four replicas under moderate load with
    /// a deterministic fault plan — replica crashes with outages,
    /// straggler episodes, and transient batch failures — served by the
    /// supervised executor pool (retry, hedging, quarantine/recovery).
    Chaos,
}

impl ServePreset {
    /// All presets, in report order.
    pub const ALL: [ServePreset; 9] = [
        ServePreset::Steady,
        ServePreset::Burst,
        ServePreset::Diurnal,
        ServePreset::MultiTenant,
        ServePreset::Overload,
        ServePreset::DeadlineMix,
        ServePreset::Failover,
        ServePreset::Scale,
        ServePreset::Chaos,
    ];

    /// Stable scenario label (used in reports and `BENCH_serve.json`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ServePreset::Steady => "steady",
            ServePreset::Burst => "burst",
            ServePreset::Diurnal => "diurnal",
            ServePreset::MultiTenant => "multi_tenant",
            ServePreset::Overload => "overload",
            ServePreset::DeadlineMix => "deadline_mix",
            ServePreset::Failover => "failover",
            ServePreset::Scale => "scale",
            ServePreset::Chaos => "chaos",
        }
    }

    /// Parses a scenario label.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The preset's own pool size (what `BENCH_serve.json` rows record
    /// when `opts.workers` is `None`).
    #[must_use]
    pub fn default_workers(&self) -> usize {
        match self {
            ServePreset::Scale => 8,
            ServePreset::Chaos => 4,
            _ => 2,
        }
    }

    /// The preset's own routing policy (what `BENCH_serve.json` rows
    /// record when `opts.routing` is `None`).
    #[must_use]
    pub fn default_routing(&self) -> RoutingPolicy {
        match self {
            ServePreset::Scale | ServePreset::Chaos => RoutingPolicy::CacheAffinity,
            _ => RoutingPolicy::LeastLoaded,
        }
    }
}

/// A fully materialized scenario: the stream plus every serving knob.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label.
    pub name: &'static str,
    /// Arrival-ordered query stream.
    pub stream: Vec<TimedQuery>,
    /// Serving-loop configuration.
    pub sim: SimConfig,
    /// Scheduler caching window `Q`.
    pub q_window: usize,
}

/// Builds a preset scenario under the given experiment sizing.
///
/// # Panics
/// Panics only on programmer error (empty zoo serving set).
#[must_use]
pub fn build_scenario(preset: ServePreset, opts: &ExpOptions) -> Scenario {
    build_scenario_for(&mobv3_workload(), preset, opts)
}

/// [`build_scenario`] over an already-loaded workload (lets
/// [`run_scenario`] share one workload and probe table per run).
fn build_scenario_for(workload: &Workload, preset: ServePreset, opts: &ExpOptions) -> Scenario {
    let board = zcu104();
    // One candidate-free probe table yields both the constraint space and
    // the capacity anchor (mean cold latency of the serving set).
    let probe = build_table(&workload.net, &workload.picks, &board, 0, opts.seed);
    let accs: Vec<f64> = workload.picks.iter().map(|p| p.accuracy).collect();
    let colds: Vec<f64> = (0..probe.num_rows()).map(|i| probe.latency_ms(i, 0)).collect();
    // The replay experiments' constraint band spans bare *service* latency
    // (0.8×min cold … 1.1×max cold). An open-loop deadline must also cover
    // queueing, batching delay and cache swaps, so serving scenarios widen
    // the band: deadlines from 2× the fastest to 2.5× the slowest cold
    // latency. Accuracy constraints are taken as-is.
    let mut space = ConstraintSpace::from_serving_set(&accs, &colds);
    space.lat_lo *= 2.0;
    space.lat_hi *= 2.5;
    let mean_cold_ms = colds.iter().sum::<f64>() / colds.len() as f64;
    // Capacity is anchored to the historical two-worker pool for *every*
    // preset (including the 8-replica `scale`), so the arrival-rate
    // multipliers below stay comparable across presets.
    let capacity_qps = 2.0 * 1e3 / mean_cold_ms;
    let n = opts.queries;
    let seed = opts.seed ^ 0x5E87;
    let batch = BatchPolicy::new(4, 0.25 * mean_cold_ms);
    let adaptive = if opts.adaptive { Some(AdaptiveOptions::default()) } else { None };

    let (stream, sim) = match preset {
        ServePreset::Steady => {
            let qs = uniform_stream(&space, n, seed);
            let arrivals = ArrivalProcess::Poisson { rate_qps: 0.50 * capacity_qps }
                .timestamps(n, seed ^ 0x01);
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 64,
                drop_policy: DropPolicy::DropNewest,
                batch,
                adaptive,
                tenants: None,
                faults: None,
            };
            (attach_arrivals(&qs, &arrivals), sim)
        }
        ServePreset::Burst => {
            let qs: Vec<_> =
                icu_burst_stream(&space, n, 40, 12, seed).into_iter().map(|(_, q)| q).collect();
            let arrivals = ArrivalProcess::Mmpp {
                calm_qps: 0.30 * capacity_qps,
                burst_qps: 1.8 * capacity_qps,
                mean_calm_ms: 40.0 * mean_cold_ms,
                mean_burst_ms: 10.0 * mean_cold_ms,
            }
            .timestamps(n, seed ^ 0x02);
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 32,
                drop_policy: DropPolicy::DeadlineAware,
                batch,
                adaptive,
                tenants: None,
                faults: None,
            };
            (attach_arrivals(&qs, &arrivals), sim)
        }
        ServePreset::Diurnal => {
            let qs = uniform_stream(&space, n, seed);
            // Aim for ~3 full day/night cycles across the run.
            let mean_qps = f64::midpoint(0.25, 1.35) * capacity_qps;
            let period_ms = (n as f64 / mean_qps) * 1e3 / 3.0;
            let arrivals = ArrivalProcess::DiurnalRamp {
                base_qps: 0.25 * capacity_qps,
                peak_qps: 1.35 * capacity_qps,
                period_ms,
            }
            .timestamps(n, seed ^ 0x03);
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 48,
                drop_policy: DropPolicy::DropOldest,
                batch,
                adaptive,
                tenants: None,
                faults: None,
            };
            (attach_arrivals(&qs, &arrivals), sim)
        }
        ServePreset::MultiTenant => {
            let n_av = n / 2;
            let n_icu = n - n_av;
            let av: Vec<_> = av_navigation_stream(&space, n_av, n_av.max(8) / 4, seed)
                .into_iter()
                .map(|(_, q)| q)
                .collect();
            let av_arrivals = ArrivalProcess::Poisson { rate_qps: 0.25 * capacity_qps }
                .timestamps(n_av, seed ^ 0x04);
            let icu: Vec<_> = icu_burst_stream(&space, n_icu, 30, 10, seed ^ 0x05)
                .into_iter()
                .map(|(_, q)| q)
                .collect();
            let icu_arrivals = ArrivalProcess::Mmpp {
                calm_qps: 0.20 * capacity_qps,
                burst_qps: 1.2 * capacity_qps,
                mean_calm_ms: 50.0 * mean_cold_ms,
                mean_burst_ms: 12.0 * mean_cold_ms,
            }
            .timestamps(n_icu, seed ^ 0x06);
            let merged = merge_tenant_streams(&[
                attach_arrivals(&av, &av_arrivals),
                attach_arrivals(&icu, &icu_arrivals),
            ]);
            // With tiering on, the AV navigation tenant is latency-critical
            // and the bursty ICU tenant runs best-effort with the arrival
            // predictor watching its MMPP inter-arrival statistics; the
            // tierless fallback (opts.tenants = false) keeps the single
            // global controller for A/B comparison.
            // Shield 4.0 pins the latency-critical ladder above reachable
            // pressure (it simply never degrades) while the best-effort
            // ladder sheds accuracy at the first sign of load — the
            // empirically best point of a shield sweep: beyond ~5 the
            // curves saturate, below ~2.5 the LC ladder starts thrashing
            // with the shared signal and aggregate goodput drops.
            let (adaptive, tenants) = if opts.adaptive && opts.tenants {
                let tiers = TenantOptions::default()
                    .with_tier(0, TenantTier::LatencyCritical)
                    .with_tier(1, TenantTier::BestEffort)
                    .with_shield(4.0)
                    .with_predictor(Some(PredictorOptions::default()));
                (None, Some(tiers))
            } else {
                (adaptive, None)
            };
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 48,
                drop_policy: DropPolicy::DeadlineAware,
                batch,
                adaptive,
                tenants,
                faults: None,
            };
            (merged, sim)
        }
        ServePreset::Overload => {
            // Sustained 1.6× capacity: there is no calm phase to recover
            // in, so a static policy pins the queue at its cap and sheds
            // for the whole run. Degradation is the only lever.
            let qs = uniform_stream(&space, n, seed);
            let arrivals =
                ArrivalProcess::Poisson { rate_qps: 1.6 * capacity_qps }.timestamps(n, seed ^ 0x07);
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 32,
                drop_policy: DropPolicy::DeadlineAware,
                batch,
                adaptive,
                tenants: None,
                faults: None,
            };
            (attach_arrivals(&qs, &arrivals), sim)
        }
        ServePreset::DeadlineMix => {
            // Alternate tight deadlines (just above the fastest SubNet's
            // cold service time) with loose ones near the band's top, at
            // 90% capacity: the adaptive loop must spend the loose half's
            // slack without starving the tight half.
            let tight = ConstraintSpace { lat_hi: (1.4 * space.lat_lo).min(space.lat_hi), ..space };
            let loose = ConstraintSpace { lat_lo: (0.7 * space.lat_hi).max(space.lat_lo), ..space };
            let qs_tight = uniform_stream(&tight, n.div_ceil(2), seed ^ 0x08);
            let qs_loose = uniform_stream(&loose, n / 2, seed ^ 0x09);
            let qs: Vec<Query> = (0..n)
                .map(|i| {
                    let q = if i % 2 == 0 { qs_tight[i / 2] } else { qs_loose[i / 2] };
                    Query::new(i as u64, q.accuracy_constraint, q.latency_constraint_ms)
                })
                .collect();
            let arrivals = ArrivalProcess::Poisson { rate_qps: 0.90 * capacity_qps }
                .timestamps(n, seed ^ 0x0A);
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 48,
                drop_policy: DropPolicy::DeadlineAware,
                batch,
                adaptive,
                tenants: None,
                faults: None,
            };
            (attach_arrivals(&qs, &arrivals), sim)
        }
        ServePreset::Failover => {
            // Calm Poisson traffic with an upstream outage one third in:
            // arrivals during the outage are buffered upstream and land as
            // one recovery burst the moment the path heals.
            let qs = uniform_stream(&space, n, seed);
            let mut arrivals = ArrivalProcess::Poisson { rate_qps: 0.55 * capacity_qps }
                .timestamps(n, seed ^ 0x0B);
            let outage_start = arrivals[n / 3];
            let outage_end = outage_start + 25.0 * mean_cold_ms;
            for t in &mut arrivals {
                if (outage_start..outage_end).contains(t) {
                    *t = outage_end;
                }
            }
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 48,
                drop_policy: DropPolicy::DeadlineAware,
                batch,
                adaptive,
                tenants: None,
                faults: None,
            };
            (attach_arrivals(&qs, &arrivals), sim)
        }
        ServePreset::Scale => {
            // Scale-out: eight replicas offered 10× the steady preset's
            // arrival rate (5× the two-worker capacity anchor, 1.25× the
            // scaled pool's own capacity). Queries arrive in alternating
            // *blocks* from the low and high halves of the accuracy band —
            // each block is long enough to flip the scheduler's Q-window
            // decision, so cache installs keep happening and per-replica
            // residency diverges: the cache-swap-heavy regime where
            // affinity routing matters.
            let acc_mid = f64::midpoint(space.acc_lo, space.acc_hi);
            let lo_band = ConstraintSpace { acc_hi: acc_mid, ..space };
            let hi_band = ConstraintSpace { acc_lo: acc_mid, ..space };
            let qs_lo = uniform_stream(&lo_band, n, seed ^ 0x0C);
            let qs_hi = uniform_stream(&hi_band, n, seed ^ 0x0D);
            let block = 2 * workload.q_window;
            let qs: Vec<Query> = (0..n)
                .map(|i| {
                    let q = if (i / block) % 2 == 0 { qs_lo[i] } else { qs_hi[i] };
                    Query::new(i as u64, q.accuracy_constraint, q.latency_constraint_ms)
                })
                .collect();
            let arrivals =
                ArrivalProcess::Poisson { rate_qps: 5.0 * capacity_qps }.timestamps(n, seed ^ 0x0E);
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 256,
                drop_policy: DropPolicy::DeadlineAware,
                batch,
                adaptive,
                tenants: None,
                faults: None,
            };
            (attach_arrivals(&qs, &arrivals), sim)
        }
        ServePreset::Chaos => {
            // Moderate load on a four-replica pool (1.4× the two-worker
            // capacity anchor, ~70% of the chaos pool) with a
            // deterministic fault plan scaled to the workload's own mean
            // cold service time. The headroom is what the faults eat:
            // straggler episodes quadruple one replica's service time,
            // crashes take a replica out for ~20 service times (losing
            // its resident SubgraphCache), and transient batch failures
            // hit ~8% of dispatches. The supervised pool — retry,
            // hedging, quarantine/recovery, the preset default — must
            // win back the goodput and tail SLOs the unsupervised
            // ablation loses (see [`run_scenario_unsupervised`]).
            let qs = uniform_stream(&space, n, seed ^ 0x0F);
            let arrivals =
                ArrivalProcess::Poisson { rate_qps: 1.4 * capacity_qps }.timestamps(n, seed ^ 0x10);
            let faults = FaultOptions::default()
                .with_seed(seed ^ 0x11)
                .with_crash_mtbf_ms(200.0 * mean_cold_ms)
                .with_crash_outage_ms(20.0 * mean_cold_ms)
                .with_straggler_mtbf_ms(40.0 * mean_cold_ms)
                .with_straggler_duration_ms(12.0 * mean_cold_ms)
                .with_straggler_factor(4.0)
                .with_transient_rate(0.08);
            let sim = SimConfig {
                workers: preset.default_workers(),
                routing: preset.default_routing(),
                queue_capacity: 48,
                drop_policy: DropPolicy::DeadlineAware,
                batch,
                adaptive,
                tenants: None,
                faults: Some(faults),
            };
            (attach_arrivals(&qs, &arrivals), sim)
        }
    };
    Scenario { name: preset.name(), stream, sim, q_window: workload.q_window }
}

/// Builds the serving engine for a scenario and runs it to completion.
///
/// The engine honors `opts.backend`, `opts.workers` and `opts.routing`:
/// the overrides replace the preset's pool size and routing policy
/// (arrival streams stay sized to the preset's nominal capacity, so
/// overriding workers changes service capacity, not the offered load).
/// Any backend runs at any worker count — functional replicas share one
/// pack-once weight cache per SubNet and execute in parallel.
///
/// # Errors
/// Returns [`SushiError::Config`] for invalid overrides (e.g. zero
/// workers) and [`SushiError::Backend`] when execution fails.
pub fn run_scenario(preset: ServePreset, opts: &ExpOptions) -> Result<SimResult, SushiError> {
    run_scenario_inner(preset, opts, false)
}

/// [`run_scenario`] with the preset's fault plan stripped of supervision:
/// same stream, same faults, but no retry, no hedging, no quarantine —
/// the ablation baseline the `chaos` preset's supervised pool is measured
/// against (the `faults = "unsupervised"` rows of `BENCH_serve.json`).
/// For presets without a fault plan this is identical to [`run_scenario`].
///
/// # Errors
/// Same contract as [`run_scenario`].
pub fn run_scenario_unsupervised(
    preset: ServePreset,
    opts: &ExpOptions,
) -> Result<SimResult, SushiError> {
    run_scenario_inner(preset, opts, true)
}

fn run_scenario_inner(
    preset: ServePreset,
    opts: &ExpOptions,
    strip_supervision: bool,
) -> Result<SimResult, SushiError> {
    let workload = mobv3_workload();
    let scenario = build_scenario_for(&workload, preset, opts);
    let mut sim = scenario.sim;
    if strip_supervision {
        sim.faults = sim.faults.map(FaultOptions::without_supervision);
    }
    if let Some(workers) = opts.workers {
        sim.workers = workers;
    }
    if let Some(routing) = opts.routing {
        sim.routing = routing;
    }
    let mut engine = EngineBuilder::new()
        .workload(Arc::clone(&workload.net), workload.picks)
        .q_window(scenario.q_window)
        .candidates(opts.candidates)
        .seed(opts.seed)
        .backend(opts.backend)
        .kernel_policy(opts.kernel_policy)
        .fusion(opts.fusion)
        .sim_config(sim)
        .build()?;
    engine.serve_timed(&scenario.stream)
}

/// Runs every preset and returns `(label, summary)` rows in report order.
///
/// # Errors
/// Propagates the first [`run_scenario`] failure.
pub fn run_all_presets(opts: &ExpOptions) -> Result<Vec<(&'static str, ServeSummary)>, SushiError> {
    ServePreset::ALL.into_iter().map(|p| Ok((p.name(), run_scenario(p, opts)?.summary()))).collect()
}

/// The `(workers, routing)` points of the functional worker-scaling sweep,
/// in `BENCH_serve.json` row order: cache-affinity at 1/2/4/8 replicas
/// (the speedup curve) plus round-robin at 2/4/8 (the routing ablation).
/// The ablation brackets the regimes where routing can and cannot matter:
/// at 2 replicas the pool is saturated (at most one replica is ever free,
/// so every policy is forced into the same pick) and at 8 there is enough
/// slack that no batch queues behind a cold one; at 4 both contention and
/// choice exist, and cache-affinity's warm picks compound through the
/// queue into strictly fewer SLO violations than round-robin.
pub const FUNCTIONAL_SCALING_POINTS: [(usize, RoutingPolicy); 7] = [
    (1, RoutingPolicy::CacheAffinity),
    (2, RoutingPolicy::CacheAffinity),
    (4, RoutingPolicy::CacheAffinity),
    (8, RoutingPolicy::CacheAffinity),
    (2, RoutingPolicy::RoundRobin),
    (4, RoutingPolicy::RoundRobin),
    (8, RoutingPolicy::RoundRobin),
];

/// Worker-scaling sweep of the **functional** backend: one cache-swap-heavy
/// toy-zoo stream (accuracy-band interleave, offered at ~6× a single
/// replica's capacity) served with real parallel int8 forwards at every
/// [`FUNCTIONAL_SCALING_POINTS`] point. Returns
/// `(workers, routing, summary)` rows — the `scale_functional` rows of
/// `BENCH_serve.json`.
///
/// The stream and sizing are *fixed* — independent of `opts.queries` — so
/// quick and full runs produce identical rows (only `opts.kernel_policy`
/// is honored, and kernel policy never changes logits or simulated
/// timing). The predictions are bit-identical across worker counts; only
/// queueing/timing changes with the pool size.
///
/// # Errors
/// Returns [`SushiError::Backend`] when the functional datapath fails.
pub fn run_functional_scaling(
    opts: &ExpOptions,
) -> Result<Vec<(usize, RoutingPolicy, ServeSummary)>, SushiError> {
    let net = Arc::new(sushi_wsnet::zoo::toy_mobilenet_supernet());
    let picks = sushi_wsnet::sampler::ConfigSampler::new(&net, 5).sample_subnets(5);
    let mut rows = Vec::with_capacity(FUNCTIONAL_SCALING_POINTS.len());
    for (workers, routing) in FUNCTIONAL_SCALING_POINTS {
        let mut engine = EngineBuilder::new()
            .workload(Arc::clone(&net), picks.clone())
            .q_window(4)
            .candidates(6)
            .seed(0xF00D)
            .backend(crate::engine::BackendKind::Functional)
            .functional_options(
                crate::engine::FunctionalOptions::default()
                    .with_dpe(8, 8)
                    .with_seed(99)
                    .with_kernel_policy(opts.kernel_policy)
                    .with_fusion(opts.fusion),
            )
            .workers(workers)
            .routing(routing)
            .queue_capacity(64)
            .drop_policy(DropPolicy::DeadlineAware)
            .batch_policy(BatchPolicy::new(4, 0.05))
            .build()?;
        // Deadlines cover queueing + batching on top of bare service time
        // (cf. the preset band widening above) but stay tight enough that
        // a cold replica's extra weight-fetch time can cost the SLO —
        // exactly the margin affinity routing is supposed to win back.
        let mut space = engine.constraint_space();
        space.lat_lo *= 2.0;
        space.lat_hi *= 6.0;
        let n = 480usize;
        // Anchor the bands to the serving set's two lowest accuracy
        // *rungs* so a block's every query resolves to the same SubNet —
        // and the next block's to a different one with a different
        // closest cache column. A midpoint split would leave most
        // constraints satisfiable by one shared row, and the scheduler's
        // windowed cache decision would never flip.
        let mut accs: Vec<f64> =
            (0..engine.table().num_rows()).map(|i| engine.table().row(i).accuracy).collect();
        accs.sort_by(f64::total_cmp);
        accs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert!(accs.len() >= 2, "toy serving set must span at least two accuracy rungs");
        let (a0, a1) = (accs[0], accs[1]);
        let lo_band = ConstraintSpace { acc_lo: space.acc_lo.min(a0), acc_hi: a0, ..space };
        let hi_band = ConstraintSpace { acc_lo: f64::midpoint(a0, a1), acc_hi: a1, ..space };
        let qs_lo = uniform_stream(&lo_band, n, 0x51);
        let qs_hi = uniform_stream(&hi_band, n, 0x52);
        // Blocks of 2×Q flip the scheduler's windowed decision each time,
        // keeping installs frequent and per-replica residency divergent.
        let block = 8usize;
        let qs: Vec<Query> = (0..n)
            .map(|i| {
                let q = if (i / block) % 2 == 0 { qs_lo[i] } else { qs_hi[i] };
                Query::new(i as u64, q.accuracy_constraint, q.latency_constraint_ms)
            })
            .collect();
        // Offered load ~6× one replica's service rate: one worker is
        // throughput-bound (deadline-aware shedding keeps goodput at its
        // service rate), so goodput scales with the pool until arrivals
        // stop being the bottleneck.
        let cold_ms: Vec<f64> =
            (0..engine.table().num_rows()).map(|i| engine.table().latency_ms(i, 0)).collect();
        let mean_cold_ms = cold_ms.iter().sum::<f64>() / cold_ms.len() as f64;
        let rate_qps = 6.0 * 1e3 / mean_cold_ms;
        let arrivals = ArrivalProcess::Poisson { rate_qps }.timestamps(n, 0x53);
        let stream = attach_arrivals(&qs, &arrivals);
        rows.push((workers, routing, engine.serve_timed(&stream)?.summary()));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_names_round_trip() {
        for p in ServePreset::ALL {
            assert_eq!(ServePreset::from_name(p.name()), Some(p));
        }
        assert_eq!(ServePreset::from_name("nope"), None);
    }

    #[test]
    fn scenarios_build_sorted_streams_of_requested_length() {
        let opts = ExpOptions::quick();
        for p in ServePreset::ALL {
            let s = build_scenario(p, &opts);
            assert_eq!(s.stream.len(), opts.queries, "{}", s.name);
            assert!(s.stream.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        }
    }

    #[test]
    fn multi_tenant_scenario_mixes_tenants() {
        let s = build_scenario(ServePreset::MultiTenant, &ExpOptions::quick());
        assert!(s.stream.iter().any(|tq| tq.tenant == 0));
        assert!(s.stream.iter().any(|tq| tq.tenant == 1));
    }

    fn static_quick() -> ExpOptions {
        let mut opts = ExpOptions::quick();
        opts.adaptive = false;
        opts
    }

    #[test]
    fn burst_scenario_stresses_harder_than_steady() {
        // Under *static* scheduling the burst regime must visibly hurt;
        // the adaptive loop exists precisely to flatten this gap.
        let opts = static_quick();
        let steady = run_scenario(ServePreset::Steady, &opts).unwrap().summary();
        let burst = run_scenario(ServePreset::Burst, &opts).unwrap().summary();
        assert!(
            burst.p99_ms > steady.p99_ms,
            "burst p99 {} !> steady {}",
            burst.p99_ms,
            steady.p99_ms
        );
        assert!(burst.slo_violation_rate >= steady.slo_violation_rate);
    }

    #[test]
    fn adaptive_degrades_under_overload_and_static_does_not() {
        let adaptive = run_scenario(ServePreset::Overload, &ExpOptions::quick()).unwrap();
        let trace = adaptive.adaptation.expect("adaptive run records a trace");
        assert!(trace.degrades > 0, "sustained overload must trigger degradation");
        assert!(trace.shaped > 0, "degradation must shape queries");
        let static_run = run_scenario(ServePreset::Overload, &static_quick()).unwrap();
        assert!(static_run.adaptation.is_none(), "static runs carry no trace");
    }

    #[test]
    fn adaptive_burst_beats_static_burst() {
        let stat = run_scenario(ServePreset::Burst, &static_quick()).unwrap().summary();
        let adap = run_scenario(ServePreset::Burst, &ExpOptions::quick()).unwrap().summary();
        assert!(
            adap.slo_violation_rate < stat.slo_violation_rate,
            "adaptive burst violations {} !< static {}",
            adap.slo_violation_rate,
            stat.slo_violation_rate
        );
        assert!(
            adap.goodput_qps >= stat.goodput_qps,
            "adaptive burst goodput {} < static {}",
            adap.goodput_qps,
            stat.goodput_qps
        );
    }

    #[test]
    fn chaos_scenario_injects_faults() {
        let res = run_scenario(ServePreset::Chaos, &ExpOptions::quick()).unwrap();
        let faults = res.faults.clone().expect("chaos runs carry a fault summary");
        assert!(
            faults.transient_failures + faults.crashes + faults.quarantines > 0,
            "the chaos fault plan must actually fire: {faults:?}"
        );
        let s = res.summary();
        assert_eq!(s.offered, s.completed + s.dropped, "conservation");
    }

    #[test]
    fn supervised_chaos_beats_unsupervised_chaos() {
        // The acceptance gate for the supervised executor pool: on the
        // chaos preset, retry + hedging + quarantine must beat the bare
        // pool on *both* the SLO-violation rate and goodput.
        let opts = ExpOptions::quick();
        let sup = run_scenario(ServePreset::Chaos, &opts).unwrap().summary();
        let unsup = run_scenario_unsupervised(ServePreset::Chaos, &opts).unwrap().summary();
        assert!(
            sup.slo_violation_rate < unsup.slo_violation_rate,
            "supervised violations {} !< unsupervised {}",
            sup.slo_violation_rate,
            unsup.slo_violation_rate
        );
        assert!(
            sup.goodput_qps > unsup.goodput_qps,
            "supervised goodput {} !> unsupervised {}",
            sup.goodput_qps,
            unsup.goodput_qps
        );
        assert_eq!(unsup.retries, 0, "unsupervised pool must not retry");
        assert_eq!(unsup.hedges, 0, "unsupervised pool must not hedge");
    }

    #[test]
    fn unsupervised_is_identity_for_faultless_presets() {
        let opts = static_quick();
        let a = run_scenario(ServePreset::Steady, &opts).unwrap();
        let b = run_scenario_unsupervised(ServePreset::Steady, &opts).unwrap();
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn presets_are_deterministic() {
        let opts = ExpOptions::quick();
        assert_eq!(run_all_presets(&opts).unwrap(), run_all_presets(&opts).unwrap());
    }

    /// Pins the quick-scenario tail metrics to exact values **under static
    /// scheduling** — the no-adaptation bit-identity gate (re-pinned when
    /// least-loaded routing replaced lowest-index worker pick). The serving
    /// simulation runs on simulated time with seeded randomness, so these
    /// figures are reproducible to the last bit on any platform; a change
    /// here means serving *semantics* changed and `BENCH_serve.json` needs
    /// regenerating too (`scripts/bench_baseline.sh --update`).
    #[test]
    fn quick_scenario_metrics_are_pinned() {
        let opts = static_quick();
        let steady = run_scenario(ServePreset::Steady, &opts).unwrap().summary();
        assert!((steady.p99_ms - 23.382_301_440).abs() < 1e-6, "steady p99 {}", steady.p99_ms);
        assert!(
            (steady.goodput_qps - 74.346_097_348).abs() < 1e-6,
            "steady goodput {}",
            steady.goodput_qps
        );
        assert!(
            (steady.slo_violation_rate - 0.175).abs() < 1e-9,
            "steady violation rate {}",
            steady.slo_violation_rate
        );
        assert_eq!(steady.dropped, 0);

        let burst = run_scenario(ServePreset::Burst, &opts).unwrap().summary();
        assert!((burst.p99_ms - 96.176_223_914).abs() < 1e-6, "burst p99 {}", burst.p99_ms);
        assert!(
            (burst.goodput_qps - 47.201_943_536).abs() < 1e-6,
            "burst goodput {}",
            burst.goodput_qps
        );
        assert_eq!(burst.dropped, 26);
    }
}
