//! Open-loop arrival-time generators.
//!
//! The serving runtime is *open-loop*: queries arrive on their own clock
//! whether or not the accelerator keeps up, which is what makes queueing,
//! batching, and tail latency measurable (§1's "dynamically variable
//! deployment conditions"). Three processes cover the evaluation regimes:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless steady traffic.
//! * [`ArrivalProcess::Mmpp`] — a two-state Markov-modulated Poisson
//!   process alternating calm and burst phases (ICU admission waves).
//! * [`ArrivalProcess::DiurnalRamp`] — a sinusoidally rate-modulated
//!   Poisson process (day/night load swing), sampled by thinning.
//!
//! All generators draw from the deterministic [`DetRng`], so a `(process,
//! n, seed)` triple always yields the same timestamps, on every platform.

use sushi_tensor::DetRng;

/// An open-loop arrival process over simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate_qps` queries per second.
    Poisson {
        /// Mean arrival rate, queries per second.
        rate_qps: f64,
    },
    /// Markov-modulated Poisson process: exponential sojourns in a calm
    /// state (rate `calm_qps`) and a burst state (rate `burst_qps`).
    Mmpp {
        /// Arrival rate while calm, queries per second.
        calm_qps: f64,
        /// Arrival rate while bursting, queries per second.
        burst_qps: f64,
        /// Mean calm-sojourn duration, ms.
        mean_calm_ms: f64,
        /// Mean burst-sojourn duration, ms.
        mean_burst_ms: f64,
    },
    /// Non-homogeneous Poisson with rate
    /// `λ(t) = base + (peak − base) · (1 − cos(2πt/period)) / 2`,
    /// sampled by Lewis–Shedler thinning against `peak_qps`.
    DiurnalRamp {
        /// Trough arrival rate, queries per second.
        base_qps: f64,
        /// Crest arrival rate, queries per second.
        peak_qps: f64,
        /// Period of one simulated "day", ms.
        period_ms: f64,
    },
}

/// Samples an exponential inter-arrival gap (ms) at `rate_per_ms`.
fn exp_gap_ms(rng: &mut DetRng, rate_per_ms: f64) -> f64 {
    debug_assert!(rate_per_ms > 0.0);
    // 1 - u is in (0, 1]; ln is finite.
    -(1.0 - rng.next_f64()).ln() / rate_per_ms
}

impl ArrivalProcess {
    /// Generates `n` non-decreasing arrival timestamps (ms from stream
    /// start), deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if any rate or duration parameter is non-positive, or if a
    /// diurnal ramp has `peak_qps < base_qps`.
    #[must_use]
    pub fn timestamps(&self, n: usize, seed: u64) -> Vec<f64> {
        self.validate();
        let mut rng = DetRng::new(seed ^ 0xA881_07A1);
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate_qps } => {
                let rate = rate_qps / 1e3;
                let mut t = 0.0;
                for _ in 0..n {
                    t += exp_gap_ms(&mut rng, rate);
                    out.push(t);
                }
            }
            ArrivalProcess::Mmpp { calm_qps, burst_qps, mean_calm_ms, mean_burst_ms } => {
                let mut t = 0.0;
                let mut bursting = false;
                let mut phase_end = exp_gap_ms(&mut rng, 1.0 / mean_calm_ms);
                while out.len() < n {
                    let rate = if bursting { burst_qps } else { calm_qps } / 1e3;
                    let candidate = t + exp_gap_ms(&mut rng, rate);
                    if candidate <= phase_end {
                        t = candidate;
                        out.push(t);
                    } else {
                        t = phase_end;
                        bursting = !bursting;
                        let mean = if bursting { mean_burst_ms } else { mean_calm_ms };
                        phase_end = t + exp_gap_ms(&mut rng, 1.0 / mean);
                    }
                }
            }
            ArrivalProcess::DiurnalRamp { base_qps, peak_qps, period_ms } => {
                let peak = peak_qps / 1e3;
                let mut t = 0.0;
                while out.len() < n {
                    t += exp_gap_ms(&mut rng, peak);
                    let phase = (std::f64::consts::TAU * t / period_ms).cos();
                    let lambda = (base_qps + (peak_qps - base_qps) * 0.5 * (1.0 - phase)) / 1e3;
                    if rng.next_f64() * peak < lambda {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// Long-run mean arrival rate in queries per second.
    #[must_use]
    pub fn mean_rate_qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_qps } => rate_qps,
            ArrivalProcess::Mmpp { calm_qps, burst_qps, mean_calm_ms, mean_burst_ms } => {
                (calm_qps * mean_calm_ms + burst_qps * mean_burst_ms)
                    / (mean_calm_ms + mean_burst_ms)
            }
            ArrivalProcess::DiurnalRamp { base_qps, peak_qps, .. } => {
                f64::midpoint(base_qps, peak_qps)
            }
        }
    }

    fn validate(&self) {
        match *self {
            ArrivalProcess::Poisson { rate_qps } => {
                assert!(rate_qps > 0.0, "Poisson rate must be positive");
            }
            ArrivalProcess::Mmpp { calm_qps, burst_qps, mean_calm_ms, mean_burst_ms } => {
                assert!(
                    calm_qps > 0.0 && burst_qps > 0.0 && mean_calm_ms > 0.0 && mean_burst_ms > 0.0,
                    "MMPP parameters must be positive"
                );
            }
            ArrivalProcess::DiurnalRamp { base_qps, peak_qps, period_ms } => {
                assert!(base_qps > 0.0 && period_ms > 0.0, "diurnal parameters must be positive");
                assert!(peak_qps >= base_qps, "diurnal peak must be >= base");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(ts: &[f64]) -> f64 {
        ts.last().unwrap() / ts.len() as f64
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let p = ArrivalProcess::Poisson { rate_qps: 200.0 };
        let a = p.timestamps(500, 7);
        let b = p.timestamps(500, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_ne!(a, p.timestamps(500, 8));
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let p = ArrivalProcess::Poisson { rate_qps: 100.0 };
        let ts = p.timestamps(4000, 1);
        // 100 qps => 10 ms mean gap; LLN keeps a 4000-sample mean within 10%.
        let gap = mean_gap(&ts);
        assert!((gap - 10.0).abs() < 1.0, "mean gap {gap} ms");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let cv2 = |ts: &[f64]| {
            let gaps: Vec<f64> = ts.windows(2).map(|w| w[1] - w[0]).collect();
            let m = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - m).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (m * m)
        };
        let mmpp = ArrivalProcess::Mmpp {
            calm_qps: 50.0,
            burst_qps: 1000.0,
            mean_calm_ms: 400.0,
            mean_burst_ms: 100.0,
        };
        let poisson = ArrivalProcess::Poisson { rate_qps: mmpp.mean_rate_qps() };
        // A Poisson process has squared CV 1; rate modulation pushes it up.
        assert!(cv2(&mmpp.timestamps(3000, 3)) > 1.5 * cv2(&poisson.timestamps(3000, 3)));
    }

    #[test]
    fn mmpp_mean_rate_interpolates_sojourns() {
        let p = ArrivalProcess::Mmpp {
            calm_qps: 100.0,
            burst_qps: 300.0,
            mean_calm_ms: 300.0,
            mean_burst_ms: 100.0,
        };
        assert!((p.mean_rate_qps() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_ramp_modulates_local_rate() {
        let p = ArrivalProcess::DiurnalRamp { base_qps: 20.0, peak_qps: 400.0, period_ms: 4000.0 };
        let ts = p.timestamps(3000, 5);
        // Count arrivals near troughs (phase around 0) vs crests (phase
        // around 0.5) of each period.
        let phase = |t: f64| (t / 4000.0).fract();
        let trough = ts.iter().filter(|&&t| phase(t) < 0.1 || phase(t) > 0.9).count();
        let crest = ts.iter().filter(|&&t| (phase(t) - 0.5).abs() < 0.1).count();
        assert!(crest > 3 * trough, "crest {crest} !>> trough {trough}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::Poisson { rate_qps: 0.0 }.timestamps(1, 0);
    }
}
