//! The deterministic discrete-event serving simulator.
//!
//! [`ServingSim`] wraps the SUSHI stack — `SushiSched` decisions enacted on
//! an [`ExecutorPool`] of accelerator replicas — in an open-loop event
//! loop over a [`TimedQuery`] stream. It is the run state behind
//! [`crate::engine::Engine::serve_timed`]:
//!
//! 1. **Admission.** Each arrival is scheduled immediately
//!    (`Scheduler::decide`, in arrival order, so the AvgNet state stream is
//!    reproducible) and enqueued tagged with its SubNet row; the bounded
//!    [`AdmissionQueue`] sheds load per its [`DropPolicy`]. Cache decisions
//!    are *routed*: the next dispatched batch's worker installs the new
//!    SubGraph and its swap time lands on that batch — charged against the
//!    deadlines then in flight — while other replicas keep their resident
//!    state (which is what cache-affinity routing exploits).
//! 2. **Dispatch.** At each instant the loop forms one ready head-of-line
//!    batch ([`BatchPolicy`]) per free worker, routes each batch to a
//!    replica via the configured [`RoutingPolicy`] (claiming it for this
//!    group), and executes the whole group concurrently through the
//!    backend; every query in a batch completes at its batch end.
//! 3. **Accounting.** End-to-end latency (queueing + swap + service) feeds
//!    a streaming [`LatencyHistogram`]; drops and deadline misses both
//!    count against SLO attainment.
//!
//! Time is simulated milliseconds; nothing here reads a wall clock, so a
//! `(stream, config, seed)` triple reproduces bit-identical results on any
//! platform.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use sushi_accel::backend::ExecutionBackend;
use sushi_accel::AccelConfig;
use sushi_sched::{
    AdaptiveEvent, AdaptiveOptions, AdaptivePolicy, CacheSelection, LatencyTable, LoadSignal,
    Policy, Query, Scheduler, TenantOptions, TenantPolicy, TenantTier, TierSignals, TIER_COUNT,
};
use sushi_wsnet::encoding::overlap_ratio;
use sushi_wsnet::{SubNet, SuperNet};

use crate::error::SushiError;
use crate::metrics::{LatencyHistogram, ServeSummary};
use crate::serving::batch::BatchPolicy;
use crate::serving::executor::{ExecutorPool, PlannedBatch};
use crate::serving::fault::{FaultOptions, FaultRuntime, FaultSummary};
use crate::serving::queue::{AdmissionQueue, DropPolicy, DropReason, DroppedQuery, QueuedQuery};
use crate::serving::routing::{ReplicaView, RoutingPolicy};
use crate::stream::TimedQuery;

/// Serving-loop knobs (everything except the stack itself).
///
/// `#[non_exhaustive]`: construct via [`Default`] and adjust with the
/// `with_*` setters (or the corresponding
/// [`crate::engine::EngineBuilder`] knobs) so future fields are
/// non-breaking.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SimConfig {
    /// Number of accelerator workers.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Overflow/deadline policy.
    pub drop_policy: DropPolicy,
    /// Dynamic-batching policy.
    pub batch: BatchPolicy,
    /// Which free replica a ready batch is dispatched to (irrelevant with
    /// one worker — every policy picks worker 0).
    pub routing: RoutingPolicy,
    /// Load-adaptive degradation knobs (`None` = static scheduling; the
    /// loop then behaves bit-identically to the pre-adaptive runtime).
    pub adaptive: Option<AdaptiveOptions>,
    /// Tenant-tiered adaptation (`None` = tierless; mutually exclusive
    /// with `adaptive` — the engine builder rejects setting both). With
    /// `None` the loop is bit-identical to the tierless runtime: every
    /// query is tagged [`TenantTier::Standard`] and no tier machinery
    /// runs.
    pub tenants: Option<TenantOptions>,
    /// Deterministic fault injection and supervision (`None` = the
    /// fault-free runtime; the loop is then bit-identical to a build
    /// without this field — no fault RNG is drawn and no event order
    /// changes).
    pub faults: Option<FaultOptions>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: 64,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::no_batching(),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: None,
        }
    }
}

impl SimConfig {
    /// Sets the number of accelerator workers.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the admission-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the overflow/deadline policy.
    #[must_use]
    pub fn with_drop_policy(mut self, policy: DropPolicy) -> Self {
        self.drop_policy = policy;
        self
    }

    /// Sets the dynamic-batching policy.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the replica routing policy.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Enables (`Some`) or disables (`None`) load-adaptive degradation.
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: Option<AdaptiveOptions>) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Enables (`Some`) or disables (`None`) tenant-tiered adaptation.
    /// Mutually exclusive with [`Self::with_adaptive`].
    #[must_use]
    pub fn with_tenants(mut self, tenants: Option<TenantOptions>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Enables (`Some`) or disables (`None`) deterministic fault
    /// injection and the supervised executor pool.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<FaultOptions>) -> Self {
        self.faults = faults;
        self
    }
}

/// One query served to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct ServedQuery {
    /// The query as issued.
    pub query: Query,
    /// Tenant that issued it.
    pub tenant: u32,
    /// Priority tier the tenant maps to ([`TenantTier::Standard`] in a
    /// run without tenant configuration).
    pub tier: TenantTier,
    /// Arrival time, ms.
    pub arrival_ms: f64,
    /// Dispatch (service start) time, ms.
    pub start_ms: f64,
    /// Completion time, ms (shared by the whole batch).
    pub completion_ms: f64,
    /// SubNet row served.
    pub subnet_row: usize,
    /// Size of the batch it rode in.
    pub batch_size: usize,
    /// Worker that executed it.
    pub worker: usize,
    /// Functional-mode prediction (`None` in timing mode).
    pub prediction: Option<usize>,
}

impl ServedQuery {
    /// End-to-end latency: queueing + cache swap + service, ms.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.completion_ms - self.arrival_ms
    }

    /// Whether the query completed within its latency constraint.
    #[must_use]
    pub fn met_slo(&self) -> bool {
        self.latency_ms() <= self.query.latency_constraint_ms
    }
}

/// What one tenant tier's degradation ladder did over a tenant-tiered
/// run (one entry per tier in [`AdaptationTrace::tiers`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierAdaptation {
    /// Which tier this ladder serves.
    pub tier: TenantTier,
    /// The tier's degradation level when the run ended.
    pub final_level: usize,
    /// Level changes that degraded this tier.
    pub degrades: usize,
    /// Level changes that upgraded this tier.
    pub upgrades: usize,
}

/// What the adaptive controller did over one run (`None` in
/// [`SimResult::adaptation`] when adaptation was disabled).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptationTrace {
    /// Every enacted level change, in simulated-time order (for a
    /// tenant-tiered run, the merged event stream across all tiers).
    pub events: Vec<AdaptiveEvent>,
    /// Degradation level when the run ended (for a tenant-tiered run,
    /// the deepest tier's level).
    pub final_level: usize,
    /// Level changes that degraded.
    pub degrades: usize,
    /// Level changes that upgraded.
    pub upgrades: usize,
    /// Queries whose constraints were shaped before scheduling.
    pub shaped: usize,
    /// Per-tier ladder traces (empty unless the run was tenant-tiered).
    pub tiers: Vec<TierAdaptation>,
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct SimResult {
    /// Queries served to completion, in dispatch order.
    pub served: Vec<ServedQuery>,
    /// Queries shed by the admission queue.
    pub dropped: Vec<DroppedQuery>,
    /// Time-weighted mean queue depth over the run.
    pub mean_queue_depth: f64,
    /// Maximum queue depth observed.
    pub max_queue_depth: usize,
    /// Batches whose results were committed. Equal to total dispatches on
    /// a faultless run; under fault injection, transiently-failed batches
    /// and hedge duplicates burned a service slot without committing, so
    /// they are excluded (keeping `mean_batch >= 1` whenever anything
    /// completed).
    pub batches: usize,
    /// Cache decisions enacted.
    pub cache_installs: usize,
    /// Total PB swap time charged to batches, ms.
    pub swap_ms: f64,
    /// Simulation horizon: last completion (or arrival, if later), ms.
    pub makespan_ms: f64,
    /// Adaptation trace (`None` when the run was static).
    pub adaptation: Option<AdaptationTrace>,
    /// Fault-injection accounting (`None` when the run was fault-free).
    pub faults: Option<FaultSummary>,
}

impl SimResult {
    /// Aggregates the run into a [`ServeSummary`]. Percentile fields are
    /// `0.0` when nothing completed (a fully-shed run).
    #[must_use]
    pub fn summary(&self) -> ServeSummary {
        let offered = self.served.len() + self.dropped.len();
        let mut hist = LatencyHistogram::new();
        let mut met = 0usize;
        for s in &self.served {
            hist.push(s.latency_ms());
            if s.met_slo() {
                met += 1;
            }
        }
        let (p50_ms, p95_ms, p99_ms, mean_latency_ms) = if hist.count() > 0 {
            (hist.quantile(0.50), hist.quantile(0.95), hist.quantile(0.99), hist.mean_ms())
        } else {
            (0.0, 0.0, 0.0, 0.0)
        };
        let violations = (self.served.len() - met) + self.dropped.len();
        let mut by_reason = [0usize; 4];
        for d in &self.dropped {
            by_reason[match d.reason {
                DropReason::QueueFull => 0,
                DropReason::DeadlineLapsed => 1,
                DropReason::RetryBudgetExhausted => 2,
                DropReason::ReplicaLost => 3,
            }] += 1;
        }
        let f = self.faults.as_ref();
        ServeSummary {
            offered,
            completed: self.served.len(),
            dropped: self.dropped.len(),
            p50_ms,
            p95_ms,
            p99_ms,
            mean_latency_ms,
            goodput_qps: if self.makespan_ms > 0.0 {
                met as f64 / (self.makespan_ms / 1e3)
            } else {
                0.0
            },
            slo_violation_rate: if offered > 0 { violations as f64 / offered as f64 } else { 0.0 },
            mean_queue_depth: self.mean_queue_depth,
            max_queue_depth: self.max_queue_depth,
            mean_batch: if self.batches > 0 {
                self.served.len() as f64 / self.batches as f64
            } else {
                0.0
            },
            cache_installs: self.cache_installs,
            swap_ms: self.swap_ms,
            makespan_ms: self.makespan_ms,
            degrades: self.adaptation.as_ref().map_or(0, |a| a.degrades),
            upgrades: self.adaptation.as_ref().map_or(0, |a| a.upgrades),
            dropped_queue_full: by_reason[0],
            dropped_deadline: by_reason[1],
            dropped_retry_budget: by_reason[2],
            dropped_replica_lost: by_reason[3],
            crashes: f.map_or(0, |s| s.crashes),
            retries: f.map_or(0, |s| s.retries),
            hedges: f.map_or(0, |s| s.hedges),
            hedges_won: f.map_or(0, |s| s.hedges_won),
            quarantines: f.map_or(0, |s| s.quarantines),
        }
    }

    /// Summary restricted to one tenant's queries (drops included).
    ///
    /// Per-query fields (offered/completed/dropped, percentiles, goodput,
    /// SLO violations) cover only this tenant; `mean_batch` is the mean
    /// batch size the tenant's served queries actually rode in (≥ 1 when
    /// any completed). Shared-infrastructure fields — queue depths, cache
    /// installs, swap time, makespan — describe the whole run: tenants
    /// share one queue and one worker pool, so they have no per-tenant
    /// decomposition.
    #[must_use]
    pub fn tenant_summary(&self, tenant: u32) -> ServeSummary {
        let filtered = SimResult {
            served: self.served.iter().copied().filter(|s| s.tenant == tenant).collect(),
            dropped: self.dropped.iter().copied().filter(|d| d.timed.tenant == tenant).collect(),
            // Shared-infrastructure fields pass through by value; only the
            // per-query vectors are filtered.
            mean_queue_depth: self.mean_queue_depth,
            max_queue_depth: self.max_queue_depth,
            batches: self.batches,
            cache_installs: self.cache_installs,
            swap_ms: self.swap_ms,
            makespan_ms: self.makespan_ms,
            adaptation: self.adaptation.clone(),
            faults: self.faults.clone(),
        };
        let mut summary = filtered.summary();
        // `summary()` derives mean_batch from the run-global dispatch
        // count, which is meaningless for a tenant slice; replace it with
        // the batch size experienced by this tenant's queries.
        summary.mean_batch = if filtered.served.is_empty() {
            0.0
        } else {
            filtered.served.iter().map(|s| s.batch_size as f64).sum::<f64>()
                / filtered.served.len() as f64
        };
        summary
    }

    /// Summary restricted to one priority tier's queries (drops
    /// included), with the same shared-field semantics as
    /// [`Self::tenant_summary`]. `degrades`/`upgrades` come from the
    /// tier's own ladder trace (zero for a run without tenant
    /// configuration, where every query is [`TenantTier::Standard`] and
    /// only the global controller — if any — moved).
    #[must_use]
    pub fn tier_summary(&self, tier: TenantTier) -> ServeSummary {
        let filtered = SimResult {
            served: self.served.iter().copied().filter(|s| s.tier == tier).collect(),
            dropped: self.dropped.iter().copied().filter(|d| d.tier == tier).collect(),
            mean_queue_depth: self.mean_queue_depth,
            max_queue_depth: self.max_queue_depth,
            batches: self.batches,
            cache_installs: self.cache_installs,
            swap_ms: self.swap_ms,
            makespan_ms: self.makespan_ms,
            adaptation: self.adaptation.clone(),
            faults: self.faults.clone(),
        };
        let mut summary = filtered.summary();
        summary.mean_batch = if filtered.served.is_empty() {
            0.0
        } else {
            filtered.served.iter().map(|s| s.batch_size as f64).sum::<f64>()
                / filtered.served.len() as f64
        };
        let ladder =
            self.adaptation.as_ref().and_then(|a| a.tiers.iter().find(|t| t.tier == tier).copied());
        summary.degrades = ladder.map_or(0, |t| t.degrades);
        summary.upgrades = ladder.map_or(0, |t| t.upgrades);
        summary
    }
}

/// p99 end-to-end latency over a `(completion_ms, latency_ms)` window
/// (`0.0` while the window is empty). Exact order statistic — the window
/// only ever spans a couple of dwell periods' worth of completions.
///
/// The controller's tail signal must be a *sliding time window*, not the
/// run-long histogram the summary uses: a cumulative p99 never decays, so
/// one burst would pin tail pressure above the degrade threshold for the
/// rest of the run and permanently block recovery. A count-based window
/// has the same failure in miniature (at CI sizing, 64 completions can be
/// half the run), so entries age out by simulated time instead — the
/// window is `2 x` the controller's reference scale (two dwell periods by
/// default): within a couple of permitted level changes, stale-level
/// latencies have fully aged out.
fn recent_p99(recent: &VecDeque<(f64, f64)>) -> f64 {
    if recent.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = recent.iter().map(|&(_, lat)| lat).collect();
    // total_cmp: a NaN smuggled in by a hostile backend must not panic the
    // dispatch path — it sorts to the end and at worst skews the signal.
    v.sort_by(f64::total_cmp);
    v[(0.99 * (v.len() - 1) as f64).ceil() as usize]
}

/// Hedge threshold signal: p99 service time over a count-bounded window of
/// recent batch service times (`0.0` while empty). Unlike the SLO tail
/// window this tracks *service* time (dispatch → completion), which is what
/// a straggling replica inflates.
fn service_p99(window: &VecDeque<f64>) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = window.iter().copied().collect();
    v.sort_by(f64::total_cmp);
    v[(0.99 * (v.len() - 1) as f64).ceil() as usize]
}

/// Hedge service-time window: bounded count (not time) — service times are
/// level-independent, so aging by count is enough and keeps the fault path
/// allocation-free in steady state.
const HEDGE_WINDOW: usize = 64;
/// Completions observed before hedging arms: an empty/noisy p99 estimate
/// must not fire duplicates at the start of a run.
const HEDGE_WARMUP: usize = 16;

/// The SLO-aware serving loop: scheduler + executor pool + queue + batcher.
#[derive(Debug)]
pub struct ServingSim {
    net: Arc<SuperNet>,
    subnets: Vec<SubNet>,
    sched: Scheduler,
    pool: ExecutorPool,
    config: SimConfig,
    adaptive: Option<AdaptivePolicy>,
    tenant: Option<TenantPolicy>,
    /// Round-robin routing cursor (persists across dispatch groups).
    rr_cursor: usize,
}

impl ServingSim {
    /// Assembles a serving simulation from engine-validated parts.
    /// `subnets` must be the serving set (row order) the `table` was built
    /// from — [`crate::engine::EngineBuilder::build`] enforces this along
    /// with the sim-config invariants.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        net: Arc<SuperNet>,
        subnets: Vec<SubNet>,
        table: LatencyTable,
        accel_config: &AccelConfig,
        policy: Policy,
        cache_selection: CacheSelection,
        q_window: usize,
        config: SimConfig,
    ) -> Self {
        debug_assert_eq!(subnets.len(), table.num_rows(), "serving set / table mismatch");
        debug_assert!(
            config.adaptive.is_none() || config.tenants.is_none(),
            "adaptive and tenants are mutually exclusive (builder-enforced)"
        );
        let adaptive = config.adaptive.map(|opts| AdaptivePolicy::new(&table, policy, opts));
        let tenant = config.tenants.map(|opts| TenantPolicy::new(&table, policy, opts));
        Self {
            net,
            subnets,
            sched: Scheduler::new(table, policy, cache_selection, q_window),
            pool: ExecutorPool::new(accel_config, config.workers),
            config,
            adaptive,
            tenant,
            rr_cursor: 0,
        }
    }

    /// The adaptive controller, when adaptation is enabled.
    #[must_use]
    pub fn adaptive(&self) -> Option<&AdaptivePolicy> {
        self.adaptive.as_ref()
    }

    /// The tenant-tiered controller, when tenancy is enabled.
    #[must_use]
    pub fn tenant(&self) -> Option<&TenantPolicy> {
        self.tenant.as_ref()
    }

    /// The scheduler (for inspection).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// The serving SubNets (row order).
    #[must_use]
    pub fn subnets(&self) -> &[SubNet] {
        &self.subnets
    }

    /// Runs the event loop over an arrival-ordered stream to completion,
    /// dispatching every batch through `backend`.
    ///
    /// # Errors
    /// Returns [`SushiError::Stream`] if the stream is empty or not sorted
    /// by arrival time, and [`SushiError::Backend`] when the backend fails.
    pub fn run(
        &mut self,
        backend: &mut dyn ExecutionBackend,
        stream: &[TimedQuery],
    ) -> Result<SimResult, SushiError> {
        if stream.is_empty() {
            return Err(SushiError::Stream("cannot simulate an empty stream".into()));
        }
        if !stream.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms) {
            return Err(SushiError::Stream("stream must be sorted by arrival time".into()));
        }
        let mut queue = AdmissionQueue::new(self.config.queue_capacity, self.config.drop_policy);
        if let Some(pol) = &self.adaptive {
            // Smooth the depth signal on the controller's own time scale so
            // a single momentary spike cannot trigger a degrade.
            queue = queue.with_depth_tau(pol.scale_ms());
        } else if let Some(pol) = &self.tenant {
            queue = queue.with_depth_tau(pol.scale_ms());
        }
        let base_batch = self.config.batch;
        let mut batch_policy = base_batch;
        if let Some(pol) = &self.adaptive {
            batch_policy =
                BatchPolicy::new(pol.batch_cap(base_batch.max_batch), base_batch.max_wait_ms);
        } else if let Some(pol) = &self.tenant {
            batch_policy =
                BatchPolicy::new(pol.batch_cap(base_batch.max_batch), base_batch.max_wait_ms);
        }
        // Tail-signal window (see `recent_p99`): two SLO time scales of
        // completions, tagged with their completion time for aging — a
        // couple of dwell periods, so latencies observed at a stale level
        // age out within a few permitted level changes.
        let tail_window_ms = match (&self.adaptive, &self.tenant) {
            (Some(p), _) => 2.0 * p.scale_ms(),
            (None, Some(p)) => 2.0 * p.scale_ms(),
            (None, None) => 0.0,
        };
        let mut recent: VecDeque<(f64, f64)> = VecDeque::new();
        // Per-tier completion windows (tenant-tiered runs only): each
        // tier's ladder reacts to its *own* tail, so one tenant's burst
        // cannot read as tail pressure on another tier's signal.
        let mut recent_tier: [VecDeque<(f64, f64)>; TIER_COUNT] = Default::default();
        // Fault injection: a fresh runtime per run — the fault plan is a
        // pure function of the options' seed, so a rerun replays the same
        // schedule. All of this state is inert when `faults: None`; the
        // fault-free loop never touches it.
        let mut fault = self.config.faults.map(|opts| FaultRuntime::new(opts, self.config.workers));
        let mut tier_retry_budget = [usize::MAX; TIER_COUNT];
        if let Some(sup) = fault.as_ref().and_then(FaultRuntime::supervise) {
            tier_retry_budget = sup.retry.tier_budgets;
        }
        // Retried queries waiting out their backoff (re-admission times);
        // attempt counts are keyed by (tenant, id) because ids are only
        // unique per tenant in a merged stream.
        let mut retry_buf: Vec<(QueuedQuery, f64)> = Vec::new();
        let mut attempts: HashMap<(u32, u64), u32> = HashMap::new();
        let mut hedge_window: VecDeque<f64> = VecDeque::new();
        // Dispatches that committed no results: transiently-failed batches
        // and hedge duplicates (exactly one of a hedged pair commits).
        // Excluded from `SimResult::batches` so `mean_batch` keeps meaning
        // "served queries per useful batch"; zero when faultless.
        let mut wasted_batches = 0usize;
        let mut events: Vec<AdaptiveEvent> = Vec::new();
        let mut shaped_count = 0usize;
        let mut served: Vec<ServedQuery> = Vec::with_capacity(stream.len());
        let mut dropped: Vec<DroppedQuery> = Vec::new();
        let mut next = 0usize; // index of the next arrival to admit
        let mut now = 0.0f64;

        loop {
            // Enact fault events due at this instant first: a replica whose
            // crash is due must be gone before this step's admissions or
            // dispatch can see it, and restarts / probation expiries come
            // back the same way. Retries whose backoff has elapsed re-enter
            // through the shared queue, competing for capacity like any
            // arrival (and can themselves be shed).
            if let Some(f) = fault.as_mut() {
                f.advance(now, &mut self.pool);
                if !retry_buf.is_empty() {
                    let mut still_waiting = Vec::with_capacity(retry_buf.len());
                    for (qq, ready_ms) in retry_buf.drain(..) {
                        if ready_ms <= now {
                            if let Some(victim) = queue.offer(now, qq) {
                                dropped.push(victim);
                            }
                        } else {
                            still_waiting.push((qq, ready_ms));
                        }
                    }
                    retry_buf = still_waiting;
                }
            }

            // Observe load and (maybe) step the degradation level. Sampled
            // once per event — before admissions — so the controller sees
            // the queue as the arriving queries will find it, and recovery
            // happens while the queue drains, not only on new arrivals.
            if let Some(pol) = self.adaptive.as_mut() {
                let (head_slack_ms, head_budget_ms) =
                    queue.head().map_or((f64::INFINITY, 0.0), |h| {
                        (h.timed.deadline_ms() - now, h.timed.query.latency_constraint_ms)
                    });
                let signal = LoadSignal {
                    now_ms: now,
                    queue_depth: queue.smoothed_depth(now),
                    queue_capacity: self.config.queue_capacity,
                    p99_ms: {
                        while recent.front().is_some_and(|&(t, _)| t < now - tail_window_ms) {
                            recent.pop_front();
                        }
                        recent_p99(&recent)
                    },
                    head_slack_ms,
                    head_budget_ms,
                    quarantined_frac: fault.as_ref().map_or(0.0, FaultRuntime::unavailable_frac),
                };
                if let Some(ev) = pol.observe(&signal) {
                    // Shrink (or re-grow) the dynamic batch with the level:
                    // smaller batches dispatch sooner under pressure.
                    batch_policy = BatchPolicy::new(
                        pol.batch_cap(base_batch.max_batch),
                        base_batch.max_wait_ms,
                    );
                    events.push(ev);
                }
            } else if let Some(pol) = self.tenant.as_mut() {
                // Tenant-tiered runs observe the same shared signal the
                // global controller would, plus one per-tier signal: raw
                // tier occupancy of the shared queue, the tier's own
                // head-of-line slack, and the tier's own completion tail.
                let (head_slack_ms, head_budget_ms) =
                    queue.head().map_or((f64::INFINITY, 0.0), |h| {
                        (h.timed.deadline_ms() - now, h.timed.query.latency_constraint_ms)
                    });
                while recent.front().is_some_and(|&(t, _)| t < now - tail_window_ms) {
                    recent.pop_front();
                }
                let shared = LoadSignal {
                    now_ms: now,
                    queue_depth: queue.smoothed_depth(now),
                    queue_capacity: self.config.queue_capacity,
                    p99_ms: recent_p99(&recent),
                    head_slack_ms,
                    head_budget_ms,
                    quarantined_frac: fault.as_ref().map_or(0.0, FaultRuntime::unavailable_frac),
                };
                let mut signals = TierSignals::uniform(shared);
                for tier in TenantTier::ALL {
                    let window = &mut recent_tier[tier.index()];
                    while window.front().is_some_and(|&(t, _)| t < now - tail_window_ms) {
                        window.pop_front();
                    }
                    let (slack_ms, budget_ms) =
                        queue.head_tier(tier).map_or((f64::INFINITY, 0.0), |h| {
                            (h.timed.deadline_ms() - now, h.timed.query.latency_constraint_ms)
                        });
                    signals = signals.with_tier(
                        tier,
                        LoadSignal {
                            now_ms: now,
                            queue_depth: queue.count_tier(tier) as f64,
                            queue_capacity: self.config.queue_capacity,
                            p99_ms: recent_p99(window),
                            head_slack_ms: slack_ms,
                            head_budget_ms: budget_ms,
                            quarantined_frac: fault
                                .as_ref()
                                .map_or(0.0, FaultRuntime::unavailable_frac),
                        },
                    );
                }
                let stepped = pol.observe(&signals);
                if !stepped.is_empty() {
                    batch_policy = BatchPolicy::new(
                        pol.batch_cap(base_batch.max_batch),
                        base_batch.max_wait_ms,
                    );
                    events.extend(stepped.iter().map(|te| te.event));
                }
            }

            // Admit every arrival due at (or before) the current instant.
            while next < stream.len() && stream[next].arrival_ms <= now {
                let timed = stream[next];
                next += 1;
                let tier =
                    self.tenant.as_ref().map_or(TenantTier::Standard, |p| p.tier_of(timed.tenant));
                if let Some(pol) = self.tenant.as_mut() {
                    // Feed the arrival predictor at the query's true
                    // arrival instant (≤ now when several arrivals are
                    // admitted in one event step).
                    pol.observe_arrival(tier, timed.arrival_ms);
                }
                // Shape the query for the current degradation level before
                // the scheduler sees it; the queued copy keeps the original
                // constraints, so SLO accounting never moves the goalposts.
                let scheduled = match (&self.adaptive, &self.tenant) {
                    (Some(pol), _) => {
                        let shaped =
                            pol.shape(&timed.query, self.sched.table(), self.sched.current_cache());
                        if shaped != timed.query {
                            shaped_count += 1;
                        }
                        shaped
                    }
                    (None, Some(pol)) => {
                        let shaped = pol.shape(
                            tier,
                            &timed.query,
                            self.sched.table(),
                            self.sched.current_cache(),
                        );
                        if shaped != timed.query {
                            shaped_count += 1;
                        }
                        shaped
                    }
                    (None, None) => timed.query,
                };
                let decision = self.sched.decide(&scheduled);
                if let Some(col) = decision.cache_update {
                    let graph = self.sched.table().column(col).graph.clone();
                    self.pool.route_install(&graph);
                }
                if let Some(victim) =
                    queue.offer(now, QueuedQuery { timed, subnet_row: decision.subnet_row, tier })
                {
                    dropped.push(victim);
                }
            }

            // Dispatch: form one ready batch per free worker at this
            // instant, route each to a replica ([`RoutingPolicy`]) — a
            // chosen replica is claimed so later batches of the group see
            // it busy — and execute the whole group concurrently.
            loop {
                dropped.extend(queue.sweep_lapsed(now));
                let mut claimed = vec![false; self.pool.num_workers()];
                let mut plan: Vec<PlannedBatch<'_>> = Vec::new();
                let mut pending: Vec<(usize, Vec<QueuedQuery>)> = Vec::new();
                loop {
                    // A replica is routable only while up and not
                    // quarantined; the fault-free closure is unchanged.
                    let free = |w: usize| {
                        !claimed[w]
                            && self.pool.busy_until_ms(w) <= now
                            && fault.as_ref().map_or(true, |f| f.dispatchable(w))
                    };
                    if !(0..claimed.len()).any(free) || !batch_policy.ready(&queue, now) {
                        break;
                    }
                    let batch = batch_policy.form(&mut queue, now);
                    debug_assert!(!batch.is_empty());
                    let row = batch[0].subnet_row;
                    // Warmth per free replica: how much of this SubNet's
                    // weight state its resident SubGraph already holds
                    // (the same PB-overlap metric behind `hit_ratio`).
                    // `covers` marks the warmest free replica(s) — routed
                    // installs make residency heterogeneous, so under
                    // cache-affinity routing a swap-heavy mix keeps each
                    // band on the replica already holding its weights.
                    // A Warming replica's cache counts as cold until the
                    // next install lands on it: the crash wiped its PB.
                    let warmth: Vec<f64> = (0..claimed.len())
                        .map(|w| {
                            let warm = fault.as_ref().map_or(true, |f| f.cache_warm(w));
                            match (free(w) && warm, self.pool.resident(w)) {
                                (true, Some(g)) => overlap_ratio(&self.subnets[row].graph, g),
                                _ => 0.0,
                            }
                        })
                        .collect();
                    let warmest = warmth.iter().copied().fold(0.0, f64::max);
                    let views: Vec<ReplicaView> = (0..claimed.len())
                        .map(|w| ReplicaView {
                            free: free(w),
                            busy_until_ms: self.pool.busy_until_ms(w),
                            covers: warmest > 0.0 && warmth[w] == warmest,
                        })
                        .collect();
                    let worker =
                        self.config.routing.choose(&views, &mut self.rr_cursor).ok_or_else(
                            || {
                                SushiError::Internal(
                                    "routing declined every replica for a ready batch".into(),
                                )
                            },
                        )?;
                    claimed[worker] = true;
                    plan.push(PlannedBatch {
                        worker,
                        subnet: &self.subnets[row],
                        query_ids: batch.iter().map(|q| q.timed.query.id).collect(),
                    });
                    pending.push((row, batch));
                }
                if plan.is_empty() {
                    break;
                }
                let results = self.pool.dispatch_group(now, &self.net, backend, &plan)?;
                for ((row, batch), (mut report, mut outputs)) in pending.into_iter().zip(results) {
                    if let Some(f) = fault.as_mut() {
                        if f.roll_transient() {
                            // The batch burned its service slot and failed
                            // retryably at completion. Supervision retries
                            // each query under its tier budget; an
                            // unsupervised pool just loses them.
                            f.note_failure(report.worker, report.completion_ms);
                            let sup = f.supervise().copied();
                            for q in &batch {
                                let key = (q.timed.tenant, q.timed.query.id);
                                let attempt = attempts.get(&key).copied().unwrap_or(1);
                                let retry_at = sup.and_then(|sup| {
                                    if attempt >= sup.retry.max_attempts
                                        || tier_retry_budget[q.tier.index()] == 0
                                    {
                                        return None;
                                    }
                                    let salt = q.timed.query.id
                                        ^ (u64::from(q.timed.tenant) << 32)
                                        ^ (u64::from(attempt) << 48);
                                    Some(report.completion_ms + sup.retry.backoff_ms(attempt, salt))
                                });
                                match retry_at {
                                    Some(ready_ms)
                                        if self.config.drop_policy == DropPolicy::DeadlineAware
                                            && ready_ms > q.timed.deadline_ms() =>
                                    {
                                        // Deadline-aware give-up: the retry
                                        // could not even restart in time.
                                        dropped.push(DroppedQuery {
                                            timed: q.timed,
                                            reason: DropReason::DeadlineLapsed,
                                            tier: q.tier,
                                        });
                                    }
                                    Some(ready_ms) => {
                                        tier_retry_budget[q.tier.index()] =
                                            tier_retry_budget[q.tier.index()].saturating_sub(1);
                                        attempts.insert(key, attempt + 1);
                                        f.summary.retries += 1;
                                        retry_buf.push((*q, ready_ms));
                                    }
                                    None => dropped.push(DroppedQuery {
                                        timed: q.timed,
                                        reason: DropReason::RetryBudgetExhausted,
                                        tier: q.tier,
                                    }),
                                }
                            }
                            wasted_batches += 1;
                            continue;
                        }
                        // Tail hedge: when this batch ran far past the
                        // recent p99 service time, race a duplicate on the
                        // warmest free healthy replica — first result wins,
                        // the loser's slot is reclaimed at that instant.
                        let service_ms = report.completion_ms - report.start_ms;
                        let hedge = f.supervise().and_then(|s| s.hedge);
                        if let Some(hp) = hedge {
                            let p99 = service_p99(&hedge_window);
                            if hedge_window.len() >= HEDGE_WARMUP
                                && service_ms > hp.min_threshold_ms
                                && service_ms > hp.p99_factor * p99
                            {
                                let mut backup: Option<(usize, f64)> = None;
                                for w in 0..self.pool.num_workers() {
                                    if w == report.worker
                                        || self.pool.busy_until_ms(w) > now
                                        || !f.dispatchable(w)
                                    {
                                        continue;
                                    }
                                    let warm = if f.cache_warm(w) {
                                        self.pool.resident(w).map_or(0.0, |g| {
                                            overlap_ratio(&self.subnets[row].graph, g)
                                        })
                                    } else {
                                        0.0
                                    };
                                    if backup.map_or(true, |(_, best)| warm > best) {
                                        backup = Some((w, warm));
                                    }
                                }
                                if let Some((bw, _)) = backup {
                                    let hedge_plan = [PlannedBatch {
                                        worker: bw,
                                        subnet: &self.subnets[row],
                                        query_ids: batch.iter().map(|q| q.timed.query.id).collect(),
                                    }];
                                    let mut hres = self.pool.dispatch_group(
                                        now,
                                        &self.net,
                                        backend,
                                        &hedge_plan,
                                    )?;
                                    let (hreport, houts) =
                                        hres.pop().expect("one planned batch, one result");
                                    f.summary.hedges += 1;
                                    wasted_batches += 1;
                                    if hreport.completion_ms < report.completion_ms {
                                        // Backup won: cancel the primary at
                                        // the winner's completion, but keep
                                        // feeding its would-be service time
                                        // to the straggler detector.
                                        f.summary.hedges_won += 1;
                                        self.pool.clamp_busy(report.worker, hreport.completion_ms);
                                        f.note_success(
                                            report.worker,
                                            service_ms,
                                            hreport.completion_ms,
                                        );
                                        report = hreport;
                                        outputs = houts;
                                    } else {
                                        self.pool.clamp_busy(bw, report.completion_ms);
                                        f.note_success(
                                            bw,
                                            hreport.completion_ms - hreport.start_ms,
                                            report.completion_ms,
                                        );
                                    }
                                }
                            }
                        }
                        let final_service = report.completion_ms - report.start_ms;
                        f.note_success(report.worker, final_service, report.completion_ms);
                        if hedge.is_some() {
                            hedge_window.push_back(final_service);
                            if hedge_window.len() > HEDGE_WINDOW {
                                hedge_window.pop_front();
                            }
                        }
                    }
                    for (i, q) in batch.iter().enumerate() {
                        let done = ServedQuery {
                            query: q.timed.query,
                            tenant: q.timed.tenant,
                            tier: q.tier,
                            arrival_ms: q.timed.arrival_ms,
                            start_ms: report.start_ms,
                            completion_ms: report.completion_ms,
                            subnet_row: row,
                            batch_size: batch.len(),
                            worker: report.worker,
                            prediction: outputs.as_ref().map(|o| o[i].prediction),
                        };
                        if self.adaptive.is_some() || self.tenant.is_some() {
                            recent.push_back((done.completion_ms, done.latency_ms()));
                        }
                        if self.tenant.is_some() {
                            recent_tier[done.tier.index()]
                                .push_back((done.completion_ms, done.latency_ms()));
                        }
                        served.push(done);
                    }
                }
            }

            // Advance to the next event: an arrival, a worker becoming
            // free (which under faults means *available* — restarted or
            // released from probation, not merely past its busy clock), a
            // retry's backoff elapsing, or the head-of-line batch timing
            // out.
            let mut next_event = f64::INFINITY;
            if next < stream.len() {
                next_event = next_event.min(stream[next].arrival_ms);
            }
            for &(_, ready_ms) in &retry_buf {
                next_event = next_event.min(ready_ms);
            }
            if !queue.is_empty() {
                match fault.as_ref() {
                    None => {
                        if self.pool.free_worker_at(now).is_none() {
                            next_event = next_event.min(self.pool.next_free_ms());
                        } else if let Some(t) = batch_policy.ready_at(&queue) {
                            next_event = next_event.min(t);
                        }
                    }
                    Some(f) => {
                        let dispatchable_free = (0..self.pool.num_workers())
                            .any(|w| f.dispatchable(w) && self.pool.busy_until_ms(w) <= now);
                        if !dispatchable_free {
                            let release = (0..self.pool.num_workers())
                                .map(|w| f.release_ms(w, self.pool.busy_until_ms(w)))
                                .fold(f64::INFINITY, f64::min);
                            next_event = next_event.min(release);
                        } else if let Some(t) = batch_policy.ready_at(&queue) {
                            next_event = next_event.min(t);
                        }
                    }
                }
            }
            if !next_event.is_finite() {
                break;
            }
            debug_assert!(next_event > now, "event loop must make progress");
            now = next_event;
        }

        // With the pool permanently lost, whatever is still queued (or
        // waiting out a retry backoff) can never be served: account every
        // survivor as dropped so conservation holds. The fault-free loop
        // always drains its queue, so this is gated to keep its
        // accounting (and depth integral) bit-identical.
        if fault.is_some() {
            for q in queue.drain(now) {
                dropped.push(DroppedQuery {
                    timed: q.timed,
                    reason: DropReason::ReplicaLost,
                    tier: q.tier,
                });
            }
            for (q, _) in retry_buf.drain(..) {
                dropped.push(DroppedQuery {
                    timed: q.timed,
                    reason: DropReason::ReplicaLost,
                    tier: q.tier,
                });
            }
        }
        assert_eq!(
            served.len() + dropped.len(),
            stream.len(),
            "conservation: every admitted query must be served or dropped exactly once"
        );
        let makespan_ms =
            self.pool.drain_ms().max(stream.last().map_or(0.0, |tq| tq.arrival_ms)).max(now);
        let fault_summary = fault.map(|mut f| {
            f.summary.cache_reinstalls = self.pool.reinstalls();
            f.finish(makespan_ms)
        });
        Ok(SimResult {
            served,
            dropped,
            mean_queue_depth: queue.mean_depth(makespan_ms.max(f64::MIN_POSITIVE)),
            max_queue_depth: queue.max_depth(),
            batches: self.pool.batches() - wasted_batches,
            cache_installs: self.pool.cache_installs(),
            swap_ms: self.pool.total_swap_ms(),
            makespan_ms,
            adaptation: match (&self.adaptive, &self.tenant) {
                (Some(pol), _) => Some(AdaptationTrace {
                    events,
                    final_level: pol.level(),
                    degrades: pol.degrades(),
                    upgrades: pol.upgrades(),
                    shaped: shaped_count,
                    tiers: Vec::new(),
                }),
                (None, Some(pol)) => {
                    let tiers: Vec<TierAdaptation> = TenantTier::ALL
                        .iter()
                        .map(|&tier| TierAdaptation {
                            tier,
                            final_level: pol.level(tier),
                            degrades: pol.degrades(tier),
                            upgrades: pol.upgrades(tier),
                        })
                        .collect();
                    Some(AdaptationTrace {
                        events,
                        final_level: tiers.iter().map(|t| t.final_level).max().unwrap_or(0),
                        degrades: tiers.iter().map(|t| t.degrades).sum(),
                        upgrades: tiers.iter().map(|t| t.upgrades).sum(),
                        shaped: shaped_count,
                        tiers,
                    })
                }
                (None, None) => None,
            },
            faults: fault_summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineBuilder};
    use crate::serving::arrivals::ArrivalProcess;
    use crate::stream::{attach_arrivals, uniform_stream, ConstraintSpace};

    fn sim(config: SimConfig) -> (Engine, ConstraintSpace) {
        let engine = EngineBuilder::new()
            .q_window(8)
            .candidates(8)
            .seed(42)
            .sim_config(config)
            .build()
            .expect("valid test configuration");
        let space = engine.constraint_space();
        (engine, space)
    }

    fn stream(space: &ConstraintSpace, n: usize, rate_qps: f64, seed: u64) -> Vec<TimedQuery> {
        let qs = uniform_stream(space, n, seed);
        let ts = ArrivalProcess::Poisson { rate_qps }.timestamps(n, seed ^ 0xD15);
        attach_arrivals(&qs, &ts)
    }

    #[test]
    fn run_is_deterministic() {
        let cfg = SimConfig {
            workers: 2,
            queue_capacity: 16,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::new(4, 2.0),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: None,
        };
        let (mut a, space) = sim(cfg);
        let (mut b, _) = sim(cfg);
        let st = stream(&space, 150, 120.0, 9);
        assert_eq!(a.serve_timed(&st).unwrap(), b.serve_timed(&st).unwrap());
    }

    #[test]
    fn every_query_is_accounted_exactly_once() {
        let cfg = SimConfig {
            workers: 1,
            queue_capacity: 4,
            drop_policy: DropPolicy::DropOldest,
            batch: BatchPolicy::new(4, 1.0),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: None,
        };
        let (mut s, space) = sim(cfg);
        let st = stream(&space, 200, 400.0, 3); // overload: drops expected
        let r = s.serve_timed(&st).unwrap();
        assert_eq!(r.served.len() + r.dropped.len(), 200);
        assert!(!r.dropped.is_empty(), "overload should shed load");
        let mut ids: Vec<u64> = r
            .served
            .iter()
            .map(|q| q.query.id)
            .chain(r.dropped.iter().map(|d| d.timed.query.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn latencies_are_causal_and_fifo_within_row() {
        let cfg = SimConfig {
            workers: 2,
            queue_capacity: 32,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::new(4, 2.0),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: None,
        };
        let (mut s, space) = sim(cfg);
        let r = s.serve_timed(&stream(&space, 150, 150.0, 4)).unwrap();
        for q in &r.served {
            assert!(q.start_ms >= q.arrival_ms, "service before arrival");
            assert!(q.completion_ms > q.start_ms);
            assert!(q.batch_size >= 1 && q.worker < 2);
        }
    }

    #[test]
    fn light_load_meets_slo_overload_violates() {
        let light_cfg = SimConfig {
            workers: 2,
            queue_capacity: 64,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::new(4, 1.0),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: None,
        };
        let (mut light, space) = sim(light_cfg);
        let lr = light.serve_timed(&stream(&space, 150, 40.0, 5)).unwrap().summary();
        let (mut heavy, _) = sim(SimConfig { workers: 1, ..light_cfg });
        let hr = heavy.serve_timed(&stream(&space, 150, 900.0, 5)).unwrap().summary();
        assert!(lr.slo_violation_rate < hr.slo_violation_rate);
        assert!(lr.p99_ms < hr.p99_ms);
        assert!(hr.mean_queue_depth > lr.mean_queue_depth);
    }

    #[test]
    fn batching_improves_throughput_under_pressure() {
        let no_batch = SimConfig {
            workers: 1,
            queue_capacity: 64,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::no_batching(),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: None,
        };
        let batched = SimConfig { batch: BatchPolicy::new(8, 4.0), ..no_batch };
        let (mut a, space) = sim(no_batch);
        let (mut b, _) = sim(batched);
        let st = stream(&space, 200, 500.0, 6);
        let ra = a.serve_timed(&st).unwrap();
        let rb = b.serve_timed(&st).unwrap();
        let drained_a = ra.served.last().unwrap().completion_ms;
        let drained_b = rb.served.last().unwrap().completion_ms;
        assert!(drained_b < drained_a, "batching should drain faster: {drained_b} vs {drained_a}");
        assert!(rb.summary().mean_batch > 1.2);
    }

    #[test]
    fn cache_installs_happen_and_charge_swap_time() {
        let cfg = SimConfig {
            workers: 1,
            queue_capacity: 64,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::new(2, 1.0),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: None,
        };
        let (mut s, space) = sim(cfg);
        let r = s.serve_timed(&stream(&space, 120, 150.0, 7)).unwrap();
        assert!(r.cache_installs > 0);
        assert!(r.swap_ms > 0.0);
    }

    #[test]
    fn tenant_summary_partitions_offered_load() {
        let cfg = SimConfig {
            workers: 2,
            queue_capacity: 32,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::new(4, 2.0),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: None,
        };
        let (mut s, space) = sim(cfg);
        let qs = uniform_stream(&space, 100, 8);
        let ts = ArrivalProcess::Poisson { rate_qps: 150.0 }.timestamps(100, 77);
        let a = attach_arrivals(&qs[..50], &ts[..50]);
        let b = attach_arrivals(&qs[50..], &ts[..50]);
        let merged = crate::stream::merge_tenant_streams(&[a, b]);
        let r = s.serve_timed(&merged).unwrap();
        let t0 = r.tenant_summary(0);
        let t1 = r.tenant_summary(1);
        assert_eq!(t0.offered + t1.offered, 100);
        assert_eq!(t0.offered, 50);
        // Per-tenant batch size is the batch the tenant's queries rode in,
        // not tenant-served over run-global dispatches — it can never be
        // an impossible sub-1 "mean batch".
        for t in [&t0, &t1] {
            if t.completed > 0 {
                assert!(t.mean_batch >= 1.0, "tenant mean_batch {}", t.mean_batch);
            }
        }
    }

    #[test]
    fn empty_stream_is_a_stream_error() {
        let cfg = SimConfig::default();
        let (mut s, _) = sim(cfg);
        let err = s.serve_timed(&[]).unwrap_err();
        assert!(matches!(err, SushiError::Stream(_)), "{err}");
    }

    #[test]
    fn unsorted_stream_is_a_stream_error() {
        let cfg = SimConfig::default();
        let (mut s, space) = sim(cfg);
        let qs = uniform_stream(&space, 2, 1);
        let st = vec![TimedQuery::new(5.0, qs[0]), TimedQuery::new(1.0, qs[1])];
        let err = s.serve_timed(&st).unwrap_err();
        assert!(matches!(err, SushiError::Stream(_)), "{err}");
    }

    #[test]
    fn faultless_some_zero_rates_matches_none() {
        // `faults: Some(..)` with every rate zeroed injects nothing: the
        // run must produce the same served/dropped trace as `faults: None`
        // (the summaries differ only in the `faults` accounting field).
        let cfg = SimConfig {
            workers: 2,
            queue_capacity: 16,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::new(4, 2.0),
            routing: RoutingPolicy::CacheAffinity,
            adaptive: None,
            tenants: None,
            faults: None,
        };
        let injected = SimConfig { faults: Some(FaultOptions::default()), ..cfg };
        let (mut a, space) = sim(cfg);
        let (mut b, _) = sim(injected);
        let st = stream(&space, 150, 120.0, 9);
        let ra = a.serve_timed(&st).unwrap();
        let rb = b.serve_timed(&st).unwrap();
        assert_eq!(ra.served, rb.served);
        assert_eq!(ra.dropped, rb.dropped);
        assert_eq!(ra.faults, None);
        let fs = rb.faults.expect("fault accounting present when faults are configured");
        assert_eq!((fs.crashes, fs.transient_failures, fs.retries, fs.hedges), (0, 0, 0, 0));
    }

    #[test]
    fn losing_every_replica_is_accounted_not_a_panic() {
        // A permanent crash (no outage window) of the whole pool must end
        // the run cleanly: whatever could not be served is dropped as
        // `ReplicaLost`, and conservation still holds.
        let cfg = SimConfig {
            workers: 1,
            queue_capacity: 64,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::new(4, 1.0),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: Some(FaultOptions::default().with_crash_mtbf_ms(0.5).without_supervision()),
        };
        let (mut s, space) = sim(cfg);
        let st = stream(&space, 100, 200.0, 11);
        let r = s.serve_timed(&st).unwrap();
        assert_eq!(r.served.len() + r.dropped.len(), 100);
        let fs = r.faults.as_ref().expect("fault accounting");
        assert!(fs.crashes >= 1, "the tiny MTBF must crash the only replica");
        assert!(
            r.dropped.iter().any(|d| d.reason == DropReason::ReplicaLost),
            "queries stranded by the dead pool are ReplicaLost drops"
        );
        assert!(fs.total_downtime_ms() > 0.0);
    }

    #[test]
    fn supervised_transients_retry_and_unsupervised_drop() {
        let base = SimConfig {
            workers: 2,
            queue_capacity: 64,
            drop_policy: DropPolicy::DropNewest,
            batch: BatchPolicy::new(4, 2.0),
            routing: RoutingPolicy::LeastLoaded,
            adaptive: None,
            tenants: None,
            faults: Some(FaultOptions::default().with_transient_rate(0.2)),
        };
        let (mut sup, space) = sim(base);
        let st = stream(&space, 200, 100.0, 13);
        let rs = sup.serve_timed(&st).unwrap();
        let fs = rs.faults.as_ref().expect("fault accounting");
        assert!(fs.transient_failures > 0, "a 20% transient rate must fire");
        assert!(fs.retries > 0, "supervision retries transient failures");
        assert!(
            rs.served.len() > 150,
            "retries recover most transient losses: served {}",
            rs.served.len()
        );

        let unsup = SimConfig {
            faults: Some(FaultOptions::default().with_transient_rate(0.2).without_supervision()),
            ..base
        };
        let (mut u, _) = sim(unsup);
        let ru = u.serve_timed(&st).unwrap();
        let fu = ru.faults.as_ref().expect("fault accounting");
        assert_eq!(fu.retries, 0, "no supervision, no retries");
        assert!(
            ru.dropped.iter().any(|d| d.reason == DropReason::RetryBudgetExhausted),
            "unsupervised transient losses drop with an exhausted (zero) budget"
        );
        assert!(rs.served.len() > ru.served.len(), "supervision must out-serve ablation");
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let cfg = SimConfig {
            workers: 3,
            queue_capacity: 32,
            drop_policy: DropPolicy::DeadlineAware,
            batch: BatchPolicy::new(4, 2.0),
            routing: RoutingPolicy::CacheAffinity,
            adaptive: None,
            tenants: None,
            faults: Some(
                FaultOptions::default()
                    .with_crash_mtbf_ms(400.0)
                    .with_crash_outage_ms(60.0)
                    .with_straggler_mtbf_ms(300.0)
                    .with_straggler_duration_ms(50.0)
                    .with_straggler_factor(3.0)
                    .with_transient_rate(0.05),
            ),
        };
        let (mut a, space) = sim(cfg);
        let (mut b, _) = sim(cfg);
        let st = stream(&space, 250, 180.0, 17);
        assert_eq!(a.serve_timed(&st).unwrap(), b.serve_timed(&st).unwrap());
    }
}
