//! Deterministic fault injection for the serving simulator.
//!
//! [`FaultOptions`] seeds a per-replica fault plan — everything is drawn
//! from [`sushi_tensor::DetRng`] streams derived from one seed, so a
//! `(stream, config, seed)` triple replays the exact same crashes,
//! straggler episodes, and transient errors on every platform:
//!
//! * **Crash** — a replica fail-stops at a drawn instant (enacted at the
//!   next batch boundary: an in-flight batch completes, then the replica
//!   dies), losing its Persistent-Buffer resident SubGraph
//!   ([`crate::serving::executor::ExecutorPool::crash_worker`]). With a
//!   non-zero outage mean it restarts after a drawn outage window and
//!   re-enters cold (`Warming` under supervision); with a zero mean the
//!   crash is permanent.
//! * **Straggler** — a replica's service time is multiplied by
//!   [`FaultOptions::straggler_factor`] over a drawn episode window.
//! * **Transient** — a dispatched batch fails with a retryable error after
//!   burning its service time; supervision
//!   ([`crate::serving::supervise::SuperviseOptions`]) re-admits the
//!   batch's queries with backoff, an unsupervised pool drops them.
//!
//! Replica health ([`ReplicaHealth`]) is a supervised-only state machine
//! `Healthy → Suspect → Quarantined → Warming → Healthy`, driven by
//! consecutive failures and straggler detection (per-replica EWMA service
//! time vs. the pool median). The serving loop never routes to a
//! `Quarantined` (or down) replica, and treats a `Warming` replica's cache
//! as cold until a re-install completes.
//!
//! When [`crate::serving::sim::SimConfig::faults`] is `None`, none of this
//! machinery runs — not even its RNG draws — so faultless runs stay
//! bit-identical to the pre-fault runtime.

use sushi_tensor::DetRng;

use crate::serving::executor::ExecutorPool;
use crate::serving::supervise::SuperviseOptions;

/// Fault-injection knobs. All processes are off by default; supervision
/// defaults to on, so enabling a fault process exercises the supervised
/// pool unless explicitly stripped with
/// [`FaultOptions::without_supervision`].
///
/// `#[non_exhaustive]`: construct via [`Default`] and adjust with the
/// `with_*` setters (or [`crate::engine::EngineBuilder::faults`]).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct FaultOptions {
    /// Seed for every fault-plan RNG stream (independent of the arrival
    /// and query seeds). Default `0xFA17`.
    pub seed: u64,
    /// Mean time between crashes per replica, ms (exponential inter-event
    /// times; `0.0` disables crashes). Default `0.0`.
    pub crash_mtbf_ms: f64,
    /// Mean outage before a crashed replica restarts, ms (`0.0` makes
    /// crashes permanent). Default `0.0`.
    pub crash_outage_ms: f64,
    /// Mean time between straggler episodes per replica, ms (`0.0`
    /// disables). Default `0.0`.
    pub straggler_mtbf_ms: f64,
    /// Mean straggler episode duration, ms. Default `0.0`.
    pub straggler_duration_ms: f64,
    /// Service-time multiplier during a straggler episode (`>= 1`).
    /// Default `1.0`.
    pub straggler_factor: f64,
    /// Probability that a dispatched batch fails with a retryable error,
    /// in `[0, 1)`. Default `0.0`.
    pub transient_rate: f64,
    /// Supervision (retry / hedge / quarantine) enacted by the serving
    /// loop; `None` leaves faults injected but unsupervised. Default
    /// `Some(SuperviseOptions::default())`.
    pub supervise: Option<SuperviseOptions>,
}

impl Default for FaultOptions {
    fn default() -> Self {
        Self {
            seed: 0xFA17,
            crash_mtbf_ms: 0.0,
            crash_outage_ms: 0.0,
            straggler_mtbf_ms: 0.0,
            straggler_duration_ms: 0.0,
            straggler_factor: 1.0,
            transient_rate: 0.0,
            supervise: Some(SuperviseOptions::default()),
        }
    }
}

impl FaultOptions {
    /// Sets the fault-plan seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-replica crash MTBF, ms (`0.0` disables crashes).
    #[must_use]
    pub fn with_crash_mtbf_ms(mut self, mtbf_ms: f64) -> Self {
        self.crash_mtbf_ms = mtbf_ms;
        self
    }

    /// Sets the mean restart outage, ms (`0.0` makes crashes permanent).
    #[must_use]
    pub fn with_crash_outage_ms(mut self, outage_ms: f64) -> Self {
        self.crash_outage_ms = outage_ms;
        self
    }

    /// Sets the straggler episode MTBF, ms (`0.0` disables).
    #[must_use]
    pub fn with_straggler_mtbf_ms(mut self, mtbf_ms: f64) -> Self {
        self.straggler_mtbf_ms = mtbf_ms;
        self
    }

    /// Sets the mean straggler episode duration, ms.
    #[must_use]
    pub fn with_straggler_duration_ms(mut self, duration_ms: f64) -> Self {
        self.straggler_duration_ms = duration_ms;
        self
    }

    /// Sets the straggler service-time multiplier (`>= 1`).
    #[must_use]
    pub fn with_straggler_factor(mut self, factor: f64) -> Self {
        self.straggler_factor = factor;
        self
    }

    /// Sets the per-batch transient failure probability, in `[0, 1)`.
    #[must_use]
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate;
        self
    }

    /// Sets (or disables, with `None`) supervision.
    #[must_use]
    pub fn with_supervise(mut self, supervise: Option<SuperviseOptions>) -> Self {
        self.supervise = supervise;
        self
    }

    /// The same fault plan with supervision stripped — the ablation
    /// baseline the supervised pool is measured against.
    #[must_use]
    pub fn without_supervision(mut self) -> Self {
        self.supervise = None;
        self
    }

    /// Validates the options.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("crash mtbf", self.crash_mtbf_ms),
            ("crash outage", self.crash_outage_ms),
            ("straggler mtbf", self.straggler_mtbf_ms),
            ("straggler duration", self.straggler_duration_ms),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("fault {name} must be finite and >= 0 ms, got {v}"));
            }
        }
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0 {
            return Err(format!(
                "straggler factor must be finite and >= 1, got {}",
                self.straggler_factor
            ));
        }
        if self.straggler_mtbf_ms > 0.0 && self.straggler_duration_ms <= 0.0 {
            return Err("straggler episodes need a positive mean duration".into());
        }
        if !self.transient_rate.is_finite() || !(0.0..1.0).contains(&self.transient_rate) {
            return Err(format!("transient rate must be in [0, 1), got {}", self.transient_rate));
        }
        if let Some(s) = &self.supervise {
            s.validate()?;
        }
        Ok(())
    }
}

/// Replica health as the supervisor sees it.
///
/// `Healthy → Suspect` on a first failure or straggler strike;
/// `Suspect → Quarantined` when consecutive failures or strikes cross
/// their thresholds; `Quarantined → Warming` after probation;
/// `Warming → Healthy` on the first clean completion (a failure while
/// warming re-quarantines). A crashed replica sits out via its up/down
/// state; it re-enters as `Warming` (cold cache) when it restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaHealth {
    /// In rotation, no strikes outstanding.
    #[default]
    Healthy,
    /// In rotation, but its last completion failed or straggled.
    Suspect,
    /// Out of rotation until probation expires.
    Quarantined,
    /// Back in rotation after quarantine or a restart; its cache is
    /// treated as cold until a re-install completes, and its first
    /// completion decides whether it returns to `Healthy`.
    Warming,
}

impl ReplicaHealth {
    /// Stable snake_case label for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReplicaHealth::Healthy => "healthy",
            ReplicaHealth::Suspect => "suspect",
            ReplicaHealth::Quarantined => "quarantined",
            ReplicaHealth::Warming => "warming",
        }
    }
}

/// What fault injection and supervision did over one run (in
/// [`crate::serving::sim::SimResult::faults`], `None` for a faultless
/// run).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSummary {
    /// Crashes enacted.
    pub crashes: usize,
    /// Per-replica downtime, ms (indexed by worker; still-down replicas
    /// are accounted up to the makespan).
    pub downtime_ms: Vec<f64>,
    /// Dispatched batches that failed with an injected transient error.
    pub transient_failures: usize,
    /// Queries re-admitted by the retry policy.
    pub retries: usize,
    /// Batches duplicated onto a backup replica.
    pub hedges: usize,
    /// Hedged batches where the backup finished first.
    pub hedges_won: usize,
    /// Transitions into [`ReplicaHealth::Quarantined`] (crash downtime is
    /// tracked separately in `downtime_ms`).
    pub quarantines: usize,
    /// Pending cache installs applied to a replica that had lost its PB
    /// state to a crash (re-packs, accounted separately from the
    /// pack-once install count).
    pub cache_reinstalls: usize,
}

impl FaultSummary {
    /// Total downtime across the pool, ms.
    #[must_use]
    pub fn total_downtime_ms(&self) -> f64 {
        self.downtime_ms.iter().sum()
    }
}

/// Exponential draw with mean `mean_ms`, floored away from zero so
/// back-to-back events can never stall the event loop.
fn exp_draw(rng: &mut DetRng, mean_ms: f64) -> f64 {
    let u = rng.next_f64();
    (-mean_ms * (1.0 - u).ln()).max(mean_ms * 1e-6)
}

/// Per-replica fault-plan state.
#[derive(Debug, Clone)]
struct ReplicaFaults {
    crash_rng: DetRng,
    straggle_rng: DetRng,
    /// Whether the replica is up (dispatchable, health permitting).
    up: bool,
    /// Next drawn crash instant (`INFINITY` when crashes are off).
    next_crash_ms: f64,
    /// Restart instant while down (`INFINITY` = permanent).
    down_until_ms: f64,
    /// When the current outage began (accounting).
    down_since_ms: f64,
    /// Next drawn straggler-episode start (`INFINITY` when off).
    next_straggle_ms: f64,
    /// End of the active straggler episode (`NEG_INFINITY` when idle).
    straggle_until_ms: f64,
    /// Supervised health state.
    health: ReplicaHealth,
    /// Probation end while quarantined.
    quarantine_until_ms: f64,
    /// Consecutive failed completions.
    consecutive_failures: u32,
    /// Consecutive straggling completions.
    straggler_strikes: u32,
    /// EWMA of per-batch service time, ms (`None` until the first
    /// completion).
    ewma_service_ms: Option<f64>,
}

/// Run state enacting a [`FaultOptions`] plan over an [`ExecutorPool`].
/// Built fresh per [`crate::serving::sim::ServingSim::run`] call, so every
/// run replays the identical plan.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    opts: FaultOptions,
    replicas: Vec<ReplicaFaults>,
    transient_rng: DetRng,
    pub(crate) summary: FaultSummary,
}

impl FaultRuntime {
    pub(crate) fn new(opts: FaultOptions, workers: usize) -> Self {
        let replicas = (0..workers as u64)
            .map(|w| {
                let mut crash_rng = DetRng::new(opts.seed ^ (w.wrapping_mul(0x9E37_79B9) | 1));
                let mut straggle_rng =
                    DetRng::new(opts.seed ^ 0x5742_6717 ^ (w.wrapping_mul(0x85EB_CA6B) | 1));
                let next_crash_ms = if opts.crash_mtbf_ms > 0.0 {
                    exp_draw(&mut crash_rng, opts.crash_mtbf_ms)
                } else {
                    f64::INFINITY
                };
                let next_straggle_ms = if opts.straggler_mtbf_ms > 0.0 {
                    exp_draw(&mut straggle_rng, opts.straggler_mtbf_ms)
                } else {
                    f64::INFINITY
                };
                ReplicaFaults {
                    crash_rng,
                    straggle_rng,
                    up: true,
                    next_crash_ms,
                    down_until_ms: f64::INFINITY,
                    down_since_ms: 0.0,
                    next_straggle_ms,
                    straggle_until_ms: f64::NEG_INFINITY,
                    health: ReplicaHealth::Healthy,
                    quarantine_until_ms: f64::NEG_INFINITY,
                    consecutive_failures: 0,
                    straggler_strikes: 0,
                    ewma_service_ms: None,
                }
            })
            .collect();
        Self {
            opts,
            replicas,
            transient_rng: DetRng::new(opts.seed ^ 0x7417_5EED),
            summary: FaultSummary { downtime_ms: vec![0.0; workers], ..FaultSummary::default() },
        }
    }

    pub(crate) fn supervise(&self) -> Option<&SuperviseOptions> {
        self.opts.supervise.as_ref()
    }

    /// Enacts every fault event due at or before `now_ms`: crashes (at
    /// batch boundaries — an in-flight batch completes first), restarts,
    /// straggler episode starts/ends, and quarantine expiries. Call at the
    /// top of every event-loop step, before admissions and dispatch.
    pub(crate) fn advance(&mut self, now_ms: f64, pool: &mut ExecutorPool) {
        for w in 0..self.replicas.len() {
            // Crash / restart catch-up.
            loop {
                let r = &mut self.replicas[w];
                if !r.up {
                    if now_ms < r.down_until_ms {
                        break;
                    }
                    // Restart: account the outage, come back cold.
                    self.summary.downtime_ms[w] += r.down_until_ms - r.down_since_ms;
                    r.up = true;
                    if self.opts.supervise.is_some() {
                        r.health = ReplicaHealth::Warming;
                        r.consecutive_failures = 0;
                        r.straggler_strikes = 0;
                    }
                    r.next_crash_ms =
                        r.down_until_ms + exp_draw(&mut r.crash_rng, self.opts.crash_mtbf_ms);
                    r.down_until_ms = f64::INFINITY;
                } else if now_ms >= r.next_crash_ms && pool.busy_until_ms(w) <= now_ms {
                    // Fail-stop at the batch boundary: the replica dies at
                    // its drawn instant, or when its in-flight batch
                    // completed — whichever is later.
                    let down_from = r.next_crash_ms.max(pool.busy_until_ms(w));
                    r.up = false;
                    r.down_since_ms = down_from;
                    r.down_until_ms = if self.opts.crash_outage_ms > 0.0 {
                        down_from + exp_draw(&mut r.crash_rng, self.opts.crash_outage_ms)
                    } else {
                        f64::INFINITY
                    };
                    self.summary.crashes += 1;
                    pool.crash_worker(w);
                } else {
                    break;
                }
            }
            // Straggler episode catch-up.
            loop {
                let r = &mut self.replicas[w];
                if r.straggle_until_ms > f64::NEG_INFINITY && now_ms >= r.straggle_until_ms {
                    pool.set_service_multiplier(w, 1.0);
                    r.straggle_until_ms = f64::NEG_INFINITY;
                } else if r.straggle_until_ms == f64::NEG_INFINITY && now_ms >= r.next_straggle_ms {
                    let dur = exp_draw(&mut r.straggle_rng, self.opts.straggler_duration_ms);
                    r.straggle_until_ms = r.next_straggle_ms + dur;
                    r.next_straggle_ms = r.straggle_until_ms
                        + exp_draw(&mut r.straggle_rng, self.opts.straggler_mtbf_ms);
                    pool.set_service_multiplier(w, self.opts.straggler_factor);
                } else {
                    break;
                }
            }
            // Quarantine expiry: probation served, re-enter warming.
            let r = &mut self.replicas[w];
            if r.up && r.health == ReplicaHealth::Quarantined && now_ms >= r.quarantine_until_ms {
                r.health = ReplicaHealth::Warming;
                r.consecutive_failures = 0;
                r.straggler_strikes = 0;
            }
        }
    }

    /// Whether the serving loop may route a batch to replica `w`.
    pub(crate) fn dispatchable(&self, w: usize) -> bool {
        let r = &self.replicas[w];
        r.up && r.health != ReplicaHealth::Quarantined
    }

    /// Whether replica `w`'s resident cache may count as warm for
    /// cache-affinity routing (a `Warming` replica is treated cold until
    /// its re-install completes).
    pub(crate) fn cache_warm(&self, w: usize) -> bool {
        self.dispatchable(w) && self.replicas[w].health != ReplicaHealth::Warming
    }

    /// Replica `w`'s health state.
    #[cfg(test)]
    pub(crate) fn health(&self, w: usize) -> ReplicaHealth {
        self.replicas[w].health
    }

    /// Fraction of the pool that is down or quarantined — the capacity
    /// term of the adaptive pressure signal (`Warming` replicas count as
    /// available).
    pub(crate) fn unavailable_frac(&self) -> f64 {
        let n = self.replicas.len();
        let out = (0..n).filter(|&w| !self.dispatchable(w)).count();
        out as f64 / n.max(1) as f64
    }

    /// When replica `w` can next accept a batch, given its executor clock:
    /// its busy-until while dispatchable, its restart (or never, if the
    /// crash is permanent) while down, and its probation end while
    /// quarantined.
    pub(crate) fn release_ms(&self, w: usize, busy_until_ms: f64) -> f64 {
        let r = &self.replicas[w];
        if !r.up {
            return r.down_until_ms;
        }
        if r.health == ReplicaHealth::Quarantined {
            return r.quarantine_until_ms.max(busy_until_ms);
        }
        busy_until_ms
    }

    /// Rolls the per-batch transient-failure coin (one draw per primary
    /// dispatch, in dispatch order — deterministic).
    pub(crate) fn roll_transient(&mut self) -> bool {
        if self.opts.transient_rate <= 0.0 {
            return false;
        }
        let failed = self.transient_rng.next_f64() < self.opts.transient_rate;
        if failed {
            self.summary.transient_failures += 1;
        }
        failed
    }

    /// Records a failed completion on replica `w` at `at_ms` and steps the
    /// health machine (supervised runs only).
    pub(crate) fn note_failure(&mut self, w: usize, at_ms: f64) {
        let Some(sup) = self.opts.supervise else { return };
        let r = &mut self.replicas[w];
        r.consecutive_failures += 1;
        if r.health == ReplicaHealth::Warming
            || r.consecutive_failures >= sup.quarantine.consecutive_failures
        {
            Self::quarantine_replica(r, at_ms, sup.quarantine.probation_ms, &mut self.summary);
        } else {
            r.health = ReplicaHealth::Suspect;
        }
    }

    /// Records a successful completion of `service_ms` on replica `w` at
    /// `at_ms`: feeds the straggler detector (EWMA vs. pool median) and
    /// steps the health machine (supervised runs only).
    pub(crate) fn note_success(&mut self, w: usize, service_ms: f64, at_ms: f64) {
        let Some(sup) = self.opts.supervise else { return };
        let alpha = sup.quarantine.ewma_alpha;
        {
            let r = &mut self.replicas[w];
            r.consecutive_failures = 0;
            r.ewma_service_ms = Some(match r.ewma_service_ms {
                None => service_ms,
                Some(prev) => alpha * service_ms + (1.0 - alpha) * prev,
            });
        }
        let median = self.pool_median_service_ms();
        let r = &mut self.replicas[w];
        let straggling = median.is_some_and(|m| {
            m > 0.0 && r.ewma_service_ms.unwrap_or(0.0) > sup.quarantine.straggler_ratio * m
        });
        if straggling {
            r.straggler_strikes += 1;
            if r.straggler_strikes >= sup.quarantine.straggler_strikes {
                Self::quarantine_replica(r, at_ms, sup.quarantine.probation_ms, &mut self.summary);
                // A quarantined straggler re-enters with a clean slate:
                // its stale EWMA would instantly re-strike it otherwise.
                r.ewma_service_ms = None;
            } else if r.health == ReplicaHealth::Healthy {
                r.health = ReplicaHealth::Suspect;
            }
        } else {
            r.straggler_strikes = 0;
            if matches!(r.health, ReplicaHealth::Suspect | ReplicaHealth::Warming) {
                r.health = ReplicaHealth::Healthy;
            }
        }
    }

    fn quarantine_replica(
        r: &mut ReplicaFaults,
        at_ms: f64,
        probation_ms: f64,
        summary: &mut FaultSummary,
    ) {
        r.health = ReplicaHealth::Quarantined;
        r.quarantine_until_ms = at_ms + probation_ms;
        r.straggler_strikes = 0;
        summary.quarantines += 1;
    }

    /// Median EWMA service time over up replicas with at least one sample
    /// (`None` until two replicas have history — one sample is its own
    /// median, which would self-diagnose the only active replica).
    fn pool_median_service_ms(&self) -> Option<f64> {
        let mut v: Vec<f64> =
            self.replicas.iter().filter(|r| r.up).filter_map(|r| r.ewma_service_ms).collect();
        if v.len() < 2 {
            return None;
        }
        v.sort_by(f64::total_cmp);
        Some(v[v.len() / 2])
    }

    /// Finalizes accounting at the simulation horizon and returns the
    /// run's fault summary (replicas still down at `makespan_ms` are
    /// charged up to it).
    pub(crate) fn finish(mut self, makespan_ms: f64) -> FaultSummary {
        for (w, r) in self.replicas.iter().enumerate() {
            if !r.up && makespan_ms > r.down_since_ms {
                self.summary.downtime_ms[w] += makespan_ms - r.down_since_ms;
            }
        }
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_accel::config::zcu104;

    fn chaosy() -> FaultOptions {
        FaultOptions::default()
            .with_crash_mtbf_ms(100.0)
            .with_crash_outage_ms(50.0)
            .with_straggler_mtbf_ms(80.0)
            .with_straggler_duration_ms(40.0)
            .with_straggler_factor(3.0)
            .with_transient_rate(0.1)
    }

    #[test]
    fn defaults_validate_and_inject_nothing() {
        let opts = FaultOptions::default();
        assert_eq!(opts.validate(), Ok(()));
        let mut rt = FaultRuntime::new(opts, 2);
        let mut pool = ExecutorPool::new(&zcu104(), 2);
        rt.advance(1e6, &mut pool);
        assert!(rt.dispatchable(0) && rt.dispatchable(1));
        assert!(!rt.roll_transient());
        let s = rt.finish(1e6);
        assert_eq!(s, FaultSummary { downtime_ms: vec![0.0, 0.0], ..FaultSummary::default() });
    }

    #[test]
    fn invalid_knobs_are_rejected_with_context() {
        assert!(chaosy().with_crash_mtbf_ms(-1.0).validate().unwrap_err().contains("crash mtbf"));
        assert!(chaosy().with_straggler_factor(0.5).validate().unwrap_err().contains("factor"));
        assert!(chaosy().with_transient_rate(1.0).validate().unwrap_err().contains("transient"));
        assert!(FaultOptions::default()
            .with_straggler_mtbf_ms(10.0)
            .validate()
            .unwrap_err()
            .contains("duration"));
        let bad_sup = chaosy()
            .with_supervise(Some(SuperviseOptions::default().with_retry(
                crate::serving::supervise::RetryPolicy::default().with_max_attempts(0),
            )));
        assert!(bad_sup.validate().is_err());
    }

    #[test]
    fn fault_plan_is_deterministic_in_its_seed() {
        let opts = chaosy();
        let mut a = FaultRuntime::new(opts, 3);
        let mut b = FaultRuntime::new(opts, 3);
        let mut pa = ExecutorPool::new(&zcu104(), 3);
        let mut pb = ExecutorPool::new(&zcu104(), 3);
        for step in 0..200 {
            let now = step as f64 * 7.0;
            a.advance(now, &mut pa);
            b.advance(now, &mut pb);
            for w in 0..3 {
                assert_eq!(a.dispatchable(w), b.dispatchable(w), "t={now} w={w}");
                assert_eq!(a.health(w), b.health(w));
            }
            assert_eq!(a.roll_transient(), b.roll_transient());
        }
        assert_eq!(a.finish(1400.0), b.finish(1400.0));
        // A different seed yields a different plan.
        let mut c = FaultRuntime::new(opts.with_seed(0xDEAD), 3);
        let mut pc = ExecutorPool::new(&zcu104(), 3);
        let mut diverged = false;
        let mut a2 = FaultRuntime::new(opts, 3);
        let mut pa2 = ExecutorPool::new(&zcu104(), 3);
        for step in 0..200 {
            let now = step as f64 * 7.0;
            c.advance(now, &mut pc);
            a2.advance(now, &mut pa2);
            diverged |= (0..3).any(|w| c.dispatchable(w) != a2.dispatchable(w));
        }
        assert!(diverged, "re-seeding the plan must change it");
    }

    #[test]
    fn crashes_enact_downtime_and_permanent_without_outage() {
        let opts = FaultOptions::default().with_crash_mtbf_ms(20.0).with_crash_outage_ms(30.0);
        let mut rt = FaultRuntime::new(opts, 1);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let mut saw_down = false;
        let mut saw_restart = false;
        for step in 0..500 {
            rt.advance(step as f64, &mut pool);
            if !rt.dispatchable(0) {
                saw_down = true;
            } else if saw_down {
                saw_restart = true;
            }
        }
        assert!(saw_down && saw_restart, "crash/restart cycle should occur within 500 ms");
        let s = rt.finish(500.0);
        assert!(s.crashes >= 1);
        assert!(s.downtime_ms[0] > 0.0);

        // Zero outage mean: the first crash is forever.
        let mut perm = FaultRuntime::new(FaultOptions::default().with_crash_mtbf_ms(20.0), 1);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        for step in 0..500 {
            perm.advance(step as f64, &mut pool);
        }
        assert!(!perm.dispatchable(0));
        assert_eq!(perm.release_ms(0, 0.0), f64::INFINITY);
        let s = perm.finish(500.0);
        assert_eq!(s.crashes, 1);
        assert!(s.downtime_ms[0] > 0.0 && s.downtime_ms[0] <= 500.0);
    }

    #[test]
    fn crash_waits_for_the_inflight_batch() {
        let opts = FaultOptions::default().with_crash_mtbf_ms(10.0);
        let mut rt = FaultRuntime::new(opts, 1);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        // Find the drawn crash instant by probing a parallel runtime.
        let mut probe = FaultRuntime::new(opts, 1);
        let mut probe_pool = ExecutorPool::new(&zcu104(), 1);
        let mut crash_t = 0.0;
        for step in 0..10_000 {
            let now = step as f64 * 0.01;
            probe.advance(now, &mut probe_pool);
            if !probe.dispatchable(0) {
                crash_t = now;
                break;
            }
        }
        assert!(crash_t > 0.0, "crash should fire");
        // Simulate a batch in flight across the crash instant: the replica
        // survives until the batch boundary.
        let busy_until = crash_t + 5.0;
        pool.force_busy_until(0, busy_until);
        rt.advance(crash_t + 1.0, &mut pool);
        assert!(rt.dispatchable(0), "fail-stop must wait for the batch boundary");
        rt.advance(busy_until, &mut pool);
        assert!(!rt.dispatchable(0), "replica dies once the batch completes");
    }

    #[test]
    fn straggler_episodes_set_and_clear_the_multiplier() {
        let opts = FaultOptions::default()
            .with_straggler_mtbf_ms(30.0)
            .with_straggler_duration_ms(20.0)
            .with_straggler_factor(4.0);
        let mut rt = FaultRuntime::new(opts, 1);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let (mut saw_slow, mut saw_recover) = (false, false);
        for step in 0..1000 {
            rt.advance(step as f64, &mut pool);
            if pool.service_multiplier(0) > 1.0 {
                saw_slow = true;
            } else if saw_slow {
                saw_recover = true;
            }
        }
        assert!(saw_slow && saw_recover, "episode should start and end within 1000 ms");
    }

    #[test]
    fn health_machine_walks_healthy_suspect_quarantined_warming_healthy() {
        // No injected crashes or stragglers: the walk below drives the
        // machine purely through note_failure/note_success, and a random
        // crash would pin a replica down (quarantine expiry requires an
        // up replica).
        let opts = FaultOptions::default().with_transient_rate(0.1);
        let mut rt = FaultRuntime::new(opts, 2);
        let mut pool = ExecutorPool::new(&zcu104(), 2);
        assert_eq!(rt.health(0), ReplicaHealth::Healthy);
        rt.note_failure(0, 10.0);
        assert_eq!(rt.health(0), ReplicaHealth::Suspect);
        rt.note_failure(0, 12.0); // consecutive_failures hits the default threshold (2)
        assert_eq!(rt.health(0), ReplicaHealth::Quarantined);
        assert!(!rt.dispatchable(0));
        assert_eq!(rt.summary.quarantines, 1);
        // Probation (default 50 ms) expires → Warming, treated cold.
        rt.advance(12.0 + 50.0, &mut pool);
        assert_eq!(rt.health(0), ReplicaHealth::Warming);
        assert!(rt.dispatchable(0) && !rt.cache_warm(0));
        // A clean completion returns it to Healthy.
        rt.note_success(0, 5.0, 70.0);
        assert_eq!(rt.health(0), ReplicaHealth::Healthy);
        assert!(rt.cache_warm(0));
        // A failure while warming re-quarantines immediately.
        rt.note_failure(1, 5.0);
        rt.note_failure(1, 6.0);
        rt.advance(6.0 + 50.0, &mut pool);
        assert_eq!(rt.health(1), ReplicaHealth::Warming);
        rt.note_failure(1, 60.0);
        assert_eq!(rt.health(1), ReplicaHealth::Quarantined);
    }

    #[test]
    fn straggler_detection_quarantines_the_slow_replica() {
        let mut rt = FaultRuntime::new(chaosy(), 3);
        // Replicas 1 and 2 serve at ~5 ms; replica 0 at 10x the median.
        for round in 0..5 {
            let t = round as f64 * 10.0;
            rt.note_success(1, 5.0, t);
            rt.note_success(2, 5.0, t);
            rt.note_success(0, 50.0, t);
        }
        assert_eq!(rt.health(0), ReplicaHealth::Quarantined, "EWMA 10x the median must strike out");
        assert!(rt.summary.quarantines >= 1);
        assert_eq!(rt.health(1), ReplicaHealth::Healthy);
        assert_eq!(rt.health(2), ReplicaHealth::Healthy);
    }

    #[test]
    fn unsupervised_runs_have_no_health_machine() {
        let mut rt = FaultRuntime::new(chaosy().without_supervision(), 2);
        for _ in 0..10 {
            rt.note_failure(0, 1.0);
            rt.note_success(1, 100.0, 1.0);
            rt.note_success(0, 1.0, 1.0);
        }
        assert_eq!(rt.health(0), ReplicaHealth::Healthy);
        assert_eq!(rt.health(1), ReplicaHealth::Healthy);
        assert_eq!(rt.summary.quarantines, 0);
    }

    #[test]
    fn unavailable_frac_counts_down_and_quarantined() {
        let mut rt = FaultRuntime::new(chaosy(), 4);
        assert_eq!(rt.unavailable_frac(), 0.0);
        rt.note_failure(0, 1.0);
        rt.note_failure(0, 2.0);
        assert_eq!(rt.unavailable_frac(), 0.25);
    }
}
