//! Supervision policies for a fault-injected executor pool: retry with
//! deterministic exponential backoff, p99-triggered request hedging, and
//! failure/straggler-driven replica quarantine.
//!
//! These knobs only *describe* supervision; the serving loop
//! ([`crate::serving::sim::ServingSim`]) enacts them when
//! [`crate::serving::fault::FaultOptions::supervise`] is set. Everything
//! here is plain data — `Copy`, comparable, and deterministic — so a
//! `(stream, config, seed)` triple still reproduces bit-identical results
//! with supervision enabled.
//!
//! * [`RetryPolicy`] — a batch that fails with a transient error is
//!   re-admitted after an exponential backoff with deterministic jitter.
//!   Retries draw from *per-tier budgets* so a flood of best-effort
//!   retries can never starve latency-critical capacity, and a retry whose
//!   earliest restart already overruns its deadline gives up immediately
//!   under [`crate::serving::queue::DropPolicy::DeadlineAware`].
//! * [`HedgePolicy`] — when a dispatched batch's projected completion
//!   exceeds a multiple of the recent p99 service time, the loop
//!   duplicates it onto a second warm replica; the first completion wins
//!   and the loser is cancelled. Bit-identical logits across replicas
//!   make the race safe: both outcomes are the same answer.
//! * [`QuarantinePolicy`] — drives the
//!   [`crate::serving::fault::ReplicaHealth`] state machine: consecutive
//!   transient failures or repeated straggler strikes (per-replica EWMA
//!   service time vs. the pool median) quarantine a replica, which
//!   re-enters through a `Warming` probation before it counts as healthy
//!   again.

use sushi_sched::TIER_COUNT;

/// Retry policy for transiently-failed batches: exponential backoff with
/// deterministic jitter, capped attempts, and per-tier retry budgets.
///
/// `#[non_exhaustive]`: construct via [`Default`] and adjust with the
/// `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Maximum total attempts per query, the initial dispatch included
    /// (so `1` disables retries). Default `3`.
    pub max_attempts: u32,
    /// Backoff before attempt `n + 1` is `base_backoff_ms * 2^(n-1)`,
    /// jittered. Default `1.0`.
    pub base_backoff_ms: f64,
    /// Deterministic jitter: each backoff is scaled by a seeded factor in
    /// `[1 - jitter_frac, 1 + jitter_frac]`. Default `0.25`.
    pub jitter_frac: f64,
    /// Run-long retry budget per tenant tier, indexed by
    /// [`sushi_sched::TenantTier::index`]. A tier whose budget is spent
    /// drops further failed queries instead of retrying, so best-effort
    /// retries never starve latency-critical capacity. Default
    /// `[usize::MAX, 256, 64]`.
    pub tier_budgets: [usize; TIER_COUNT],
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ms: 1.0,
            jitter_frac: 0.25,
            tier_budgets: [usize::MAX, 256, 64],
        }
    }
}

impl RetryPolicy {
    /// Sets the maximum total attempts per query (initial dispatch
    /// included).
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the base backoff, ms.
    #[must_use]
    pub fn with_base_backoff_ms(mut self, base_backoff_ms: f64) -> Self {
        self.base_backoff_ms = base_backoff_ms;
        self
    }

    /// Sets the jitter fraction.
    #[must_use]
    pub fn with_jitter_frac(mut self, jitter_frac: f64) -> Self {
        self.jitter_frac = jitter_frac;
        self
    }

    /// Sets the per-tier retry budgets (indexed by
    /// [`sushi_sched::TenantTier::index`]).
    #[must_use]
    pub fn with_tier_budgets(mut self, tier_budgets: [usize; TIER_COUNT]) -> Self {
        self.tier_budgets = tier_budgets;
        self
    }

    /// Backoff before attempt `attempt + 1` (so `attempt >= 1`), ms:
    /// exponential in the attempt number with deterministic jitter keyed
    /// by `salt` (the serving loop salts with the query identity, so every
    /// query jitters differently but reproducibly).
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32, salt: u64) -> f64 {
        debug_assert!(attempt >= 1, "backoff follows a completed attempt");
        let exp = 2.0f64.powi(attempt.saturating_sub(1).min(30) as i32);
        self.base_backoff_ms * exp * jitter_factor(salt, self.jitter_frac)
    }

    /// Validates the policy.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry max_attempts must be >= 1 (1 disables retries)".into());
        }
        if !self.base_backoff_ms.is_finite() || self.base_backoff_ms < 0.0 {
            return Err(format!(
                "retry base backoff must be finite and >= 0 ms, got {}",
                self.base_backoff_ms
            ));
        }
        if !self.jitter_frac.is_finite() || !(0.0..1.0).contains(&self.jitter_frac) {
            return Err(format!(
                "retry jitter fraction must be in [0, 1), got {}",
                self.jitter_frac
            ));
        }
        Ok(())
    }
}

/// Hedging policy: duplicate a slow head-of-line batch onto a second warm
/// replica and take whichever completes first.
///
/// `#[non_exhaustive]`: construct via [`Default`] and adjust with the
/// `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct HedgePolicy {
    /// Hedge when the batch's projected service time exceeds this multiple
    /// of the recent p99 service time. Default `2.0`.
    pub p99_factor: f64,
    /// Never hedge a batch projected to finish faster than this, ms (keeps
    /// hedging off the fast path even when the p99 window is tiny).
    /// Default `1.0`.
    pub min_threshold_ms: f64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        Self { p99_factor: 2.0, min_threshold_ms: 1.0 }
    }
}

impl HedgePolicy {
    /// Sets the p99 multiple that triggers a hedge.
    #[must_use]
    pub fn with_p99_factor(mut self, p99_factor: f64) -> Self {
        self.p99_factor = p99_factor;
        self
    }

    /// Sets the minimum projected service time worth hedging, ms.
    #[must_use]
    pub fn with_min_threshold_ms(mut self, min_threshold_ms: f64) -> Self {
        self.min_threshold_ms = min_threshold_ms;
        self
    }

    /// Validates the policy.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !self.p99_factor.is_finite() || self.p99_factor < 1.0 {
            return Err(format!(
                "hedge p99 factor must be finite and >= 1, got {}",
                self.p99_factor
            ));
        }
        if !self.min_threshold_ms.is_finite() || self.min_threshold_ms < 0.0 {
            return Err(format!(
                "hedge threshold must be finite and >= 0 ms, got {}",
                self.min_threshold_ms
            ));
        }
        Ok(())
    }
}

/// Quarantine policy: when failures or straggling push a replica out of
/// rotation, and how it earns its way back.
///
/// `#[non_exhaustive]`: construct via [`Default`] and adjust with the
/// `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct QuarantinePolicy {
    /// Consecutive batch failures that quarantine a replica. Default `2`.
    pub consecutive_failures: u32,
    /// A completion counts as a straggler strike when the replica's EWMA
    /// service time exceeds this multiple of the pool median. Default
    /// `2.5`.
    pub straggler_ratio: f64,
    /// Straggler strikes that quarantine a replica. Default `3`.
    pub straggler_strikes: u32,
    /// How long a quarantined replica sits out before re-entering (as
    /// `Warming`), ms. Default `50.0`.
    pub probation_ms: f64,
    /// EWMA smoothing factor for per-replica service time, in `(0, 1]`.
    /// Default `0.3`.
    pub ewma_alpha: f64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        Self {
            consecutive_failures: 2,
            straggler_ratio: 2.5,
            straggler_strikes: 3,
            probation_ms: 50.0,
            ewma_alpha: 0.3,
        }
    }
}

impl QuarantinePolicy {
    /// Sets the consecutive-failure quarantine threshold.
    #[must_use]
    pub fn with_consecutive_failures(mut self, consecutive_failures: u32) -> Self {
        self.consecutive_failures = consecutive_failures;
        self
    }

    /// Sets the straggler EWMA/median ratio.
    #[must_use]
    pub fn with_straggler_ratio(mut self, straggler_ratio: f64) -> Self {
        self.straggler_ratio = straggler_ratio;
        self
    }

    /// Sets the straggler strike count that quarantines.
    #[must_use]
    pub fn with_straggler_strikes(mut self, straggler_strikes: u32) -> Self {
        self.straggler_strikes = straggler_strikes;
        self
    }

    /// Sets the quarantine probation window, ms.
    #[must_use]
    pub fn with_probation_ms(mut self, probation_ms: f64) -> Self {
        self.probation_ms = probation_ms;
        self
    }

    /// Sets the service-time EWMA smoothing factor.
    #[must_use]
    pub fn with_ewma_alpha(mut self, ewma_alpha: f64) -> Self {
        self.ewma_alpha = ewma_alpha;
        self
    }

    /// Validates the policy.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.consecutive_failures == 0 {
            return Err("quarantine consecutive_failures must be >= 1".into());
        }
        if !self.straggler_ratio.is_finite() || self.straggler_ratio <= 1.0 {
            return Err(format!(
                "straggler ratio must be finite and > 1, got {}",
                self.straggler_ratio
            ));
        }
        if self.straggler_strikes == 0 {
            return Err("straggler_strikes must be >= 1".into());
        }
        if !self.probation_ms.is_finite() || self.probation_ms < 0.0 {
            return Err(format!("probation must be finite and >= 0 ms, got {}", self.probation_ms));
        }
        if !self.ewma_alpha.is_finite() || !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(format!("ewma alpha must be in (0, 1], got {}", self.ewma_alpha));
        }
        Ok(())
    }
}

/// The full supervision bundle the serving loop enacts when
/// [`crate::serving::fault::FaultOptions::supervise`] is set.
///
/// `#[non_exhaustive]`: construct via [`Default`] and adjust with the
/// `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SuperviseOptions {
    /// Retry policy for transiently-failed batches.
    pub retry: RetryPolicy,
    /// Optional tail-latency hedging (`None` disables; default
    /// `Some(HedgePolicy::default())`).
    pub hedge: Option<HedgePolicy>,
    /// Replica health / quarantine policy.
    pub quarantine: QuarantinePolicy,
}

impl Default for SuperviseOptions {
    fn default() -> Self {
        Self {
            retry: RetryPolicy::default(),
            hedge: Some(HedgePolicy::default()),
            quarantine: QuarantinePolicy::default(),
        }
    }
}

impl SuperviseOptions {
    /// Sets the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables (`Some`) or disables (`None`) hedging.
    #[must_use]
    pub fn with_hedge(mut self, hedge: Option<HedgePolicy>) -> Self {
        self.hedge = hedge;
        self
    }

    /// Sets the quarantine policy.
    #[must_use]
    pub fn with_quarantine(mut self, quarantine: QuarantinePolicy) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Validates every contained policy.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.retry.validate()?;
        if let Some(h) = &self.hedge {
            h.validate()?;
        }
        self.quarantine.validate()
    }
}

/// Deterministic jitter factor in `[1 - frac, 1 + frac]`, keyed by `salt`
/// (SplitMix64 finalizer — the same mix behind
/// [`sushi_tensor::DetRng`], so one salt yields one factor on every
/// platform).
#[must_use]
pub fn jitter_factor(salt: u64, frac: f64) -> f64 {
    if frac <= 0.0 {
        return 1.0;
    }
    let mut z = salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 - frac + 2.0 * frac * unit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(SuperviseOptions::default().validate(), Ok(()));
        assert_eq!(RetryPolicy::default().validate(), Ok(()));
        assert_eq!(HedgePolicy::default().validate(), Ok(()));
        assert_eq!(QuarantinePolicy::default().validate(), Ok(()));
    }

    #[test]
    fn invalid_knobs_are_rejected_with_context() {
        assert!(RetryPolicy::default()
            .with_max_attempts(0)
            .validate()
            .unwrap_err()
            .contains("max_attempts"));
        assert!(RetryPolicy::default()
            .with_base_backoff_ms(f64::NAN)
            .validate()
            .unwrap_err()
            .contains("backoff"));
        assert!(RetryPolicy::default()
            .with_jitter_frac(1.0)
            .validate()
            .unwrap_err()
            .contains("jitter"));
        assert!(HedgePolicy::default()
            .with_p99_factor(0.5)
            .validate()
            .unwrap_err()
            .contains("p99"));
        assert!(HedgePolicy::default()
            .with_min_threshold_ms(-1.0)
            .validate()
            .unwrap_err()
            .contains("threshold"));
        assert!(QuarantinePolicy::default()
            .with_straggler_ratio(1.0)
            .validate()
            .unwrap_err()
            .contains("ratio"));
        assert!(QuarantinePolicy::default()
            .with_probation_ms(f64::INFINITY)
            .validate()
            .unwrap_err()
            .contains("probation"));
        assert!(QuarantinePolicy::default()
            .with_ewma_alpha(0.0)
            .validate()
            .unwrap_err()
            .contains("alpha"));
        let bad = SuperviseOptions::default()
            .with_hedge(Some(HedgePolicy::default().with_p99_factor(0.0)));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn backoff_grows_exponentially_and_jitter_is_deterministic_and_bounded() {
        let pol = RetryPolicy::default().with_jitter_frac(0.0).with_base_backoff_ms(2.0);
        assert_eq!(pol.backoff_ms(1, 7), 2.0);
        assert_eq!(pol.backoff_ms(2, 7), 4.0);
        assert_eq!(pol.backoff_ms(3, 7), 8.0);
        let jit = RetryPolicy::default().with_base_backoff_ms(2.0); // jitter 0.25
        for salt in 0..64u64 {
            let b = jit.backoff_ms(1, salt);
            assert!((1.5..=2.5).contains(&b), "jittered backoff {b} escaped its band");
            assert_eq!(b, jit.backoff_ms(1, salt), "jitter must be pure in its salt");
        }
        // Distinct salts actually spread (not a constant function).
        assert_ne!(jit.backoff_ms(1, 1), jit.backoff_ms(1, 2));
    }

    #[test]
    fn jitter_factor_disabled_below_zero_frac() {
        assert_eq!(jitter_factor(123, 0.0), 1.0);
        assert_eq!(jitter_factor(123, -0.5), 1.0);
    }

    #[test]
    fn tier_budget_defaults_shield_latency_critical() {
        let pol = RetryPolicy::default();
        // Index order is LatencyCritical, Standard, BestEffort.
        assert!(pol.tier_budgets[0] > pol.tier_budgets[1]);
        assert!(pol.tier_budgets[1] > pol.tier_budgets[2]);
    }
}
