//! Multi-worker executor pool.
//!
//! Each worker owns an [`Accelerator`] replica (its own Persistent-Buffer
//! state) and a monotone `busy_until` clock; batches run to completion
//! without preemption. Scheduler cache decisions are broadcast to every
//! worker as a *pending install* and applied lazily at that worker's next
//! dispatch, so the PB swap cost lands on the batch that first benefits
//! from the new SubGraph — charging cache-swap time against the deadlines
//! of the queries actually in flight (stage B of Fig. 9a, now under load).
//!
//! The pool serves two execution styles:
//!
//! * **Timing** — [`ExecutorPool::dispatch`] advances simulated time via
//!   [`Accelerator::serve_batch`]; nothing numeric runs. Every `serve`
//!   experiment uses this mode.
//! * **Functional** — a [`FunctionalContext`] additionally executes the
//!   real int8 datapath ([`sushi_accel::functional::forward_batch_cached`])
//!   for each dispatched batch, under the context's
//!   [`sushi_tensor::KernelPolicy`], against per-SubNet pre-packed weight
//!   panels built once on first dispatch. Logits are policy-, batching- and
//!   packing-invariant (pinned by proptests), so this mode validates that
//!   the serving layer never changes *what* is computed, only *when*.

use std::collections::HashMap;

use sushi_accel::exec::{Accelerator, BatchReport};
use sushi_accel::functional::{act_quant, forward_batch_cached, FunctionalOutput, SubgraphCache};
use sushi_accel::AccelConfig;
use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{Arena, DetRng, Shape4, Tensor};
use sushi_wsnet::{SubGraph, SubNet, SuperNet, WeightStore};

use crate::serving::queue::QueuedQuery;

/// One simulated worker.
#[derive(Debug, Clone)]
struct Worker {
    accel: Accelerator,
    busy_until_ms: f64,
    pending_install: Option<SubGraph>,
}

/// What one dispatch did.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchReport {
    /// Worker index that executed the batch.
    pub worker: usize,
    /// Dispatch (service start) time, ms.
    pub start_ms: f64,
    /// Completion time of every query in the batch, ms.
    pub completion_ms: f64,
    /// The accelerator's batched timing/energy report.
    pub report: BatchReport,
}

/// A pool of accelerator workers with simulated availability clocks.
#[derive(Debug, Clone)]
pub struct ExecutorPool {
    workers: Vec<Worker>,
    cache_installs: usize,
    swap_ms: f64,
    batches: usize,
}

impl ExecutorPool {
    /// Creates `workers` accelerator replicas of `config`.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn new(config: &AccelConfig, workers: usize) -> Self {
        assert!(workers > 0, "executor pool needs at least one worker");
        let worker = Worker {
            accel: Accelerator::new(config.clone()),
            busy_until_ms: 0.0,
            pending_install: None,
        };
        Self { workers: vec![worker; workers], cache_installs: 0, swap_ms: 0.0, batches: 0 }
    }

    /// Number of workers.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Lowest-index worker free at `now_ms`, if any (deterministic tie
    /// break: index order).
    #[must_use]
    pub fn free_worker_at(&self, now_ms: f64) -> Option<usize> {
        self.workers.iter().position(|w| w.busy_until_ms <= now_ms)
    }

    /// Earliest time any worker becomes free.
    ///
    /// # Panics
    /// Never — the pool always has at least one worker.
    #[must_use]
    pub fn next_free_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_until_ms).fold(f64::INFINITY, f64::min)
    }

    /// Time the last worker finishes (the pool's drain point).
    #[must_use]
    pub fn drain_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_until_ms).fold(0.0, f64::max)
    }

    /// Broadcasts a cache decision: every worker installs `graph` before
    /// its next batch (the newest decision overwrites an unapplied one).
    pub fn broadcast_install(&mut self, graph: &SubGraph) {
        self.cache_installs += 1;
        for w in &mut self.workers {
            w.pending_install = Some(graph.clone());
        }
    }

    /// Runs `batch_size` same-SubNet queries on `worker`, applying any
    /// pending cache install first (its reload time is charged to this
    /// batch by the accelerator).
    ///
    /// # Panics
    /// Panics if the worker is still busy at `now_ms` or `batch_size == 0`.
    pub fn dispatch(
        &mut self,
        worker: usize,
        now_ms: f64,
        net: &SuperNet,
        subnet: &SubNet,
        batch_size: usize,
    ) -> DispatchReport {
        let w = &mut self.workers[worker];
        assert!(w.busy_until_ms <= now_ms, "dispatch to a busy worker");
        if let Some(graph) = w.pending_install.take() {
            let _ = w.accel.install_cache(net, graph);
        }
        let report = w.accel.serve_batch(net, subnet, batch_size);
        self.swap_ms += w.accel.config().cycles_to_ms(report.pb_reload_cycles);
        self.batches += 1;
        let completion_ms = now_ms + report.total_latency_ms;
        w.busy_until_ms = completion_ms;
        DispatchReport { worker, start_ms: now_ms, completion_ms, report }
    }

    /// Number of cache decisions broadcast so far.
    #[must_use]
    pub fn cache_installs(&self) -> usize {
        self.cache_installs
    }

    /// Total PB swap (reload) time actually charged to batches, ms.
    #[must_use]
    pub fn total_swap_ms(&self) -> f64 {
        self.swap_ms
    }

    /// Number of batches dispatched.
    #[must_use]
    pub fn batches(&self) -> usize {
        self.batches
    }
}

/// Real-datapath execution context for functional serving runs.
///
/// Synthesizes a deterministic input per query id and executes whole
/// batches through [`forward_batch_cached`] under the context's `DpeArray`
/// kernel policy. Intended for the toy zoo (full-size SuperNets take
/// seconds per forward); the timing simulation is identical either way.
///
/// The context is the serving worker's *subgraph-stationary* state: the
/// first batch served under a SubNet builds its [`SubgraphCache`] (sliced
/// weights + packed GEMM panels, counted by
/// [`sushi_tensor::ops::pack::pack_invocations`]); every later batch under
/// that SubNet reads the panels in place, and all kernel scratch lives in
/// one [`Arena`] reused across queries — the steady state allocates
/// nothing per query.
#[derive(Debug)]
pub struct FunctionalContext {
    dpe: sushi_accel::dpe::DpeArray,
    store: WeightStore,
    input_seed: u64,
    caches: HashMap<String, SubgraphCache>,
    arena: Arena,
}

impl FunctionalContext {
    /// Creates a context with synthesized weights for `net`.
    #[must_use]
    pub fn new(dpe: sushi_accel::dpe::DpeArray, net: &SuperNet, seed: u64) -> Self {
        Self {
            dpe,
            store: WeightStore::synthesize(net, seed),
            input_seed: seed ^ 0x1A7E,
            caches: HashMap::new(),
            arena: Arena::new(),
        }
    }

    /// Number of SubNets whose weights have been packed so far (each packed
    /// exactly once, on first dispatch).
    #[must_use]
    pub fn packed_subnets(&self) -> usize {
        self.caches.len()
    }

    /// The deterministic input tensor for a query id.
    #[must_use]
    pub fn input_for(&self, net: &SuperNet, query_id: u64) -> Tensor<i8> {
        let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
        let mut rng = DetRng::new(self.input_seed ^ query_id.wrapping_mul(0x9E37_79B9));
        let f = Tensor::from_vec(
            shape,
            (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect(),
        )
        .expect("shape matches");
        quantize_tensor(&f, act_quant())
    }

    /// Executes one dispatched batch on the real datapath, returning one
    /// output per query (input order). Packs the SubNet's weights on first
    /// use and serves every later batch from the pre-packed panels.
    ///
    /// # Panics
    /// Panics if the batch is empty or a layer fails to execute (zoo
    /// definitions are programmer-controlled).
    #[must_use]
    pub fn run_batch(
        &mut self,
        net: &SuperNet,
        subnet: &SubNet,
        batch: &[QueuedQuery],
    ) -> Vec<FunctionalOutput> {
        let inputs: Vec<Tensor<i8>> =
            batch.iter().map(|q| self.input_for(net, q.timed.query.id)).collect();
        let Self { dpe, store, caches, arena, .. } = self;
        let cache = caches.entry(subnet.name.clone()).or_insert_with(|| {
            SubgraphCache::build(net, store, &subnet.graph).expect("packable zoo weights")
        });
        if !cache.matches(&subnet.graph) {
            // Same name, different SubGraph (defensive): repack.
            *cache = SubgraphCache::build(net, store, &subnet.graph).expect("packable zoo weights");
        }
        forward_batch_cached(dpe, net, store, subnet, Some(cache), arena, &inputs)
            .expect("functional batch execution")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::TimedQuery;
    use sushi_accel::config::zcu104;
    use sushi_accel::dpe::DpeArray;
    use sushi_accel::functional::forward;
    use sushi_sched::Query;
    use sushi_wsnet::zoo;

    #[test]
    fn free_worker_selection_is_lowest_index() {
        let pool = ExecutorPool::new(&zcu104(), 3);
        assert_eq!(pool.free_worker_at(0.0), Some(0));
        assert_eq!(pool.next_free_ms(), 0.0);
    }

    #[test]
    fn dispatch_advances_worker_clock() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 2);
        let d = pool.dispatch(0, 5.0, &net, &picks[0], 4);
        assert_eq!(d.start_ms, 5.0);
        assert!(d.completion_ms > 5.0);
        assert_eq!(pool.free_worker_at(5.0), Some(1));
        assert_eq!(pool.free_worker_at(d.completion_ms), Some(0));
        assert_eq!(pool.batches(), 1);
    }

    #[test]
    fn pending_install_charges_swap_to_next_batch() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let cold = pool.dispatch(0, 0.0, &net, &picks[0], 2);
        assert_eq!(cold.report.pb_reload_cycles, 0);
        pool.broadcast_install(&picks[0].graph);
        let t = cold.completion_ms;
        let warmup = pool.dispatch(0, t, &net, &picks[0], 2);
        assert!(warmup.report.pb_reload_cycles > 0, "swap charged to in-flight batch");
        assert!(pool.total_swap_ms() > 0.0);
        let steady = pool.dispatch(0, warmup.completion_ms, &net, &picks[0], 2);
        assert_eq!(steady.report.pb_reload_cycles, 0);
        assert!(steady.report.total_latency_ms < cold.report.total_latency_ms);
        assert_eq!(pool.cache_installs(), 1);
    }

    #[test]
    #[should_panic(expected = "busy worker")]
    fn dispatch_to_busy_worker_panics() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let _ = pool.dispatch(0, 0.0, &net, &picks[0], 1);
        let _ = pool.dispatch(0, 0.0, &net, &picks[0], 1);
    }

    #[test]
    fn functional_context_matches_single_query_forwards() {
        let net = zoo::toy_supernet();
        let mut ctx = FunctionalContext::new(DpeArray::new(4, 4), &net, 77);
        let sn = net.materialize("max", &net.max_config()).unwrap();
        let batch: Vec<QueuedQuery> = (0..3)
            .map(|id| QueuedQuery {
                timed: TimedQuery::new(id as f64, Query::new(id, 0.5, 100.0)),
                subnet_row: 0,
            })
            .collect();
        let outs = ctx.run_batch(&net, &sn, &batch);
        assert_eq!(outs.len(), 3);
        assert_eq!(ctx.packed_subnets(), 1, "first dispatch packs the SubNet once");
        // A second dispatch reuses the packed panels (no new cache entry).
        let again = ctx.run_batch(&net, &sn, &batch);
        assert_eq!(outs, again);
        assert_eq!(ctx.packed_subnets(), 1);
        for (q, out) in batch.iter().zip(&outs) {
            let single = forward(
                &DpeArray::new(4, 4),
                &net,
                &ctx.store,
                &sn,
                &ctx.input_for(&net, q.timed.query.id),
            )
            .unwrap();
            assert_eq!(&single, out);
        }
    }
}
