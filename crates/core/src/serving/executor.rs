//! Multi-worker executor pool.
//!
//! Each worker owns an [`Accelerator`] replica (its own Persistent-Buffer
//! state) and a monotone `busy_until` clock; batches run to completion
//! without preemption. Scheduler cache decisions are *routed*, not
//! broadcast: a decision becomes one pool-level pending install
//! ([`ExecutorPool::route_install`], newest overwrites an unapplied one)
//! that the next dispatched batch's worker applies lazily — so the PB swap
//! cost lands on the replica and batch that first benefit from the new
//! SubGraph, charging cache-swap time against the deadlines of the queries
//! actually in flight (stage B of Fig. 9a, now under load). Replicas
//! therefore hold *different* resident SubGraphs over time, which is what
//! cache-affinity routing ([`crate::serving::routing::RoutingPolicy`])
//! exploits: the serving loop inspects [`ExecutorPool::resident`] and
//! steers each batch to a warm replica when one is free.
//!
//! Execution is delegated to the engine's [`ExecutionBackend`]: the
//! analytical backend advances simulated time only, while the functional
//! backend additionally runs the real packed int8 datapath per dispatched
//! batch and returns per-query predictions. Batches bound for distinct
//! workers at the same simulated instant go down as one *dispatch group*
//! ([`ExecutorPool::dispatch_group`] →
//! [`ExecutionBackend::execute_concurrent`]), which the functional backend
//! executes as genuinely parallel int8 forwards. Timing is identical
//! across backends, so the serving layer never changes *what* is computed
//! — only *when*.

use sushi_accel::backend::{Execution, ExecutionBackend, ExecutionJob};
use sushi_accel::exec::{Accelerator, BatchReport};
use sushi_accel::functional::FunctionalOutput;
use sushi_accel::AccelConfig;
use sushi_wsnet::{SubGraph, SubNet, SuperNet};

use crate::error::SushiError;

/// One simulated worker.
#[derive(Debug, Clone)]
struct Worker {
    accel: Accelerator,
    busy_until_ms: f64,
    /// Service-time multiplier applied to dispatched batches (fault
    /// injection's straggler episodes; `1.0` = nominal, and the nominal
    /// path never multiplies, so faultless timing is bit-identical).
    service_multiplier: f64,
    /// Set by a crash (the replica lost its PB-resident SubGraph);
    /// cleared when the next install lands, which counts as a re-install.
    lost_cache: bool,
}

/// One batch of a dispatch group: which worker runs which SubNet's queries.
#[derive(Debug, Clone)]
pub struct PlannedBatch<'a> {
    /// Worker (replica) index chosen by the routing policy.
    pub worker: usize,
    /// The SubNet every query in the batch resolved to.
    pub subnet: &'a SubNet,
    /// The batched query ids.
    pub query_ids: Vec<u64>,
}

/// What one dispatch did.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct DispatchReport {
    /// Worker index that executed the batch.
    pub worker: usize,
    /// Dispatch (service start) time, ms.
    pub start_ms: f64,
    /// Completion time of every query in the batch, ms.
    pub completion_ms: f64,
    /// The accelerator's batched timing/energy report.
    pub report: BatchReport,
}

/// A pool of accelerator workers with simulated availability clocks.
#[derive(Debug, Clone)]
pub struct ExecutorPool {
    workers: Vec<Worker>,
    /// The newest unapplied cache decision; applied by (and charged to)
    /// the next dispatched batch's worker.
    pending_install: Option<SubGraph>,
    cache_installs: usize,
    swap_ms: f64,
    batches: usize,
    reinstalls: usize,
}

impl ExecutorPool {
    /// Creates `workers` accelerator replicas of `config`.
    ///
    /// # Panics
    /// Panics if `workers == 0` (the engine builder rejects this earlier).
    #[must_use]
    pub fn new(config: &AccelConfig, workers: usize) -> Self {
        assert!(workers > 0, "executor pool needs at least one worker");
        let worker = Worker {
            accel: Accelerator::new(config.clone()),
            busy_until_ms: 0.0,
            service_multiplier: 1.0,
            lost_cache: false,
        };
        Self {
            workers: vec![worker; workers],
            pending_install: None,
            cache_installs: 0,
            swap_ms: 0.0,
            batches: 0,
            reinstalls: 0,
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Whether any worker is free at `now_ms` (the lowest such index —
    /// this is an availability query, *not* the routing decision, which
    /// [`crate::serving::routing::RoutingPolicy::choose`] makes).
    #[must_use]
    pub fn free_worker_at(&self, now_ms: f64) -> Option<usize> {
        self.workers.iter().position(|w| w.busy_until_ms <= now_ms)
    }

    /// When worker `worker` last became (or next becomes) idle, ms.
    #[must_use]
    pub fn busy_until_ms(&self, worker: usize) -> f64 {
        self.workers[worker].busy_until_ms
    }

    /// The SubGraph resident in worker `worker`'s Persistent Buffer
    /// (`None` before its first applied install, or on PB-less configs).
    #[must_use]
    pub fn resident(&self, worker: usize) -> Option<&SubGraph> {
        self.workers[worker].accel.cached()
    }

    /// Earliest time any worker becomes free.
    ///
    /// # Panics
    /// Never — the pool always has at least one worker.
    #[must_use]
    pub fn next_free_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_until_ms).fold(f64::INFINITY, f64::min)
    }

    /// Time the last worker finishes (the pool's drain point).
    #[must_use]
    pub fn drain_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_until_ms).fold(0.0, f64::max)
    }

    /// Fail-stops worker `worker` (fault injection): its Persistent
    /// Buffer — the resident SubGraph — is lost, so it re-enters cold and
    /// the next install it applies counts as a re-install. The simulated
    /// availability clock is left alone; the serving loop's fault runtime
    /// gates dispatchability while the replica is down.
    pub fn crash_worker(&mut self, worker: usize) {
        self.workers[worker].accel.clear_cache();
        self.workers[worker].lost_cache = true;
    }

    /// Sets worker `worker`'s service-time multiplier (straggler
    /// episodes; `1.0` restores nominal service).
    ///
    /// # Panics
    /// Panics unless `multiplier >= 1` and finite.
    pub fn set_service_multiplier(&mut self, worker: usize, multiplier: f64) {
        assert!(multiplier.is_finite() && multiplier >= 1.0, "service multiplier must be >= 1");
        self.workers[worker].service_multiplier = multiplier;
    }

    /// Worker `worker`'s current service-time multiplier.
    #[must_use]
    pub fn service_multiplier(&self, worker: usize) -> f64 {
        self.workers[worker].service_multiplier
    }

    /// Clamps worker `worker`'s availability clock to at most `until_ms`
    /// (hedge cancellation: the losing replica abandons its duplicate
    /// batch the instant the winner's result lands).
    pub fn clamp_busy(&mut self, worker: usize, until_ms: f64) {
        let w = &mut self.workers[worker];
        w.busy_until_ms = w.busy_until_ms.min(until_ms);
    }

    /// Test hook: pins worker `worker`'s availability clock.
    #[cfg(test)]
    pub(crate) fn force_busy_until(&mut self, worker: usize, until_ms: f64) {
        self.workers[worker].busy_until_ms = until_ms;
    }

    /// Routes a cache decision: the *next dispatched batch's* worker
    /// installs `graph` before executing (the newest decision overwrites
    /// an unapplied one). Other replicas keep their resident SubGraphs —
    /// installs accrete across the pool instead of thrashing every PB.
    pub fn route_install(&mut self, graph: &SubGraph) {
        self.cache_installs += 1;
        self.pending_install = Some(graph.clone());
    }

    /// Runs the same-SubNet queries `query_ids` as one batch on `worker`
    /// through `backend`. Equivalent to a one-batch
    /// [`ExecutorPool::dispatch_group`].
    ///
    /// # Errors
    /// Returns [`SushiError::Backend`] when the backend fails (empty
    /// batch, SubNet mismatch, functional datapath failure).
    ///
    /// # Panics
    /// Panics if the worker is still busy at `now_ms` (an event-loop
    /// programming error, not a configuration one).
    pub fn dispatch(
        &mut self,
        worker: usize,
        now_ms: f64,
        net: &SuperNet,
        subnet: &SubNet,
        backend: &mut dyn ExecutionBackend,
        query_ids: &[u64],
    ) -> Result<(DispatchReport, Option<Vec<FunctionalOutput>>), SushiError> {
        let plan = [PlannedBatch { worker, subnet, query_ids: query_ids.to_vec() }];
        let mut results = self.dispatch_group(now_ms, net, backend, &plan)?;
        Ok(results.pop().expect("one batch in, one result out"))
    }

    /// Dispatches a group of batches — one per distinct free worker — at
    /// the same simulated instant, executing them through
    /// [`ExecutionBackend::execute_concurrent`]. Any pending cache install
    /// is applied by the first batch's worker (its PB reload time is
    /// charged to that batch by the accelerator). Results come back in
    /// plan order.
    ///
    /// # Errors
    /// Returns [`SushiError::Backend`] when the backend fails.
    ///
    /// # Panics
    /// Panics if a planned worker is still busy at `now_ms` or the plan
    /// names the same worker twice (event-loop programming errors).
    pub fn dispatch_group(
        &mut self,
        now_ms: f64,
        net: &SuperNet,
        backend: &mut dyn ExecutionBackend,
        plan: &[PlannedBatch<'_>],
    ) -> Result<Vec<(DispatchReport, Option<Vec<FunctionalOutput>>)>, SushiError> {
        if let (Some(graph), Some(first)) = (self.pending_install.take(), plan.first()) {
            let w = &mut self.workers[first.worker];
            if w.lost_cache {
                // The replica lost its PB state to a crash: this install
                // is a re-pack of state it already paid for once.
                self.reinstalls += 1;
                w.lost_cache = false;
            }
            let _ = w.accel.install_cache(net, graph);
        }
        let mut accels: Vec<Option<&mut Accelerator>> =
            self.workers.iter_mut().map(|w| Some(&mut w.accel)).collect();
        let mut jobs: Vec<ExecutionJob<'_>> = plan
            .iter()
            .map(|b| ExecutionJob {
                worker: b.worker,
                accel: accels[b.worker].take().expect("dispatch group reuses a worker"),
                subnet: b.subnet,
                query_ids: &b.query_ids,
            })
            .collect();
        drop(accels);
        let executions = backend.execute_concurrent(net, &mut jobs)?;
        plan.iter()
            .zip(executions)
            .map(|(b, Execution { report, outputs })| {
                let w = &mut self.workers[b.worker];
                assert!(w.busy_until_ms <= now_ms, "dispatch to a busy worker");
                self.swap_ms += w.accel.config().cycles_to_ms(report.pb_reload_cycles);
                self.batches += 1;
                // The straggler multiplier stretches simulated service
                // time; the nominal path keeps the exact original value.
                let service_ms = if w.service_multiplier == 1.0 {
                    report.total_latency_ms
                } else {
                    report.total_latency_ms * w.service_multiplier
                };
                let completion_ms = now_ms + service_ms;
                w.busy_until_ms = completion_ms;
                Ok((
                    DispatchReport { worker: b.worker, start_ms: now_ms, completion_ms, report },
                    outputs,
                ))
            })
            .collect()
    }

    /// Number of cache decisions routed so far.
    #[must_use]
    pub fn cache_installs(&self) -> usize {
        self.cache_installs
    }

    /// Total PB swap (reload) time actually charged to batches, ms.
    #[must_use]
    pub fn total_swap_ms(&self) -> f64 {
        self.swap_ms
    }

    /// Number of batches dispatched.
    #[must_use]
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Number of applied installs that re-packed a crash-lost PB (a
    /// subset of [`Self::cache_installs`]'s applied decisions).
    #[must_use]
    pub fn reinstalls(&self) -> usize {
        self.reinstalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_accel::backend::Analytical;
    use sushi_accel::config::zcu104;
    use sushi_wsnet::zoo;

    #[test]
    fn free_worker_query_reports_availability() {
        let pool = ExecutorPool::new(&zcu104(), 3);
        assert_eq!(pool.free_worker_at(0.0), Some(0));
        assert_eq!(pool.next_free_ms(), 0.0);
        assert_eq!(pool.busy_until_ms(2), 0.0);
        assert!(pool.resident(0).is_none(), "fresh replicas hold no resident SubGraph");
    }

    #[test]
    fn dispatch_advances_worker_clock() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 2);
        let (d, outputs) =
            pool.dispatch(0, 5.0, &net, &picks[0], &mut Analytical, &[0, 1, 2, 3]).unwrap();
        assert!(outputs.is_none(), "analytical backend produces no outputs");
        assert_eq!(d.start_ms, 5.0);
        assert!(d.completion_ms > 5.0);
        assert_eq!(pool.free_worker_at(5.0), Some(1));
        assert_eq!(pool.free_worker_at(d.completion_ms), Some(0));
        assert_eq!(pool.batches(), 1);
    }

    #[test]
    fn pending_install_charges_swap_to_next_batch() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let b = &mut Analytical;
        let (cold, _) = pool.dispatch(0, 0.0, &net, &picks[0], b, &[0, 1]).unwrap();
        assert_eq!(cold.report.pb_reload_cycles, 0);
        pool.route_install(&picks[0].graph);
        let t = cold.completion_ms;
        let (warmup, _) = pool.dispatch(0, t, &net, &picks[0], b, &[2, 3]).unwrap();
        assert!(warmup.report.pb_reload_cycles > 0, "swap charged to in-flight batch");
        assert!(pool.total_swap_ms() > 0.0);
        let (steady, _) =
            pool.dispatch(0, warmup.completion_ms, &net, &picks[0], b, &[4, 5]).unwrap();
        assert_eq!(steady.report.pb_reload_cycles, 0);
        assert!(steady.report.total_latency_ms < cold.report.total_latency_ms);
        assert_eq!(pool.cache_installs(), 1);
    }

    #[test]
    fn installs_are_routed_to_one_replica_not_broadcast() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 2);
        pool.route_install(&picks[0].graph);
        let plan = [
            PlannedBatch { worker: 1, subnet: &picks[0], query_ids: vec![0, 1] },
            PlannedBatch { worker: 0, subnet: &picks[0], query_ids: vec![2] },
        ];
        let results = pool.dispatch_group(0.0, &net, &mut Analytical, &plan).unwrap();
        assert_eq!(results.len(), 2);
        assert!(pool.resident(1).is_some(), "install applied by the first planned worker");
        assert!(pool.resident(0).is_none(), "other replicas keep their PB state");
        assert!(results[0].0.report.pb_reload_cycles > 0, "swap charged to the installing batch");
        assert_eq!(results[1].0.report.pb_reload_cycles, 0);
        assert_eq!(pool.batches(), 2);
    }

    #[test]
    fn group_results_match_sequential_dispatches() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut grouped = ExecutorPool::new(&zcu104(), 2);
        let plan = [
            PlannedBatch { worker: 0, subnet: &picks[0], query_ids: vec![0, 1] },
            PlannedBatch { worker: 1, subnet: &picks[1], query_ids: vec![2] },
        ];
        let group = grouped.dispatch_group(1.0, &net, &mut Analytical, &plan).unwrap();
        let mut seq = ExecutorPool::new(&zcu104(), 2);
        let (a, _) = seq.dispatch(0, 1.0, &net, &picks[0], &mut Analytical, &[0, 1]).unwrap();
        let (b, _) = seq.dispatch(1, 1.0, &net, &picks[1], &mut Analytical, &[2]).unwrap();
        assert_eq!(group[0].0, a, "group timing is identical to lone dispatches");
        assert_eq!(group[1].0, b);
    }

    #[test]
    fn empty_batch_surfaces_as_a_backend_error() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let err = pool.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[]).unwrap_err();
        assert!(matches!(err, SushiError::Backend(_)));
    }

    #[test]
    fn crash_loses_the_resident_cache_and_next_install_is_a_reinstall() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        pool.route_install(&picks[0].graph);
        let (d, _) = pool.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[0]).unwrap();
        assert!(pool.resident(0).is_some());
        assert_eq!(pool.reinstalls(), 0);
        pool.crash_worker(0);
        assert!(pool.resident(0).is_none(), "a crash loses the PB-resident SubGraph");
        pool.route_install(&picks[0].graph);
        let _ = pool.dispatch(0, d.completion_ms, &net, &picks[0], &mut Analytical, &[1]).unwrap();
        assert_eq!(pool.reinstalls(), 1, "re-packing crash-lost state is accounted separately");
        assert_eq!(pool.cache_installs(), 2);
    }

    #[test]
    fn straggler_multiplier_stretches_service_time() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut nominal = ExecutorPool::new(&zcu104(), 1);
        let (base, _) = nominal.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[0]).unwrap();
        let mut slow = ExecutorPool::new(&zcu104(), 1);
        slow.set_service_multiplier(0, 3.0);
        let (stretched, _) = slow.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[0]).unwrap();
        let base_ms = base.completion_ms - base.start_ms;
        let slow_ms = stretched.completion_ms - stretched.start_ms;
        assert!((slow_ms - 3.0 * base_ms).abs() < 1e-9, "{slow_ms} vs 3x{base_ms}");
        assert_eq!(stretched.report, base.report, "the nominal report is unchanged");
        slow.set_service_multiplier(0, 1.0);
        let (recovered, _) = slow
            .dispatch(0, stretched.completion_ms, &net, &picks[0], &mut Analytical, &[1])
            .unwrap();
        assert_eq!(recovered.completion_ms - recovered.start_ms, base_ms);
    }

    #[test]
    fn clamp_busy_only_moves_the_clock_earlier() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let (d, _) = pool.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[0]).unwrap();
        pool.clamp_busy(0, d.completion_ms + 100.0);
        assert_eq!(pool.busy_until_ms(0), d.completion_ms, "clamp never extends");
        pool.clamp_busy(0, d.completion_ms / 2.0);
        assert_eq!(pool.busy_until_ms(0), d.completion_ms / 2.0);
    }

    #[test]
    #[should_panic(expected = "busy worker")]
    fn dispatch_to_busy_worker_panics() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let _ = pool.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[0]);
        let _ = pool.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[1]);
    }
}
