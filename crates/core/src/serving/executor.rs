//! Multi-worker executor pool.
//!
//! Each worker owns an [`Accelerator`] replica (its own Persistent-Buffer
//! state) and a monotone `busy_until` clock; batches run to completion
//! without preemption. Scheduler cache decisions are broadcast to every
//! worker as a *pending install* and applied lazily at that worker's next
//! dispatch, so the PB swap cost lands on the batch that first benefits
//! from the new SubGraph — charging cache-swap time against the deadlines
//! of the queries actually in flight (stage B of Fig. 9a, now under load).
//!
//! Execution is delegated to the engine's [`ExecutionBackend`]: the
//! analytical backend advances simulated time only, while the functional
//! backend additionally runs the real packed int8 datapath per dispatched
//! batch and returns per-query predictions. Timing is identical across
//! backends, so the serving layer never changes *what* is computed — only
//! *when*.

use sushi_accel::backend::{Execution, ExecutionBackend};
use sushi_accel::exec::{Accelerator, BatchReport};
use sushi_accel::functional::FunctionalOutput;
use sushi_accel::AccelConfig;
use sushi_wsnet::{SubGraph, SubNet, SuperNet};

use crate::error::SushiError;

/// One simulated worker.
#[derive(Debug, Clone)]
struct Worker {
    accel: Accelerator,
    busy_until_ms: f64,
    pending_install: Option<SubGraph>,
}

/// What one dispatch did.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct DispatchReport {
    /// Worker index that executed the batch.
    pub worker: usize,
    /// Dispatch (service start) time, ms.
    pub start_ms: f64,
    /// Completion time of every query in the batch, ms.
    pub completion_ms: f64,
    /// The accelerator's batched timing/energy report.
    pub report: BatchReport,
}

/// A pool of accelerator workers with simulated availability clocks.
#[derive(Debug, Clone)]
pub struct ExecutorPool {
    workers: Vec<Worker>,
    cache_installs: usize,
    swap_ms: f64,
    batches: usize,
}

impl ExecutorPool {
    /// Creates `workers` accelerator replicas of `config`.
    ///
    /// # Panics
    /// Panics if `workers == 0` (the engine builder rejects this earlier).
    #[must_use]
    pub fn new(config: &AccelConfig, workers: usize) -> Self {
        assert!(workers > 0, "executor pool needs at least one worker");
        let worker = Worker {
            accel: Accelerator::new(config.clone()),
            busy_until_ms: 0.0,
            pending_install: None,
        };
        Self { workers: vec![worker; workers], cache_installs: 0, swap_ms: 0.0, batches: 0 }
    }

    /// Number of workers.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Lowest-index worker free at `now_ms`, if any (deterministic tie
    /// break: index order).
    #[must_use]
    pub fn free_worker_at(&self, now_ms: f64) -> Option<usize> {
        self.workers.iter().position(|w| w.busy_until_ms <= now_ms)
    }

    /// Earliest time any worker becomes free.
    ///
    /// # Panics
    /// Never — the pool always has at least one worker.
    #[must_use]
    pub fn next_free_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_until_ms).fold(f64::INFINITY, f64::min)
    }

    /// Time the last worker finishes (the pool's drain point).
    #[must_use]
    pub fn drain_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_until_ms).fold(0.0, f64::max)
    }

    /// Broadcasts a cache decision: every worker installs `graph` before
    /// its next batch (the newest decision overwrites an unapplied one).
    pub fn broadcast_install(&mut self, graph: &SubGraph) {
        self.cache_installs += 1;
        for w in &mut self.workers {
            w.pending_install = Some(graph.clone());
        }
    }

    /// Runs the same-SubNet queries `query_ids` as one batch on `worker`
    /// through `backend`, applying any pending cache install first (its
    /// reload time is charged to this batch by the accelerator). Returns
    /// the timing report plus the backend's per-query outputs, if any.
    ///
    /// # Errors
    /// Returns [`SushiError::Backend`] when the backend fails (empty
    /// batch, SubNet mismatch, functional datapath failure).
    ///
    /// # Panics
    /// Panics if the worker is still busy at `now_ms` (an event-loop
    /// programming error, not a configuration one).
    pub fn dispatch(
        &mut self,
        worker: usize,
        now_ms: f64,
        net: &SuperNet,
        subnet: &SubNet,
        backend: &mut dyn ExecutionBackend,
        query_ids: &[u64],
    ) -> Result<(DispatchReport, Option<Vec<FunctionalOutput>>), SushiError> {
        let w = &mut self.workers[worker];
        assert!(w.busy_until_ms <= now_ms, "dispatch to a busy worker");
        if let Some(graph) = w.pending_install.take() {
            let _ = w.accel.install_cache(net, graph);
        }
        let Execution { report, outputs } =
            backend.execute_batch(&mut w.accel, net, subnet, query_ids)?;
        self.swap_ms += w.accel.config().cycles_to_ms(report.pb_reload_cycles);
        self.batches += 1;
        let completion_ms = now_ms + report.total_latency_ms;
        w.busy_until_ms = completion_ms;
        Ok((DispatchReport { worker, start_ms: now_ms, completion_ms, report }, outputs))
    }

    /// Number of cache decisions broadcast so far.
    #[must_use]
    pub fn cache_installs(&self) -> usize {
        self.cache_installs
    }

    /// Total PB swap (reload) time actually charged to batches, ms.
    #[must_use]
    pub fn total_swap_ms(&self) -> f64 {
        self.swap_ms
    }

    /// Number of batches dispatched.
    #[must_use]
    pub fn batches(&self) -> usize {
        self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_accel::backend::Analytical;
    use sushi_accel::config::zcu104;
    use sushi_wsnet::zoo;

    #[test]
    fn free_worker_selection_is_lowest_index() {
        let pool = ExecutorPool::new(&zcu104(), 3);
        assert_eq!(pool.free_worker_at(0.0), Some(0));
        assert_eq!(pool.next_free_ms(), 0.0);
    }

    #[test]
    fn dispatch_advances_worker_clock() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 2);
        let (d, outputs) =
            pool.dispatch(0, 5.0, &net, &picks[0], &mut Analytical, &[0, 1, 2, 3]).unwrap();
        assert!(outputs.is_none(), "analytical backend produces no outputs");
        assert_eq!(d.start_ms, 5.0);
        assert!(d.completion_ms > 5.0);
        assert_eq!(pool.free_worker_at(5.0), Some(1));
        assert_eq!(pool.free_worker_at(d.completion_ms), Some(0));
        assert_eq!(pool.batches(), 1);
    }

    #[test]
    fn pending_install_charges_swap_to_next_batch() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let b = &mut Analytical;
        let (cold, _) = pool.dispatch(0, 0.0, &net, &picks[0], b, &[0, 1]).unwrap();
        assert_eq!(cold.report.pb_reload_cycles, 0);
        pool.broadcast_install(&picks[0].graph);
        let t = cold.completion_ms;
        let (warmup, _) = pool.dispatch(0, t, &net, &picks[0], b, &[2, 3]).unwrap();
        assert!(warmup.report.pb_reload_cycles > 0, "swap charged to in-flight batch");
        assert!(pool.total_swap_ms() > 0.0);
        let (steady, _) =
            pool.dispatch(0, warmup.completion_ms, &net, &picks[0], b, &[4, 5]).unwrap();
        assert_eq!(steady.report.pb_reload_cycles, 0);
        assert!(steady.report.total_latency_ms < cold.report.total_latency_ms);
        assert_eq!(pool.cache_installs(), 1);
    }

    #[test]
    fn empty_batch_surfaces_as_a_backend_error() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let err = pool.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[]).unwrap_err();
        assert!(matches!(err, SushiError::Backend(_)));
    }

    #[test]
    #[should_panic(expected = "busy worker")]
    fn dispatch_to_busy_worker_panics() {
        let net = zoo::mobilenet_v3_supernet();
        let picks = zoo::paper_subnets(&net);
        let mut pool = ExecutorPool::new(&zcu104(), 1);
        let _ = pool.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[0]);
        let _ = pool.dispatch(0, 0.0, &net, &picks[0], &mut Analytical, &[1]);
    }
}
