//! Dynamic batching: size/timeout hybrid over the admission queue.
//!
//! Queries that the scheduler resolved to the *same SubNet* can share one
//! accelerator pass — weights are fetched once per batch (the within-batch
//! analogue of SubGraph-Stationary reuse; see
//! [`sushi_accel::exec::Accelerator::serve_batch`]). The batcher is
//! head-of-line fair: a batch always forms around the oldest queued query's
//! (SubNet row, tenant tier) key, and closes when either `max_batch`
//! same-key queries are waiting or the head query has waited `max_wait_ms`.
//! Tier affinity keeps a latency-critical query from riding — and a
//! best-effort query from delaying — another tier's batch; in a run
//! without tenant configuration every query shares one tier, so the key
//! degenerates to the SubNet row alone.

use crate::serving::queue::{AdmissionQueue, QueuedQuery};

/// Size/timeout hybrid batching policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Close a batch as soon as this many same-SubNet queries are queued.
    pub max_batch: usize,
    /// Close a batch once its oldest query has waited this long (ms).
    pub max_wait_ms: f64,
}

impl BatchPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    /// Panics if `max_batch == 0` or `max_wait_ms` is negative or
    /// non-finite. An infinite wait would let a partial batch linger
    /// forever: the event loop's timeout wake-up would never fire and
    /// tail-of-stream queries would leave the simulation unaccounted.
    #[must_use]
    pub fn new(max_batch: usize, max_wait_ms: f64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(
            max_wait_ms.is_finite() && max_wait_ms >= 0.0,
            "max_wait_ms must be finite and non-negative"
        );
        Self { max_batch, max_wait_ms }
    }

    /// Batching disabled: every query dispatches alone, immediately.
    #[must_use]
    pub fn no_batching() -> Self {
        Self { max_batch: 1, max_wait_ms: 0.0 }
    }

    /// Whether the head-of-line batch is ready to dispatch at `now_ms`.
    #[must_use]
    pub fn ready(&self, queue: &AdmissionQueue, now_ms: f64) -> bool {
        match queue.head() {
            None => false,
            // The timeout test must be written exactly as `ready_at`
            // computes it (`arrival + max_wait`), not as `now - arrival >=
            // max_wait`: the two roundings can disagree by one ulp, and the
            // event loop relies on `ready(queue, ready_at(queue))` being
            // true to make progress.
            Some(head) => {
                queue.count_row_tier(head.subnet_row, head.tier) >= self.max_batch
                    || now_ms >= head.timed.arrival_ms + self.max_wait_ms
            }
        }
    }

    /// The earliest future time the head-of-line batch becomes ready by
    /// timeout (`None` when the queue is empty). If the size trigger has
    /// already fired, this time is in the past and the caller dispatches
    /// immediately.
    #[must_use]
    pub fn ready_at(&self, queue: &AdmissionQueue) -> Option<f64> {
        queue.head().map(|head| head.timed.arrival_ms + self.max_wait_ms)
    }

    /// Extracts the head-of-line batch (up to `max_batch` queries sharing
    /// the head's SubNet row and tenant tier, FIFO order). Call only when
    /// [`Self::ready`]; returns an empty vec on an empty queue.
    #[must_use]
    pub fn form(&self, queue: &mut AdmissionQueue, now_ms: f64) -> Vec<QueuedQuery> {
        match queue.head() {
            None => Vec::new(),
            Some(head) => {
                let (row, tier) = (head.subnet_row, head.tier);
                queue.take_row_tier(now_ms, row, tier, self.max_batch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::queue::DropPolicy;
    use crate::stream::TimedQuery;
    use sushi_sched::{Query, TenantTier};

    fn offer(q: &mut AdmissionQueue, id: u64, arrival: f64, row: usize) {
        offer_tier(q, id, arrival, row, TenantTier::Standard);
    }

    fn offer_tier(q: &mut AdmissionQueue, id: u64, arrival: f64, row: usize, tier: TenantTier) {
        let timed = TimedQuery::new(arrival, Query::new(id, 0.7, 100.0));
        assert!(q.offer(arrival, QueuedQuery { timed, subnet_row: row, tier }).is_none());
    }

    #[test]
    fn size_trigger_fires_at_max_batch() {
        let policy = BatchPolicy::new(3, 50.0);
        let mut q = AdmissionQueue::new(8, DropPolicy::DropNewest);
        offer(&mut q, 0, 0.0, 2);
        offer(&mut q, 1, 1.0, 2);
        assert!(!policy.ready(&q, 2.0), "2 of 3 queued, head fresh");
        offer(&mut q, 2, 2.0, 2);
        assert!(policy.ready(&q, 2.0));
        let batch = policy.form(&mut q, 2.0);
        assert_eq!(batch.len(), 3);
        assert!(q.is_empty());
    }

    #[test]
    fn timeout_trigger_fires_on_head_age() {
        let policy = BatchPolicy::new(8, 10.0);
        let mut q = AdmissionQueue::new(8, DropPolicy::DropNewest);
        offer(&mut q, 0, 5.0, 1);
        assert!(!policy.ready(&q, 14.9));
        assert!(policy.ready(&q, 15.0));
        assert_eq!(policy.ready_at(&q), Some(15.0));
    }

    #[test]
    fn batch_forms_around_head_row_only() {
        let policy = BatchPolicy::new(4, 0.0);
        let mut q = AdmissionQueue::new(8, DropPolicy::DropNewest);
        offer(&mut q, 0, 0.0, 1);
        offer(&mut q, 1, 1.0, 2);
        offer(&mut q, 2, 2.0, 1);
        let batch = policy.form(&mut q, 2.0);
        assert_eq!(batch.iter().map(|b| b.timed.query.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(q.head().unwrap().timed.query.id, 1);
    }

    #[test]
    fn batch_never_crosses_a_tier_boundary() {
        let policy = BatchPolicy::new(4, 50.0);
        let mut q = AdmissionQueue::new(8, DropPolicy::DropNewest);
        offer_tier(&mut q, 0, 0.0, 1, TenantTier::LatencyCritical);
        offer_tier(&mut q, 1, 1.0, 1, TenantTier::BestEffort);
        offer_tier(&mut q, 2, 2.0, 1, TenantTier::LatencyCritical);
        offer_tier(&mut q, 3, 3.0, 1, TenantTier::BestEffort);
        // Same SubNet row throughout, but the size trigger counts only the
        // head's tier: 2 of 4 — not ready until the head times out.
        assert!(!policy.ready(&q, 4.0));
        assert!(policy.ready(&q, 50.0));
        let batch = policy.form(&mut q, 50.0);
        assert_eq!(batch.iter().map(|b| b.timed.query.id).collect::<Vec<_>>(), vec![0, 2]);
        assert!(batch.iter().all(|b| b.tier == TenantTier::LatencyCritical));
        // The best-effort pair is next, batched among themselves.
        let batch = policy.form(&mut q, 51.0);
        assert_eq!(batch.iter().map(|b| b.timed.query.id).collect::<Vec<_>>(), vec![1, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn no_batching_dispatches_singletons_immediately() {
        let policy = BatchPolicy::no_batching();
        let mut q = AdmissionQueue::new(8, DropPolicy::DropNewest);
        offer(&mut q, 0, 0.0, 1);
        offer(&mut q, 1, 0.0, 1);
        assert!(policy.ready(&q, 0.0));
        assert_eq!(policy.form(&mut q, 0.0).len(), 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_wait_rejected() {
        // An unbounded wait would strand tail-of-stream queries outside
        // both the served and dropped accounting.
        let _ = BatchPolicy::new(4, f64::INFINITY);
    }

    #[test]
    fn empty_queue_is_never_ready() {
        let policy = BatchPolicy::new(2, 5.0);
        let mut q = AdmissionQueue::new(2, DropPolicy::DropNewest);
        assert!(!policy.ready(&q, 100.0));
        assert_eq!(policy.ready_at(&q), None);
        assert!(policy.form(&mut q, 100.0).is_empty());
    }
}
