//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Raw cell accessor (for tests).
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = width[i] - cell.chars().count();
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// A complete experiment report: one or more titled tables plus notes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExpReport {
    /// Experiment identifier, e.g. `"fig10"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Titled tables.
    pub sections: Vec<(String, TextTable)>,
    /// Free-form observations (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl ExpReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self { id: id.into(), title: title.into(), sections: Vec::new(), notes: Vec::new() }
    }

    /// Adds a titled table.
    pub fn add_section(&mut self, title: impl Into<String>, table: TextTable) {
        self.sections.push((title.into(), table));
    }

    /// Adds a note line.
    pub fn add_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the full report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("=== {} — {} ===\n\n", self.id, self.title);
        for (title, table) in &self.sections {
            let _ = writeln!(out, "--- {title} ---");
            out.push_str(&table.render());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Notes:\n");
            for n in &self.notes {
                let _ = writeln!(out, "  * {n}");
            }
        }
        out
    }
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a percentage with two decimals.
#[must_use]
pub fn fmt_pct(value: f64) -> String {
    format!("{value:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.push_row(vec!["a", "1"]);
        t.push_row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines.len(), 4);
        // Column alignment: "value" starts at the same offset in all rows.
        let off = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), off);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.push_row(vec!["x"]);
        assert_eq!(t.cell(0, 2), Some(""));
    }

    #[test]
    fn report_renders_sections_and_notes() {
        let mut r = ExpReport::new("fig1", "demo");
        let mut t = TextTable::new(vec!["k"]);
        t.push_row(vec!["v"]);
        r.add_section("s1", t);
        r.add_note("a note");
        let s = r.render();
        assert!(s.contains("=== fig1"));
        assert!(s.contains("--- s1 ---"));
        assert!(s.contains("* a note"));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(12.345), "12.35%");
    }
}
