//! Deterministic serving-runtime baseline: measures the traffic presets
//! and gates/regenerates `BENCH_serve.json`.
//!
//! ```text
//! serve_bench                          # run presets, print summaries
//! serve_bench --quick                  # CI-sized streams
//! serve_bench --check BENCH_serve.json # fail on any metric drift
//! serve_bench --out BENCH_serve.json   # (re)write the baseline
//! serve_bench --workers 4              # override the preset worker pools
//! serve_bench --routing round_robin    # override the routing policy
//! serve_bench --no-adaptive            # static scheduling everywhere
//! serve_bench --no-tenants             # tierless global controller everywhere
//! serve_bench --backend functional     # real int8 forwards, any pool size
//! ```
//!
//! The default run records every preset twice — with load-adaptive
//! degradation and as a static (`adaptive: false`) companion row — plus
//! the `scale_functional` worker-scaling sweep: one cache-swap-heavy
//! toy-zoo stream served by the functional backend at 1/2/4/8 replicas
//! under cache-affinity routing (with a 4-replica round-robin ablation),
//! printed as a goodput speedup table. The tenant-tiered `multi_tenant`
//! adaptive run additionally records one row per occupied tenant tier
//! (`tier: "latency_critical"` / `"best_effort"`) next to its `"all"`
//! aggregate. The fault-injected `chaos` preset records its supervised
//! run (`faults: "supervised"`) plus an unsupervised ablation row
//! (`faults: "unsupervised"` — same fault plan, no retry/hedge/
//! quarantine); every other row carries `faults: "none"`. Rows are keyed
//! `(scenario, adaptive, workers, routing, tier, faults)` — schema v5.
//! `--backend` / `--workers` / `--routing` / `--no-adaptive` /
//! `--no-tenants` map onto the engine knobs; the committed baseline
//! records the default configuration, so overridden runs cannot be
//! combined with `--check`/`--out`.
//!
//! Every recorded figure (p50/p95/p99, goodput, SLO-violation rate, drop
//! and degrade/upgrade counts) is *simulated* — no wall clock — so the
//! committed baseline is exact: the gate tolerance only absorbs the JSON
//! decimal round-trip. Any real drift means serving semantics changed and
//! must be acknowledged by rerunning with `--out` (via
//! `scripts/bench_baseline.sh --update`). Wall-clock throughput of the
//! simulator itself is tracked separately by the `serve_sim` criterion
//! bench.

use sushi_core::engine::BackendKind;
use sushi_core::experiments::ExpOptions;
use sushi_core::metrics::{
    serve_bench_from_json, serve_bench_to_json, serve_regressions, ServeBenchEntry, ServeSummary,
};
use sushi_core::serving::{
    run_functional_scaling, run_scenario, run_scenario_unsupervised, RoutingPolicy, ServePreset,
};

/// Relative tolerance for the drift gate: wide enough for the `%.6` JSON
/// round-trip, far below any semantic change.
const DRIFT_TOLERANCE: f64 = 1e-6;

fn die(msg: &str) -> ! {
    eprintln!("serve_bench: {msg}");
    std::process::exit(1);
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    let pos = args.iter().position(|a| a == flag)?;
    Some(args.get(pos + 1).unwrap_or_else(|| die(&format!("{flag} requires a value"))))
}

fn print_row(label: &str, s: &ServeSummary) {
    println!(
        "{label:<26} p50 {:>8.3} ms   p95 {:>8.3} ms   p99 {:>8.3} ms   goodput {:>7.1} q/s   SLO viol {:>6.2}%   dropped {:>3}   lvl\u{2193}{} \u{2191}{}",
        s.p50_ms,
        s.p95_ms,
        s.p99_ms,
        s.goodput_qps,
        100.0 * s.slo_violation_rate,
        s.dropped,
        s.degrades,
        s.upgrades
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_adaptive = args.iter().any(|a| a == "--no-adaptive");
    let no_tenants = args.iter().any(|a| a == "--no-tenants");
    let out_path = flag_value(&args, "--out").cloned();
    let check_path = flag_value(&args, "--check").cloned();
    let backend = match flag_value(&args, "--backend") {
        None => BackendKind::Analytical,
        Some(v) => v.parse::<BackendKind>().unwrap_or_else(|e| die(&e)),
    };
    let workers = flag_value(&args, "--workers")
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| die("--workers requires an integer")));
    let routing = flag_value(&args, "--routing")
        .map(|v| v.parse::<RoutingPolicy>().unwrap_or_else(|e| die(&e)));
    // The committed baseline records the default configuration; an
    // overridden run must never gate against or rewrite it.
    let overridden = backend != BackendKind::Analytical
        || workers.is_some()
        || routing.is_some()
        || no_adaptive
        || no_tenants;
    if overridden && (out_path.is_some() || check_path.is_some()) {
        die("--backend/--workers/--routing/--no-adaptive/--no-tenants overrides cannot be \
             combined with --check/--out");
    }

    let mut opts = if quick { ExpOptions::quick() } else { ExpOptions::default() };
    opts.backend = backend;
    opts.workers = workers;
    opts.routing = routing;
    opts.adaptive = !no_adaptive;
    opts.tenants = !no_tenants;
    println!(
        "serving presets, {} queries each, {} backend, {} scheduling (simulated time — deterministic)\n",
        opts.queries,
        opts.backend,
        if opts.adaptive { "adaptive" } else { "static" }
    );
    // Every preset, adaptive (unless --no-adaptive) plus its static
    // companion row — both keyed by the effective (workers, routing).
    let mut entries: Vec<ServeBenchEntry> = Vec::new();
    let mut static_opts = opts;
    static_opts.adaptive = false;
    for preset in ServePreset::ALL {
        let w = opts.workers.unwrap_or(preset.default_workers());
        let r = opts.routing.unwrap_or(preset.default_routing());
        // Fault-bearing presets record their supervision mode; every
        // other row stays `faults: "none"`.
        let faults = if preset == ServePreset::Chaos { "supervised" } else { "none" };
        if opts.adaptive {
            let result = run_scenario(preset, &opts).unwrap_or_else(|e| die(&e.to_string()));
            let summary = result.summary();
            print_row(preset.name(), &summary);
            entries.push(ServeBenchEntry::from_summary(
                preset.name(),
                true,
                w,
                r.name(),
                "all",
                faults,
                &summary,
            ));
            // The chaos preset's ablation: same stream, same fault plan,
            // supervision stripped — the row the supervised pool must
            // beat on violation rate and goodput.
            if preset == ServePreset::Chaos {
                let unsup = run_scenario_unsupervised(preset, &opts)
                    .unwrap_or_else(|e| die(&e.to_string()))
                    .summary();
                print_row(&format!("{} (unsupervised)", preset.name()), &unsup);
                entries.push(ServeBenchEntry::from_summary(
                    preset.name(),
                    true,
                    w,
                    r.name(),
                    "all",
                    "unsupervised",
                    &unsup,
                ));
            }
            // A tenant-tiered run also records each occupied tier as its
            // own baseline row, so per-tier SLO regressions gate too.
            if let Some(trace) = &result.adaptation {
                for t in &trace.tiers {
                    let tier_summary = result.tier_summary(t.tier);
                    if tier_summary.offered == 0 {
                        continue;
                    }
                    print_row(&format!("{} [{}]", preset.name(), t.tier.name()), &tier_summary);
                    entries.push(ServeBenchEntry::from_summary(
                        preset.name(),
                        true,
                        w,
                        r.name(),
                        t.tier.name(),
                        faults,
                        &tier_summary,
                    ));
                }
            }
        }
        let summary =
            run_scenario(preset, &static_opts).unwrap_or_else(|e| die(&e.to_string())).summary();
        print_row(&format!("{} (static)", preset.name()), &summary);
        entries.push(ServeBenchEntry::from_summary(
            preset.name(),
            false,
            w,
            r.name(),
            "all",
            faults,
            &summary,
        ));
    }

    // The functional worker-scaling sweep. Its sizing is fixed
    // (quick-independent) and it ignores the overrides above, so it only
    // runs in default configurations — exactly the ones that may gate or
    // rewrite the baseline.
    if !overridden {
        println!("\nfunctional worker scaling (toy zoo, cache-swap-heavy stream):");
        let sweep = run_functional_scaling(&opts).unwrap_or_else(|e| die(&e.to_string()));
        let base_goodput = sweep
            .iter()
            .find(|(w, r, _)| *w == 1 && *r == RoutingPolicy::CacheAffinity)
            .map(|(_, _, s)| s.goodput_qps)
            .unwrap_or_else(|| die("scaling sweep is missing its 1-worker anchor"));
        for (w, r, summary) in &sweep {
            print_row(&format!("scale_functional ({w}w, {r})"), summary);
            entries.push(ServeBenchEntry::from_summary(
                "scale_functional",
                false,
                *w,
                r.name(),
                "all",
                "none",
                summary,
            ));
        }
        println!("\n{:<10} {:>14} {:>10}", "workers", "goodput (q/s)", "speedup");
        for (w, r, summary) in &sweep {
            if *r == RoutingPolicy::CacheAffinity {
                println!(
                    "{:<10} {:>14.1} {:>9.2}x",
                    w,
                    summary.goodput_qps,
                    summary.goodput_qps / base_goodput
                );
            }
        }
    }

    let mut failed = false;
    if let Some(path) = &check_path {
        match std::fs::read_to_string(path) {
            Err(e) => die(&format!("cannot read baseline {path}: {e}")),
            Ok(text) => match serve_bench_from_json(&text) {
                Err(e) => die(&format!("malformed baseline {path}: {e}")),
                Ok(baseline) => match serve_regressions(&entries, &baseline, DRIFT_TOLERANCE) {
                    Ok(()) => println!("\nno drift vs {path}"),
                    Err(msg) => {
                        eprintln!("\nDRIFT vs {path} (serving semantics changed?):\n{msg}");
                        failed = true;
                    }
                },
            },
        }
    }
    if let Some(path) = &out_path {
        if failed {
            eprintln!("not writing {path}: acknowledge the drift explicitly with --update");
        } else {
            if let Err(e) = std::fs::write(path, serve_bench_to_json(&entries)) {
                die(&format!("cannot write {path}: {e}"));
            }
            println!("wrote {path}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
