//! Deterministic serving-runtime baseline: measures the traffic presets
//! and gates/regenerates `BENCH_serve.json`.
//!
//! ```text
//! serve_bench                          # run presets, print summaries
//! serve_bench --quick                  # CI-sized streams
//! serve_bench --check BENCH_serve.json # fail on any metric drift
//! serve_bench --out BENCH_serve.json   # (re)write the baseline
//! serve_bench --workers 4              # override the preset worker pools
//! serve_bench --no-adaptive            # static scheduling everywhere
//! serve_bench --backend functional --workers 1
//! ```
//!
//! The default run records every preset with load-adaptive degradation
//! enabled, plus a static (`adaptive: false`) companion row for each of
//! the four original presets — those rows pin the pre-adaptive runtime
//! bit-for-bit, so the baseline gates both the adaptive loop and the
//! no-adaptation path. `--backend` / `--workers` / `--no-adaptive` map
//! onto the engine knobs; the committed baseline records the default
//! configuration, so overridden runs cannot be combined with
//! `--check`/`--out`.
//!
//! Every recorded figure (p50/p95/p99, goodput, SLO-violation rate, drop
//! and degrade/upgrade counts) is *simulated* — no wall clock — so the
//! committed baseline is exact: the gate tolerance only absorbs the JSON
//! decimal round-trip. Any real drift means serving semantics changed and
//! must be acknowledged by rerunning with `--out` (via
//! `scripts/bench_baseline.sh --update`). Wall-clock throughput of the
//! simulator itself is tracked separately by the `serve_sim` criterion
//! bench.

use sushi_core::engine::BackendKind;
use sushi_core::experiments::ExpOptions;
use sushi_core::metrics::{
    serve_bench_from_json, serve_bench_to_json, serve_regressions, ServeBenchEntry, ServeSummary,
};
use sushi_core::serving::{run_all_presets, run_scenario, ServePreset};

/// Relative tolerance for the drift gate: wide enough for the `%.6` JSON
/// round-trip, far below any semantic change.
const DRIFT_TOLERANCE: f64 = 1e-6;

fn die(msg: &str) -> ! {
    eprintln!("serve_bench: {msg}");
    std::process::exit(1);
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    let pos = args.iter().position(|a| a == flag)?;
    Some(args.get(pos + 1).unwrap_or_else(|| die(&format!("{flag} requires a value"))))
}

fn print_row(label: &str, s: &ServeSummary) {
    println!(
        "{label:<22} p50 {:>8.3} ms   p95 {:>8.3} ms   p99 {:>8.3} ms   goodput {:>7.1} q/s   SLO viol {:>6.2}%   dropped {:>3}   lvl\u{2193}{} \u{2191}{}",
        s.p50_ms,
        s.p95_ms,
        s.p99_ms,
        s.goodput_qps,
        100.0 * s.slo_violation_rate,
        s.dropped,
        s.degrades,
        s.upgrades
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_adaptive = args.iter().any(|a| a == "--no-adaptive");
    let out_path = flag_value(&args, "--out").cloned();
    let check_path = flag_value(&args, "--check").cloned();
    let backend = match flag_value(&args, "--backend") {
        None => BackendKind::Analytical,
        Some(v) => v.parse::<BackendKind>().unwrap_or_else(|e| die(&e)),
    };
    let workers = flag_value(&args, "--workers")
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| die("--workers requires an integer")));
    // The committed baseline records the default configuration; an
    // overridden run must never gate against or rewrite it.
    if (backend != BackendKind::Analytical || workers.is_some() || no_adaptive)
        && (out_path.is_some() || check_path.is_some())
    {
        die("--backend/--workers/--no-adaptive overrides cannot be combined with --check/--out");
    }

    let mut opts = if quick { ExpOptions::quick() } else { ExpOptions::default() };
    opts.backend = backend;
    opts.workers = workers;
    opts.adaptive = !no_adaptive;
    println!(
        "serving presets, {} queries each, {} backend, {} scheduling (simulated time — deterministic)\n",
        opts.queries,
        opts.backend,
        if opts.adaptive { "adaptive" } else { "static" }
    );
    let mut entries: Vec<ServeBenchEntry> = run_all_presets(&opts)
        .unwrap_or_else(|e| die(&e.to_string()))
        .into_iter()
        .map(|(name, summary)| {
            print_row(name, &summary);
            ServeBenchEntry::from_summary(name, opts.adaptive, &summary)
        })
        .collect();
    if opts.adaptive {
        // Static companion rows: the original presets with adaptation off,
        // pinning the pre-adaptive runtime bit-for-bit.
        let mut static_opts = opts;
        static_opts.adaptive = false;
        for preset in ServePreset::STATIC_PINNED {
            let summary = run_scenario(preset, &static_opts)
                .unwrap_or_else(|e| die(&e.to_string()))
                .summary();
            print_row(&format!("{} (static)", preset.name()), &summary);
            entries.push(ServeBenchEntry::from_summary(preset.name(), false, &summary));
        }
    }

    let mut failed = false;
    if let Some(path) = &check_path {
        match std::fs::read_to_string(path) {
            Err(e) => die(&format!("cannot read baseline {path}: {e}")),
            Ok(text) => match serve_bench_from_json(&text) {
                Err(e) => die(&format!("malformed baseline {path}: {e}")),
                Ok(baseline) => match serve_regressions(&entries, &baseline, DRIFT_TOLERANCE) {
                    Ok(()) => println!("\nno drift vs {path}"),
                    Err(msg) => {
                        eprintln!("\nDRIFT vs {path} (serving semantics changed?):\n{msg}");
                        failed = true;
                    }
                },
            },
        }
    }
    if let Some(path) = &out_path {
        if failed {
            eprintln!("not writing {path}: acknowledge the drift explicitly with --update");
        } else {
            if let Err(e) = std::fs::write(path, serve_bench_to_json(&entries)) {
                die(&format!("cannot write {path}: {e}"));
            }
            println!("wrote {path}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
