//! Naive-vs-GEMM wall-clock benchmark of the functional int8 forward pass.
//!
//! Times the largest ("max") SubNet of each zoo SuperNet through the full
//! DPE datapath under [`KernelPolicy::Naive`] (the cycle-faithful tiled
//! schedule) and [`KernelPolicy::Im2colGemm`] (the im2col + blocked-GEMM
//! fast path), verifying on the way that both produce identical logits.
//!
//! ```text
//! kernel_bench                        # paper zoo (ResNet50 + MobileNetV3)
//! kernel_bench --quick                # toy zoo (CI-sized, seconds)
//! kernel_bench --runs 3               # best-of-3 timing
//! kernel_bench --out BENCH_kernels.json
//! kernel_bench --check BENCH_kernels.json   # fail if gemm regressed >20%
//! kernel_bench --min-speedup 5.0      # gate the largest workload's speedup
//! ```
//!
//! `scripts/bench_baseline.sh` combines `--check` (against the committed
//! baseline) and `--out` (regenerating it) in one measured run.

use std::time::Instant;

use sushi_accel::dpe::DpeArray;
use sushi_accel::functional::{act_quant, forward};
use sushi_core::metrics::{
    kernel_bench_from_json, kernel_bench_to_json, kernel_regressions, KernelBenchEntry,
};
use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{DetRng, KernelPolicy, Shape4, Tensor};
use sushi_wsnet::{zoo, SuperNet, WeightStore};

/// Allowed slowdown of the GEMM path vs the committed baseline.
const REGRESSION_TOLERANCE_PCT: f64 = 20.0;

fn die(msg: &str) -> ! {
    eprintln!("kernel_bench: {msg}");
    std::process::exit(1);
}

fn parse_flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let raw = args.get(pos + 1).unwrap_or_else(|| die(&format!("{flag} requires a value")));
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => die(&format!("invalid value '{raw}' for {flag}")),
    }
}

fn bench_net(net: &SuperNet, runs: usize, seed: u64) -> KernelBenchEntry {
    let store = WeightStore::synthesize(net, seed);
    let sn = net.materialize("max", &net.max_config()).expect("max config");
    let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
    let mut rng = DetRng::new(seed ^ 0xBEEF);
    let input_f =
        Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect())
            .expect("shape matches");
    let input = quantize_tensor(&input_f, act_quant());
    // ZCU104 geometry; the policy is the only variable.
    let naive_dpe = DpeArray::new(16, 18).with_policy(KernelPolicy::Naive);
    let gemm_dpe = DpeArray::new(16, 18).with_policy(KernelPolicy::Im2colGemm);

    let mut naive_ms = f64::INFINITY;
    let mut gemm_ms = f64::INFINITY;
    let mut naive_out = None;
    let mut gemm_out = None;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let out = forward(&gemm_dpe, net, &store, &sn, &input).expect("gemm forward");
        gemm_ms = gemm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        gemm_out = Some(out);

        let t = Instant::now();
        let out = forward(&naive_dpe, net, &store, &sn, &input).expect("naive forward");
        naive_ms = naive_ms.min(t.elapsed().as_secs_f64() * 1e3);
        naive_out = Some(out);
    }
    assert_eq!(
        naive_out, gemm_out,
        "{}: kernel backends diverged — benchmark numbers would be meaningless",
        net.name
    );
    KernelBenchEntry { label: format!("{}/max", net.name), naive_ms, gemm_ms }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let runs: usize = parse_flag_value(&args, "--runs").unwrap_or(1);
    let out_path: Option<String> = parse_flag_value(&args, "--out");
    let check_path: Option<String> = parse_flag_value(&args, "--check");
    let min_speedup: Option<f64> = parse_flag_value(&args, "--min-speedup");

    let nets: Vec<SuperNet> = if quick {
        vec![zoo::toy_supernet(), zoo::toy_mobilenet_supernet()]
    } else {
        vec![zoo::resnet50_supernet(), zoo::mobilenet_v3_supernet()]
    };

    println!("timing largest SubNet forward pass, best of {runs} run(s) per backend\n");
    let mut entries = Vec::new();
    for net in &nets {
        let entry = bench_net(net, runs, 2024);
        println!(
            "{:<24} naive {:>10.2} ms   gemm {:>10.2} ms   speedup {:>6.2}x",
            entry.label,
            entry.naive_ms,
            entry.gemm_ms,
            entry.speedup()
        );
        entries.push(entry);
    }

    let mut failed = false;
    if let Some(path) = &check_path {
        match std::fs::read_to_string(path) {
            Err(e) => die(&format!("cannot read baseline {path}: {e}")),
            Ok(text) => match kernel_bench_from_json(&text) {
                Err(e) => die(&format!("malformed baseline {path}: {e}")),
                Ok(baseline) => {
                    match kernel_regressions(&entries, &baseline, REGRESSION_TOLERANCE_PCT) {
                        Ok(()) => println!(
                            "\nno regression vs {path} (tolerance {REGRESSION_TOLERANCE_PCT}%)"
                        ),
                        Err(msg) => {
                            eprintln!("\nREGRESSION vs {path}:\n{msg}");
                            failed = true;
                        }
                    }
                }
            },
        }
    }
    if let Some(min) = min_speedup {
        // The headline target applies to the largest workload (the one the
        // perf trajectory is anchored on); depthwise-dominated nets win
        // less because depthwise stays on the direct schedule.
        if let Some(largest) = entries.iter().max_by(|a, b| a.naive_ms.total_cmp(&b.naive_ms)) {
            if largest.speedup() < min {
                eprintln!(
                    "{}: speedup {:.2}x below target {min}x",
                    largest.label,
                    largest.speedup()
                );
                failed = true;
            }
        }
    }
    if let Some(path) = &out_path {
        if failed {
            eprintln!("not writing {path}: a failing run must not become the baseline");
        } else {
            if let Err(e) = std::fs::write(path, kernel_bench_to_json(&entries)) {
                die(&format!("cannot write {path}: {e}"));
            }
            println!("wrote {path}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
