//! Wall-clock benchmark of the functional int8 forward pass across kernel
//! backends: naive tiled schedule, per-call-packing GEMM, and the serving
//! hot path (weights pre-packed once per install, arena scratch reused).
//!
//! Times the largest ("max") SubNet of each zoo SuperNet through the full
//! DPE datapath, verifying on the way that every backend produces identical
//! logits. Reports five columns (BENCH_kernels.json schema v3):
//!
//! * `naive`  — [`KernelPolicy::Naive`], the cycle-faithful tiled schedule;
//! * `gemm`   — [`KernelPolicy::Im2colGemm`], packing both operands per call;
//! * `packed` — pre-packed [`SubgraphCache`] + reused [`Arena`], steady state
//!              (pack-amortized: what every query after the install pays);
//! * `fused`  — IR-lowered [`SubgraphCache::build_fused`] steady state:
//!              bias/requant/activation run inside the conv epilogue of the
//!              k-pair microkernel instead of as separate passes;
//! * `cold`   — cache build + first packed forward (what the install-bearing
//!              query pays before amortization begins).
//!
//! ```text
//! kernel_bench                        # paper zoo (ResNet50 + MobileNetV3)
//! kernel_bench --quick                # toy zoo (CI-sized, seconds)
//! kernel_bench --runs 3               # best-of-3 timing
//! kernel_bench --no-fusion            # time the unfused datapath only
//! kernel_bench --out BENCH_kernels.json
//! kernel_bench --check BENCH_kernels.json   # fail if gemm/packed/fused regressed >20%
//! kernel_bench --check-schema BENCH_kernels.json  # machine-independent v3 gate
//! kernel_bench --min-speedup 8.0      # gate the largest workload's fused speedup
//! ```
//!
//! `--no-fusion` skips the IR lowering pass: the fused column then re-times
//! the plain packed path (a bisection aid); such a run refuses `--out` so
//! the committed baseline always carries a real fused measurement.
//!
//! `scripts/bench_baseline.sh` combines `--check` (against the committed
//! baseline) and `--out` (regenerating it) in one measured run; CI's
//! bench-smoke job runs `--quick` (correctness + relative sanity) and
//! `--check-schema` (the committed baseline's v3 invariants), which do not
//! depend on the runner's absolute speed.

use std::time::Instant;

use sushi_accel::dpe::DpeArray;
use sushi_accel::functional::{act_quant, forward, forward_cached, SubgraphCache};
use sushi_core::metrics::{
    kernel_bench_from_json, kernel_bench_to_json, kernel_regressions, KernelBenchEntry,
};
use sushi_tensor::quant::quantize_tensor;
use sushi_tensor::{Arena, DetRng, KernelPolicy, Shape4, Tensor};
use sushi_wsnet::{zoo, SuperNet, WeightStore};

/// Allowed slowdown of the gemm/packed paths vs the committed baseline.
const REGRESSION_TOLERANCE_PCT: f64 = 20.0;

fn die(msg: &str) -> ! {
    eprintln!("kernel_bench: {msg}");
    std::process::exit(1);
}

fn parse_flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let raw = args.get(pos + 1).unwrap_or_else(|| die(&format!("{flag} requires a value")));
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => die(&format!("invalid value '{raw}' for {flag}")),
    }
}

fn bench_net(net: &SuperNet, runs: usize, seed: u64, fusion: bool) -> KernelBenchEntry {
    let store = WeightStore::synthesize(net, seed);
    let sn = net.materialize("max", &net.max_config()).expect("max config");
    let shape = Shape4::new(1, 3, net.input_hw, net.input_hw);
    let mut rng = DetRng::new(seed ^ 0xBEEF);
    let input_f =
        Tensor::from_vec(shape, (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect())
            .expect("shape matches");
    let input = quantize_tensor(&input_f, act_quant());
    // ZCU104 geometry; the policy/caching is the only variable.
    let naive_dpe = DpeArray::new(16, 18).with_policy(KernelPolicy::Naive);
    let gemm_dpe = DpeArray::new(16, 18).with_policy(KernelPolicy::Im2colGemm);

    // Cold pack: build the install-time cache and run the first packed
    // forward — the cost the install-bearing query pays, exactly once.
    let mut arena = Arena::new();
    let t = Instant::now();
    let cache = SubgraphCache::build(net, &store, &sn.graph).expect("packable zoo weights");
    let packed_out = forward_cached(&gemm_dpe, net, &store, &sn, Some(&cache), &mut arena, &input)
        .expect("packed forward");
    let cold_pack_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut packed_out = Some(packed_out);

    // The IR-lowered serving path: same weights, bias/requant/activation
    // fused into the conv epilogue at install. `--no-fusion` re-times the
    // plain packed cache instead (the IR-bypass bisection aid).
    let fused_cache = if fusion {
        SubgraphCache::build_fused(net, &store, &sn).expect("SubNet lowers to a fused plan")
    } else {
        SubgraphCache::build(net, &store, &sn.graph).expect("packable zoo weights")
    };

    let mut naive_ms = f64::INFINITY;
    let mut gemm_ms = f64::INFINITY;
    let mut packed_ms = f64::INFINITY;
    let mut fused_ms = f64::INFINITY;
    let mut naive_out = None;
    let mut gemm_out = None;
    let mut fused_out = None;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let out = forward_cached(&gemm_dpe, net, &store, &sn, Some(&cache), &mut arena, &input)
            .expect("packed forward");
        packed_ms = packed_ms.min(t.elapsed().as_secs_f64() * 1e3);
        packed_out = Some(out);

        let t = Instant::now();
        let out =
            forward_cached(&gemm_dpe, net, &store, &sn, Some(&fused_cache), &mut arena, &input)
                .expect("fused forward");
        fused_ms = fused_ms.min(t.elapsed().as_secs_f64() * 1e3);
        fused_out = Some(out);

        let t = Instant::now();
        let out = forward(&gemm_dpe, net, &store, &sn, &input).expect("gemm forward");
        gemm_ms = gemm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        gemm_out = Some(out);

        let t = Instant::now();
        let out = forward(&naive_dpe, net, &store, &sn, &input).expect("naive forward");
        naive_ms = naive_ms.min(t.elapsed().as_secs_f64() * 1e3);
        naive_out = Some(out);
    }
    assert_eq!(
        naive_out, gemm_out,
        "{}: naive and gemm backends diverged — benchmark numbers would be meaningless",
        net.name
    );
    assert_eq!(
        naive_out, packed_out,
        "{}: pre-packed serving path diverged from the naive oracle",
        net.name
    );
    assert_eq!(
        naive_out, fused_out,
        "{}: IR-lowered fused path diverged from the naive oracle",
        net.name
    );
    KernelBenchEntry {
        label: format!("{}/max", net.name),
        naive_ms,
        gemm_ms,
        packed_ms,
        fused_ms,
        cold_pack_ms,
    }
}

/// Machine-independent gate over a committed v3 baseline: schema parses,
/// every column is positive, and the within-file invariants hold (packed
/// not meaningfully slower than per-call packing; fused not meaningfully
/// slower than packed; cold pack at least one packed run). The ordering
/// bounds carry a small tolerance: depthwise-dominated workloads amortize
/// only a sliver of packing/fusion, so best-of-N scheduling noise at
/// baseline regeneration time must not be able to commit a file that CI
/// then rejects.
const SCHEMA_PACKED_SLACK: f64 = 1.10;

fn check_schema(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let entries = kernel_bench_from_json(&text)?;
    for e in &entries {
        if e.label.is_empty() {
            return Err("entry with empty label".to_string());
        }
        for (what, v) in [
            ("naive_ms", e.naive_ms),
            ("gemm_ms", e.gemm_ms),
            ("packed_ms", e.packed_ms),
            ("fused_ms", e.fused_ms),
            ("cold_pack_ms", e.cold_pack_ms),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("'{}': {what} must be positive, got {v}", e.label));
            }
        }
        if e.packed_ms > e.gemm_ms * SCHEMA_PACKED_SLACK {
            return Err(format!(
                "'{}': packed_ms {:.3} exceeds gemm_ms {:.3} by more than {:.0}% — pre-packing \
                 must not lose to per-call packing in the committed baseline",
                e.label,
                e.packed_ms,
                e.gemm_ms,
                (SCHEMA_PACKED_SLACK - 1.0) * 100.0
            ));
        }
        if e.fused_ms > e.packed_ms * SCHEMA_PACKED_SLACK {
            return Err(format!(
                "'{}': fused_ms {:.3} exceeds packed_ms {:.3} by more than {:.0}% — epilogue \
                 fusion must not lose to the unfused cache in the committed baseline",
                e.label,
                e.fused_ms,
                e.packed_ms,
                (SCHEMA_PACKED_SLACK - 1.0) * 100.0
            ));
        }
        if e.cold_pack_ms < e.packed_ms {
            return Err(format!(
                "'{}': cold_pack_ms {:.3} below packed_ms {:.3} — the cold pass includes a \
                 packed forward, so this baseline is inconsistent",
                e.label, e.cold_pack_ms, e.packed_ms
            ));
        }
    }
    println!("{path}: schema v3 OK ({} entries)", entries.len());
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let fusion = !args.iter().any(|a| a == "--no-fusion");
    let runs: usize = parse_flag_value(&args, "--runs").unwrap_or(1);
    let out_path: Option<String> = parse_flag_value(&args, "--out");
    let check_path: Option<String> = parse_flag_value(&args, "--check");
    let schema_path: Option<String> = parse_flag_value(&args, "--check-schema");
    let min_speedup: Option<f64> = parse_flag_value(&args, "--min-speedup");

    if let Some(path) = &schema_path {
        if let Err(msg) = check_schema(path) {
            die(&format!("schema gate failed for {path}: {msg}"));
        }
        // Schema-only invocation: no measurement requested.
        if out_path.is_none() && check_path.is_none() && min_speedup.is_none() && !quick {
            return;
        }
    }

    let nets: Vec<SuperNet> = if quick {
        vec![zoo::toy_supernet(), zoo::toy_mobilenet_supernet()]
    } else {
        vec![zoo::resnet50_supernet(), zoo::mobilenet_v3_supernet()]
    };

    println!("timing largest SubNet forward pass, best of {runs} run(s) per backend");
    if !fusion {
        println!("fusion disabled: the fused column re-times the plain packed cache");
    }
    println!();
    let mut entries = Vec::new();
    for net in &nets {
        let entry = bench_net(net, runs, 2024, fusion);
        println!(
            "{:<24} naive {:>10.2} ms   gemm {:>9.2} ms   packed {:>9.2} ms   fused {:>9.2} ms   \
             cold {:>9.2} ms   speedup {:>6.2}x (packed {:>6.2}x, fused {:>6.2}x)",
            entry.label,
            entry.naive_ms,
            entry.gemm_ms,
            entry.packed_ms,
            entry.fused_ms,
            entry.cold_pack_ms,
            entry.speedup(),
            entry.packed_speedup(),
            entry.fused_speedup()
        );
        entries.push(entry);
    }

    let mut failed = false;
    if let Some(path) = &check_path {
        match std::fs::read_to_string(path) {
            Err(e) => die(&format!("cannot read baseline {path}: {e}")),
            Ok(text) => match kernel_bench_from_json(&text) {
                Err(e) => die(&format!("malformed baseline {path}: {e}")),
                Ok(baseline) => {
                    match kernel_regressions(&entries, &baseline, REGRESSION_TOLERANCE_PCT) {
                        Ok(()) => println!(
                            "\nno regression vs {path} (tolerance {REGRESSION_TOLERANCE_PCT}%)"
                        ),
                        Err(msg) => {
                            eprintln!("\nREGRESSION vs {path}:\n{msg}");
                            failed = true;
                        }
                    }
                }
            },
        }
    }
    if let Some(min) = min_speedup {
        // The headline target applies to the largest workload (the one the
        // perf trajectory is anchored on) and to the serving hot path —
        // the fused (IR-lowered, pack-amortized) column; depthwise-dominated
        // nets win less because depthwise stays on the direct schedule.
        if let Some(largest) = entries.iter().max_by(|a, b| a.naive_ms.total_cmp(&b.naive_ms)) {
            if largest.fused_speedup() < min {
                eprintln!(
                    "{}: fused speedup {:.2}x below target {min}x",
                    largest.label,
                    largest.fused_speedup()
                );
                failed = true;
            }
        }
    }
    if let Some(path) = &out_path {
        if !fusion {
            eprintln!("not writing {path}: a --no-fusion run has no fused measurement to commit");
        } else if failed {
            eprintln!("not writing {path}: a failing run must not become the baseline");
        } else {
            if let Err(e) = std::fs::write(path, kernel_bench_to_json(&entries)) {
                die(&format!("cannot write {path}: {e}"));
            }
            println!("wrote {path}");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
