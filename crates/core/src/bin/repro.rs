//! Regenerates the SUSHI paper's tables and figures.
//!
//! ```text
//! repro -- all                # every experiment, paper-scale
//! repro -- fig10 fig16        # specific experiments
//! repro -- all --quick        # reduced streams (CI-sized)
//! repro -- all --save results # also write results/<id>.txt
//! ```

use std::io::Write as _;

use sushi_core::experiments::{run, ExpOptions, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let save_pos = args.iter().position(|a| a == "--save");
    let save_dir = save_pos.and_then(|i| args.get(i + 1)).cloned();
    // Skip the --save *operand by position*, not by value, so an id that
    // happens to equal the directory name is still run.
    let ids: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && save_pos.map_or(true, |s| *i != s + 1))
        .map(|(_, a)| a.clone())
        .collect();
    let opts = if quick { ExpOptions::quick() } else { ExpOptions::default() };

    let selected: Vec<&str> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut failures = Vec::new();
    for id in selected {
        match run(id, &opts) {
            Some(report) => {
                let text = report.render();
                println!("{text}");
                if let Some(dir) = &save_dir {
                    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                        let mut f = std::fs::File::create(format!("{dir}/{id}.txt"))?;
                        f.write_all(text.as_bytes())
                    }) {
                        eprintln!("warning: could not save {id}: {e}");
                    }
                }
            }
            None => failures.push(id),
        }
    }
    if !failures.is_empty() {
        eprintln!("unknown experiment id(s): {failures:?}");
        eprintln!("available: {ALL_IDS:?}");
        std::process::exit(2);
    }
}
