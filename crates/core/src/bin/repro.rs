//! Regenerates the SUSHI paper's tables and figures.
//!
//! ```text
//! repro -- all                          # every experiment, paper-scale
//! repro -- fig10 fig16                  # specific experiments
//! repro -- all --quick                  # reduced streams (CI-sized)
//! repro -- all --save results           # also write results/<id>.txt
//! repro -- kernels --kernel-policy gemm # pin the functional kernel backend
//! repro -- --serve                      # the serving runtime presets
//! repro -- --serve --workers 4          # override the preset worker pools
//! repro -- --serve --routing round_robin # override the routing policy
//! repro -- --serve --no-adaptive        # static scheduling (pre-adaptive)
//! repro -- --serve --no-tenants         # tierless global controller (pre-tenant)
//! repro -- --serve --backend functional --workers 4
//! repro -- --serve --backend functional --no-fusion  # unfused cache installs
//! ```
//!
//! `--serve` is shorthand for the `serve` experiment id: it runs the
//! traffic presets (steady / burst / diurnal / multi-tenant / overload /
//! deadline-mix / failover / scale / chaos) through the event-driven
//! serving runtime (deterministic: same seed, same report). Load-adaptive
//! degradation is on by default; `--no-adaptive` pins the presets to the
//! static pre-adaptive scheduling path bit-for-bit. Tenant tiering (the
//! `multi_tenant` preset's per-tier controllers) is on by default too;
//! `--no-tenants` falls back to the tierless global controller.
//!
//! `--backend analytical|functional` selects the serving runtime's
//! execution backend (`EngineBuilder::backend`): `analytical` (default)
//! runs the timing model only; `functional` additionally executes the real
//! int8 datapath per batch — concurrently across however many workers are
//! configured, reading one shared pack-once weight cache per SubNet
//! (full-size zoo forwards take seconds each — expect long runs).
//!
//! `--workers N` overrides the serving presets' worker-pool size
//! (`EngineBuilder::workers`); offered load keeps the presets' sizing.
//!
//! `--routing least_loaded|round_robin|cache_affinity` overrides the
//! presets' replica routing policy (`EngineBuilder::routing`).
//!
//! `--kernel-policy naive|gemm|auto` selects the kernel backend used by
//! experiments that execute the functional int8 datapath. Experiment
//! outputs are identical across policies (the backends compute the same
//! function); only wall time changes.
//!
//! `--no-fusion` makes functional cache installs skip the IR lowering
//! pass, so queries run the per-layer interpreter against plain packed
//! weights instead of fused conv epilogues. Logits are bit-identical with
//! fusion on or off; the flag exists to time and bisect the fused path.

use std::io::Write as _;

use sushi_core::engine::BackendKind;
use sushi_core::experiments::{run, ExpOptions, ALL_IDS};
use sushi_core::serving::RoutingPolicy;
use sushi_tensor::KernelPolicy;

fn flag_operand<'a>(args: &'a [String], flag: &str) -> (Option<usize>, Option<&'a String>) {
    let pos = args.iter().position(|a| a == flag);
    (pos, pos.and_then(|i| args.get(i + 1)))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (save_pos, save_dir) = flag_operand(&args, "--save");
    let save_dir = save_dir.cloned();
    let (policy_pos, policy_arg) = flag_operand(&args, "--kernel-policy");
    let kernel_policy = match (policy_pos, policy_arg) {
        (None, _) => KernelPolicy::Auto,
        (Some(_), Some(v)) => match v.parse::<KernelPolicy>() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        (Some(_), None) => {
            eprintln!("--kernel-policy requires a value (naive|gemm|auto)");
            std::process::exit(2);
        }
    };
    let (backend_pos, backend_arg) = flag_operand(&args, "--backend");
    let backend = match (backend_pos, backend_arg) {
        (None, _) => BackendKind::Analytical,
        (Some(_), Some(v)) => match v.parse::<BackendKind>() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        (Some(_), None) => {
            eprintln!("--backend requires a value (analytical|functional)");
            std::process::exit(2);
        }
    };
    let (workers_pos, workers_arg) = flag_operand(&args, "--workers");
    let workers = match (workers_pos, workers_arg) {
        (None, _) => None,
        (Some(_), Some(v)) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!("--workers requires a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
        (Some(_), None) => {
            eprintln!("--workers requires a value");
            std::process::exit(2);
        }
    };
    let (routing_pos, routing_arg) = flag_operand(&args, "--routing");
    let routing = match (routing_pos, routing_arg) {
        (None, _) => None,
        (Some(_), Some(v)) => match v.parse::<RoutingPolicy>() {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        (Some(_), None) => {
            eprintln!("--routing requires a value (least_loaded|round_robin|cache_affinity)");
            std::process::exit(2);
        }
    };
    // Skip flag *operands by position*, not by value, so an id that happens
    // to equal an operand (e.g. a directory named "fig10") is still run.
    let operand_pos: Vec<usize> = [save_pos, policy_pos, backend_pos, workers_pos, routing_pos]
        .iter()
        .flatten()
        .map(|i| i + 1)
        .collect();
    let mut ids: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !operand_pos.contains(i))
        .map(|(_, a)| a.clone())
        .collect();
    // `--serve` selects the serving-runtime experiment (alongside any ids).
    if args.iter().any(|a| a == "--serve") && !ids.iter().any(|i| i == "serve") {
        ids.push("serve".to_string());
    }
    let mut opts = if quick { ExpOptions::quick() } else { ExpOptions::default() };
    opts.kernel_policy = kernel_policy;
    opts.backend = backend;
    opts.workers = workers;
    opts.routing = routing;
    // `--no-adaptive` pins the serving presets to static scheduling (the
    // pre-adaptive runtime, bit-for-bit); `--no-tenants` keeps adaptation
    // but drops the multi_tenant preset back to the global controller.
    opts.adaptive = !args.iter().any(|a| a == "--no-adaptive");
    opts.tenants = !args.iter().any(|a| a == "--no-tenants");
    // `--no-fusion` pins functional installs to the unfused packed cache
    // (bit-identical logits; the IR-bypass debugging/bisection path).
    opts.fusion = !args.iter().any(|a| a == "--no-fusion");

    let selected: Vec<&str> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut failures = Vec::new();
    for id in selected {
        match run(id, &opts) {
            Some(report) => {
                let text = report.render();
                println!("{text}");
                if let Some(dir) = &save_dir {
                    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| {
                        let mut f = std::fs::File::create(format!("{dir}/{id}.txt"))?;
                        f.write_all(text.as_bytes())
                    }) {
                        eprintln!("warning: could not save {id}: {e}");
                    }
                }
            }
            None => failures.push(id),
        }
    }
    if !failures.is_empty() {
        eprintln!("unknown experiment id(s): {failures:?}");
        eprintln!("available: {ALL_IDS:?}");
        std::process::exit(2);
    }
}
