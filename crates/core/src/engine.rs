//! The unified engine API: one builder-driven entry point for the whole
//! serving stack.
//!
//! [`EngineBuilder`] names every knob of the vertically integrated stack —
//! workload, serving [`Variant`], scheduler [`Policy`], caching window `Q`,
//! SushiAbs candidate count, [`AccelConfig`], seed, execution backend and
//! the serving-loop `SimConfig` — all defaulted to the paper's MobileNetV3 /
//! ZCU104 configuration. It produces an [`Engine`] with two run modes:
//!
//! * [`Engine::serve_stream`] — the per-query batch-replay loop of Fig. 4
//!   (the §5.6–5.7 experiments).
//! * [`Engine::serve_timed`] — the event-driven open-loop serving
//!   simulation (arrivals, bounded queue, dynamic batching, worker pool,
//!   SLO accounting).
//!
//! Both dispatch through a pluggable [`ExecutionBackend`]
//! ([`BackendKind::Analytical`] timing model or [`BackendKind::Functional`]
//! packed int8 datapath), so swapping the backend never changes scheduling
//! or simulated timing — only whether real predictions are recorded.
//!
//! # Example
//!
//! ```
//! use sushi_core::engine::EngineBuilder;
//! use sushi_core::stream::uniform_stream;
//!
//! // Paper defaults: MobileNetV3 on ZCU104, full SUSHI, analytical backend.
//! let mut engine = EngineBuilder::new().candidates(4).build()?;
//! let space = engine.constraint_space();
//! let records = engine.serve_stream(&uniform_stream(&space, 10, 7))?;
//! assert!(records.iter().all(|r| r.served_accuracy >= r.query.accuracy_constraint));
//! # Ok::<(), sushi_core::SushiError>(())
//! ```

use std::str::FromStr;
use std::sync::Arc;

use sushi_accel::backend::{Analytical, ExecutionBackend, Functional};
use sushi_accel::dpe::DpeArray;
use sushi_accel::AccelConfig;
use sushi_sched::{AdaptiveOptions, CacheSelection, LatencyTable, Policy, Query, TenantOptions};
use sushi_tensor::KernelPolicy;
use sushi_wsnet::{zoo, SubNet, SuperNet};

use crate::error::SushiError;
use crate::serving::batch::BatchPolicy;
use crate::serving::fault::FaultOptions;
use crate::serving::queue::DropPolicy;
use crate::serving::routing::RoutingPolicy;
use crate::serving::sim::{ServingSim, SimConfig, SimResult};
use crate::stack::{ServedRecord, SushiStack};
use crate::stream::{ConstraintSpace, TimedQuery};
use crate::variants::{build_table, Variant};

/// The built-in model-zoo workloads (SuperNet + the paper's Pareto picks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelZoo {
    /// OFA-MobileNetV3 with its seven Pareto SubNets (default Q = 10).
    MobileNetV3,
    /// OFA-ResNet50 with its six Pareto SubNets (default Q = 8).
    ResNet50,
}

impl ModelZoo {
    fn load(self) -> (Arc<SuperNet>, Vec<SubNet>, usize) {
        match self {
            ModelZoo::MobileNetV3 => {
                let net = Arc::new(zoo::mobilenet_v3_supernet());
                let picks = zoo::paper_subnets(&net);
                (net, picks, 10)
            }
            ModelZoo::ResNet50 => {
                let net = Arc::new(zoo::resnet50_supernet());
                let picks = zoo::paper_subnets(&net);
                (net, picks, 8)
            }
        }
    }
}

/// Which [`ExecutionBackend`] the engine dispatches batches through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Timing/energy model only (full-size nets simulate in microseconds).
    Analytical,
    /// Timing model plus the bit-exact packed int8 datapath (toy-zoo
    /// scale; records per-query predictions). Workers share one pack-once
    /// weight cache per SubNet and execute concurrently, so logits are
    /// bit-identical across worker counts.
    Functional,
}

impl BackendKind {
    /// Stable label, matching the `--backend` CLI flag values.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Analytical => "analytical",
            BackendKind::Functional => "functional",
        }
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytical" => Ok(BackendKind::Analytical),
            "functional" => Ok(BackendKind::Functional),
            other => Err(format!("unknown backend '{other}' (expected analytical|functional)")),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs for the functional backend (ignored under
/// [`BackendKind::Analytical`]).
///
/// `#[non_exhaustive]`: construct via [`Default`] and adjust through the
/// `with_*` setters so future knobs are non-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct FunctionalOptions {
    /// DPE-array rows (kernel parallelism) of the functional datapath.
    pub dpe_rows: usize,
    /// DPE-array columns (channel parallelism).
    pub dpe_cols: usize,
    /// Host-simulation kernel policy (never affects logits).
    pub kernel_policy: KernelPolicy,
    /// Seed for synthesized weights and per-query inputs.
    pub seed: u64,
    /// Lower each installed SubNet through the typed IR and run fused
    /// conv+bias+requant+activation steps (never affects logits).
    pub fusion: bool,
}

impl Default for FunctionalOptions {
    fn default() -> Self {
        Self { dpe_rows: 4, dpe_cols: 4, kernel_policy: KernelPolicy::Auto, seed: 42, fusion: true }
    }
}

impl FunctionalOptions {
    /// Sets the DPE-array geometry.
    #[must_use]
    pub fn with_dpe(mut self, rows: usize, cols: usize) -> Self {
        self.dpe_rows = rows;
        self.dpe_cols = cols;
        self
    }

    /// Sets the host-simulation kernel policy.
    #[must_use]
    pub fn with_kernel_policy(mut self, policy: KernelPolicy) -> Self {
        self.kernel_policy = policy;
        self
    }

    /// Sets the weight/input synthesis seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables IR-lowered epilogue fusion at cache install.
    #[must_use]
    pub fn with_fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }
}

#[derive(Debug, Clone)]
enum WorkloadSpec {
    Zoo(ModelZoo),
    Custom { net: Arc<SuperNet>, subnets: Vec<SubNet> },
}

/// Builder for [`Engine`]: every knob named, every knob defaulted.
///
/// Defaults reproduce the paper configuration: MobileNetV3 zoo, full
/// [`Variant::Sushi`], [`Policy::StrictAccuracy`], the workload's caching
/// window `Q`, 16 SushiAbs candidates, the ZCU104 board, seed `0xC0FFEE`,
/// the analytical backend, and a single-worker unbatched serving loop.
///
/// ```
/// use sushi_core::engine::{BackendKind, EngineBuilder, ModelZoo};
/// use sushi_sched::Policy;
///
/// let engine = EngineBuilder::new()
///     .zoo(ModelZoo::MobileNetV3)
///     .policy(Policy::StrictAccuracy)
///     .q_window(10)
///     .candidates(4)
///     .backend(BackendKind::Analytical)
///     .build()?;
/// assert_eq!(engine.subnets().len(), 7);
/// # Ok::<(), sushi_core::SushiError>(())
/// ```
#[derive(Debug, Clone)]
#[must_use]
pub struct EngineBuilder {
    workload: WorkloadSpec,
    variant: Variant,
    policy: Policy,
    selection_override: Option<CacheSelection>,
    q_window: Option<usize>,
    candidates: usize,
    accel: AccelConfig,
    seed: u64,
    backend: BackendKind,
    functional: FunctionalOptions,
    table_override: Option<LatencyTable>,
    sim: SimConfig,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// Starts from the paper-default configuration.
    pub fn new() -> Self {
        Self {
            workload: WorkloadSpec::Zoo(ModelZoo::MobileNetV3),
            variant: Variant::Sushi,
            policy: Policy::StrictAccuracy,
            selection_override: None,
            q_window: None,
            candidates: 16,
            accel: sushi_accel::config::zcu104(),
            seed: 0xC0FFEE,
            backend: BackendKind::Analytical,
            functional: FunctionalOptions::default(),
            table_override: None,
            sim: SimConfig::default(),
        }
    }

    /// Selects a built-in zoo workload (SuperNet + paper Pareto picks).
    pub fn zoo(mut self, zoo: ModelZoo) -> Self {
        self.workload = WorkloadSpec::Zoo(zoo);
        self
    }

    /// Serves a custom SuperNet with an explicit serving set (e.g. sampled
    /// toy-zoo SubNets for functional runs).
    pub fn workload(mut self, net: Arc<SuperNet>, subnets: Vec<SubNet>) -> Self {
        self.workload = WorkloadSpec::Custom { net, subnets };
        self
    }

    /// Selects the §5.7 serving variant (default: full SUSHI).
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the hard-constraint scheduling policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the cache-selection rule the variant implies (ablations:
    /// cosine distance, frozen first choice, …).
    pub fn cache_selection(mut self, selection: CacheSelection) -> Self {
        self.selection_override = Some(selection);
        self
    }

    /// Sets Algorithm 1's caching window `Q` (default: the workload's
    /// paper value — 10 for MobileNetV3, 8 otherwise).
    pub fn q_window(mut self, q: usize) -> Self {
        self.q_window = Some(q);
        self
    }

    /// Sets the SushiAbs candidate-set size.
    pub fn candidates(mut self, n: usize) -> Self {
        self.candidates = n;
        self
    }

    /// Sets the accelerator configuration (default: ZCU104).
    pub fn accel_config(mut self, config: AccelConfig) -> Self {
        self.accel = config;
        self
    }

    /// Sets the master seed (candidate sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the execution backend (default: analytical).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Sets every functional-backend knob at once.
    pub fn functional_options(mut self, options: FunctionalOptions) -> Self {
        self.functional = options;
        self
    }

    /// Sets the functional backend's host-simulation kernel policy.
    pub fn kernel_policy(mut self, policy: KernelPolicy) -> Self {
        self.functional.kernel_policy = policy;
        self
    }

    /// Enables or disables the functional backend's IR-lowered epilogue
    /// fusion (default on; logits are bit-identical either way).
    pub fn fusion(mut self, fusion: bool) -> Self {
        self.functional.fusion = fusion;
        self
    }

    /// Supplies a pre-built latency table instead of building one from the
    /// accelerator configuration (candidate-set ablations). Its rows must
    /// match the serving set.
    pub fn table(mut self, table: LatencyTable) -> Self {
        self.table_override = Some(table);
        self
    }

    /// Sets every serving-loop knob at once.
    pub fn sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the number of serving workers (accelerator replicas).
    pub fn workers(mut self, workers: usize) -> Self {
        self.sim.workers = workers;
        self
    }

    /// Sets the admission-queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.sim.queue_capacity = capacity;
        self
    }

    /// Sets the admission-queue overflow/deadline policy.
    pub fn drop_policy(mut self, policy: DropPolicy) -> Self {
        self.sim.drop_policy = policy;
        self
    }

    /// Sets the dynamic-batching policy.
    pub fn batch_policy(mut self, batch: BatchPolicy) -> Self {
        self.sim.batch = batch;
        self
    }

    /// Sets the replica routing policy for [`Engine::serve_timed`]
    /// (default: least-loaded).
    pub fn routing(mut self, routing: RoutingPolicy) -> Self {
        self.sim.routing = routing;
        self
    }

    /// Enables load-adaptive degradation for [`Engine::serve_timed`]: the
    /// serving loop walks SubNet selection down the latency ladder under
    /// pressure and back up when idle (see
    /// [`sushi_sched::AdaptivePolicy`]). Without this knob the loop is
    /// static and bit-identical to the pre-adaptive runtime.
    pub fn adaptive(mut self, opts: AdaptiveOptions) -> Self {
        self.sim.adaptive = Some(opts);
        self
    }

    /// Enables (`Some`) or disables (`None`) tenant-tiered adaptation for
    /// [`Engine::serve_timed`]: one degradation ladder per priority tier
    /// ([`sushi_sched::TenantPolicy`]), best-effort-first shedding, and an
    /// optional feed-forward arrival predictor. Mutually exclusive with
    /// [`Self::adaptive`] — `build` rejects setting both. With `None`
    /// (the default) the loop is bit-identical to the tierless runtime.
    pub fn tenants(mut self, opts: Option<TenantOptions>) -> Self {
        self.sim.tenants = opts;
        self
    }

    /// Enables (`Some`) or disables (`None`) deterministic fault injection
    /// for [`Engine::serve_timed`]: seeded replica crashes, straggler
    /// episodes, and transient batch errors, supervised by retry/hedge/
    /// quarantine policies unless stripped
    /// ([`FaultOptions::without_supervision`]). With `None` (the default)
    /// the serving loop is bit-identical to the fault-free runtime.
    pub fn faults(mut self, opts: Option<FaultOptions>) -> Self {
        self.sim.faults = opts;
        self
    }

    /// Assembles the engine: loads the workload, derives the
    /// variant-adjusted accelerator configuration and cache-selection
    /// rule, builds (or adopts) the SushiAbs latency table, and
    /// instantiates the execution backend.
    ///
    /// # Errors
    /// Returns [`SushiError::Config`] on an empty serving set, a zero
    /// `Q`/worker/queue/batch knob, or a latency-table/serving-set
    /// mismatch.
    pub fn build(self) -> Result<Engine, SushiError> {
        let (net, subnets, default_q) = match self.workload {
            WorkloadSpec::Zoo(z) => z.load(),
            WorkloadSpec::Custom { net, subnets } => (net, subnets, 8),
        };
        if subnets.is_empty() {
            return Err(SushiError::Config("serving set is empty".into()));
        }
        let q_window = self.q_window.unwrap_or(default_q);
        if q_window == 0 {
            return Err(SushiError::Config("cache window Q must be at least 1".into()));
        }
        if self.sim.workers == 0 {
            return Err(SushiError::Config("worker count must be at least 1".into()));
        }
        if self.sim.queue_capacity == 0 {
            return Err(SushiError::Config("queue capacity must be at least 1".into()));
        }
        if let Some(opts) = &self.sim.adaptive {
            if let Err(e) = opts.validate() {
                return Err(SushiError::Config(e));
            }
        }
        if let Some(opts) = &self.sim.tenants {
            if let Err(e) = opts.validate() {
                return Err(SushiError::Config(e));
            }
            if self.sim.adaptive.is_some() {
                return Err(SushiError::Config(
                    "adaptive and tenants are mutually exclusive: the tenant controller \
                     already runs one adaptive ladder per tier"
                        .into(),
                ));
            }
        }
        if let Some(opts) = &self.sim.faults {
            if let Err(e) = opts.validate() {
                return Err(SushiError::Config(e));
            }
        }
        if self.sim.batch.max_batch == 0 {
            return Err(SushiError::Config("batch size must be at least 1".into()));
        }
        if !(self.sim.batch.max_wait_ms.is_finite() && self.sim.batch.max_wait_ms >= 0.0) {
            return Err(SushiError::Config("batch wait must be finite and non-negative".into()));
        }
        let (config, derived_selection) = match self.variant {
            Variant::NoSushi => (self.accel.without_pb(), CacheSelection::Disabled),
            Variant::SushiNoSched => (self.accel.clone(), CacheSelection::FollowLast),
            Variant::Sushi => (self.accel.clone(), CacheSelection::MinDistanceToAvg),
        };
        let selection = self.selection_override.unwrap_or(derived_selection);
        let table = match self.table_override {
            Some(t) => t,
            None => build_table(&net, &subnets, &config, self.candidates, self.seed),
        };
        if table.num_rows() != subnets.len() {
            return Err(SushiError::Config(format!(
                "latency table has {} rows but the serving set has {} SubNets",
                table.num_rows(),
                subnets.len()
            )));
        }
        let backend: Box<dyn ExecutionBackend> = match self.backend {
            BackendKind::Analytical => Box::new(Analytical),
            BackendKind::Functional => {
                let f = self.functional;
                if f.dpe_rows == 0 || f.dpe_cols == 0 {
                    return Err(SushiError::Config("DPE array dims must be positive".into()));
                }
                let dpe = DpeArray::new(f.dpe_rows, f.dpe_cols).with_policy(f.kernel_policy);
                Box::new(Functional::new(dpe, &net, f.seed).with_fusion(f.fusion))
            }
        };
        Ok(Engine {
            net,
            subnets,
            table,
            config,
            policy: self.policy,
            selection,
            q_window,
            sim: self.sim,
            backend,
            stack: None,
            timed: None,
        })
    }
}

/// The assembled serving stack: scheduler, latency table, accelerator
/// configuration and execution backend behind two run modes.
///
/// Each run mode keeps its own state (scheduler history, Persistent-Buffer
/// contents, worker clocks) across calls, exactly like the pre-builder
/// `SushiStack` / `ServingSim` objects did; build a fresh engine for an
/// independent run.
#[derive(Debug)]
#[must_use]
pub struct Engine {
    net: Arc<SuperNet>,
    subnets: Vec<SubNet>,
    table: LatencyTable,
    config: AccelConfig,
    policy: Policy,
    selection: CacheSelection,
    q_window: usize,
    sim: SimConfig,
    backend: Box<dyn ExecutionBackend>,
    stack: Option<SushiStack>,
    timed: Option<ServingSim>,
}

impl Engine {
    /// The SuperNet being served.
    #[must_use]
    pub fn net(&self) -> &SuperNet {
        &self.net
    }

    /// The serving SubNets (latency-table row order).
    #[must_use]
    pub fn subnets(&self) -> &[SubNet] {
        &self.subnets
    }

    /// The SushiAbs latency table.
    #[must_use]
    pub fn table(&self) -> &LatencyTable {
        &self.table
    }

    /// The serving-loop configuration used by [`Engine::serve_timed`].
    #[must_use]
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim
    }

    /// Stable label of the active execution backend.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Memory the execution backend holds across batches (packed panels +
    /// kernel-scratch arena); `None` for the stateless analytical backend.
    /// Soak tests assert this stays flat once every serving SubNet has
    /// been packed.
    #[must_use]
    pub fn memory_stats(&self) -> Option<sushi_accel::MemoryStats> {
        self.backend.memory_stats()
    }

    /// Derives the query-constraint space from the serving set's accuracy
    /// band and cold (uncached) latencies — the standard way to sample
    /// meaningful streams for this engine.
    #[must_use]
    pub fn constraint_space(&self) -> ConstraintSpace {
        let accs: Vec<f64> = self.subnets.iter().map(|p| p.accuracy).collect();
        let lats: Vec<f64> =
            (0..self.table.num_rows()).map(|i| self.table.latency_ms(i, 0)).collect();
        ConstraintSpace::from_serving_set(&accs, &lats)
    }

    /// Serves one query through the batch-replay loop (Fig. 4).
    ///
    /// # Errors
    /// Returns [`SushiError::Backend`] when the execution backend fails.
    pub fn serve(&mut self, query: &Query) -> Result<ServedRecord, SushiError> {
        let Self {
            net, subnets, table, config, policy, selection, q_window, backend, stack, ..
        } = self;
        let stack = stack.get_or_insert_with(|| {
            SushiStack::from_parts(
                Arc::clone(net),
                subnets.clone(),
                table.clone(),
                config.clone(),
                *policy,
                *selection,
                *q_window,
            )
        });
        stack.serve(backend.as_mut(), query)
    }

    /// Serves a whole constraint stream through the batch-replay loop,
    /// continuing from any state earlier calls accumulated.
    ///
    /// # Errors
    /// Returns [`SushiError::Backend`] when the execution backend fails.
    pub fn serve_stream(&mut self, queries: &[Query]) -> Result<Vec<ServedRecord>, SushiError> {
        queries.iter().map(|q| self.serve(q)).collect()
    }

    /// Runs the event-driven serving simulation over an arrival-ordered
    /// [`TimedQuery`] stream to completion (open-loop arrivals, bounded
    /// admission queue, dynamic batching, worker pool, SLO accounting).
    ///
    /// # Errors
    /// Returns [`SushiError::Stream`] on an empty or unsorted stream and
    /// [`SushiError::Backend`] when the execution backend fails.
    pub fn serve_timed(&mut self, stream: &[TimedQuery]) -> Result<SimResult, SushiError> {
        let Self {
            net,
            subnets,
            table,
            config,
            policy,
            selection,
            q_window,
            sim,
            backend,
            timed,
            ..
        } = self;
        let runtime = timed.get_or_insert_with(|| {
            ServingSim::from_parts(
                Arc::clone(net),
                subnets.clone(),
                table.clone(),
                config,
                *policy,
                *selection,
                *q_window,
                *sim,
            )
        });
        runtime.run(backend.as_mut(), stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::uniform_stream;

    #[test]
    fn defaults_build_the_paper_configuration() {
        let engine = EngineBuilder::new().candidates(4).build().unwrap();
        assert_eq!(engine.subnets().len(), 7, "MobileNetV3 paper picks");
        assert_eq!(engine.backend_name(), "analytical");
        assert_eq!(engine.table().num_columns(), 5, "4 candidates + empty column");
    }

    #[test]
    fn functional_backend_builds_with_multiple_workers() {
        let engine =
            EngineBuilder::new().backend(BackendKind::Functional).workers(4).build().unwrap();
        assert_eq!(engine.backend_name(), "functional");
        assert_eq!(engine.sim_config().workers, 4);
    }

    #[test]
    fn degenerate_knobs_are_config_errors() {
        assert!(EngineBuilder::new().q_window(0).build().is_err());
        assert!(EngineBuilder::new().workers(0).build().is_err());
        assert!(EngineBuilder::new().queue_capacity(0).build().is_err());
        let bad_faults = FaultOptions::default().with_transient_rate(2.0);
        assert!(EngineBuilder::new().faults(Some(bad_faults)).build().is_err());
    }

    #[test]
    fn mismatched_table_override_is_a_config_error() {
        let a = EngineBuilder::new().zoo(ModelZoo::ResNet50).candidates(0).build().unwrap();
        let err = EngineBuilder::new()
            .zoo(ModelZoo::MobileNetV3)
            .table(a.table().clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, SushiError::Config(_)));
    }

    #[test]
    fn backend_kind_round_trips_through_names() {
        for kind in [BackendKind::Analytical, BackendKind::Functional] {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("fpga".parse::<BackendKind>().is_err());
    }

    #[test]
    fn serve_stream_state_persists_across_calls() {
        let mut split = EngineBuilder::new().candidates(6).seed(3).build().unwrap();
        let mut whole = EngineBuilder::new().candidates(6).seed(3).build().unwrap();
        let space = split.constraint_space();
        let queries = uniform_stream(&space, 30, 5);
        let a = split.serve_stream(&queries[..15]).unwrap();
        let b = split.serve_stream(&queries[15..]).unwrap();
        let all = whole.serve_stream(&queries).unwrap();
        let joined: Vec<_> = a.into_iter().chain(b).collect();
        assert_eq!(joined, all, "two half-streams must equal one whole stream");
    }

    #[test]
    fn variants_map_to_cache_behavior() {
        let no_sushi = EngineBuilder::new().variant(Variant::NoSushi).candidates(4).build();
        let engine = no_sushi.unwrap();
        assert_eq!(engine.table().num_columns(), 1, "PB-less variant has no cached columns");
    }
}
