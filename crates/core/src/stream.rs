//! Query-stream generators.
//!
//! The paper's applications (§1) operate under *dynamically variable
//! deployment conditions*: variable traffic, battery level, and query
//! complexity. These generators produce deterministic constraint streams
//! covering the evaluation's random queries (§5.6–5.7) plus two motivating
//! scenarios: autonomous-vehicle terrain phases and ICU triage bursts.

use serde::{Deserialize, Serialize};

use sushi_sched::Query;
use sushi_tensor::DetRng;

/// Constraint bounds derived from a serving set, used to sample meaningful
/// `(Aₜ, Lₜ)` pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstraintSpace {
    /// Lowest accuracy constraint to issue.
    pub acc_lo: f64,
    /// Highest accuracy constraint to issue.
    pub acc_hi: f64,
    /// Tightest latency constraint to issue (ms).
    pub lat_lo: f64,
    /// Loosest latency constraint to issue (ms).
    pub lat_hi: f64,
}

impl ConstraintSpace {
    /// Minimum half-width of a constraint band. A single-SubNet serving set
    /// (or one where every SubNet reports the same accuracy/latency) would
    /// otherwise collapse a band to a point, making every sampled stream
    /// issue one identical constraint.
    pub const DEGENERATE_BAND_EPS: f64 = 1e-3;

    /// Derives a constraint space from the serving SubNets' accuracy band
    /// and their cold latencies.
    ///
    /// Degenerate bands (all accuracies equal, or all latencies equal with
    /// a zero-width `[0.8x, 1.1x]` window when `x == 0`) are widened by
    /// [`Self::DEGENERATE_BAND_EPS`] so the space always has positive area.
    ///
    /// # Panics
    /// Panics if `accuracies` or `cold_latencies_ms` is empty.
    #[must_use]
    pub fn from_serving_set(accuracies: &[f64], cold_latencies_ms: &[f64]) -> Self {
        assert!(!accuracies.is_empty() && !cold_latencies_ms.is_empty());
        let acc_lo = accuracies.iter().copied().fold(f64::INFINITY, f64::min);
        let acc_hi = accuracies.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lat_min = cold_latencies_ms.iter().copied().fold(f64::INFINITY, f64::min);
        let lat_max = cold_latencies_ms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (acc_lo, acc_hi) = Self::widen_if_degenerate(acc_lo, acc_hi);
        let (lat_lo, lat_hi) = Self::widen_if_degenerate(lat_min * 0.8, lat_max * 1.1);
        Self { acc_lo, acc_hi, lat_lo, lat_hi }
    }

    fn widen_if_degenerate(lo: f64, hi: f64) -> (f64, f64) {
        if hi - lo >= Self::DEGENERATE_BAND_EPS {
            (lo, hi)
        } else {
            let mid = f64::midpoint(lo, hi);
            (mid - Self::DEGENERATE_BAND_EPS, mid + Self::DEGENERATE_BAND_EPS)
        }
    }
}

/// A [`Query`] annotated with its open-loop arrival time and tenant.
///
/// The batch-replay experiments (§5.6–5.7) consume bare `Vec<Query>`
/// streams; the serving runtime ([`crate::serving`]) needs *when* each
/// query arrives and, for multi-tenant mixes, *who* issued it. One shared
/// wrapper keeps the two views consistent instead of threading parallel
/// `Vec<f64>` timestamp arrays next to every stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedQuery {
    /// Simulated arrival time in milliseconds since stream start.
    pub arrival_ms: f64,
    /// Tenant index (0 for single-tenant streams).
    pub tenant: u32,
    /// The constraint query itself.
    pub query: Query,
}

impl TimedQuery {
    /// Wraps a query with an arrival timestamp (tenant 0).
    #[must_use]
    pub fn new(arrival_ms: f64, query: Query) -> Self {
        Self { arrival_ms, tenant: 0, query }
    }

    /// Tags the query with a tenant index.
    #[must_use]
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Absolute completion deadline implied by the latency constraint
    /// (arrival + `Lₜ`): the serving runtime's SLO reference point.
    #[must_use]
    pub fn deadline_ms(&self) -> f64 {
        self.arrival_ms + self.query.latency_constraint_ms
    }
}

/// Zips a constraint stream with arrival timestamps into [`TimedQuery`]s.
///
/// Existing `Vec<Query>` consumers are untouched; the serving runtime
/// attaches timestamps produced by a [`crate::serving::ArrivalProcess`].
///
/// # Panics
/// Panics if the two slices differ in length or `arrivals_ms` is not
/// sorted in non-decreasing order.
#[must_use]
pub fn attach_arrivals(queries: &[Query], arrivals_ms: &[f64]) -> Vec<TimedQuery> {
    assert_eq!(queries.len(), arrivals_ms.len(), "queries / arrivals length mismatch");
    assert!(
        arrivals_ms.windows(2).all(|w| w[0] <= w[1]),
        "arrival timestamps must be non-decreasing"
    );
    queries.iter().zip(arrivals_ms).map(|(q, &t)| TimedQuery::new(t, *q)).collect()
}

/// Merges per-tenant timed streams into one arrival-ordered stream.
///
/// The merge is stable: ties in arrival time keep the lower tenant first,
/// so the result is deterministic. Query ids are reassigned to the merged
/// order (`0..n`) so downstream consumers see a single monotone stream.
#[must_use]
pub fn merge_tenant_streams(streams: &[Vec<TimedQuery>]) -> Vec<TimedQuery> {
    let mut merged: Vec<TimedQuery> = Vec::with_capacity(streams.iter().map(Vec::len).sum());
    for (tenant, stream) in streams.iter().enumerate() {
        merged.extend(stream.iter().map(|tq| tq.with_tenant(tenant as u32)));
    }
    merged.sort_by(|a, b| {
        a.arrival_ms.total_cmp(&b.arrival_ms).then_with(|| a.tenant.cmp(&b.tenant))
    });
    for (i, tq) in merged.iter_mut().enumerate() {
        tq.query.id = i as u64;
    }
    merged
}

/// Uniform random constraints over the space (§5.6's "random queries").
#[must_use]
pub fn uniform_stream(space: &ConstraintSpace, n: usize, seed: u64) -> Vec<Query> {
    let mut rng = DetRng::new(seed);
    (0..n as u64)
        .map(|id| {
            let a = space.acc_lo + (space.acc_hi - space.acc_lo) * rng.next_f64();
            let l = space.lat_lo + (space.lat_hi - space.lat_lo) * rng.next_f64();
            Query::new(id, a, l)
        })
        .collect()
}

/// Phase of an autonomous-vehicle trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerrainPhase {
    /// Sparse suburban driving: relaxed latency, high accuracy demanded.
    SparseSuburban,
    /// Dense urban driving: tight latency dominates.
    DenseUrban,
}

/// Autonomous-vehicle navigation trace (§1's "sparse suburban vs dense
/// urban terrain"): alternating phases of `phase_len` queries. Urban phases
/// tighten the latency constraint toward the bottom quartile; suburban
/// phases demand top-quartile accuracy with relaxed latency.
#[must_use]
pub fn av_navigation_stream(
    space: &ConstraintSpace,
    n: usize,
    phase_len: usize,
    seed: u64,
) -> Vec<(TerrainPhase, Query)> {
    let mut rng = DetRng::new(seed);
    let phase_len = phase_len.max(1);
    (0..n as u64)
        .map(|id| {
            let phase = if (id as usize / phase_len).is_multiple_of(2) {
                TerrainPhase::SparseSuburban
            } else {
                TerrainPhase::DenseUrban
            };
            let (a, l) = match phase {
                TerrainPhase::SparseSuburban => (
                    space.acc_hi - 0.25 * (space.acc_hi - space.acc_lo) * rng.next_f64(),
                    space.lat_hi - 0.2 * (space.lat_hi - space.lat_lo) * rng.next_f64(),
                ),
                TerrainPhase::DenseUrban => (
                    space.acc_lo + 0.3 * (space.acc_hi - space.acc_lo) * rng.next_f64(),
                    space.lat_lo + 0.25 * (space.lat_hi - space.lat_lo) * rng.next_f64(),
                ),
            };
            (phase, Query::new(id, a, l))
        })
        .collect()
}

/// ICU triage trace (§1's "variable number of patients triaged"): baseline
/// load with deterministic bursts. During a burst, latency constraints
/// tighten (more patients per unit time) while accuracy demands stay high —
/// the regime where a single static model underperforms.
#[must_use]
pub fn icu_burst_stream(
    space: &ConstraintSpace,
    n: usize,
    burst_period: usize,
    burst_len: usize,
    seed: u64,
) -> Vec<(bool, Query)> {
    let mut rng = DetRng::new(seed);
    let period = burst_period.max(1);
    (0..n as u64)
        .map(|id| {
            let in_burst = (id as usize).rem_euclid(period) < burst_len;
            let a = space.acc_hi - 0.2 * (space.acc_hi - space.acc_lo) * rng.next_f64();
            let l = if in_burst {
                space.lat_lo + 0.15 * (space.lat_hi - space.lat_lo) * rng.next_f64()
            } else {
                space.lat_lo + (0.5 + 0.5 * rng.next_f64()) * (space.lat_hi - space.lat_lo)
            };
            (in_burst, Query::new(id, a, l))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConstraintSpace {
        ConstraintSpace { acc_lo: 0.75, acc_hi: 0.80, lat_lo: 4.0, lat_hi: 20.0 }
    }

    #[test]
    fn from_serving_set_spans_inputs() {
        let s = ConstraintSpace::from_serving_set(&[0.75, 0.80], &[5.0, 18.0]);
        assert_eq!(s.acc_lo, 0.75);
        assert_eq!(s.acc_hi, 0.80);
        assert!(s.lat_lo < 5.0 && s.lat_hi > 18.0);
    }

    #[test]
    fn single_subnet_serving_set_widens_degenerate_bands() {
        // One SubNet => acc_lo == acc_hi before widening; the space must
        // still have positive area so streams sample distinct constraints.
        let s = ConstraintSpace::from_serving_set(&[0.77], &[5.0]);
        assert!(s.acc_lo < 0.77 && 0.77 < s.acc_hi);
        assert!(s.lat_lo < s.lat_hi);
        let qs = uniform_stream(&s, 8, 3);
        assert!(qs.iter().any(|q| q.accuracy_constraint != qs[0].accuracy_constraint));
    }

    #[test]
    fn equal_accuracies_widen_but_latency_band_survives() {
        let s = ConstraintSpace::from_serving_set(&[0.8, 0.8, 0.8], &[4.0, 10.0]);
        assert!(s.acc_hi - s.acc_lo >= 2.0 * ConstraintSpace::DEGENERATE_BAND_EPS - 1e-12);
        // Non-degenerate latency band is untouched.
        assert!((s.lat_lo - 3.2).abs() < 1e-12 && (s.lat_hi - 11.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_stream_stays_in_bounds() {
        let qs = uniform_stream(&space(), 200, 1);
        assert_eq!(qs.len(), 200);
        for q in &qs {
            assert!((0.75..=0.80).contains(&q.accuracy_constraint));
            assert!((4.0..=20.0).contains(&q.latency_constraint_ms));
        }
    }

    #[test]
    fn uniform_stream_is_deterministic() {
        assert_eq!(uniform_stream(&space(), 50, 9), uniform_stream(&space(), 50, 9));
        assert_ne!(uniform_stream(&space(), 50, 9), uniform_stream(&space(), 50, 10));
    }

    #[test]
    fn av_stream_alternates_phases() {
        let qs = av_navigation_stream(&space(), 40, 10, 2);
        assert_eq!(qs[0].0, TerrainPhase::SparseSuburban);
        assert_eq!(qs[10].0, TerrainPhase::DenseUrban);
        assert_eq!(qs[20].0, TerrainPhase::SparseSuburban);
    }

    #[test]
    fn urban_phase_is_latency_tight() {
        let qs = av_navigation_stream(&space(), 200, 10, 3);
        let mean = |phase: TerrainPhase| {
            let v: Vec<f64> = qs
                .iter()
                .filter(|(p, _)| *p == phase)
                .map(|(_, q)| q.latency_constraint_ms)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(TerrainPhase::DenseUrban) < mean(TerrainPhase::SparseSuburban));
    }

    #[test]
    fn icu_bursts_tighten_latency() {
        let qs = icu_burst_stream(&space(), 300, 30, 10, 4);
        let burst: Vec<f64> =
            qs.iter().filter(|(b, _)| *b).map(|(_, q)| q.latency_constraint_ms).collect();
        let calm: Vec<f64> =
            qs.iter().filter(|(b, _)| !*b).map(|(_, q)| q.latency_constraint_ms).collect();
        let mb = burst.iter().sum::<f64>() / burst.len() as f64;
        let mc = calm.iter().sum::<f64>() / calm.len() as f64;
        assert!(mb < mc, "burst {mb} !< calm {mc}");
    }

    #[test]
    fn attach_arrivals_pairs_in_order() {
        let qs = uniform_stream(&space(), 4, 1);
        let ts = vec![0.0, 1.5, 1.5, 9.0];
        let timed = attach_arrivals(&qs, &ts);
        assert_eq!(timed.len(), 4);
        assert_eq!(timed[3].arrival_ms, 9.0);
        assert_eq!(timed[2].query, qs[2]);
        assert_eq!(timed[0].tenant, 0);
        assert!((timed[1].deadline_ms() - (1.5 + qs[1].latency_constraint_ms)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn attach_arrivals_rejects_unsorted_timestamps() {
        let qs = uniform_stream(&space(), 2, 1);
        let _ = attach_arrivals(&qs, &[5.0, 1.0]);
    }

    #[test]
    fn merge_tenant_streams_is_sorted_and_tagged() {
        let qs = uniform_stream(&space(), 3, 1);
        let a = attach_arrivals(&qs, &[0.0, 4.0, 8.0]);
        let b = attach_arrivals(&qs, &[1.0, 4.0, 10.0]);
        let merged = merge_tenant_streams(&[a, b]);
        assert_eq!(merged.len(), 6);
        assert!(merged.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
        // Tie at t=4.0 keeps tenant 0 first.
        let tie: Vec<u32> =
            merged.iter().filter(|tq| tq.arrival_ms == 4.0).map(|tq| tq.tenant).collect();
        assert_eq!(tie, vec![0, 1]);
        // Ids are reassigned to the merged order.
        assert_eq!(
            merged.iter().map(|tq| tq.query.id).collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
    }

    #[test]
    fn icu_accuracy_demands_stay_high() {
        let qs = icu_burst_stream(&space(), 100, 20, 5, 5);
        for (_, q) in &qs {
            assert!(q.accuracy_constraint >= 0.75 + 0.8 * 0.05 - 1e-9);
        }
    }
}
