//! The vertically integrated SUSHI serving stack (§3.1, Fig. 4).
//!
//! Wires `SushiSched` to `SushiAccel` through the `SushiAbs` latency table:
//! per query, the scheduler selects the SubNet under the current cache
//! state; the accelerator serves it through the engine's
//! [`ExecutionBackend`]; every `Q` queries the scheduler's caching decision
//! is enacted on the accelerator (reload charged to the following query,
//! stage B of Fig. 9a).
//!
//! Constructed exclusively by [`crate::engine::EngineBuilder`]; use
//! [`crate::engine::Engine::serve_stream`].

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sushi_accel::backend::ExecutionBackend;
use sushi_accel::exec::Accelerator;
use sushi_accel::AccelConfig;
use sushi_sched::{CacheSelection, LatencyTable, Policy, Query, Scheduler};
use sushi_wsnet::encoding::overlap_ratio;
use sushi_wsnet::{SubGraph, SubNet, SuperNet};

use crate::error::SushiError;

/// Everything recorded about one served query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct ServedRecord {
    /// The query as issued.
    pub query: Query,
    /// Name of the SubNet served.
    pub subnet: String,
    /// Row index of the SubNet in the latency table.
    pub subnet_row: usize,
    /// Accuracy delivered (fixed per SubNet).
    pub served_accuracy: f64,
    /// End-to-end latency delivered, in ms (includes any PB reload).
    pub served_latency_ms: f64,
    /// Cache-hit ratio ‖SNₜ ∩ Gₜ‖₂ / ‖SNₜ‖₂ at serve time (Appendix A.4).
    pub hit_ratio: f64,
    /// Off-chip energy for this query, mJ.
    pub offchip_mj: f64,
    /// On-chip energy for this query, mJ.
    pub onchip_mj: f64,
    /// Whether a cache update was enacted after this query.
    pub cache_updated: bool,
    /// Functional-backend prediction (`None` under the analytical backend).
    pub prediction: Option<usize>,
}

/// The integrated serving stack (the engine's batch-replay run state).
#[derive(Debug)]
pub struct SushiStack {
    net: Arc<SuperNet>,
    subnets: Vec<SubNet>,
    accel: Accelerator,
    sched: Scheduler,
}

impl SushiStack {
    /// Assembles a stack from engine-validated parts. `subnets` must be
    /// the serving set (in row order) the `table` rows were built from —
    /// [`crate::engine::EngineBuilder::build`] enforces this.
    pub(crate) fn from_parts(
        net: Arc<SuperNet>,
        subnets: Vec<SubNet>,
        table: LatencyTable,
        config: AccelConfig,
        policy: Policy,
        cache_selection: CacheSelection,
        q_window: usize,
    ) -> Self {
        debug_assert_eq!(subnets.len(), table.num_rows(), "serving set / table mismatch");
        Self {
            net,
            subnets,
            accel: Accelerator::new(config),
            sched: Scheduler::new(table, policy, cache_selection, q_window),
        }
    }

    /// The SuperNet being served.
    #[must_use]
    pub fn net(&self) -> &SuperNet {
        &self.net
    }

    /// The serving SubNets (row order).
    #[must_use]
    pub fn subnets(&self) -> &[SubNet] {
        &self.subnets
    }

    /// The scheduler (for inspection).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Serves one query end-to-end through `backend`.
    ///
    /// # Errors
    /// Returns [`SushiError::Backend`] when the backend fails.
    pub fn serve(
        &mut self,
        backend: &mut dyn ExecutionBackend,
        query: &Query,
    ) -> Result<ServedRecord, SushiError> {
        let decision = self.sched.decide(query);
        let subnet = &self.subnets[decision.subnet_row];
        let empty = SubGraph::empty(self.net.num_layers());
        let cached_now = self.accel.cached().unwrap_or(&empty);
        let hit_ratio = overlap_ratio(&subnet.graph, cached_now);
        let exec = backend.execute_batch(&mut self.accel, &self.net, subnet, &[query.id])?;
        // Enact the caching decision after serving (Algorithm 1: the cache
        // update takes effect for subsequent queries; its reload cost is
        // charged by the accelerator to the next serve).
        let mut cache_updated = false;
        if let Some(col) = decision.cache_update {
            let graph = self.sched.table().column(col).graph.clone();
            self.accel.install_cache(&self.net, graph);
            cache_updated = true;
        }
        Ok(ServedRecord {
            query: *query,
            subnet: subnet.name.clone(),
            subnet_row: decision.subnet_row,
            served_accuracy: subnet.accuracy,
            served_latency_ms: exec.report.total_latency_ms,
            hit_ratio,
            offchip_mj: exec.report.energy.offchip_mj,
            onchip_mj: exec.report.energy.onchip_mj,
            cache_updated,
            prediction: exec.outputs.as_ref().and_then(|o| o.first()).map(|o| o.prediction),
        })
    }

    /// Serves a whole stream.
    ///
    /// # Errors
    /// Returns [`SushiError::Backend`] when the backend fails.
    pub fn serve_stream(
        &mut self,
        backend: &mut dyn ExecutionBackend,
        queries: &[Query],
    ) -> Result<Vec<ServedRecord>, SushiError> {
        queries.iter().map(|q| self.serve(backend, q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineBuilder};
    use crate::stream::uniform_stream;
    use crate::variants::Variant;

    fn engine(variant: Variant) -> Engine {
        EngineBuilder::new()
            .variant(variant)
            .q_window(8)
            .candidates(12)
            .seed(42)
            .build()
            .expect("valid test configuration")
    }

    #[test]
    fn strict_accuracy_is_always_satisfied() {
        let mut e = engine(Variant::Sushi);
        let qs = uniform_stream(&e.constraint_space(), 100, 1);
        for r in e.serve_stream(&qs).unwrap() {
            assert!(
                r.served_accuracy >= r.query.accuracy_constraint - 1e-12,
                "query {} violated accuracy",
                r.query.id
            );
        }
    }

    #[test]
    fn hit_ratio_is_zero_before_first_cache_install() {
        let mut e = engine(Variant::Sushi);
        let qs = uniform_stream(&e.constraint_space(), 4, 2);
        let records = e.serve_stream(&qs).unwrap();
        assert_eq!(records[0].hit_ratio, 0.0);
    }

    #[test]
    fn hit_ratio_becomes_positive_after_warmup() {
        let mut e = engine(Variant::Sushi);
        let qs = uniform_stream(&e.constraint_space(), 60, 3);
        let records = e.serve_stream(&qs).unwrap();
        let tail_mean: f64 =
            records[20..].iter().map(|r| r.hit_ratio).sum::<f64>() / (records.len() - 20) as f64;
        assert!(tail_mean > 0.3, "tail hit ratio {tail_mean}");
    }

    #[test]
    fn no_sushi_never_caches() {
        let mut e = engine(Variant::NoSushi);
        let qs = uniform_stream(&e.constraint_space(), 40, 4);
        for r in e.serve_stream(&qs).unwrap() {
            assert_eq!(r.hit_ratio, 0.0);
            assert!(!r.cache_updated);
        }
    }

    #[test]
    fn analytical_records_carry_no_predictions() {
        let mut e = engine(Variant::Sushi);
        let qs = uniform_stream(&e.constraint_space(), 5, 9);
        for r in e.serve_stream(&qs).unwrap() {
            assert_eq!(r.prediction, None);
        }
    }

    #[test]
    fn sushi_beats_no_sushi_on_mean_latency() {
        let mk = |v| {
            EngineBuilder::new().variant(v).q_window(10).candidates(12).seed(42).build().unwrap()
        };
        let mut no_sushi = mk(Variant::NoSushi);
        let mut sushi = mk(Variant::Sushi);
        let qs = uniform_stream(&sushi.constraint_space(), 200, 5);
        let mean = |rs: &[ServedRecord]| {
            rs.iter().map(|r| r.served_latency_ms).sum::<f64>() / rs.len() as f64
        };
        let base = mean(&no_sushi.serve_stream(&qs).unwrap());
        let ours = mean(&sushi.serve_stream(&qs).unwrap());
        assert!(ours < base, "SUSHI {ours} !< No-SUSHI {base}");
    }

    #[test]
    fn serve_stream_length_matches_queries() {
        let mut e = engine(Variant::SushiNoSched);
        let qs = uniform_stream(&e.constraint_space(), 17, 6);
        assert_eq!(e.serve_stream(&qs).unwrap().len(), 17);
    }
}
