//! The vertically integrated SUSHI serving stack (§3.1, Fig. 4).
//!
//! Wires `SushiSched` to `SushiAccel` through the `SushiAbs` latency table:
//! per query, the scheduler selects the SubNet under the current cache
//! state; the accelerator serves it; every `Q` queries the scheduler's
//! caching decision is enacted on the accelerator (reload charged to the
//! following query, stage B of Fig. 9a).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sushi_accel::exec::Accelerator;
use sushi_accel::AccelConfig;
use sushi_sched::{CacheSelection, LatencyTable, Policy, Query, Scheduler};
use sushi_wsnet::encoding::overlap_ratio;
use sushi_wsnet::{SubGraph, SubNet, SuperNet};

/// Everything recorded about one served query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServedRecord {
    /// The query as issued.
    pub query: Query,
    /// Name of the SubNet served.
    pub subnet: String,
    /// Row index of the SubNet in the latency table.
    pub subnet_row: usize,
    /// Accuracy delivered (fixed per SubNet).
    pub served_accuracy: f64,
    /// End-to-end latency delivered, in ms (includes any PB reload).
    pub served_latency_ms: f64,
    /// Cache-hit ratio ‖SNₜ ∩ Gₜ‖₂ / ‖SNₜ‖₂ at serve time (Appendix A.4).
    pub hit_ratio: f64,
    /// Off-chip energy for this query, mJ.
    pub offchip_mj: f64,
    /// On-chip energy for this query, mJ.
    pub onchip_mj: f64,
    /// Whether a cache update was enacted after this query.
    pub cache_updated: bool,
}

/// The integrated serving stack.
#[derive(Debug)]
pub struct SushiStack {
    net: Arc<SuperNet>,
    subnets: Vec<SubNet>,
    accel: Accelerator,
    sched: Scheduler,
}

impl SushiStack {
    /// Assembles a stack. `subnets` must be the same serving set (in the
    /// same order) the `table` rows were built from.
    ///
    /// # Panics
    /// Panics if `subnets` and table rows disagree in length.
    #[must_use]
    pub fn new(
        net: Arc<SuperNet>,
        subnets: Vec<SubNet>,
        table: LatencyTable,
        config: AccelConfig,
        policy: Policy,
        cache_selection: CacheSelection,
        q_window: usize,
    ) -> Self {
        assert_eq!(subnets.len(), table.num_rows(), "serving set / table mismatch");
        Self {
            net,
            subnets,
            accel: Accelerator::new(config),
            sched: Scheduler::new(table, policy, cache_selection, q_window),
        }
    }

    /// The SuperNet being served.
    #[must_use]
    pub fn net(&self) -> &SuperNet {
        &self.net
    }

    /// The serving SubNets (row order).
    #[must_use]
    pub fn subnets(&self) -> &[SubNet] {
        &self.subnets
    }

    /// The scheduler (for inspection).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Serves one query end-to-end.
    pub fn serve(&mut self, query: &Query) -> ServedRecord {
        let decision = self.sched.decide(query);
        let subnet = &self.subnets[decision.subnet_row];
        let empty = SubGraph::empty(self.net.num_layers());
        let cached_now = self.accel.cached().unwrap_or(&empty);
        let hit_ratio = overlap_ratio(&subnet.graph, cached_now);
        let report = self.accel.serve(&self.net, subnet);
        // Enact the caching decision after serving (Algorithm 1: the cache
        // update takes effect for subsequent queries; its reload cost is
        // charged by the accelerator to the next serve).
        let mut cache_updated = false;
        if let Some(col) = decision.cache_update {
            let graph = self.sched.table().column(col).graph.clone();
            self.accel.install_cache(&self.net, graph);
            cache_updated = true;
        }
        ServedRecord {
            query: *query,
            subnet: subnet.name.clone(),
            subnet_row: decision.subnet_row,
            served_accuracy: subnet.accuracy,
            served_latency_ms: report.latency_ms,
            hit_ratio,
            offchip_mj: report.energy.offchip_mj,
            onchip_mj: report.energy.onchip_mj,
            cache_updated,
        }
    }

    /// Serves a whole stream.
    pub fn serve_stream(&mut self, queries: &[Query]) -> Vec<ServedRecord> {
        queries.iter().map(|q| self.serve(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{uniform_stream, ConstraintSpace};
    use crate::variants::{build_stack, Variant};
    use sushi_accel::config::zcu104;
    use sushi_wsnet::zoo;

    fn stack(variant: Variant) -> SushiStack {
        let net = Arc::new(zoo::mobilenet_v3_supernet());
        let picks = zoo::paper_subnets(&net);
        build_stack(variant, Arc::clone(&net), picks, &zcu104(), Policy::StrictAccuracy, 8, 12, 42)
    }

    fn space(s: &SushiStack) -> ConstraintSpace {
        let accs: Vec<f64> = s.subnets().iter().map(|p| p.accuracy).collect();
        let lats: Vec<f64> = (0..s.scheduler().table().num_rows())
            .map(|i| s.scheduler().table().latency_ms(i, 0))
            .collect();
        ConstraintSpace::from_serving_set(&accs, &lats)
    }

    #[test]
    fn strict_accuracy_is_always_satisfied() {
        let mut s = stack(Variant::Sushi);
        let qs = uniform_stream(&space(&s), 100, 1);
        for r in s.serve_stream(&qs) {
            assert!(
                r.served_accuracy >= r.query.accuracy_constraint - 1e-12,
                "query {} violated accuracy",
                r.query.id
            );
        }
    }

    #[test]
    fn hit_ratio_is_zero_before_first_cache_install() {
        let mut s = stack(Variant::Sushi);
        let qs = uniform_stream(&space(&s), 4, 2);
        let records = s.serve_stream(&qs);
        assert_eq!(records[0].hit_ratio, 0.0);
    }

    #[test]
    fn hit_ratio_becomes_positive_after_warmup() {
        let mut s = stack(Variant::Sushi);
        let qs = uniform_stream(&space(&s), 60, 3);
        let records = s.serve_stream(&qs);
        let tail_mean: f64 =
            records[20..].iter().map(|r| r.hit_ratio).sum::<f64>() / (records.len() - 20) as f64;
        assert!(tail_mean > 0.3, "tail hit ratio {tail_mean}");
    }

    #[test]
    fn no_sushi_never_caches() {
        let mut s = stack(Variant::NoSushi);
        let qs = uniform_stream(&space(&s), 40, 4);
        for r in s.serve_stream(&qs) {
            assert_eq!(r.hit_ratio, 0.0);
            assert!(!r.cache_updated);
        }
    }

    #[test]
    fn sushi_beats_no_sushi_on_mean_latency() {
        let net = Arc::new(zoo::mobilenet_v3_supernet());
        let picks = zoo::paper_subnets(&net);
        let mk = |v| {
            build_stack(
                v,
                Arc::clone(&net),
                picks.clone(),
                &zcu104(),
                Policy::StrictAccuracy,
                10,
                12,
                42,
            )
        };
        let mut no_sushi = mk(Variant::NoSushi);
        let mut sushi = mk(Variant::Sushi);
        let qs = uniform_stream(&space(&sushi), 200, 5);
        let mean = |rs: &[ServedRecord]| {
            rs.iter().map(|r| r.served_latency_ms).sum::<f64>() / rs.len() as f64
        };
        let base = mean(&no_sushi.serve_stream(&qs));
        let ours = mean(&sushi.serve_stream(&qs));
        assert!(ours < base, "SUSHI {ours} !< No-SUSHI {base}");
    }

    #[test]
    fn serve_stream_length_matches_queries() {
        let mut s = stack(Variant::SushiNoSched);
        let qs = uniform_stream(&space(&s), 17, 6);
        assert_eq!(s.serve_stream(&qs).len(), 17);
    }
}
