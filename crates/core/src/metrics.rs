//! Aggregate serving metrics.

use serde::{Deserialize, Serialize};

use crate::stack::ServedRecord;

/// Summary statistics over a served stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Number of queries.
    pub queries: usize,
    /// Mean served latency in ms.
    pub mean_latency_ms: f64,
    /// Mean served accuracy (fraction).
    pub mean_accuracy: f64,
    /// Fraction of queries whose latency constraint was met.
    pub latency_slo_attainment: f64,
    /// Fraction of queries whose accuracy constraint was met.
    pub accuracy_attainment: f64,
    /// Mean cache-hit ratio (Appendix A.4).
    pub mean_hit_ratio: f64,
    /// Total off-chip energy, mJ.
    pub total_offchip_mj: f64,
    /// Total on-chip energy, mJ.
    pub total_onchip_mj: f64,
}

/// Summarizes a served stream.
///
/// # Panics
/// Panics if `records` is empty.
#[must_use]
pub fn summarize(records: &[ServedRecord]) -> StreamSummary {
    assert!(!records.is_empty(), "cannot summarize an empty stream");
    let n = records.len() as f64;
    StreamSummary {
        queries: records.len(),
        mean_latency_ms: records.iter().map(|r| r.served_latency_ms).sum::<f64>() / n,
        mean_accuracy: records.iter().map(|r| r.served_accuracy).sum::<f64>() / n,
        latency_slo_attainment: records
            .iter()
            .filter(|r| r.served_latency_ms <= r.query.latency_constraint_ms)
            .count() as f64
            / n,
        accuracy_attainment: records
            .iter()
            .filter(|r| r.served_accuracy >= r.query.accuracy_constraint)
            .count() as f64
            / n,
        mean_hit_ratio: records.iter().map(|r| r.hit_ratio).sum::<f64>() / n,
        total_offchip_mj: records.iter().map(|r| r.offchip_mj).sum(),
        total_onchip_mj: records.iter().map(|r| r.onchip_mj).sum(),
    }
}

/// Geometric mean of positive values (Fig. 14's aggregate).
///
/// # Panics
/// Panics if `values` is empty or any value is non-positive.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Percentage reduction from `base` to `ours` (positive = improvement).
#[must_use]
pub fn reduction_pct(base: f64, ours: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    100.0 * (base - ours) / base
}

/// Serializes served records as CSV (header + one row per query), the raw
/// data behind the paper's scatter plots (Figs. 15–16). Plot-friendly:
/// constraints and served values side by side.
#[must_use]
pub fn records_to_csv(records: &[ServedRecord]) -> String {
    let mut out = String::from(
        "query_id,acc_constraint,lat_constraint_ms,subnet,served_accuracy,served_latency_ms,hit_ratio,offchip_mj,cache_updated\n",
    );
    for r in records {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{},{:.6},{:.6},{:.6},{:.6},{}",
            r.query.id,
            r.query.accuracy_constraint,
            r.query.latency_constraint_ms,
            r.subnet,
            r.served_accuracy,
            r.served_latency_ms,
            r.hit_ratio,
            r.offchip_mj,
            r.cache_updated
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_sched::Query;

    fn record(lat: f64, acc: f64, l_con: f64, a_con: f64, hit: f64) -> ServedRecord {
        ServedRecord {
            query: Query::new(0, a_con, l_con),
            subnet: "X".into(),
            subnet_row: 0,
            served_accuracy: acc,
            served_latency_ms: lat,
            hit_ratio: hit,
            offchip_mj: 1.0,
            onchip_mj: 0.1,
            cache_updated: false,
        }
    }

    #[test]
    fn summary_means_are_correct() {
        let rs = vec![record(2.0, 0.76, 3.0, 0.75, 0.5), record(4.0, 0.78, 3.0, 0.80, 1.0)];
        let s = summarize(&rs);
        assert_eq!(s.mean_latency_ms, 3.0);
        assert!((s.mean_accuracy - 0.77).abs() < 1e-12);
        assert_eq!(s.latency_slo_attainment, 0.5);
        assert_eq!(s.accuracy_attainment, 0.5);
        assert_eq!(s.mean_hit_ratio, 0.75);
        assert_eq!(s.total_offchip_mj, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn summarize_rejects_empty() {
        let _ = summarize(&[]);
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_pct_signs() {
        assert_eq!(reduction_pct(10.0, 8.0), 20.0);
        assert_eq!(reduction_pct(10.0, 12.0), -20.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let rs = vec![record(2.0, 0.76, 3.0, 0.75, 0.5), record(4.0, 0.78, 3.0, 0.80, 1.0)];
        let csv = records_to_csv(&rs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query_id,"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn csv_of_empty_stream_is_just_header() {
        let csv = records_to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn csv_round_numbers_are_parseable() {
        let rs = vec![record(2.5, 0.76, 3.0, 0.75, 0.5)];
        let csv = records_to_csv(&rs);
        let row = csv.lines().nth(1).unwrap();
        let lat: f64 = row.split(',').nth(5).unwrap().parse().unwrap();
        assert!((lat - 2.5).abs() < 1e-9);
    }
}
