//! Aggregate serving metrics.

use serde::{Deserialize, Serialize};

use crate::stack::ServedRecord;

/// Summary statistics over a served stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Number of queries.
    pub queries: usize,
    /// Mean served latency in ms.
    pub mean_latency_ms: f64,
    /// Mean served accuracy (fraction).
    pub mean_accuracy: f64,
    /// Fraction of queries whose latency constraint was met.
    pub latency_slo_attainment: f64,
    /// Fraction of queries whose accuracy constraint was met.
    pub accuracy_attainment: f64,
    /// Mean cache-hit ratio (Appendix A.4).
    pub mean_hit_ratio: f64,
    /// Total off-chip energy, mJ.
    pub total_offchip_mj: f64,
    /// Total on-chip energy, mJ.
    pub total_onchip_mj: f64,
}

/// Summarizes a served stream.
///
/// # Panics
/// Panics if `records` is empty.
#[must_use]
pub fn summarize(records: &[ServedRecord]) -> StreamSummary {
    assert!(!records.is_empty(), "cannot summarize an empty stream");
    let n = records.len() as f64;
    StreamSummary {
        queries: records.len(),
        mean_latency_ms: records.iter().map(|r| r.served_latency_ms).sum::<f64>() / n,
        mean_accuracy: records.iter().map(|r| r.served_accuracy).sum::<f64>() / n,
        latency_slo_attainment: records
            .iter()
            .filter(|r| r.served_latency_ms <= r.query.latency_constraint_ms)
            .count() as f64
            / n,
        accuracy_attainment: records
            .iter()
            .filter(|r| r.served_accuracy >= r.query.accuracy_constraint)
            .count() as f64
            / n,
        mean_hit_ratio: records.iter().map(|r| r.hit_ratio).sum::<f64>() / n,
        total_offchip_mj: records.iter().map(|r| r.offchip_mj).sum(),
        total_onchip_mj: records.iter().map(|r| r.onchip_mj).sum(),
    }
}

/// Geometric mean of positive values (Fig. 14's aggregate).
///
/// # Panics
/// Panics if `values` is empty or any value is non-positive.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Percentage reduction from `base` to `ours` (positive = improvement).
#[must_use]
pub fn reduction_pct(base: f64, ours: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    100.0 * (base - ours) / base
}

/// Wall-clock timing of one workload's forward pass under the kernel
/// backends (see `BENCH_kernels.json`, schema v3):
///
/// * `naive_ms` — the direct-loop tiled schedule (the oracle);
/// * `gemm_ms` — im2col + packed GEMM, packing **both** operands per call;
/// * `packed_ms` — steady-state serving path: weights pre-packed once per
///   SubGraph install, scratch arena reused (pack-amortized);
/// * `fused_ms` — steady-state IR-lowered path: pre-packed weights *plus*
///   bias/requant/activation fused into the conv epilogue at install time;
/// * `cold_pack_ms` — building the weight cache *plus* the first forward,
///   i.e. what the install-bearing query pays before amortization begins.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBenchEntry {
    /// Workload label, e.g. `"ResNet50/max"`.
    pub label: String,
    /// Best-of-N wall time of the naive (tiled-schedule) forward pass, ms.
    pub naive_ms: f64,
    /// Best-of-N wall time of the per-call-packing GEMM forward pass, ms.
    pub gemm_ms: f64,
    /// Best-of-N wall time of the pre-packed (pack-amortized) forward, ms.
    pub packed_ms: f64,
    /// Best-of-N wall time of the IR-lowered fused-epilogue forward, ms.
    pub fused_ms: f64,
    /// Wall time of cache build + first pre-packed forward (cold pack), ms.
    pub cold_pack_ms: f64,
}

impl KernelBenchEntry {
    /// Naive-over-GEMM speedup (`> 1` means the GEMM path is faster).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.gemm_ms > 0.0 {
            self.naive_ms / self.gemm_ms
        } else {
            f64::INFINITY
        }
    }

    /// Naive-over-packed speedup: the pre-IR serving hot path's number.
    #[must_use]
    pub fn packed_speedup(&self) -> f64 {
        if self.packed_ms > 0.0 {
            self.naive_ms / self.packed_ms
        } else {
            f64::INFINITY
        }
    }

    /// Naive-over-fused speedup: the serving hot path's headline number.
    #[must_use]
    pub fn fused_speedup(&self) -> f64 {
        if self.fused_ms > 0.0 {
            self.naive_ms / self.fused_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The schema marker written into (and required from) `BENCH_kernels.json`.
pub const KERNEL_BENCH_SCHEMA: &str = "sushi-kernel-bench-v3";

/// Serializes kernel bench entries as the `BENCH_kernels.json` baseline
/// (schema v3: adds the IR-lowered `fused_ms` column next to the v2
/// naive/gemm/packed/cold columns).
///
/// Hand-rolled writer: the vendored `serde` stub does not serialize, and
/// the format is a stable schema consumed by [`kernel_bench_from_json`]
/// and `scripts/bench_baseline.sh`.
///
/// # Panics
/// Panics if a label contains `"`, `,`, `{` or `}` — the minimal parser
/// does not escape, so such a label would silently round-trip wrong.
#[must_use]
pub fn kernel_bench_to_json(entries: &[KernelBenchEntry]) -> String {
    let mut out = format!("{{\n  \"schema\": \"{KERNEL_BENCH_SCHEMA}\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        use std::fmt::Write as _;
        assert!(
            !e.label.contains(['"', ',', '{', '}']),
            "kernel bench label '{}' contains characters the minimal JSON format cannot carry",
            e.label
        );
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"naive_ms\": {:.3}, \"gemm_ms\": {:.3}, \
             \"packed_ms\": {:.3}, \"fused_ms\": {:.3}, \"cold_pack_ms\": {:.3}, \
             \"speedup\": {:.2}, \"packed_speedup\": {:.2}, \"fused_speedup\": {:.2}}}",
            e.label,
            e.naive_ms,
            e.gemm_ms,
            e.packed_ms,
            e.fused_ms,
            e.cold_pack_ms,
            e.speedup(),
            e.packed_speedup(),
            e.fused_speedup()
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the `BENCH_kernels.json` format written by
/// [`kernel_bench_to_json`].
///
/// # Errors
/// Returns a description of the first malformed entry, or a schema error
/// for pre-v3 baselines (which lack the fused column the regression gate
/// now protects — regenerate with `scripts/bench_baseline.sh --update`).
pub fn kernel_bench_from_json(text: &str) -> Result<Vec<KernelBenchEntry>, String> {
    fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\":");
        let start = obj.find(&pat).ok_or_else(|| format!("missing field '{key}'"))? + pat.len();
        let rest = obj[start..].trim_start();
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Ok(rest[..end].trim())
    }
    fn num(obj: &str, key: &str) -> Result<f64, String> {
        field(obj, key)?.parse().map_err(|e| format!("bad {key}: {e}"))
    }
    if !text.contains(KERNEL_BENCH_SCHEMA) {
        return Err(format!(
            "missing {KERNEL_BENCH_SCHEMA} schema marker (pre-v3 baseline? re-run \
             scripts/bench_baseline.sh --update)"
        ));
    }
    let mut entries = Vec::new();
    // Each entry object lives on its own line; skip the top-level braces.
    for obj in text.split('{').skip(2) {
        let obj = match obj.find('}') {
            Some(end) => &obj[..end + 1],
            // An opened-but-never-closed object means the file was
            // truncated; dropping it would silently weaken the regression
            // gate, so refuse the whole baseline.
            None => return Err("truncated kernel bench entry (missing '}')".to_string()),
        };
        entries.push(KernelBenchEntry {
            label: field(obj, "label")?.trim_matches('"').to_string(),
            naive_ms: num(obj, "naive_ms")?,
            gemm_ms: num(obj, "gemm_ms")?,
            packed_ms: num(obj, "packed_ms")?,
            fused_ms: num(obj, "fused_ms")?,
            cold_pack_ms: num(obj, "cold_pack_ms")?,
        });
    }
    if entries.is_empty() {
        return Err("no kernel bench entries found".to_string());
    }
    Ok(entries)
}

/// Compares a fresh measurement against a committed baseline, failing when
/// the GEMM or pack-amortized path regressed by more than `tolerance_pct`
/// on any workload.
///
/// `gemm_ms`, `packed_ms` and `fused_ms` all gate — `fused_ms` is the
/// serving hot path, `packed_ms` its fusion-off fallback, `gemm_ms` the
/// no-cache fallback. Baseline labels absent from `current` fail too (a
/// silently dropped workload is a regression).
///
/// # Errors
/// Returns a human-readable description of every regression found.
pub fn kernel_regressions(
    current: &[KernelBenchEntry],
    baseline: &[KernelBenchEntry],
    tolerance_pct: f64,
) -> Result<(), String> {
    let mut problems = Vec::new();
    for base in baseline {
        match current.iter().find(|c| c.label == base.label) {
            None => problems.push(format!("workload '{}' missing from current run", base.label)),
            Some(cur) => {
                for (what, cur_ms, base_ms) in [
                    ("gemm", cur.gemm_ms, base.gemm_ms),
                    ("packed", cur.packed_ms, base.packed_ms),
                    ("fused", cur.fused_ms, base.fused_ms),
                ] {
                    let limit = base_ms * (1.0 + tolerance_pct / 100.0);
                    if cur_ms > limit {
                        problems.push(format!(
                            "'{}' {what} path regressed: {:.3} ms vs baseline {:.3} ms \
                             (+{:.1}% > {:.0}% tolerance)",
                            base.label,
                            cur_ms,
                            base_ms,
                            100.0 * (cur_ms / base_ms - 1.0),
                            tolerance_pct
                        ));
                    }
                }
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// A streaming log-bucketed latency histogram with percentile queries.
///
/// `push` is O(1) and the memory footprint is a fixed ~1 KB regardless of
/// stream length, so the serving runtime can account millions of queries
/// without retaining them. Buckets grow geometrically by
/// [`Self::GROWTH`] per step from [`Self::MIN_MS`], giving ≤ 2% relative
/// quantile error across nine decades (1 µs … 100 s); exact min/max are
/// tracked separately and clamp the estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Lower edge of the first bucket, ms.
    pub const MIN_MS: f64 = 1e-3;
    /// Geometric bucket growth factor.
    pub const GROWTH: f64 = 1.02;
    /// Number of buckets: covers `MIN_MS .. MIN_MS * GROWTH^N` ≈ 1e5 ms.
    const NUM_BUCKETS: usize = 931;

    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; Self::NUM_BUCKETS],
            total: 0,
            sum_ms: 0.0,
            min_ms: f64::INFINITY,
            max_ms: f64::NEG_INFINITY,
        }
    }

    fn bucket(value_ms: f64) -> usize {
        if value_ms <= Self::MIN_MS {
            return 0;
        }
        let idx = (value_ms / Self::MIN_MS).ln() / Self::GROWTH.ln();
        (idx as usize).min(Self::NUM_BUCKETS - 1)
    }

    /// Records one latency sample.
    ///
    /// # Panics
    /// Panics on a negative or non-finite sample — serving latencies are
    /// physical durations.
    pub fn push(&mut self, value_ms: f64) {
        assert!(value_ms.is_finite() && value_ms >= 0.0, "bad latency sample {value_ms}");
        self.counts[Self::bucket(value_ms)] += 1;
        self.total += 1;
        self.sum_ms += value_ms;
        self.min_ms = self.min_ms.min(value_ms);
        self.max_ms = self.max_ms.max(value_ms);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples.
    ///
    /// # Panics
    /// Panics if the histogram is empty.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        assert!(self.total > 0, "mean of empty histogram");
        self.sum_ms / self.total as f64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of recorded samples: the smallest
    /// bucket boundary below which at least `q · count` samples fall,
    /// clamped to the exact observed min/max.
    ///
    /// # Panics
    /// Panics if the histogram is empty or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.total > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Upper edge of bucket i, clamped to the observed range.
                let edge = Self::MIN_MS * Self::GROWTH.powi(i as i32 + 1);
                return edge.clamp(self.min_ms, self.max_ms);
            }
        }
        self.max_ms
    }
}

/// Summary of one serving-simulation run (a [`crate::serving`] scenario).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Queries that arrived (offered load).
    pub offered: usize,
    /// Queries served to completion (late ones included).
    pub completed: usize,
    /// Queries shed by the admission queue.
    pub dropped: usize,
    /// Median end-to-end latency (queueing + service), ms.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_ms: f64,
    /// Mean end-to-end latency, ms.
    pub mean_latency_ms: f64,
    /// Completed-within-deadline queries per second of simulated time.
    pub goodput_qps: f64,
    /// Fraction of *offered* queries that missed their deadline or were
    /// dropped (a shed query is an SLO violation, not a free pass).
    pub slo_violation_rate: f64,
    /// Time-weighted mean admission-queue depth.
    pub mean_queue_depth: f64,
    /// Maximum admission-queue depth observed.
    pub max_queue_depth: usize,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Scheduler cache decisions enacted.
    pub cache_installs: usize,
    /// Total PB swap time charged to in-flight batches, ms.
    pub swap_ms: f64,
    /// End of the simulation (last completion or drop), ms.
    pub makespan_ms: f64,
    /// Adaptive level changes that degraded (0 on static runs).
    pub degrades: usize,
    /// Adaptive level changes that upgraded (0 on static runs).
    pub upgrades: usize,
    /// Drops shed by the admission queue for capacity
    /// ([`crate::serving::DropReason::QueueFull`]).
    pub dropped_queue_full: usize,
    /// Drops whose deadline lapsed before dispatch
    /// ([`crate::serving::DropReason::DeadlineLapsed`]).
    pub dropped_deadline: usize,
    /// Drops that exhausted their retry budget after transient failures
    /// ([`crate::serving::DropReason::RetryBudgetExhausted`]; 0 on
    /// fault-free runs).
    pub dropped_retry_budget: usize,
    /// Drops stranded by a permanently lost pool
    /// ([`crate::serving::DropReason::ReplicaLost`]; 0 on fault-free runs).
    pub dropped_replica_lost: usize,
    /// Replica crashes enacted (0 on fault-free runs).
    pub crashes: usize,
    /// Queries re-admitted by the retry policy (0 on fault-free runs).
    pub retries: usize,
    /// Batches duplicated onto a backup replica (0 on fault-free runs).
    pub hedges: usize,
    /// Hedged batches the backup won (0 on fault-free runs).
    pub hedges_won: usize,
    /// Replica quarantines enacted (0 on fault-free runs).
    pub quarantines: usize,
}

/// One scenario row of the `BENCH_serve.json` baseline.
///
/// Every field is *simulated* (not wall-clock), so the committed baseline
/// is deterministic: same seed, same binary → identical values on any
/// platform. The regression gate therefore runs with a near-zero
/// tolerance; a drift means the serving semantics changed, not that the
/// machine was noisy.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchEntry {
    /// Scenario label, e.g. `"steady"`.
    pub scenario: String,
    /// Whether load-adaptive degradation was enabled for this row. A
    /// scenario can appear multiple times in the baseline — adaptive and
    /// static, at different pool sizes, aggregate and per-tier, faulted
    /// and fault-free — and the sextuple
    /// `(scenario, adaptive, workers, routing, tier, faults)` is the row
    /// key.
    pub adaptive: bool,
    /// Worker (replica) count the row ran with.
    pub workers: usize,
    /// Routing-policy label (`RoutingPolicy::name`) the row ran with.
    pub routing: String,
    /// Tenant-tier slice the row summarizes: `"all"` for the aggregate
    /// over every tenant (the only value static and tierless rows use),
    /// or a `TenantTier::name` (`"latency_critical"`, `"best_effort"`,
    /// ...) for a per-tier slice of a tenant-tiered run. Part of the row
    /// key: `(scenario, adaptive, workers, routing, tier, faults)`.
    pub tier: String,
    /// Fault mode the row ran under: `"none"` for a fault-free run,
    /// `"supervised"` for injected faults with the supervised pool, or
    /// `"unsupervised"` for the ablation (same fault plan, no
    /// supervision). Part of the row key.
    pub faults: String,
    /// p50 end-to-end latency, ms.
    pub p50_ms: f64,
    /// p95 end-to-end latency, ms.
    pub p95_ms: f64,
    /// p99 end-to-end latency, ms.
    pub p99_ms: f64,
    /// Goodput, queries/s.
    pub goodput_qps: f64,
    /// SLO violation rate over offered queries.
    pub slo_violation_rate: f64,
    /// Dropped-query count.
    pub dropped: usize,
    /// Adaptive degrade steps (0 on static rows).
    pub degrades: usize,
    /// Adaptive upgrade steps (0 on static rows).
    pub upgrades: usize,
}

impl ServeBenchEntry {
    /// Builds a baseline row from a scenario summary.
    #[must_use]
    pub fn from_summary(
        scenario: impl Into<String>,
        adaptive: bool,
        workers: usize,
        routing: impl Into<String>,
        tier: impl Into<String>,
        faults: impl Into<String>,
        s: &ServeSummary,
    ) -> Self {
        Self {
            scenario: scenario.into(),
            adaptive,
            workers,
            routing: routing.into(),
            tier: tier.into(),
            faults: faults.into(),
            p50_ms: s.p50_ms,
            p95_ms: s.p95_ms,
            p99_ms: s.p99_ms,
            goodput_qps: s.goodput_qps,
            slo_violation_rate: s.slo_violation_rate,
            dropped: s.dropped,
            degrades: s.degrades,
            upgrades: s.upgrades,
        }
    }
}

/// Serializes serve bench entries as the `BENCH_serve.json` baseline
/// (hand-rolled for the same reason as [`kernel_bench_to_json`]).
///
/// # Panics
/// Panics if a scenario, routing, tier, or faults label contains `"`,
/// `,`, `{` or `}`.
#[must_use]
pub fn serve_bench_to_json(entries: &[ServeBenchEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"sushi-serve-bench-v5\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        use std::fmt::Write as _;
        for (what, label) in [
            ("scenario", &e.scenario),
            ("routing", &e.routing),
            ("tier", &e.tier),
            ("faults", &e.faults),
        ] {
            assert!(
                !label.contains(['"', ',', '{', '}']),
                "serve bench {what} '{label}' contains characters the minimal JSON format \
                 cannot carry"
            );
        }
        let _ = write!(
            out,
            "    {{\"scenario\": \"{}\", \"adaptive\": {}, \"workers\": {}, \"routing\": \"{}\", \
             \"tier\": \"{}\", \"faults\": \"{}\", \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \
             \"p99_ms\": {:.6}, \"goodput_qps\": {:.6}, \"slo_violation_rate\": {:.6}, \
             \"dropped\": {}, \"degrades\": {}, \"upgrades\": {}}}",
            e.scenario,
            e.adaptive,
            e.workers,
            e.routing,
            e.tier,
            e.faults,
            e.p50_ms,
            e.p95_ms,
            e.p99_ms,
            e.goodput_qps,
            e.slo_violation_rate,
            e.dropped,
            e.degrades,
            e.upgrades
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the `BENCH_serve.json` format written by [`serve_bench_to_json`].
///
/// # Errors
/// Returns a description of the first malformed entry.
pub fn serve_bench_from_json(text: &str) -> Result<Vec<ServeBenchEntry>, String> {
    fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\":");
        let start = obj.find(&pat).ok_or_else(|| format!("missing field '{key}'"))? + pat.len();
        let rest = obj[start..].trim_start();
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Ok(rest[..end].trim())
    }
    fn num(obj: &str, key: &str) -> Result<f64, String> {
        field(obj, key)?.parse().map_err(|e| format!("bad {key}: {e}"))
    }
    if !text.contains("sushi-serve-bench-v5") {
        return Err(
            if ["v1", "v2", "v3", "v4"]
                .iter()
                .any(|v| text.contains(&format!("sushi-serve-bench-{v}")))
            {
                "baseline uses a pre-fault serve-bench schema (v1/v2/v3/v4) — regenerate it \
                 with scripts/bench_baseline.sh --update"
                    .to_string()
            } else {
                "missing sushi-serve-bench-v5 schema marker".to_string()
            },
        );
    }
    let mut entries = Vec::new();
    for obj in text.split('{').skip(2) {
        let obj = match obj.find('}') {
            Some(end) => &obj[..end + 1],
            None => return Err("truncated serve bench entry (missing '}')".to_string()),
        };
        entries.push(ServeBenchEntry {
            scenario: field(obj, "scenario")?.trim_matches('"').to_string(),
            adaptive: field(obj, "adaptive")?.parse().map_err(|e| format!("bad adaptive: {e}"))?,
            workers: field(obj, "workers")?.parse().map_err(|e| format!("bad workers: {e}"))?,
            routing: field(obj, "routing")?.trim_matches('"').to_string(),
            tier: field(obj, "tier")?.trim_matches('"').to_string(),
            faults: field(obj, "faults")?.trim_matches('"').to_string(),
            p50_ms: num(obj, "p50_ms")?,
            p95_ms: num(obj, "p95_ms")?,
            p99_ms: num(obj, "p99_ms")?,
            goodput_qps: num(obj, "goodput_qps")?,
            slo_violation_rate: num(obj, "slo_violation_rate")?,
            dropped: field(obj, "dropped")?.parse().map_err(|e| format!("bad dropped: {e}"))?,
            degrades: field(obj, "degrades")?.parse().map_err(|e| format!("bad degrades: {e}"))?,
            upgrades: field(obj, "upgrades")?.parse().map_err(|e| format!("bad upgrades: {e}"))?,
        });
    }
    if entries.is_empty() {
        return Err("no serve bench entries found".to_string());
    }
    Ok(entries)
}

/// Compares a fresh deterministic serve run against the committed baseline.
///
/// Rows are matched by `(scenario, adaptive, workers, routing, tier,
/// faults)`. All
/// percentile/goodput/violation fields must agree within `rel_tol`
/// (relative) and the dropped/degrades/upgrades counts exactly; a row
/// missing from `current` fails, and so does a row present in `current`
/// but absent from the baseline (a newly added preset must enter the
/// baseline via `--update`, not ship ungated). Because the simulation is deterministic, any
/// non-zero difference means serving *semantics* drifted — the gate's
/// tolerance exists only to absorb decimal formatting in the JSON
/// round-trip.
///
/// # Errors
/// Returns a human-readable description of every mismatch found.
pub fn serve_regressions(
    current: &[ServeBenchEntry],
    baseline: &[ServeBenchEntry],
    rel_tol: f64,
) -> Result<(), String> {
    let close = |a: f64, b: f64| (a - b).abs() <= rel_tol * a.abs().max(b.abs()).max(1.0);
    let label = |e: &ServeBenchEntry| {
        format!(
            "{} ({}, {}w, {}, {}, faults={})",
            e.scenario,
            if e.adaptive { "adaptive" } else { "static" },
            e.workers,
            e.routing,
            e.tier,
            e.faults
        )
    };
    let same_key = |a: &ServeBenchEntry, b: &ServeBenchEntry| {
        a.scenario == b.scenario
            && a.adaptive == b.adaptive
            && a.workers == b.workers
            && a.routing == b.routing
            && a.tier == b.tier
            && a.faults == b.faults
    };
    let mut problems = Vec::new();
    for base in baseline {
        let Some(cur) = current.iter().find(|c| same_key(c, base)) else {
            problems.push(format!("scenario '{}' missing from current run", label(base)));
            continue;
        };
        let checks = [
            ("p50_ms", cur.p50_ms, base.p50_ms),
            ("p95_ms", cur.p95_ms, base.p95_ms),
            ("p99_ms", cur.p99_ms, base.p99_ms),
            ("goodput_qps", cur.goodput_qps, base.goodput_qps),
            ("slo_violation_rate", cur.slo_violation_rate, base.slo_violation_rate),
        ];
        for (name, c, b) in checks {
            if !close(c, b) {
                problems
                    .push(format!("'{}' {name} drifted: {c:.6} vs baseline {b:.6}", label(base)));
            }
        }
        let counts = [
            ("dropped", cur.dropped, base.dropped),
            ("degrades", cur.degrades, base.degrades),
            ("upgrades", cur.upgrades, base.upgrades),
        ];
        for (name, c, b) in counts {
            if c != b {
                problems
                    .push(format!("'{}' {name} count drifted: {c} vs baseline {b}", label(base)));
            }
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| same_key(b, cur)) {
            problems.push(format!(
                "scenario '{}' is not in the baseline — regenerate it with --update",
                label(cur)
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// Serializes served records as CSV (header + one row per query), the raw
/// data behind the paper's scatter plots (Figs. 15–16). Plot-friendly:
/// constraints and served values side by side.
#[must_use]
pub fn records_to_csv(records: &[ServedRecord]) -> String {
    let mut out = String::from(
        "query_id,acc_constraint,lat_constraint_ms,subnet,served_accuracy,served_latency_ms,hit_ratio,offchip_mj,cache_updated\n",
    );
    for r in records {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{},{:.6},{:.6},{:.6},{:.6},{}",
            r.query.id,
            r.query.accuracy_constraint,
            r.query.latency_constraint_ms,
            r.subnet,
            r.served_accuracy,
            r.served_latency_ms,
            r.hit_ratio,
            r.offchip_mj,
            r.cache_updated
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_sched::Query;

    fn record(lat: f64, acc: f64, l_con: f64, a_con: f64, hit: f64) -> ServedRecord {
        ServedRecord {
            query: Query::new(0, a_con, l_con),
            subnet: "X".into(),
            subnet_row: 0,
            served_accuracy: acc,
            served_latency_ms: lat,
            hit_ratio: hit,
            offchip_mj: 1.0,
            onchip_mj: 0.1,
            cache_updated: false,
            prediction: None,
        }
    }

    #[test]
    fn summary_means_are_correct() {
        let rs = vec![record(2.0, 0.76, 3.0, 0.75, 0.5), record(4.0, 0.78, 3.0, 0.80, 1.0)];
        let s = summarize(&rs);
        assert_eq!(s.mean_latency_ms, 3.0);
        assert!((s.mean_accuracy - 0.77).abs() < 1e-12);
        assert_eq!(s.latency_slo_attainment, 0.5);
        assert_eq!(s.accuracy_attainment, 0.5);
        assert_eq!(s.mean_hit_ratio, 0.75);
        assert_eq!(s.total_offchip_mj, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn summarize_rejects_empty() {
        let _ = summarize(&[]);
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_pct_signs() {
        assert_eq!(reduction_pct(10.0, 8.0), 20.0);
        assert_eq!(reduction_pct(10.0, 12.0), -20.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }

    fn kb(
        label: &str,
        naive: f64,
        gemm: f64,
        packed: f64,
        fused: f64,
        cold: f64,
    ) -> KernelBenchEntry {
        KernelBenchEntry {
            label: label.into(),
            naive_ms: naive,
            gemm_ms: gemm,
            packed_ms: packed,
            fused_ms: fused,
            cold_pack_ms: cold,
        }
    }

    #[test]
    fn kernel_bench_json_round_trips() {
        let entries = vec![
            kb("ResNet50/max", 1234.5, 98.7, 55.5, 48.8, 140.2),
            kb("MobV3/max", 456.0, 45.6, 30.1, 28.4, 60.9),
        ];
        let json = kernel_bench_to_json(&entries);
        assert!(json.contains(KERNEL_BENCH_SCHEMA));
        let parsed = kernel_bench_from_json(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].label, "ResNet50/max");
        assert!((parsed[0].naive_ms - 1234.5).abs() < 1e-9);
        assert!((parsed[0].packed_ms - 55.5).abs() < 1e-9);
        assert!((parsed[0].fused_ms - 48.8).abs() < 1e-9);
        assert!((parsed[1].gemm_ms - 45.6).abs() < 1e-9);
        assert!((parsed[1].cold_pack_ms - 60.9).abs() < 1e-9);
    }

    #[test]
    fn kernel_bench_rejects_garbage_and_old_schema() {
        assert!(kernel_bench_from_json("not json").is_err());
        assert!(kernel_bench_from_json("{\"entries\": []}").is_err());
        // Pre-v3 baselines (no fused column) must be rejected with a
        // regeneration hint, not silently half-parsed.
        let v1 = "{\n  \"schema\": \"sushi-kernel-bench-v1\",\n  \"entries\": [\n    \
                  {\"label\": \"a\", \"naive_ms\": 1.0, \"gemm_ms\": 0.5, \"speedup\": 2.00}\n  ]\n}\n";
        let err = kernel_bench_from_json(v1).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let v2 = "{\n  \"schema\": \"sushi-kernel-bench-v2\",\n  \"entries\": [\n    \
                  {\"label\": \"a\", \"naive_ms\": 1.0, \"gemm_ms\": 0.5, \"packed_ms\": 0.4, \
                  \"cold_pack_ms\": 0.6, \"speedup\": 2.00, \"packed_speedup\": 2.50}\n  ]\n}\n";
        let err = kernel_bench_from_json(v2).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn kernel_bench_rejects_truncated_baseline() {
        let entries = vec![kb("a", 10.0, 1.0, 0.5, 0.4, 1.5)];
        let json = kernel_bench_to_json(&entries);
        // Chop inside the entry object (before its closing brace): the
        // parse must fail, not return a shorter entry list.
        let truncated = &json[..json.find("speedup").unwrap()];
        assert!(kernel_bench_from_json(truncated).is_err());
    }

    #[test]
    fn kernel_speedups_are_naive_over_backend() {
        let e = kb("x", 100.0, 10.0, 4.0, 2.0, 12.0);
        assert!((e.speedup() - 10.0).abs() < 1e-12);
        assert!((e.packed_speedup() - 25.0).abs() < 1e-12);
        assert!((e.fused_speedup() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_regressions_gate_on_gemm_and_packed_time() {
        let base = vec![kb("a", 50.0, 10.0, 5.0, 4.0, 12.0)];
        // 15% slower across the board: within the 20% tolerance.
        let ok = vec![kb("a", 60.0, 11.5, 5.7, 4.6, 14.0)];
        assert!(kernel_regressions(&ok, &base, 20.0).is_ok());
        // gemm 50% slower: regression.
        let slow_gemm = vec![kb("a", 50.0, 15.0, 5.0, 4.0, 12.0)];
        let err = kernel_regressions(&slow_gemm, &base, 20.0).unwrap_err();
        assert!(err.contains("gemm path regressed"));
        // packed 50% slower (gemm fine): also a regression.
        let slow_packed = vec![kb("a", 50.0, 10.0, 7.5, 4.0, 12.0)];
        let err = kernel_regressions(&slow_packed, &base, 20.0).unwrap_err();
        assert!(err.contains("packed path regressed"));
        // fused 50% slower (rest fine): also a regression — the fused
        // column is the serving hot path the perf trajectory rides on.
        let slow_fused = vec![kb("a", 50.0, 10.0, 5.0, 6.0, 12.0)];
        let err = kernel_regressions(&slow_fused, &base, 20.0).unwrap_err();
        assert!(err.contains("fused path regressed"));
        // Missing workload: regression.
        assert!(kernel_regressions(&[], &base, 20.0).is_err());
    }

    #[test]
    fn histogram_quantiles_bound_known_data() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.push(i as f64); // 1..1000 ms uniform
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean_ms() - 500.5).abs() < 1e-9);
        // Log-bucketing guarantees ≤ ~2% relative error + bucket rounding.
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.03, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.03, "p99 {p99}");
        assert!(h.quantile(0.0) >= 1.0 && h.quantile(1.0) <= 1000.0);
        assert!(p50 <= h.quantile(0.95) && h.quantile(0.95) <= p99);
    }

    #[test]
    fn histogram_clamps_to_observed_range() {
        let mut h = LatencyHistogram::new();
        h.push(7.25);
        assert_eq!(h.quantile(0.5), 7.25);
        assert_eq!(h.quantile(0.99), 7.25);
        h.push(0.0); // below MIN_MS: lands in bucket 0.
        assert!(h.quantile(0.0) <= LatencyHistogram::MIN_MS * LatencyHistogram::GROWTH);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn histogram_quantile_rejects_empty() {
        let _ = LatencyHistogram::new().quantile(0.5);
    }

    fn serve_entry(scenario: &str, p99: f64, dropped: usize) -> ServeBenchEntry {
        ServeBenchEntry {
            scenario: scenario.into(),
            adaptive: false,
            workers: 2,
            routing: "least_loaded".into(),
            tier: "all".into(),
            faults: "none".into(),
            p50_ms: 2.0,
            p95_ms: 5.0,
            p99_ms: p99,
            goodput_qps: 140.0,
            slo_violation_rate: 0.0125,
            dropped,
            degrades: 0,
            upgrades: 0,
        }
    }

    #[test]
    fn serve_bench_json_round_trips() {
        let mut entries = vec![serve_entry("steady", 8.5, 0), serve_entry("burst", 21.25, 17)];
        entries[1].adaptive = true;
        entries[1].degrades = 5;
        entries[1].upgrades = 4;
        entries[1].workers = 8;
        entries[1].routing = "cache_affinity".into();
        entries[1].tier = "latency_critical".into();
        entries[1].faults = "supervised".into();
        let json = serve_bench_to_json(&entries);
        assert!(json.contains("sushi-serve-bench-v5"));
        let parsed = serve_bench_from_json(&json).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn serve_bench_rejects_stale_baselines() {
        for old in ["v1", "v2", "v3", "v4"] {
            let stale = format!(
                "{{\n \"schema\": \"sushi-serve-bench-{old}\",\n \"entries\": [\n \
                 {{\"scenario\": \"steady\", \"p50_ms\": 1.0}}\n ]\n}}\n"
            );
            let err = serve_bench_from_json(&stale).unwrap_err();
            assert!(err.contains("--update"), "{err}");
        }
    }

    #[test]
    fn serve_bench_rejects_garbage_and_truncation() {
        assert!(serve_bench_from_json("not json").is_err());
        let json = serve_bench_to_json(&[serve_entry("steady", 8.5, 0)]);
        let truncated = &json[..json.find("dropped").unwrap()];
        assert!(serve_bench_from_json(truncated).is_err());
    }

    #[test]
    fn serve_regressions_gate_on_drift() {
        let base = vec![serve_entry("steady", 8.5, 3)];
        assert!(serve_regressions(&base.clone(), &base, 1e-9).is_ok());
        let mut drifted = base.clone();
        drifted[0].p99_ms = 9.0;
        assert!(serve_regressions(&drifted, &base, 1e-9).unwrap_err().contains("p99_ms"));
        let mut dropped = base.clone();
        dropped[0].dropped = 4;
        assert!(serve_regressions(&dropped, &base, 1e-9).unwrap_err().contains("dropped"));
        let mut stepped = base.clone();
        stepped[0].degrades = 2;
        assert!(serve_regressions(&stepped, &base, 1e-9).unwrap_err().contains("degrades"));
        assert!(serve_regressions(&[], &base, 1e-9).unwrap_err().contains("missing"));
        // Same scenario under the other adaptation mode is a different row:
        // it is both missing from the baseline and missing from the run.
        let mut flipped = base.clone();
        flipped[0].adaptive = true;
        let err = serve_regressions(&flipped, &base, 1e-9).unwrap_err();
        assert!(err.contains("missing from current run") && err.contains("not in the baseline"));
        // Same scenario at another pool size or routing policy is a
        // different row too.
        let mut resized = base.clone();
        resized[0].workers = 4;
        assert!(serve_regressions(&resized, &base, 1e-9).is_err());
        let mut rerouted = base.clone();
        rerouted[0].routing = "round_robin".into();
        assert!(serve_regressions(&rerouted, &base, 1e-9).is_err());
        // ... and so is a per-tier slice of the same scenario.
        let mut sliced = base.clone();
        sliced[0].tier = "best_effort".into();
        assert!(serve_regressions(&sliced, &base, 1e-9).is_err());
        // ... and the same scenario under a different fault mode.
        let mut refaulted = base.clone();
        refaulted[0].faults = "supervised".into();
        assert!(serve_regressions(&refaulted, &base, 1e-9).is_err());
        // A scenario the baseline has never seen fails too: new presets
        // must enter the baseline explicitly via --update.
        let extra = vec![base[0].clone(), serve_entry("brand_new", 1.0, 0)];
        assert!(serve_regressions(&extra, &base, 1e-9)
            .unwrap_err()
            .contains("not in the baseline"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let rs = vec![record(2.0, 0.76, 3.0, 0.75, 0.5), record(4.0, 0.78, 3.0, 0.80, 1.0)];
        let csv = records_to_csv(&rs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query_id,"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn csv_of_empty_stream_is_just_header() {
        let csv = records_to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn csv_round_numbers_are_parseable() {
        let rs = vec![record(2.5, 0.76, 3.0, 0.75, 0.5)];
        let csv = records_to_csv(&rs);
        let row = csv.lines().nth(1).unwrap();
        let lat: f64 = row.split(',').nth(5).unwrap().parse().unwrap();
        assert!((lat - 2.5).abs() < 1e-9);
    }
}
