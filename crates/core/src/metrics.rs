//! Aggregate serving metrics.

use serde::{Deserialize, Serialize};

use crate::stack::ServedRecord;

/// Summary statistics over a served stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSummary {
    /// Number of queries.
    pub queries: usize,
    /// Mean served latency in ms.
    pub mean_latency_ms: f64,
    /// Mean served accuracy (fraction).
    pub mean_accuracy: f64,
    /// Fraction of queries whose latency constraint was met.
    pub latency_slo_attainment: f64,
    /// Fraction of queries whose accuracy constraint was met.
    pub accuracy_attainment: f64,
    /// Mean cache-hit ratio (Appendix A.4).
    pub mean_hit_ratio: f64,
    /// Total off-chip energy, mJ.
    pub total_offchip_mj: f64,
    /// Total on-chip energy, mJ.
    pub total_onchip_mj: f64,
}

/// Summarizes a served stream.
///
/// # Panics
/// Panics if `records` is empty.
#[must_use]
pub fn summarize(records: &[ServedRecord]) -> StreamSummary {
    assert!(!records.is_empty(), "cannot summarize an empty stream");
    let n = records.len() as f64;
    StreamSummary {
        queries: records.len(),
        mean_latency_ms: records.iter().map(|r| r.served_latency_ms).sum::<f64>() / n,
        mean_accuracy: records.iter().map(|r| r.served_accuracy).sum::<f64>() / n,
        latency_slo_attainment: records
            .iter()
            .filter(|r| r.served_latency_ms <= r.query.latency_constraint_ms)
            .count() as f64
            / n,
        accuracy_attainment: records
            .iter()
            .filter(|r| r.served_accuracy >= r.query.accuracy_constraint)
            .count() as f64
            / n,
        mean_hit_ratio: records.iter().map(|r| r.hit_ratio).sum::<f64>() / n,
        total_offchip_mj: records.iter().map(|r| r.offchip_mj).sum(),
        total_onchip_mj: records.iter().map(|r| r.onchip_mj).sum(),
    }
}

/// Geometric mean of positive values (Fig. 14's aggregate).
///
/// # Panics
/// Panics if `values` is empty or any value is non-positive.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    assert!(values.iter().all(|&v| v > 0.0), "geomean needs positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Percentage reduction from `base` to `ours` (positive = improvement).
#[must_use]
pub fn reduction_pct(base: f64, ours: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    100.0 * (base - ours) / base
}

/// Wall-clock timing of one workload's forward pass under the naive kernel
/// backend vs the im2col + GEMM backend (see `BENCH_kernels.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBenchEntry {
    /// Workload label, e.g. `"ResNet50/max"`.
    pub label: String,
    /// Best-of-N wall time of the naive (tiled-schedule) forward pass, ms.
    pub naive_ms: f64,
    /// Best-of-N wall time of the GEMM forward pass, ms.
    pub gemm_ms: f64,
}

impl KernelBenchEntry {
    /// Naive-over-GEMM speedup (`> 1` means the GEMM path is faster).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.gemm_ms > 0.0 {
            self.naive_ms / self.gemm_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Serializes kernel bench entries as the `BENCH_kernels.json` baseline.
///
/// Hand-rolled writer: the vendored `serde` stub does not serialize, and the
/// format is a stable three-field schema consumed by
/// [`kernel_bench_from_json`] and `scripts/bench_baseline.sh`.
///
/// # Panics
/// Panics if a label contains `"`, `,`, `{` or `}` — the minimal parser
/// does not escape, so such a label would silently round-trip wrong.
#[must_use]
pub fn kernel_bench_to_json(entries: &[KernelBenchEntry]) -> String {
    let mut out = String::from("{\n  \"schema\": \"sushi-kernel-bench-v1\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        use std::fmt::Write as _;
        assert!(
            !e.label.contains(['"', ',', '{', '}']),
            "kernel bench label '{}' contains characters the minimal JSON format cannot carry",
            e.label
        );
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"naive_ms\": {:.3}, \"gemm_ms\": {:.3}, \"speedup\": {:.2}}}",
            e.label,
            e.naive_ms,
            e.gemm_ms,
            e.speedup()
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the `BENCH_kernels.json` format written by
/// [`kernel_bench_to_json`].
///
/// # Errors
/// Returns a description of the first malformed entry.
pub fn kernel_bench_from_json(text: &str) -> Result<Vec<KernelBenchEntry>, String> {
    fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\":");
        let start = obj.find(&pat).ok_or_else(|| format!("missing field '{key}'"))? + pat.len();
        let rest = obj[start..].trim_start();
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Ok(rest[..end].trim())
    }
    let mut entries = Vec::new();
    // Each entry object lives on its own line; skip the top-level braces.
    for obj in text.split('{').skip(2) {
        let obj = match obj.find('}') {
            Some(end) => &obj[..end + 1],
            // An opened-but-never-closed object means the file was
            // truncated; dropping it would silently weaken the regression
            // gate, so refuse the whole baseline.
            None => return Err("truncated kernel bench entry (missing '}')".to_string()),
        };
        let label = field(obj, "label")?.trim_matches('"').to_string();
        let naive_ms: f64 =
            field(obj, "naive_ms")?.parse().map_err(|e| format!("bad naive_ms: {e}"))?;
        let gemm_ms: f64 =
            field(obj, "gemm_ms")?.parse().map_err(|e| format!("bad gemm_ms: {e}"))?;
        entries.push(KernelBenchEntry { label, naive_ms, gemm_ms });
    }
    if entries.is_empty() {
        return Err("no kernel bench entries found".to_string());
    }
    Ok(entries)
}

/// Compares a fresh measurement against a committed baseline, failing when
/// the GEMM path regressed by more than `tolerance_pct` on any workload.
///
/// Only `gemm_ms` gates: it is the serving hot path. Baseline labels absent
/// from `current` fail too (a silently dropped workload is a regression).
///
/// # Errors
/// Returns a human-readable description of every regression found.
pub fn kernel_regressions(
    current: &[KernelBenchEntry],
    baseline: &[KernelBenchEntry],
    tolerance_pct: f64,
) -> Result<(), String> {
    let mut problems = Vec::new();
    for base in baseline {
        match current.iter().find(|c| c.label == base.label) {
            None => problems.push(format!("workload '{}' missing from current run", base.label)),
            Some(cur) => {
                let limit = base.gemm_ms * (1.0 + tolerance_pct / 100.0);
                if cur.gemm_ms > limit {
                    problems.push(format!(
                        "'{}' gemm path regressed: {:.3} ms vs baseline {:.3} ms (+{:.1}% > {:.0}% tolerance)",
                        base.label,
                        cur.gemm_ms,
                        base.gemm_ms,
                        100.0 * (cur.gemm_ms / base.gemm_ms - 1.0),
                        tolerance_pct
                    ));
                }
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

/// Serializes served records as CSV (header + one row per query), the raw
/// data behind the paper's scatter plots (Figs. 15–16). Plot-friendly:
/// constraints and served values side by side.
#[must_use]
pub fn records_to_csv(records: &[ServedRecord]) -> String {
    let mut out = String::from(
        "query_id,acc_constraint,lat_constraint_ms,subnet,served_accuracy,served_latency_ms,hit_ratio,offchip_mj,cache_updated\n",
    );
    for r in records {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{},{:.6},{:.6},{:.6},{:.6},{}",
            r.query.id,
            r.query.accuracy_constraint,
            r.query.latency_constraint_ms,
            r.subnet,
            r.served_accuracy,
            r.served_latency_ms,
            r.hit_ratio,
            r.offchip_mj,
            r.cache_updated
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sushi_sched::Query;

    fn record(lat: f64, acc: f64, l_con: f64, a_con: f64, hit: f64) -> ServedRecord {
        ServedRecord {
            query: Query::new(0, a_con, l_con),
            subnet: "X".into(),
            subnet_row: 0,
            served_accuracy: acc,
            served_latency_ms: lat,
            hit_ratio: hit,
            offchip_mj: 1.0,
            onchip_mj: 0.1,
            cache_updated: false,
        }
    }

    #[test]
    fn summary_means_are_correct() {
        let rs = vec![record(2.0, 0.76, 3.0, 0.75, 0.5), record(4.0, 0.78, 3.0, 0.80, 1.0)];
        let s = summarize(&rs);
        assert_eq!(s.mean_latency_ms, 3.0);
        assert!((s.mean_accuracy - 0.77).abs() < 1e-12);
        assert_eq!(s.latency_slo_attainment, 0.5);
        assert_eq!(s.accuracy_attainment, 0.5);
        assert_eq!(s.mean_hit_ratio, 0.75);
        assert_eq!(s.total_offchip_mj, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn summarize_rejects_empty() {
        let _ = summarize(&[]);
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_pct_signs() {
        assert_eq!(reduction_pct(10.0, 8.0), 20.0);
        assert_eq!(reduction_pct(10.0, 12.0), -20.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn kernel_bench_json_round_trips() {
        let entries = vec![
            KernelBenchEntry { label: "ResNet50/max".into(), naive_ms: 1234.5, gemm_ms: 98.7 },
            KernelBenchEntry { label: "MobV3/max".into(), naive_ms: 456.0, gemm_ms: 45.6 },
        ];
        let json = kernel_bench_to_json(&entries);
        assert!(json.contains("sushi-kernel-bench-v1"));
        let parsed = kernel_bench_from_json(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].label, "ResNet50/max");
        assert!((parsed[0].naive_ms - 1234.5).abs() < 1e-9);
        assert!((parsed[1].gemm_ms - 45.6).abs() < 1e-9);
    }

    #[test]
    fn kernel_bench_rejects_garbage() {
        assert!(kernel_bench_from_json("not json").is_err());
        assert!(kernel_bench_from_json("{\"entries\": []}").is_err());
    }

    #[test]
    fn kernel_bench_rejects_truncated_baseline() {
        let entries = vec![KernelBenchEntry { label: "a".into(), naive_ms: 10.0, gemm_ms: 1.0 }];
        let json = kernel_bench_to_json(&entries);
        // Chop inside the entry object (before its closing brace): the
        // parse must fail, not return a shorter entry list.
        let truncated = &json[..json.find("speedup").unwrap()];
        assert!(kernel_bench_from_json(truncated).is_err());
    }

    #[test]
    fn kernel_speedup_is_naive_over_gemm() {
        let e = KernelBenchEntry { label: "x".into(), naive_ms: 100.0, gemm_ms: 10.0 };
        assert!((e.speedup() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_regressions_gate_on_gemm_time() {
        let base = vec![KernelBenchEntry { label: "a".into(), naive_ms: 50.0, gemm_ms: 10.0 }];
        // 15% slower: within the 20% tolerance.
        let ok = vec![KernelBenchEntry { label: "a".into(), naive_ms: 60.0, gemm_ms: 11.5 }];
        assert!(kernel_regressions(&ok, &base, 20.0).is_ok());
        // 50% slower: regression.
        let slow = vec![KernelBenchEntry { label: "a".into(), naive_ms: 50.0, gemm_ms: 15.0 }];
        let err = kernel_regressions(&slow, &base, 20.0).unwrap_err();
        assert!(err.contains("regressed"));
        // Missing workload: regression.
        assert!(kernel_regressions(&[], &base, 20.0).is_err());
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let rs = vec![record(2.0, 0.76, 3.0, 0.75, 0.5), record(4.0, 0.78, 3.0, 0.80, 1.0)];
        let csv = records_to_csv(&rs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query_id,"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn csv_of_empty_stream_is_just_header() {
        let csv = records_to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }

    #[test]
    fn csv_round_numbers_are_parseable() {
        let rs = vec![record(2.5, 0.76, 3.0, 0.75, 0.5)];
        let csv = records_to_csv(&rs);
        let row = csv.lines().nth(1).unwrap();
        let lat: f64 = row.split(',').nth(5).unwrap().parse().unwrap();
        assert!((lat - 2.5).abs() < 1e-9);
    }
}
