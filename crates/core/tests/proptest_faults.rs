//! Property-based tests for the fault-injected serving loop: the hard
//! conservation invariant (every admitted query is served or dropped
//! exactly once — globally, per tenant tier, and per drop reason) and
//! bit-identical determinism of `(stream, config, seed, fault plan)`,
//! under arbitrary crash/straggler/transient schedules, supervised and
//! unsupervised, across every drop policy and pool size.

use std::collections::HashSet;

use proptest::prelude::*;

use sushi_core::engine::EngineBuilder;
use sushi_core::serving::{
    ArrivalProcess, BatchPolicy, DropPolicy, DropReason, FaultOptions, RoutingPolicy, SimResult,
};
use sushi_core::stream::{attach_arrivals, uniform_stream, TimedQuery};
use sushi_sched::{TenantOptions, TenantTier};

/// Every randomized fault-run configuration.
#[derive(Debug, Clone, Copy)]
struct FaultCase {
    workers: usize,
    queue_capacity: usize,
    drop_policy: DropPolicy,
    routing: RoutingPolicy,
    n: usize,
    load: f64,
    seed: u64,
    crash: Option<(f64, f64)>, // (mtbf, outage) in mean-cold units; outage 0 = permanent
    straggle: Option<f64>,     // service-time factor
    transient_rate: f64,
    supervised: bool,
    tenants: bool,
}

fn case_strategy() -> impl Strategy<Value = FaultCase> {
    (
        (
            1usize..5,      // workers
            2usize..24,     // queue capacity
            0usize..3,      // drop policy
            0usize..3,      // routing policy
            20usize..56,    // queries
            0.3f64..1.8,    // offered load vs. pool capacity
            0u64..u64::MAX, // seed
        ),
        (
            (0usize..2, 2.0f64..40.0, 0.0f64..20.0), // crash plan (flag, mtbf, outage)
            (0usize..2, 1.5f64..5.0),                // straggler plan (flag, factor)
            0.0f64..0.35,                            // transient rate
            0usize..2,                               // supervised
            0usize..2,                               // tenant tiers
        ),
    )
        .prop_map(
            |(
                (workers, queue_capacity, policy, routing, n, load, seed),
                (
                    (crash_on, mtbf, outage),
                    (straggle_on, factor),
                    transient_rate,
                    supervised,
                    tenants,
                ),
            )| FaultCase {
                workers,
                queue_capacity,
                drop_policy: [
                    DropPolicy::DropNewest,
                    DropPolicy::DropOldest,
                    DropPolicy::DeadlineAware,
                ][policy],
                routing: [
                    RoutingPolicy::LeastLoaded,
                    RoutingPolicy::RoundRobin,
                    RoutingPolicy::CacheAffinity,
                ][routing],
                n,
                load,
                seed,
                crash: (crash_on == 1).then_some((mtbf, outage)),
                straggle: (straggle_on == 1).then_some(factor),
                transient_rate,
                supervised: supervised == 1,
                tenants: tenants == 1,
            },
        )
}

/// The tenant → tier mapping the tenant-tiered cases configure (tierless
/// cases tag everything [`TenantTier::Standard`]).
fn tier_of(tenants: bool, tenant: u32) -> TenantTier {
    if !tenants {
        return TenantTier::Standard;
    }
    match tenant {
        0 => TenantTier::LatencyCritical,
        1 => TenantTier::Standard,
        _ => TenantTier::BestEffort,
    }
}

/// Builds a toy-zoo engine for the case and serves one seeded stream,
/// returning the result and the stream it served.
fn run_case(c: &FaultCase) -> (SimResult, Vec<TimedQuery>) {
    let net = std::sync::Arc::new(sushi_wsnet::zoo::toy_mobilenet_supernet());
    let picks = sushi_wsnet::sampler::ConfigSampler::new(&net, 5).sample_subnets(4);

    let mut fo =
        FaultOptions::default().with_seed(c.seed ^ 0xF417).with_transient_rate(c.transient_rate);
    let mut builder = EngineBuilder::new()
        .workload(std::sync::Arc::clone(&net), picks)
        .q_window(4)
        .candidates(5)
        .seed(c.seed)
        .workers(c.workers)
        .routing(c.routing)
        .queue_capacity(c.queue_capacity)
        .drop_policy(c.drop_policy);
    if c.tenants {
        builder = builder.tenants(Some(
            TenantOptions::default()
                .with_tier(0, TenantTier::LatencyCritical)
                .with_tier(1, TenantTier::Standard)
                .with_tier(2, TenantTier::BestEffort),
        ));
    }
    let engine = builder.build().expect("toy engine builds");

    // Scale the fault plan and the arrival rate to the toy workload's own
    // mean cold service time, exactly like the scenario presets do.
    let table = engine.table();
    let cold: Vec<f64> = (0..table.num_rows()).map(|i| table.latency_ms(i, 0)).collect();
    let mean_cold = cold.iter().sum::<f64>() / cold.len() as f64;
    if let Some((mtbf, outage)) = c.crash {
        fo = fo.with_crash_mtbf_ms(mtbf * mean_cold).with_crash_outage_ms(outage * mean_cold);
    }
    if let Some(factor) = c.straggle {
        fo = fo
            .with_straggler_mtbf_ms(10.0 * mean_cold)
            .with_straggler_duration_ms(4.0 * mean_cold)
            .with_straggler_factor(factor);
    }
    if !c.supervised {
        fo = fo.without_supervision();
    }
    drop(engine);

    let mut engine = {
        let net2 = std::sync::Arc::new(sushi_wsnet::zoo::toy_mobilenet_supernet());
        let picks2 = sushi_wsnet::sampler::ConfigSampler::new(&net2, 5).sample_subnets(4);
        let mut b = EngineBuilder::new()
            .workload(std::sync::Arc::clone(&net2), picks2)
            .q_window(4)
            .candidates(5)
            .seed(c.seed)
            .workers(c.workers)
            .routing(c.routing)
            .queue_capacity(c.queue_capacity)
            .drop_policy(c.drop_policy)
            .batch_policy(BatchPolicy::new(4, 0.25 * mean_cold))
            .faults(Some(fo));
        if c.tenants {
            b = b.tenants(Some(
                TenantOptions::default()
                    .with_tier(0, TenantTier::LatencyCritical)
                    .with_tier(1, TenantTier::Standard)
                    .with_tier(2, TenantTier::BestEffort),
            ));
        }
        b.build().expect("toy engine builds")
    };

    // Deadlines span queueing + batching headroom over bare service time.
    let mut space = engine.constraint_space();
    space.lat_lo *= 2.0;
    space.lat_hi *= 4.0;
    let qs = uniform_stream(&space, c.n, c.seed ^ 0x51);
    let rate_qps = c.load * c.workers as f64 * 1e3 / mean_cold;
    let arrivals = ArrivalProcess::Poisson { rate_qps }.timestamps(c.n, c.seed ^ 0x52);
    let mut stream = attach_arrivals(&qs, &arrivals);
    if c.tenants {
        for (i, tq) in stream.iter_mut().enumerate() {
            tq.tenant = (i % 3) as u32;
        }
    }
    let result = engine.serve_timed(&stream).expect("fault run completes");
    (result, stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The hard conservation invariant: under any fault schedule — crashes
    /// (including permanent, whole-pool loss), stragglers, transients,
    /// supervised or not — every admitted query lands in exactly one of
    /// {served, dropped}, with the partition closing globally, per tenant
    /// tier, and per drop reason, and the summary's per-reason counts
    /// agreeing with the raw drop records.
    #[test]
    fn every_admitted_query_is_served_or_dropped_exactly_once(c in case_strategy()) {
        let (result, stream) = run_case(&c);
        prop_assert_eq!(
            result.served.len() + result.dropped.len(),
            stream.len(),
            "conservation leaked: {} served + {} dropped != {} admitted",
            result.served.len(), result.dropped.len(), stream.len()
        );

        // Exactly-once at the identity level: no query is both served and
        // dropped, or counted twice on either side.
        let mut seen: HashSet<(u32, u64)> = HashSet::new();
        for s in &result.served {
            prop_assert!(seen.insert((s.tenant, s.query.id)), "query served twice");
        }
        for d in &result.dropped {
            prop_assert!(
                seen.insert((d.timed.tenant, d.timed.query.id)),
                "query both served and dropped"
            );
        }

        // Per-tier partition: admitted = served + dropped within each tier.
        let mut offered_t = [0usize; 3];
        for tq in &stream {
            offered_t[tier_of(c.tenants, tq.tenant).index()] += 1;
        }
        let mut served_t = [0usize; 3];
        for s in &result.served {
            prop_assert_eq!(s.tier, tier_of(c.tenants, s.tenant), "served tier mismatch");
            served_t[s.tier.index()] += 1;
        }
        let mut dropped_t = [0usize; 3];
        for d in &result.dropped {
            prop_assert_eq!(d.tier, tier_of(c.tenants, d.timed.tenant), "dropped tier mismatch");
            dropped_t[d.tier.index()] += 1;
        }
        for tier in TenantTier::ALL {
            let i = tier.index();
            prop_assert_eq!(
                offered_t[i], served_t[i] + dropped_t[i],
                "tier {} accounting leaked", tier.name()
            );
        }

        // Per-reason partition, cross-checked against the summary.
        let mut by_reason = [0usize; 4];
        for d in &result.dropped {
            by_reason[match d.reason {
                DropReason::QueueFull => 0,
                DropReason::DeadlineLapsed => 1,
                DropReason::RetryBudgetExhausted => 2,
                DropReason::ReplicaLost => 3,
            }] += 1;
        }
        let s = result.summary();
        prop_assert_eq!(s.dropped, result.dropped.len());
        prop_assert_eq!(s.dropped_queue_full, by_reason[0]);
        prop_assert_eq!(s.dropped_deadline, by_reason[1]);
        prop_assert_eq!(s.dropped_retry_budget, by_reason[2]);
        prop_assert_eq!(s.dropped_replica_lost, by_reason[3]);
        prop_assert_eq!(by_reason.iter().sum::<usize>(), result.dropped.len());

        // An unsupervised pool never retries, hedges, or quarantines.
        if !c.supervised {
            let f = result.faults.as_ref().expect("fault runs carry a summary");
            prop_assert_eq!(f.retries, 0);
            prop_assert_eq!(f.hedges, 0);
            prop_assert_eq!(f.quarantines, 0);
        }
    }

    /// Same seed, same stream, same fault plan ⇒ bit-identical
    /// [`SimResult`] — the replayability contract fault injection must not
    /// break.
    #[test]
    fn fault_runs_replay_bit_identically(c in case_strategy()) {
        let (a, stream_a) = run_case(&c);
        let (b, stream_b) = run_case(&c);
        prop_assert_eq!(stream_a, stream_b, "stream generation must be deterministic");
        prop_assert_eq!(a, b, "fault-injected serving must replay bit-identically");
    }
}
