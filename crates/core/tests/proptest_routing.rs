//! Property-based tests for replica routing: `RoutingPolicy::choose` is a
//! pure function over `ReplicaView` snapshots, so its contract is directly
//! checkable — determinism, free-replica-only picks, starvation freedom
//! under round-robin, and cache-affinity never skipping a free replica
//! whose resident SubGraph already covers the query.

use proptest::prelude::*;

use sushi_core::serving::{ReplicaView, RoutingPolicy};

fn bool_strategy() -> impl Strategy<Value = bool> {
    (0usize..2).prop_map(|b| b == 1)
}

fn view_strategy() -> impl Strategy<Value = ReplicaView> {
    (bool_strategy(), 0.0f64..500.0, bool_strategy())
        .prop_map(|(free, busy_until_ms, covers)| ReplicaView { free, busy_until_ms, covers })
}

fn policy_strategy() -> impl Strategy<Value = RoutingPolicy> {
    prop_oneof![
        Just(RoutingPolicy::LeastLoaded),
        Just(RoutingPolicy::RoundRobin),
        Just(RoutingPolicy::CacheAffinity),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Same views + same cursor → same pick: routing adds no hidden state
    /// beyond the round-robin cursor, so replays are bit-identical.
    #[test]
    fn routing_is_deterministic(
        policy in policy_strategy(),
        views in proptest::collection::vec(view_strategy(), 1..9),
        cursor in 0usize..32,
    ) {
        let mut c1 = cursor;
        let mut c2 = cursor;
        let a = policy.choose(&views, &mut c1);
        let b = policy.choose(&views, &mut c2);
        prop_assert_eq!(a, b);
        prop_assert_eq!(c1, c2, "cursor evolution must be deterministic too");
    }

    /// A pick is always a free replica; `None` only when none is free.
    #[test]
    fn routing_picks_only_free_replicas(
        policy in policy_strategy(),
        views in proptest::collection::vec(view_strategy(), 1..9),
        cursor in 0usize..32,
    ) {
        let mut c = cursor;
        match policy.choose(&views, &mut c) {
            Some(w) => prop_assert!(views[w].free, "picked busy replica {}", w),
            None => prop_assert!(views.iter().all(|v| !v.free)),
        }
    }

    /// Round-robin is starvation-free: dispatching repeatedly over an
    /// all-free pool visits every replica within one full cycle.
    #[test]
    fn round_robin_never_starves_a_replica(
        n in 1usize..9,
        cursor in 0usize..32,
        busy in proptest::collection::vec(0.0f64..500.0, 8),
    ) {
        let views: Vec<ReplicaView> = (0..n)
            .map(|w| ReplicaView { free: true, busy_until_ms: busy[w], covers: w % 2 == 0 })
            .collect();
        let mut c = cursor;
        let mut visited = vec![false; n];
        for _ in 0..n {
            let w = RoutingPolicy::RoundRobin.choose(&views, &mut c).expect("all free");
            visited[w] = true;
        }
        prop_assert!(visited.iter().all(|&v| v), "cycle skipped a replica: {:?}", visited);
    }

    /// Cache affinity never skips a free replica whose resident SubGraph
    /// covers the query: if any free view has `covers`, the pick does too.
    #[test]
    fn cache_affinity_never_skips_a_free_affine_replica(
        views in proptest::collection::vec(view_strategy(), 1..9),
        cursor in 0usize..32,
    ) {
        let mut c = cursor;
        let affine_free_exists = views.iter().any(|v| v.free && v.covers);
        if let Some(w) = RoutingPolicy::CacheAffinity.choose(&views, &mut c) {
            if affine_free_exists {
                prop_assert!(
                    views[w].covers,
                    "picked a cold replica {} while a warm one was free", w
                );
            }
        } else {
            prop_assert!(!affine_free_exists);
        }
    }

    /// Every policy falls back to a deterministic free pick when no replica
    /// covers the query — affinity must not trade starvation for warmth.
    #[test]
    fn routing_with_no_coverage_still_dispatches(
        policy in policy_strategy(),
        busy in proptest::collection::vec((bool_strategy(), 0.0f64..500.0), 1..9),
        cursor in 0usize..32,
    ) {
        let views: Vec<ReplicaView> = busy
            .iter()
            .map(|&(free, b)| ReplicaView { free, busy_until_ms: b, covers: false })
            .collect();
        let mut c = cursor;
        let pick = policy.choose(&views, &mut c);
        prop_assert_eq!(pick.is_some(), views.iter().any(|v| v.free));
    }
}
