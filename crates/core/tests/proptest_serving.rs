//! Property-based tests for the serving building blocks: admission-queue
//! depth accounting (conservation, non-negativity, smoothing — globally
//! *and* per tenant tier), best-effort-first shedding under deadline-aware
//! pressure, and dynamic batching (a batch never spans a cache-install
//! boundary).

use proptest::prelude::*;

use sushi_core::serving::queue::QueuedQuery;
use sushi_core::serving::{AdmissionQueue, BatchPolicy, DropPolicy, DropReason};
use sushi_core::stream::TimedQuery;
use sushi_sched::{Query, TenantTier};

fn item(id: u64, arrival_ms: f64, lat_ms: f64, subnet_row: usize, tier: TenantTier) -> QueuedQuery {
    QueuedQuery {
        timed: TimedQuery::new(arrival_ms, Query::new(id, 0.7, lat_ms)),
        subnet_row,
        tier,
    }
}

fn tier_strategy() -> impl Strategy<Value = TenantTier> {
    (0usize..3).prop_map(|i| TenantTier::ALL[i])
}

/// One randomized queue operation (applied at a strictly advancing clock).
#[derive(Debug, Clone, Copy)]
enum Op {
    Offer { lat_ms: f64, row: usize, tier: TenantTier },
    Sweep,
    TakeRow { row: usize, max: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.5f64..40.0, 0usize..3, tier_strategy()).prop_map(|(lat_ms, row, tier)| Op::Offer {
            lat_ms,
            row,
            tier
        }),
        Just(Op::Sweep),
        (0usize..3, 1usize..6).prop_map(|(row, max)| Op::TakeRow { row, max }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Depth accounting is conserved and non-negative under arbitrary
    /// admit/drop/pop interleavings, for every drop policy: every offered
    /// query ends up in exactly one of {queued, dropped, taken} — globally
    /// *and within its own tenant tier* — the depth never exceeds
    /// capacity, and both depth aggregates (time-weighted mean, EWMA) stay
    /// within `[0, max_depth]`.
    #[test]
    fn queue_depth_accounting_is_conserved(
        policy_pick in 0usize..3,
        capacity in 1usize..12,
        tau_ms in 0.0f64..20.0,
        ops in proptest::collection::vec((0.01f64..8.0, op_strategy()), 1..80),
    ) {
        let policy = [DropPolicy::DropNewest, DropPolicy::DropOldest, DropPolicy::DeadlineAware]
            [policy_pick];
        let mut q = AdmissionQueue::new(capacity, policy).with_depth_tau(tau_ms);
        let (mut now, mut offered, mut dropped, mut taken) = (0.0f64, 0usize, 0usize, 0usize);
        // The same accounting, partitioned by tenant tier.
        let mut offered_t = [0usize; 3];
        let mut dropped_t = [0usize; 3];
        let mut taken_t = [0usize; 3];
        let mut next_id = 0u64;
        for (dt, op) in ops {
            now += dt;
            match op {
                Op::Offer { lat_ms, row, tier } => {
                    offered += 1;
                    offered_t[tier.index()] += 1;
                    next_id += 1;
                    if let Some(victim) = q.offer(now, item(next_id, now, lat_ms, row, tier)) {
                        dropped += 1;
                        dropped_t[victim.tier.index()] += 1;
                    }
                }
                Op::Sweep => {
                    for victim in q.sweep_lapsed(now) {
                        dropped += 1;
                        dropped_t[victim.tier.index()] += 1;
                    }
                }
                Op::TakeRow { row, max } => {
                    for popped in q.take_row(now, row, max) {
                        taken += 1;
                        taken_t[popped.tier.index()] += 1;
                    }
                }
            }
            // Conservation: nothing is ever double-counted or lost.
            prop_assert_eq!(offered, q.depth() + dropped + taken);
            prop_assert!(q.depth() <= capacity);
            prop_assert!(q.depth() <= q.max_depth());
            // Per-row counts partition the queue.
            let by_row: usize = (0..3).map(|r| q.count_row(r)).sum();
            prop_assert_eq!(by_row, q.depth());
            // Per-tier counts partition it too, and each tier's own
            // accounting closes: admitted = queued + shed + taken.
            let by_tier: usize = TenantTier::ALL.iter().map(|&t| q.count_tier(t)).sum();
            prop_assert_eq!(by_tier, q.depth());
            for tier in TenantTier::ALL {
                let i = tier.index();
                prop_assert_eq!(
                    offered_t[i], q.count_tier(tier) + dropped_t[i] + taken_t[i],
                    "tier {} accounting leaked", tier.name()
                );
            }
            // Aggregates stay inside the envelope the raw depth traced out.
            let mean = q.mean_depth(now + 1e-9);
            prop_assert!(mean >= 0.0 && mean <= q.max_depth() as f64 + 1e-9);
            let smoothed = q.smoothed_depth(now);
            prop_assert!(
                smoothed >= -1e-9 && smoothed <= q.max_depth() as f64 + 1e-9,
                "smoothed depth {smoothed} escaped [0, {}]", q.max_depth()
            );
            if tau_ms == 0.0 {
                prop_assert_eq!(smoothed, q.depth() as f64);
            }
        }
    }

    /// Deadline-aware shedding is best-effort first: when capacity forces
    /// a drop, the victim always comes from the most-droppable tier
    /// present in the contention set (queue plus the arriving query). In
    /// particular a latency-critical query is never shed while a
    /// best-effort or standard one was available to shed instead. Lapsed
    /// arrivals are exempt — refusing an already-dead query is deadline
    /// semantics, not shedding order.
    #[test]
    fn deadline_aware_sheds_best_effort_first(
        capacity in 1usize..8,
        offers in proptest::collection::vec(
            (0.01f64..5.0, 0.5f64..60.0, 0usize..3, tier_strategy()),
            1..60,
        ),
    ) {
        let mut q = AdmissionQueue::new(capacity, DropPolicy::DeadlineAware);
        let mut now = 0.0f64;
        let mut next_id = 0u64;
        for (dt, lat_ms, row, tier) in offers {
            now += dt;
            next_id += 1;
            let incoming = item(next_id, now, lat_ms, row, tier);
            let lapsed = incoming.timed.deadline_ms() < now;
            // Tier census of the contention set before the offer.
            let mut present = [0usize; 3];
            for t in TenantTier::ALL {
                present[t.index()] = q.count_tier(t);
            }
            present[tier.index()] += 1;
            let at_capacity = q.depth() == capacity;
            let victim = q.offer(now, incoming);
            if lapsed {
                continue;
            }
            if let Some(v) = &victim {
                prop_assert_eq!(v.reason, DropReason::QueueFull);
                prop_assert!(at_capacity, "a non-full queue shed a query");
                let worst_present = TenantTier::ALL
                    .iter()
                    .filter(|t| present[t.index()] > 0)
                    .map(|t| t.shed_precedence())
                    .max()
                    .expect("contention set is non-empty");
                prop_assert_eq!(
                    v.tier.shed_precedence(), worst_present,
                    "shed a {} query while a more droppable tier was present",
                    v.tier.name()
                );
            }
        }
    }

    /// A formed batch never crosses a cache-install boundary: queries
    /// admitted under different resident SubGraphs resolve to different
    /// SubNet rows (their admission-time decision), and `form` only ever
    /// extracts queries sharing the head-of-line row, in FIFO order, at
    /// most `max_batch` of them.
    #[test]
    fn batches_never_cross_a_cache_install_boundary(
        epoch_sizes in proptest::collection::vec(1usize..6, 1..5),
        max_batch in 1usize..8,
    ) {
        // Each epoch models the queries admitted between two cache
        // installs; the install changes the scheduler's decision, so each
        // epoch gets a distinct SubNet row.
        let mut q = AdmissionQueue::new(64, DropPolicy::DropNewest);
        let mut id = 0u64;
        let mut arrival = 0.0;
        for (epoch, &count) in epoch_sizes.iter().enumerate() {
            for _ in 0..count {
                arrival += 1.0;
                id += 1;
                prop_assert!(
                    q.offer(arrival, item(id, arrival, 1e6, epoch, TenantTier::Standard)).is_none()
                );
            }
        }
        let policy = BatchPolicy::new(max_batch, 0.0);
        let mut last_id = 0u64;
        while let Some(head) = q.head().copied() {
            prop_assert!(policy.ready(&q, arrival + 1.0));
            let batch = policy.form(&mut q, arrival + 1.0);
            prop_assert!(!batch.is_empty() && batch.len() <= max_batch);
            for b in &batch {
                prop_assert_eq!(
                    b.subnet_row, head.subnet_row,
                    "a batch mixed rows {} and {}: it crossed an install boundary",
                    head.subnet_row, b.subnet_row
                );
                // FIFO within the batch (ids were assigned in arrival order).
                prop_assert!(b.timed.query.id > last_id);
                last_id = b.timed.query.id;
            }
        }
        // Everything admitted was eventually batched.
        prop_assert_eq!(last_id, id);
    }
}
