//! # sushi-tensor
//!
//! Minimal, dependency-light tensor and neural-network-operator substrate for
//! the SUSHI (MLSys'23) reproduction.
//!
//! The SUSHI paper serves **int8-quantized** convolutional SubNets of a
//! weight-shared SuperNet on a custom FPGA accelerator. This crate provides
//! the numeric ground truth that the accelerator simulator in `sushi-accel`
//! is validated against:
//!
//! * [`Tensor`] — a dense NCHW tensor over `f32`, `i8` or `i32`.
//! * [`quant`] — symmetric/asymmetric int8 quantization with zero points and
//!   scales, matching the paper's footnote 3 ("weights, input activations,
//!   and zero points are quantized to int8, and the quantization scale is
//!   quantized into int32").
//! * [`ops`] — 2-D convolution (including depthwise and 1×1), pooling,
//!   fully-connected layers and the activation functions used by
//!   OFA-ResNet50 / OFA-MobileNetV3. Each op keeps a naive reference loop
//!   as the correctness oracle and a fast im2col + panel-packed microkernel
//!   GEMM backend behind [`KernelPolicy`] (see [`ops::pack`] for the
//!   packed layouts and `docs/KERNELS.md` for the full contract).
//! * [`arena`] — reusable scratch memory so steady-state serving performs
//!   no per-query heap allocation for patch/packing/accumulator buffers.
//!
//! # Example
//!
//! ```
//! use sushi_tensor::{Tensor, Shape4};
//! use sushi_tensor::ops::conv::{conv2d_f32, Conv2dParams};
//!
//! # fn main() -> Result<(), sushi_tensor::TensorError> {
//! let input = Tensor::<f32>::filled(Shape4::new(1, 3, 8, 8), 1.0);
//! let weights = Tensor::<f32>::filled(Shape4::new(4, 3, 3, 3), 0.5);
//! let params = Conv2dParams::new(3, 3).with_stride(1).with_padding(1);
//! let out = conv2d_f32(&input, &weights, None, &params)?;
//! assert_eq!(out.shape().c, 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod error;
pub mod ops;
pub mod quant;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use arena::Arena;
pub use error::TensorError;
pub use ops::epilogue::{Epilogue, EpilogueScale};
pub use ops::gemm::KernelPolicy;
pub use ops::pack::{PackLayout, PackedConv2d};
pub use quant::QuantParams;
pub use rng::DetRng;
pub use shape::Shape4;
pub use tensor::Tensor;
