//! Deterministic random number generation for synthetic weights and inputs.
//!
//! Every stochastic artifact in the reproduction (SuperNet weights, query
//! constraints, input activations) must be reproducible run-to-run so the
//! regenerated tables and figures are stable. This module wraps a
//! SplitMix64 generator: tiny, fast, and stable across platforms — unlike
//! `rand`'s default generators whose stream is not guaranteed across
//! versions.

use serde::{Deserialize, Serialize};

/// Deterministic SplitMix64 generator with convenience samplers.
///
/// # Example
/// ```
/// use sushi_tensor::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child stream, e.g. one per layer.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        let mix = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(mix)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_f32 bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is undefined");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `i8` in the full int8 range, suitable as a synthetic weight.
    pub fn next_i8(&mut self) -> i8 {
        (self.next_u64() & 0xFF) as u8 as i8
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if `choices` is empty.
    pub fn choose<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.below(choices.len())]
    }

    /// Approximately standard-normal sample (sum of 4 uniforms, variance-corrected).
    pub fn next_gaussian(&mut self) -> f64 {
        // Irwin–Hall with n=4: mean 2, variance 4/12.
        let s: f64 = (0..4).map(|_| self.next_f64()).sum();
        (s - 2.0) / (4.0_f64 / 12.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_of_parent_continuation() {
        let mut parent = DetRng::new(9);
        let mut child = parent.fork(1);
        let p_next = parent.next_u64();
        let c_next = child.next_u64();
        assert_ne!(p_next, c_next);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(4);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = DetRng::new(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_f32_respects_bounds() {
        let mut r = DetRng::new(6);
        for _ in 0..1000 {
            let v = r.uniform_f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_has_plausible_moments() {
        let mut r = DetRng::new(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn choose_returns_member() {
        let mut r = DetRng::new(10);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.choose(&xs)));
        }
    }
}
