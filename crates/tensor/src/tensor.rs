//! Dense NCHW tensor container.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape4;

/// Element types storable in a [`Tensor`].
///
/// Sealed to the three types the SUSHI datapath uses: `f32` reference math,
/// `i8` quantized weights/activations and `i32` accumulators.
pub trait Element:
    Copy + Default + PartialEq + fmt::Debug + Send + Sync + 'static + private::Sealed
{
}

impl Element for f32 {}
impl Element for i8 {}
impl Element for i32 {}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for i8 {}
    impl Sealed for i32 {}
}

/// A dense, heap-allocated NCHW tensor.
///
/// # Example
/// ```
/// use sushi_tensor::{Tensor, Shape4};
///
/// let mut t = Tensor::<i8>::zeros(Shape4::new(1, 2, 2, 2));
/// t.set(0, 1, 1, 1, 42);
/// assert_eq!(t.get(0, 1, 1, 1), 42);
/// assert_eq!(t.as_slice().iter().filter(|&&v| v == 42).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T: Element> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Element> Tensor<T> {
    /// Creates a tensor of zeros (the element type's default value).
    #[must_use]
    pub fn zeros(shape: Shape4) -> Self {
        Self { shape, data: vec![T::default(); shape.volume()] }
    }

    /// Creates a tensor where every element is `value`.
    #[must_use]
    pub fn filled(shape: Shape4, value: T) -> Self {
        Self { shape, data: vec![value; shape.volume()] }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.volume()`.
    pub fn from_vec(shape: Shape4, data: Vec<T>) -> Result<Self, TensorError> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Read-only view of the backing buffer in NCHW order.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing buffer in NCHW order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics if the index is out of bounds (debug builds check each axis).
    #[inline]
    #[must_use]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        self.data[self.shape.offset(n, c, h, w)]
    }

    /// Element setter.
    ///
    /// # Panics
    /// Panics if the index is out of bounds (debug builds check each axis).
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: T) {
        let off = self.shape.offset(n, c, h, w);
        self.data[off] = value;
    }

    /// Contiguous row `(n, c, h, 0..w)` as a slice.
    ///
    /// Hot loops use this (plus [`Shape4::row_offset`]) to stream whole rows
    /// instead of paying the four-term offset arithmetic per element.
    ///
    /// # Panics
    /// Panics if the row is out of bounds (debug builds check each axis).
    #[inline]
    #[must_use]
    pub fn row(&self, n: usize, c: usize, h: usize) -> &[T] {
        let off = self.shape.row_offset(n, c, h);
        &self.data[off..off + self.shape.w]
    }

    /// Mutable contiguous row `(n, c, h, 0..w)`.
    ///
    /// # Panics
    /// Panics if the row is out of bounds (debug builds check each axis).
    #[inline]
    pub fn row_mut(&mut self, n: usize, c: usize, h: usize) -> &mut [T] {
        let off = self.shape.row_offset(n, c, h);
        &mut self.data[off..off + self.shape.w]
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    #[must_use]
    pub fn map<U: Element>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor { shape: self.shape, data: self.data.iter().copied().map(f).collect() }
    }
}

impl Tensor<f32> {
    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                what: "max_abs_diff operands",
                lhs: self.shape,
                rhs: other.shape,
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0_f32, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_default_elements() {
        let t = Tensor::<i32>::zeros(Shape4::new(1, 2, 2, 2));
        assert!(t.as_slice().iter().all(|&v| v == 0));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Tensor::<f32>::from_vec(Shape4::new(1, 1, 2, 2), vec![0.0; 3]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 4, actual: 3 });
    }

    #[test]
    fn from_vec_roundtrips_through_into_vec() {
        let data = vec![1i8, 2, 3, 4, 5, 6];
        let t = Tensor::from_vec(Shape4::new(1, 1, 2, 3), data.clone()).unwrap();
        assert_eq!(t.into_vec(), data);
    }

    #[test]
    fn get_set_are_inverse() {
        let mut t = Tensor::<f32>::zeros(Shape4::new(2, 2, 3, 3));
        t.set(1, 0, 2, 1, 7.5);
        assert_eq!(t.get(1, 0, 2, 1), 7.5);
        assert_eq!(t.get(0, 0, 2, 1), 0.0);
    }

    #[test]
    fn row_views_match_element_accessors() {
        let mut t = Tensor::<f32>::zeros(Shape4::new(2, 2, 3, 4));
        t.set(1, 1, 2, 3, 9.0);
        assert_eq!(t.row(1, 1, 2), &[0.0, 0.0, 0.0, 9.0]);
        t.row_mut(0, 1, 0).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.get(0, 1, 0, 2), 3.0);
    }

    #[test]
    fn map_converts_element_type() {
        let t = Tensor::<i8>::filled(Shape4::new(1, 1, 1, 3), 4);
        let f: Tensor<f32> = t.map(|v| f32::from(v) * 0.5);
        assert_eq!(f.as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn max_abs_diff_detects_largest_deviation() {
        let a = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![1.0, 2.5, 2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
    }

    #[test]
    fn max_abs_diff_rejects_shape_mismatch() {
        let a = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 3));
        let b = Tensor::<f32>::zeros(Shape4::new(1, 1, 3, 1));
        assert!(a.max_abs_diff(&b).is_err());
    }

    #[test]
    fn empty_tensor_reports_empty() {
        let t = Tensor::<f32>::zeros(Shape4::new(0, 1, 1, 1));
        assert!(t.is_empty());
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor<f32>>();
        assert_send_sync::<Tensor<i8>>();
    }
}
