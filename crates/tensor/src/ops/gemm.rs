//! Panel-packed GEMM with register microkernels, and the kernel-backend
//! policy.
//!
//! The SUSHI datapath lowers dense convolutions to matrix multiplication
//! (see [`crate::ops::im2col`]): weights become an `M×K` row-major matrix,
//! the im2col patch matrix is `K×N`, and the output activations fall out as
//! `M×N` rows that map one-to-one onto contiguous NCHW output rows. The
//! kernels here are the repo's hot path, structured BLIS-style:
//!
//! * **Packing** ([`crate::ops::pack`]) — both operands are repacked into
//!   panel layouts whose inner stride equals the register tile, so the
//!   microkernel only ever loads contiguous `MR`/`NR` runs. The quantized
//!   path subtracts zero points *at pack time* (`i8 → i16`), removing all
//!   per-MAC zero-point work.
//! * **`MR×NR` microkernels** — a 4×8 register tile of `C` accumulates in
//!   locals across a `KC` panel; each loaded A value is reused `NR` times
//!   and each B value `MR` times from registers. A `std::arch` AVX2(+FMA)
//!   path is selected at runtime via `is_x86_feature_detected!`; the
//!   portable kernel is the always-correct fallback (and the two agree —
//!   bit-exactly for int8, within reassociation error for f32).
//! * **Cache blocking** — `KC`-deep reduction panels keep one `KC×NR` B
//!   panel L1-resident, and `MC`-row blocks of packed A stay L2-resident
//!   while the B block streams past.
//! * **Threaded row tiling** — large products split `C` into disjoint
//!   row-panel blocks dispatched via `std::thread::scope`.
//!
//! Integer GEMM ([`gemm_i8_i32`]) is bit-identical to the scalar reference
//! loops under every blocking/ISA choice: the packed operands hold exactly
//! `(a − zp_a)` / `(b − zp_b)` and `i32` addition is associative, so
//! reassociating the reduction cannot change the sum.
//!
//! # Tuned thresholds (measured on the repo's 8-core x86-64 CI box)
//!
//! * [`PARALLEL_MIN`] = 2²⁰ MACs: below this, `std::thread::scope` spawn
//!   overhead (~10 µs/thread) exceeds the kernel time itself — a 64×129×130
//!   product runs in ~0.3 ms single-threaded, so only products at least a
//!   millisecond deep are worth fanning out.
//! * [`AUTO_DIRECT_MAC_THRESHOLD`] = 2048 MACs: with pack-time zero-point
//!   subtraction and arena-reused scratch, the packed path's fixed cost is
//!   roughly one extra pass over each operand. The crossover probe
//!   (`auto_crossover_probe` in `ops::conv`, release mode) measures the
//!   direct loops vs the packed path at 1.2 µs vs 1.1 µs on a 576-MAC 3×3
//!   conv and 8.5 µs vs 3.7 µs at 5.2k MACs — i.e. GEMM ties by ~0.6k MACs
//!   and wins >2× by ~5k. PR 2's 8k-MAC threshold was re-measured after
//!   the packed rewrite and lowered to 2k; below that only degenerate
//!   shapes remain (SE-module 1×1 convs on pooled 1×1 pixels), where the
//!   NR-padded patch panel would waste most of its lanes.
//! * Depthwise stays on the direct loops under `Auto` regardless of size:
//!   its GEMM reduction depth is just `R·S`, too shallow to amortize even
//!   the cheaper packed im2col.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use crate::error::TensorError;
use crate::ops::pack::{
    pack_a_f32_into, pack_a_i8_into, pack_b_f32_into, pack_b_i8_into, packed_a_len,
    packed_a_pairs_len, packed_b_len, packed_b_pairs_len, MR, NR,
};

/// Which kernel implementation `conv2d_*` / `linear_*` should use.
///
/// `Naive` keeps the original scalar loop nests — they stay the correctness
/// oracle that the fast path is validated against. `Im2colGemm` forces the
/// im2col + packed-GEMM lowering. `Auto` (the default) resolves per problem
/// size: depthwise and tiny convolutions stay on the direct loops, dense
/// `1×1`/`3×3`-style layers go through GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelPolicy {
    /// Always use the scalar reference loops (the correctness oracle).
    Naive,
    /// Always use the im2col + packed-GEMM lowering.
    Im2colGemm,
    /// Pick per problem size (depthwise/tiny → direct, dense → GEMM).
    #[default]
    Auto,
}

/// The backend a [`KernelPolicy`] resolves to for one concrete problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvBackend {
    /// Direct loop nest over the convolution window.
    Direct,
    /// im2col lowering followed by packed GEMM.
    Im2colGemm,
}

/// Below this many multiply-accumulates, `Auto` keeps the direct loops: the
/// im2col materialization and packing would dominate. See the module docs
/// for the measurement behind the value.
pub const AUTO_DIRECT_MAC_THRESHOLD: usize = 2 * 1024;

impl KernelPolicy {
    /// Resolves the policy for a convolution with `macs` multiply-accumulates
    /// total. `depthwise` marks single-input-channel-per-group convolutions,
    /// which `Auto` always keeps on the direct loops (their GEMM reduction
    /// depth is just `R·S`, too shallow to amortize the im2col copy).
    #[must_use]
    pub fn resolve(self, macs: usize, depthwise: bool) -> ConvBackend {
        match self {
            KernelPolicy::Naive => ConvBackend::Direct,
            KernelPolicy::Im2colGemm => ConvBackend::Im2colGemm,
            KernelPolicy::Auto => {
                if depthwise || macs < AUTO_DIRECT_MAC_THRESHOLD {
                    ConvBackend::Direct
                } else {
                    ConvBackend::Im2colGemm
                }
            }
        }
    }
}

impl fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelPolicy::Naive => "naive",
            KernelPolicy::Im2colGemm => "gemm",
            KernelPolicy::Auto => "auto",
        })
    }
}

impl FromStr for KernelPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(KernelPolicy::Naive),
            "gemm" | "im2col" | "im2col-gemm" => Ok(KernelPolicy::Im2colGemm),
            "auto" => Ok(KernelPolicy::Auto),
            other => Err(format!("unknown kernel policy '{other}' (expected naive|gemm|auto)")),
        }
    }
}

/// Reduction-panel depth: one `KC×NR` panel of B is kept L1-resident per
/// microkernel sweep.
pub const KC: usize = 256;
/// Row-block height (multiple of `MR`): an `MC×KC` block of packed A stays
/// L2-resident while the matching B block streams past it.
pub const MC: usize = 128;
/// Products below this many scalar MACs stay single-threaded. See the
/// module docs for the measurement behind the value.
pub const PARALLEL_MIN: usize = 1 << 20;

fn worker_count(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) < PARALLEL_MIN {
        return 1;
    }
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(m.div_ceil(MR))
        .max(1)
}

/// Whether the runtime-dispatched SIMD microkernels are active on this
/// machine (x86-64 with AVX2 and FMA). When `false`, the portable
/// microkernels run; results are equivalent either way.
#[must_use]
pub fn simd_kernels_active() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(detect_simd)
}

#[cfg(target_arch = "x86_64")]
fn detect_simd() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_simd() -> bool {
    false
}

// ---------------------------------------------------------------------------
// Microkernels: MR×NR register tiles over packed panels.
//
// Contract: `a` is a k-major MR-row panel slice (`kc·MR` values), `b` a
// k-major NR-column panel slice (`kc·NR` values); `acc` accumulates the
// MR×NR product tile in row-major order. Padded panel cells are zero (after
// zero-point subtraction for int8), so they can never perturb `acc`.
// ---------------------------------------------------------------------------

#[inline(always)]
fn mk_f32_portable(kc: usize, a: &[f32], b: &[f32], acc: &mut [f32; MR * NR]) {
    for kk in 0..kc {
        let av = &a[kk * MR..kk * MR + MR];
        let bv = &b[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let ar = av[r];
            for j in 0..NR {
                acc[r * NR + j] += ar * bv[j];
            }
        }
    }
}

#[inline(always)]
fn mk_i16_portable(kc: usize, a: &[i16], b: &[i16], acc: &mut [i32; MR * NR]) {
    for kk in 0..kc {
        let av = &a[kk * MR..kk * MR + MR];
        let bv = &b[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let ar = i32::from(av[r]);
            for j in 0..NR {
                acc[r * NR + j] += ar * i32::from(bv[j]);
            }
        }
    }
}

/// AVX2+FMA f32 microkernel: each of the four C rows lives in one ymm
/// register; B rows load as a single 8-lane vector, A values broadcast.
///
/// # Safety
/// Caller must have verified AVX2+FMA support (see [`simd_kernels_active`])
/// and pass slices satisfying the microkernel contract above.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mk_f32_avx2(kc: usize, a: &[f32], b: &[f32], acc: &mut [f32; MR * NR]) {
    use std::arch::x86_64::{
        _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_storeu_ps,
    };
    debug_assert!(a.len() >= kc * MR && b.len() >= kc * NR);
    let mut c0 = _mm256_loadu_ps(acc.as_ptr());
    let mut c1 = _mm256_loadu_ps(acc.as_ptr().add(NR));
    let mut c2 = _mm256_loadu_ps(acc.as_ptr().add(2 * NR));
    let mut c3 = _mm256_loadu_ps(acc.as_ptr().add(3 * NR));
    for kk in 0..kc {
        let bv = _mm256_loadu_ps(b.as_ptr().add(kk * NR));
        let ap = a.as_ptr().add(kk * MR);
        c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap), bv, c0);
        c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(1)), bv, c1);
        c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(2)), bv, c2);
        c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(3)), bv, c3);
    }
    _mm256_storeu_ps(acc.as_mut_ptr(), c0);
    _mm256_storeu_ps(acc.as_mut_ptr().add(NR), c1);
    _mm256_storeu_ps(acc.as_mut_ptr().add(2 * NR), c2);
    _mm256_storeu_ps(acc.as_mut_ptr().add(3 * NR), c3);
}

/// AVX2 int microkernel: B's 8 i16 lanes widen to one i32 ymm; products use
/// `mullo_epi32` + `add_epi32`, the exact portable arithmetic — so this
/// path is bit-identical to [`mk_i16_portable`], not just close.
///
/// # Safety
/// Caller must have verified AVX2 support and pass slices satisfying the
/// microkernel contract above.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mk_i16_avx2(kc: usize, a: &[i16], b: &[i16], acc: &mut [i32; MR * NR]) {
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_cvtepi16_epi32, _mm256_loadu_si256, _mm256_mullo_epi32,
        _mm256_set1_epi32, _mm256_storeu_si256, _mm_loadu_si128,
    };
    debug_assert!(a.len() >= kc * MR && b.len() >= kc * NR);
    let mut c0 = _mm256_loadu_si256(acc.as_ptr().cast());
    let mut c1 = _mm256_loadu_si256(acc.as_ptr().add(NR).cast());
    let mut c2 = _mm256_loadu_si256(acc.as_ptr().add(2 * NR).cast());
    let mut c3 = _mm256_loadu_si256(acc.as_ptr().add(3 * NR).cast());
    for kk in 0..kc {
        let bv = _mm256_cvtepi16_epi32(_mm_loadu_si128(b.as_ptr().add(kk * NR).cast()));
        let ap = a.as_ptr().add(kk * MR);
        c0 = _mm256_add_epi32(c0, _mm256_mullo_epi32(_mm256_set1_epi32(i32::from(*ap)), bv));
        c1 = _mm256_add_epi32(c1, _mm256_mullo_epi32(_mm256_set1_epi32(i32::from(*ap.add(1))), bv));
        c2 = _mm256_add_epi32(c2, _mm256_mullo_epi32(_mm256_set1_epi32(i32::from(*ap.add(2))), bv));
        c3 = _mm256_add_epi32(c3, _mm256_mullo_epi32(_mm256_set1_epi32(i32::from(*ap.add(3))), bv));
    }
    _mm256_storeu_si256(acc.as_mut_ptr().cast(), c0);
    _mm256_storeu_si256(acc.as_mut_ptr().add(NR).cast(), c1);
    _mm256_storeu_si256(acc.as_mut_ptr().add(2 * NR).cast(), c2);
    _mm256_storeu_si256(acc.as_mut_ptr().add(3 * NR).cast(), c3);
}

#[inline(always)]
fn mk_i16_pairs_portable(kpairs: usize, a: &[i16], b: &[i16], acc: &mut [i32; MR * NR]) {
    for kp in 0..kpairs {
        let av = &a[kp * MR * 2..(kp + 1) * MR * 2];
        let bv = &b[kp * NR * 2..(kp + 1) * NR * 2];
        for r in 0..MR {
            let a0 = i32::from(av[r * 2]);
            let a1 = i32::from(av[r * 2 + 1]);
            for j in 0..NR {
                acc[r * NR + j] += a0 * i32::from(bv[j * 2]) + a1 * i32::from(bv[j * 2 + 1]);
            }
        }
    }
}

/// AVX2 `pmaddwd` microkernel over pair-interleaved panels: one 256-bit B
/// load per k-pair carries `[b(k₀,j), b(k₁,j)]` for 8 columns; each A row's
/// pair broadcasts as a 32-bit value and `_mm256_madd_epi16` retires 16
/// multiply-accumulates per instruction (vs 8 for the `mullo` kernel).
///
/// Bit-identical to [`mk_i16_pairs_portable`] (and therefore to the `mullo`
/// and scalar paths): the `i16` products are exact in `i32` — operands are
/// zero-point-subtracted `i8` values, so `|a·b| ≤ 255² = 65 025` and a pair
/// sum stays below `2¹⁸` — and `i32` addition is associative, so
/// reassociating the reduction into pairs cannot change the sum. With the
/// datapath's maximum reduction depth (`kdim ≤ 720·3·3 < 2¹³`) the full
/// accumulator stays below `2³¹`.
///
/// # Safety
/// Caller must have verified AVX2 support (see [`simd_kernels_active`]) and
/// pass pair-interleaved slices of at least `kpairs·MR·2` / `kpairs·NR·2`
/// elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mk_i16_pairs_avx2(kpairs: usize, a: &[i16], b: &[i16], acc: &mut [i32; MR * NR]) {
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_set1_epi32,
        _mm256_storeu_si256,
    };
    debug_assert!(a.len() >= kpairs * MR * 2 && b.len() >= kpairs * NR * 2);
    let mut c0 = _mm256_loadu_si256(acc.as_ptr().cast());
    let mut c1 = _mm256_loadu_si256(acc.as_ptr().add(NR).cast());
    let mut c2 = _mm256_loadu_si256(acc.as_ptr().add(2 * NR).cast());
    let mut c3 = _mm256_loadu_si256(acc.as_ptr().add(3 * NR).cast());
    for kp in 0..kpairs {
        let bv = _mm256_loadu_si256(b.as_ptr().add(kp * NR * 2).cast());
        let ap = a.as_ptr().add(kp * MR * 2);
        // Each A pair occupies 32 bits; an unaligned i32 read + set1 is the
        // pair broadcast.
        let a0 = _mm256_set1_epi32(ap.cast::<i32>().read_unaligned());
        let a1 = _mm256_set1_epi32(ap.add(2).cast::<i32>().read_unaligned());
        let a2 = _mm256_set1_epi32(ap.add(4).cast::<i32>().read_unaligned());
        let a3 = _mm256_set1_epi32(ap.add(6).cast::<i32>().read_unaligned());
        c0 = _mm256_add_epi32(c0, _mm256_madd_epi16(a0, bv));
        c1 = _mm256_add_epi32(c1, _mm256_madd_epi16(a1, bv));
        c2 = _mm256_add_epi32(c2, _mm256_madd_epi16(a2, bv));
        c3 = _mm256_add_epi32(c3, _mm256_madd_epi16(a3, bv));
    }
    _mm256_storeu_si256(acc.as_mut_ptr().cast(), c0);
    _mm256_storeu_si256(acc.as_mut_ptr().add(NR).cast(), c1);
    _mm256_storeu_si256(acc.as_mut_ptr().add(2 * NR).cast(), c2);
    _mm256_storeu_si256(acc.as_mut_ptr().add(3 * NR).cast(), c3);
}

#[inline(always)]
fn writeback<T: Copy + std::ops::AddAssign>(
    c: &mut [T],
    n: usize,
    i0: usize,
    j0: usize,
    rows: usize,
    cols: usize,
    acc: &[T],
) {
    for r in 0..rows {
        let row = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + cols];
        for (j, cell) in row.iter_mut().enumerate() {
            *cell += acc[r * NR + j];
        }
    }
}

// ---------------------------------------------------------------------------
// Packed-operand drivers: kb (KC) → row block (MC) → column panel (NR) →
// row panel (MR) → microkernel. The B panel slice is L1-resident across the
// inner row-panel sweep; the MC×KC block of packed A is L2-resident across
// the column-panel sweep.
// ---------------------------------------------------------------------------

fn gemm_block_f32_packed(k: usize, n: usize, pa: &[f32], pb: &[f32], c: &mut [f32], simd: bool) {
    let m = c.len() / n;
    let n_panels = n.div_ceil(NR);
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        for i0 in (0..m).step_by(MC) {
            let rows_block = MC.min(m - i0);
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let cols = NR.min(n - j0);
                let bp = &pb[jp * k * NR + kb * NR..jp * k * NR + (kb + kc) * NR];
                for ip in (i0 / MR)..(i0 + rows_block).div_ceil(MR) {
                    let ap = &pa[ip * k * MR + kb * MR..ip * k * MR + (kb + kc) * MR];
                    let mut acc = [0.0f32; MR * NR];
                    #[cfg(target_arch = "x86_64")]
                    if simd {
                        // SAFETY: `simd` is only true when AVX2+FMA were
                        // detected; slices satisfy the kernel contract.
                        unsafe { mk_f32_avx2(kc, ap, bp, &mut acc) }
                    } else {
                        mk_f32_portable(kc, ap, bp, &mut acc);
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    {
                        let _ = simd;
                        mk_f32_portable(kc, ap, bp, &mut acc);
                    }
                    writeback(c, n, ip * MR, j0, MR.min(m - ip * MR), cols, &acc);
                }
            }
        }
    }
}

fn gemm_block_i8_packed(k: usize, n: usize, pa: &[i16], pb: &[i16], c: &mut [i32], simd: bool) {
    let m = c.len() / n;
    let n_panels = n.div_ceil(NR);
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        for i0 in (0..m).step_by(MC) {
            let rows_block = MC.min(m - i0);
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let cols = NR.min(n - j0);
                let bp = &pb[jp * k * NR + kb * NR..jp * k * NR + (kb + kc) * NR];
                for ip in (i0 / MR)..(i0 + rows_block).div_ceil(MR) {
                    let ap = &pa[ip * k * MR + kb * MR..ip * k * MR + (kb + kc) * MR];
                    let mut acc = [0i32; MR * NR];
                    #[cfg(target_arch = "x86_64")]
                    if simd {
                        // SAFETY: `simd` is only true when AVX2 was
                        // detected; slices satisfy the kernel contract.
                        unsafe { mk_i16_avx2(kc, ap, bp, &mut acc) }
                    } else {
                        mk_i16_portable(kc, ap, bp, &mut acc);
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    {
                        let _ = simd;
                        mk_i16_portable(kc, ap, bp, &mut acc);
                    }
                    writeback(c, n, ip * MR, j0, MR.min(m - ip * MR), cols, &acc);
                }
            }
        }
    }
}

fn run_packed_f32(m: usize, k: usize, n: usize, pa: &[f32], pb: &[f32], c: &mut [f32], simd: bool) {
    let threads = worker_count(m, k, n);
    if threads <= 1 {
        gemm_block_f32_packed(k, n, pa, pb, c, simd);
        return;
    }
    // Split C into row-panel-aligned chunks; each thread owns a disjoint
    // range of packed-A panels and C rows.
    let panels_per = m.div_ceil(MR).div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, c_chunk) in c.chunks_mut(panels_per * MR * n).enumerate() {
            let pa_chunk = &pa[chunk_idx * panels_per * MR * k..];
            scope.spawn(move || gemm_block_f32_packed(k, n, pa_chunk, pb, c_chunk, simd));
        }
    });
}

fn run_packed_i8(m: usize, k: usize, n: usize, pa: &[i16], pb: &[i16], c: &mut [i32], simd: bool) {
    let threads = worker_count(m, k, n);
    if threads <= 1 {
        gemm_block_i8_packed(k, n, pa, pb, c, simd);
        return;
    }
    let panels_per = m.div_ceil(MR).div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, c_chunk) in c.chunks_mut(panels_per * MR * n).enumerate() {
            let pa_chunk = &pa[chunk_idx * panels_per * MR * k..];
            scope.spawn(move || gemm_block_i8_packed(k, n, pa_chunk, pb, c_chunk, simd));
        }
    });
}

/// Pair-interleaved block driver: identical KC/MC blocking to
/// [`gemm_block_i8_packed`], with every k index counted in pairs (the panel
/// stride per k-pair is `2·MR` / `2·NR` elements).
fn gemm_block_i8_pairs(kpairs: usize, n: usize, pa: &[i16], pb: &[i16], c: &mut [i32], simd: bool) {
    const KCP: usize = KC / 2;
    let m = c.len() / n;
    let n_panels = n.div_ceil(NR);
    for kb in (0..kpairs).step_by(KCP) {
        let kc = KCP.min(kpairs - kb);
        for i0 in (0..m).step_by(MC) {
            let rows_block = MC.min(m - i0);
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let cols = NR.min(n - j0);
                let pb0 = jp * kpairs * NR * 2;
                let bp = &pb[pb0 + kb * NR * 2..pb0 + (kb + kc) * NR * 2];
                for ip in (i0 / MR)..(i0 + rows_block).div_ceil(MR) {
                    let pa0 = ip * kpairs * MR * 2;
                    let ap = &pa[pa0 + kb * MR * 2..pa0 + (kb + kc) * MR * 2];
                    let mut acc = [0i32; MR * NR];
                    #[cfg(target_arch = "x86_64")]
                    if simd {
                        // SAFETY: `simd` is only true when AVX2 was
                        // detected; slices satisfy the kernel contract.
                        unsafe { mk_i16_pairs_avx2(kc, ap, bp, &mut acc) }
                    } else {
                        mk_i16_pairs_portable(kc, ap, bp, &mut acc);
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    {
                        let _ = simd;
                        mk_i16_pairs_portable(kc, ap, bp, &mut acc);
                    }
                    writeback(c, n, ip * MR, j0, MR.min(m - ip * MR), cols, &acc);
                }
            }
        }
    }
}

fn run_packed_i8_pairs(
    m: usize,
    kpairs: usize,
    n: usize,
    pa: &[i16],
    pb: &[i16],
    c: &mut [i32],
    simd: bool,
) {
    let threads = worker_count(m, kpairs * 2, n);
    if threads <= 1 {
        gemm_block_i8_pairs(kpairs, n, pa, pb, c, simd);
        return;
    }
    let panels_per = m.div_ceil(MR).div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, c_chunk) in c.chunks_mut(panels_per * MR * n).enumerate() {
            let pa_chunk = &pa[chunk_idx * panels_per * MR * kpairs * 2..];
            scope.spawn(move || gemm_block_i8_pairs(kpairs, n, pa_chunk, pb, c_chunk, simd));
        }
    });
}

fn check_packed_lens(
    pa_len: usize,
    pa_expect: usize,
    pb_len: usize,
    pb_expect: usize,
    c_len: usize,
    c_expect: usize,
) -> Result<(), TensorError> {
    for (actual, expected) in [(pa_len, pa_expect), (pb_len, pb_expect), (c_len, c_expect)] {
        if actual != expected {
            return Err(TensorError::LengthMismatch { expected, actual });
        }
    }
    Ok(())
}

/// `C += A·B` over pre-packed operands: `pa` is the MR-row-panel packing of
/// the `m×k` A matrix ([`crate::ops::pack::pack_a_f32_into`]), `pb` the
/// NR-column-panel packing of the `k×n` B matrix. `C` is dense row-major
/// `m×n`, accumulated into.
///
/// # Errors
/// Returns an error if any slice length disagrees with the packed-layout
/// lengths.
pub fn gemm_f32_packed(
    m: usize,
    k: usize,
    n: usize,
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
) -> Result<(), TensorError> {
    check_packed_lens(pa.len(), packed_a_len(m, k), pb.len(), packed_b_len(k, n), c.len(), m * n)?;
    if m == 0 || k == 0 || n == 0 {
        return Ok(());
    }
    run_packed_f32(m, k, n, pa, pb, c, simd_kernels_active());
    Ok(())
}

/// Portable-microkernel variant of [`gemm_f32_packed`], bypassing runtime
/// SIMD dispatch. Exists so tests can pin AVX2-vs-portable agreement; use
/// [`gemm_f32_packed`] everywhere else.
#[doc(hidden)]
pub fn gemm_f32_packed_portable(
    m: usize,
    k: usize,
    n: usize,
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
) -> Result<(), TensorError> {
    check_packed_lens(pa.len(), packed_a_len(m, k), pb.len(), packed_b_len(k, n), c.len(), m * n)?;
    if m == 0 || k == 0 || n == 0 {
        return Ok(());
    }
    run_packed_f32(m, k, n, pa, pb, c, false);
    Ok(())
}

/// `C += (A − zp_a)·(B − zp_b)` over pre-packed, zero-point-subtracted
/// `i16` operands (see [`crate::ops::pack::pack_a_i8_into`] /
/// [`crate::ops::pack::pack_b_i8_into`]); `C` is a dense row-major `m×n`
/// `i32` accumulator.
///
/// Bit-identical to the scalar reference for every blocking and ISA choice.
///
/// # Errors
/// Returns an error if any slice length disagrees with the packed-layout
/// lengths.
pub fn gemm_i8_packed(
    m: usize,
    k: usize,
    n: usize,
    pa: &[i16],
    pb: &[i16],
    c: &mut [i32],
) -> Result<(), TensorError> {
    check_packed_lens(pa.len(), packed_a_len(m, k), pb.len(), packed_b_len(k, n), c.len(), m * n)?;
    if m == 0 || k == 0 || n == 0 {
        return Ok(());
    }
    run_packed_i8(m, k, n, pa, pb, c, simd_kernels_active());
    Ok(())
}

/// Portable-microkernel variant of [`gemm_i8_packed`], bypassing runtime
/// SIMD dispatch. Exists so tests can pin AVX2-vs-portable bit-identity;
/// use [`gemm_i8_packed`] everywhere else.
#[doc(hidden)]
pub fn gemm_i8_packed_portable(
    m: usize,
    k: usize,
    n: usize,
    pa: &[i16],
    pb: &[i16],
    c: &mut [i32],
) -> Result<(), TensorError> {
    check_packed_lens(pa.len(), packed_a_len(m, k), pb.len(), packed_b_len(k, n), c.len(), m * n)?;
    if m == 0 || k == 0 || n == 0 {
        return Ok(());
    }
    run_packed_i8(m, k, n, pa, pb, c, false);
    Ok(())
}

/// `C += (A − zp_a)·(B − zp_b)` over **pair-interleaved** pre-packed `i16`
/// operands (see [`crate::ops::pack::pack_a_i8_pairs_into`] /
/// [`crate::ops::pack::pack_b_i8_pairs_into`]); `C` is a dense row-major
/// `m×n` `i32` accumulator.
///
/// This is the `pmaddwd` fast path: on AVX2 it retires twice the
/// multiply-accumulates per instruction of [`gemm_i8_packed`], and its
/// result is **bit-identical** to it (exact `i16·i16` products, associative
/// `i32` reduction — see `mk_i16_pairs_avx2` for the overflow budget).
///
/// # Errors
/// Returns an error if any slice length disagrees with the pair-packed
/// layout lengths.
pub fn gemm_i8_packed_pairs(
    m: usize,
    k: usize,
    n: usize,
    pa: &[i16],
    pb: &[i16],
    c: &mut [i32],
) -> Result<(), TensorError> {
    check_packed_lens(
        pa.len(),
        packed_a_pairs_len(m, k),
        pb.len(),
        packed_b_pairs_len(k, n),
        c.len(),
        m * n,
    )?;
    if m == 0 || k == 0 || n == 0 {
        return Ok(());
    }
    run_packed_i8_pairs(m, k.div_ceil(2), n, pa, pb, c, simd_kernels_active());
    Ok(())
}

/// Portable-microkernel variant of [`gemm_i8_packed_pairs`], bypassing
/// runtime SIMD dispatch. Exists so tests can pin `pmaddwd`-vs-portable
/// bit-identity; use [`gemm_i8_packed_pairs`] everywhere else.
#[doc(hidden)]
pub fn gemm_i8_packed_pairs_portable(
    m: usize,
    k: usize,
    n: usize,
    pa: &[i16],
    pb: &[i16],
    c: &mut [i32],
) -> Result<(), TensorError> {
    check_packed_lens(
        pa.len(),
        packed_a_pairs_len(m, k),
        pb.len(),
        packed_b_pairs_len(k, n),
        c.len(),
        m * n,
    )?;
    if m == 0 || k == 0 || n == 0 {
        return Ok(());
    }
    run_packed_i8_pairs(m, k.div_ceil(2), n, pa, pb, c, false);
    Ok(())
}

/// `C += A · B` over `f32`, where `A` is `m×k`, `B` is `k×n` and `C` is
/// `m×n`, all dense row-major. `C` is accumulated into (zero it first for a
/// plain product). Packs both operands into fresh buffers and runs the
/// panel kernels; hot paths that can reuse scratch or pre-packed weights
/// should call [`gemm_f32_packed`] directly.
///
/// # Errors
/// Returns an error if any slice length disagrees with its `m`/`k`/`n`
/// dimensions.
pub fn gemm_f32(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) -> Result<(), TensorError> {
    if c.len() != m * n {
        return Err(TensorError::LengthMismatch { expected: m * n, actual: c.len() });
    }
    if m == 0 || k == 0 || n == 0 {
        if a.len() != m * k {
            return Err(TensorError::LengthMismatch { expected: m * k, actual: a.len() });
        }
        if b.len() != k * n {
            return Err(TensorError::LengthMismatch { expected: k * n, actual: b.len() });
        }
        return Ok(());
    }
    let mut pa = vec![0.0f32; packed_a_len(m, k)];
    let mut pb = vec![0.0f32; packed_b_len(k, n)];
    pack_a_f32_into(&mut pa, a, m, k)?;
    pack_b_f32_into(&mut pb, b, k, n)?;
    run_packed_f32(m, k, n, &pa, &pb, c, simd_kernels_active());
    Ok(())
}

/// `C += (A − zp_a) · (B − zp_b)` over `i8` operands widened to `i32`
/// accumulators, with `A` `m×k`, `B` `k×n`, `C` `m×n`, all row-major.
///
/// Implements the accelerator's Zero-Subtraction semantics — applied once
/// at pack time, so a padded im2col cell holding `zp_b` packs to literal
/// zero. The result is bit-identical to the scalar reference regardless of
/// blocking, because `i32` addition is associative.
///
/// # Errors
/// Returns an error if any slice length disagrees with its `m`/`k`/`n`
/// dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_i32(
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    zp_a: i8,
    b: &[i8],
    zp_b: i8,
    c: &mut [i32],
) -> Result<(), TensorError> {
    if c.len() != m * n {
        return Err(TensorError::LengthMismatch { expected: m * n, actual: c.len() });
    }
    if m == 0 || k == 0 || n == 0 {
        if a.len() != m * k {
            return Err(TensorError::LengthMismatch { expected: m * k, actual: a.len() });
        }
        if b.len() != k * n {
            return Err(TensorError::LengthMismatch { expected: k * n, actual: b.len() });
        }
        return Ok(());
    }
    let mut pa = vec![0i16; packed_a_len(m, k)];
    let mut pb = vec![0i16; packed_b_len(k, n)];
    pack_a_i8_into(&mut pa, a, zp_a, m, k)?;
    pack_b_i8_into(&mut pb, b, zp_b, k, n)?;
    run_packed_i8(m, k, n, &pa, &pb, c, simd_kernels_active());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn naive_f32(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn f32_matches_naive_on_awkward_dims() {
        // Dims chosen to exercise the MR/NR tails, the KC boundary and n=1.
        for (m, k, n) in [(1, 1, 1), (5, 7, 3), (4, 300, 9), (7, 13, 1), (9, 257, 5), (3, 40, 17)] {
            let mut rng = DetRng::new((m * 1000 + k * 10 + n) as u64);
            let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            let mut c = vec![0.0; m * n];
            gemm_f32(m, k, n, &a, &b, &mut c).unwrap();
            let expect = naive_f32(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn f32_accumulates_into_c() {
        let a = [1.0, 2.0];
        let b = [10.0, 100.0];
        let mut c = [5.0];
        gemm_f32(1, 2, 1, &a, &b, &mut c).unwrap();
        assert_eq!(c[0], 5.0 + 210.0);
    }

    #[test]
    fn i8_matches_naive_with_zero_points() {
        let (m, k, n) = (6, 20, 11);
        let mut rng = DetRng::new(42);
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let (zp_a, zp_b) = (-3i8, 7i8);
        let mut c = vec![0i32; m * n];
        gemm_i8_i32(m, k, n, &a, zp_a, &b, zp_b, &mut c).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += (i32::from(a[i * k + kk]) - i32::from(zp_a))
                        * (i32::from(b[kk * n + j]) - i32::from(zp_b));
                }
                assert_eq!(c[i * n + j], acc, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn i8_zero_point_extremes_cannot_overflow_the_packing() {
        // (a − zp) spans ±255, beyond i8 but exact in the widened i16 cells.
        let (m, k, n) = (5, 9, 10);
        let a = vec![i8::MIN; m * k];
        let b = vec![i8::MAX; k * n];
        let mut c = vec![0i32; m * n];
        gemm_i8_i32(m, k, n, &a, i8::MAX, &b, i8::MIN, &mut c).unwrap();
        // Every MAC is (−128 − 127)·(127 − (−128)) = −255·255.
        assert!(c.iter().all(|&v| v == (k as i32) * -255 * 255));
    }

    #[test]
    fn i8_zero_point_cells_contribute_nothing() {
        // A column of B equal to zp_b must vanish after Zero-Subtraction.
        let a = [5i8, -9, 3];
        let b = [4i8, 4, 4];
        let mut c = [0i32];
        gemm_i8_i32(1, 3, 1, &a, 0, &b, 4, &mut c).unwrap();
        assert_eq!(c[0], 0);
    }

    #[test]
    fn degenerate_dims_are_no_ops() {
        let mut c: [f32; 0] = [];
        gemm_f32(0, 4, 0, &[], &[0.0; 0], &mut c).unwrap();
        let mut c2 = [1.0f32, 2.0];
        gemm_f32(2, 0, 1, &[], &[], &mut c2).unwrap();
        assert_eq!(c2, [1.0, 2.0]); // k == 0 leaves C untouched
    }

    #[test]
    fn rejects_wrong_a_len() {
        let mut c = [0.0f32; 4];
        assert!(gemm_f32(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c).is_err());
        assert!(gemm_i8_i32(2, 2, 2, &[0; 4], 0, &[0; 4], 0, &mut [0i32; 3]).is_err());
    }

    #[test]
    fn large_product_crosses_thread_threshold_and_matches() {
        // m*k*n > PARALLEL_MIN so the scoped-thread path runs.
        let (m, k, n) = (64, 129, 130);
        let mut rng = DetRng::new(7);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_f32(-0.5, 0.5)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_f32(-0.5, 0.5)).collect();
        let mut c = vec![0.0; m * n];
        gemm_f32(m, k, n, &a, &b, &mut c).unwrap();
        let expect = naive_f32(m, k, n, &a, &b);
        let max_err = c.iter().zip(&expect).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "max err {max_err}");
    }

    #[test]
    fn threaded_i8_is_bit_identical_to_single_threaded() {
        // Crosses PARALLEL_MIN with awkward row/column tails.
        let (m, k, n) = (66, 130, 131);
        let mut rng = DetRng::new(99);
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let mut threaded = vec![0i32; m * n];
        gemm_i8_i32(m, k, n, &a, 5, &b, -11, &mut threaded).unwrap();
        let mut pa = vec![0i16; packed_a_len(m, k)];
        let mut pb = vec![0i16; packed_b_len(k, n)];
        pack_a_i8_into(&mut pa, &a, 5, m, k).unwrap();
        pack_b_i8_into(&mut pb, &b, -11, k, n).unwrap();
        let mut single = vec![0i32; m * n];
        gemm_block_i8_packed(k, n, &pa, &pb, &mut single, simd_kernels_active());
        assert_eq!(threaded, single);
    }

    #[test]
    fn simd_and_portable_i8_agree_bit_exactly() {
        let (m, k, n) = (13, 70, 21);
        let mut rng = DetRng::new(17);
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let mut pa = vec![0i16; packed_a_len(m, k)];
        let mut pb = vec![0i16; packed_b_len(k, n)];
        pack_a_i8_into(&mut pa, &a, -2, m, k).unwrap();
        pack_b_i8_into(&mut pb, &b, 9, k, n).unwrap();
        let mut dispatched = vec![0i32; m * n];
        gemm_i8_packed(m, k, n, &pa, &pb, &mut dispatched).unwrap();
        let mut portable = vec![0i32; m * n];
        gemm_i8_packed_portable(m, k, n, &pa, &pb, &mut portable).unwrap();
        assert_eq!(dispatched, portable);
    }

    #[test]
    fn prepacked_f32_matches_packing_entry_point() {
        let (m, k, n) = (10, 33, 14);
        let mut rng = DetRng::new(31);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let mut pa = vec![0.0; packed_a_len(m, k)];
        let mut pb = vec![0.0; packed_b_len(k, n)];
        pack_a_f32_into(&mut pa, &a, m, k).unwrap();
        pack_b_f32_into(&mut pb, &b, k, n).unwrap();
        let mut via_packed = vec![0.0; m * n];
        gemm_f32_packed(m, k, n, &pa, &pb, &mut via_packed).unwrap();
        let mut via_raw = vec![0.0; m * n];
        gemm_f32(m, k, n, &a, &b, &mut via_raw).unwrap();
        assert_eq!(via_packed, via_raw, "same packing must give the same bits");
    }

    #[test]
    fn policy_resolution_follows_heuristics() {
        assert_eq!(KernelPolicy::Naive.resolve(usize::MAX, false), ConvBackend::Direct);
        assert_eq!(KernelPolicy::Im2colGemm.resolve(1, true), ConvBackend::Im2colGemm);
        assert_eq!(KernelPolicy::Auto.resolve(1 << 30, true), ConvBackend::Direct);
        assert_eq!(KernelPolicy::Auto.resolve(1 << 30, false), ConvBackend::Im2colGemm);
        assert_eq!(KernelPolicy::Auto.resolve(16, false), ConvBackend::Direct);
    }

    #[test]
    fn policy_parses_and_displays_round_trip() {
        for p in [KernelPolicy::Naive, KernelPolicy::Im2colGemm, KernelPolicy::Auto] {
            assert_eq!(p.to_string().parse::<KernelPolicy>().unwrap(), p);
        }
        assert!("fpga".parse::<KernelPolicy>().is_err());
        assert_eq!("im2col".parse::<KernelPolicy>().unwrap(), KernelPolicy::Im2colGemm);
    }
}
