//! Cache-blocked, register-tiled GEMM kernels and the kernel-backend policy.
//!
//! The SUSHI datapath lowers dense convolutions to matrix multiplication
//! (see [`crate::ops::im2col`]): weights become an `M×K` row-major matrix,
//! the im2col patch matrix is `K×N`, and the output activations fall out as
//! `M×N` rows that map one-to-one onto contiguous NCHW output rows. The
//! kernels here are the repo's hot path:
//!
//! * **Cache blocking** — the reduction dimension is processed in `KC`-wide
//!   panels so one panel of `B` stays L1/L2-resident across `MR` rows of `A`.
//! * **Register tiling** — `MR = 4` rows of `C` accumulate per pass, so each
//!   loaded element of `B` is reused four times from registers.
//! * **Threaded row tiling** — large products split `C` into disjoint
//!   row blocks dispatched via `std::thread::scope` (no dependency, same
//!   pattern PR 1 used to drop crossbeam).
//!
//! Integer GEMM ([`gemm_i8_i32`]) widens `i8` operands to `i32` and applies
//! the Zero-Subtraction semantics `(a − zp_a)·(b − zp_b)` inline, so the
//! result is bit-identical to the scalar reference loops: `i32` addition is
//! associative, hence reassociating the reduction cannot change the sum.

use std::fmt;
use std::str::FromStr;

/// Which kernel implementation `conv2d_*` / `linear_*` should use.
///
/// `Naive` keeps the original scalar loop nests — they stay the correctness
/// oracle that the fast path is validated against. `Im2colGemm` forces the
/// im2col + blocked-GEMM lowering. `Auto` (the default) resolves per problem
/// size: depthwise and tiny convolutions stay on the direct loops, dense
/// `1×1`/`3×3`-style layers go through GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelPolicy {
    /// Always use the scalar reference loops (the correctness oracle).
    Naive,
    /// Always use the im2col + cache-blocked GEMM lowering.
    Im2colGemm,
    /// Pick per problem size (depthwise/tiny → direct, dense → GEMM).
    #[default]
    Auto,
}

/// The backend a [`KernelPolicy`] resolves to for one concrete problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvBackend {
    /// Direct loop nest over the convolution window.
    Direct,
    /// im2col lowering followed by blocked GEMM.
    Im2colGemm,
}

/// Below this many multiply-accumulates, `Auto` keeps the direct loops: the
/// im2col materialization and scratch allocation would dominate.
pub const AUTO_DIRECT_MAC_THRESHOLD: usize = 8 * 1024;

impl KernelPolicy {
    /// Resolves the policy for a convolution with `macs` multiply-accumulates
    /// total. `depthwise` marks single-input-channel-per-group convolutions,
    /// which `Auto` always keeps on the direct loops (their GEMM reduction
    /// depth is just `R·S`, too shallow to amortize the im2col copy).
    #[must_use]
    pub fn resolve(self, macs: usize, depthwise: bool) -> ConvBackend {
        match self {
            KernelPolicy::Naive => ConvBackend::Direct,
            KernelPolicy::Im2colGemm => ConvBackend::Im2colGemm,
            KernelPolicy::Auto => {
                if depthwise || macs < AUTO_DIRECT_MAC_THRESHOLD {
                    ConvBackend::Direct
                } else {
                    ConvBackend::Im2colGemm
                }
            }
        }
    }
}

impl fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelPolicy::Naive => "naive",
            KernelPolicy::Im2colGemm => "gemm",
            KernelPolicy::Auto => "auto",
        })
    }
}

impl FromStr for KernelPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(KernelPolicy::Naive),
            "gemm" | "im2col" | "im2col-gemm" => Ok(KernelPolicy::Im2colGemm),
            "auto" => Ok(KernelPolicy::Auto),
            other => Err(format!("unknown kernel policy '{other}' (expected naive|gemm|auto)")),
        }
    }
}

/// Reduction-panel width: one `KC×N` panel of `B` is streamed per pass.
const KC: usize = 256;
/// Register tile height: rows of `C` accumulated per inner pass.
const MR: usize = 4;
/// Products below this many scalar MACs stay single-threaded.
const PARALLEL_MAC_THRESHOLD: usize = 1 << 20;

fn worker_count(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) < PARALLEL_MAC_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(m).max(1)
}

/// `C += A · B` over `f32`, where `A` is `m×k`, `B` is `k×n` and `C` is
/// `m×n`, all dense row-major. `C` is accumulated into (zero it first for a
/// plain product).
///
/// # Panics
/// Panics if any slice length disagrees with its `m`/`k`/`n` dimensions.
pub fn gemm_f32(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let threads = worker_count(m, k, n);
    if threads <= 1 {
        gemm_block_f32(a, k, n, b, c);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let row0 = chunk_idx * rows_per;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || gemm_block_f32(a_chunk, k, n, b, c_chunk));
        }
    });
}

/// Single-threaded blocked kernel: `C += A · B` for the rows present in `c`.
fn gemm_block_f32(a: &[f32], k: usize, n: usize, b: &[f32], c: &mut [f32]) {
    let m = c.len() / n;
    for kb in (0..k).step_by(KC) {
        let k_hi = (kb + KC).min(k);
        let mut i = 0;
        while i + MR <= m {
            let (r0, rest) = c[i * n..(i + MR) * n].split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            for kk in kb..k_hi {
                let a0 = a[i * k + kk];
                let a1 = a[(i + 1) * k + kk];
                let a2 = a[(i + 2) * k + kk];
                let a3 = a[(i + 3) * k + kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for j in 0..n {
                    let bv = brow[j];
                    r0[j] += a0 * bv;
                    r1[j] += a1 * bv;
                    r2[j] += a2 * bv;
                    r3[j] += a3 * bv;
                }
            }
            i += MR;
        }
        // Row tail (< MR rows): single-row axpy passes.
        while i < m {
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in kb..k_hi {
                let av = a[i * k + kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for j in 0..n {
                    crow[j] += av * brow[j];
                }
            }
            i += 1;
        }
    }
}

/// `C += (A − zp_a) · (B − zp_b)` over `i8` operands widened to `i32`
/// accumulators, with `A` `m×k`, `B` `k×n`, `C` `m×n`, all row-major.
///
/// Implements the accelerator's Zero-Subtraction semantics inline, so a
/// padded im2col cell holding `zp_b` contributes exactly zero. The result
/// is bit-identical to the scalar reference regardless of blocking, because
/// `i32` addition is associative.
///
/// # Panics
/// Panics if any slice length disagrees with its `m`/`k`/`n` dimensions.
pub fn gemm_i8_i32(
    m: usize,
    k: usize,
    n: usize,
    a: &[i8],
    zp_a: i8,
    b: &[i8],
    zp_b: i8,
    c: &mut [i32],
) {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let threads = worker_count(m, k, n);
    if threads <= 1 {
        gemm_block_i8(a, zp_a, k, n, b, zp_b, c);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let row0 = chunk_idx * rows_per;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || gemm_block_i8(a_chunk, zp_a, k, n, b, zp_b, c_chunk));
        }
    });
}

fn gemm_block_i8(a: &[i8], zp_a: i8, k: usize, n: usize, b: &[i8], zp_b: i8, c: &mut [i32]) {
    let m = c.len() / n;
    let zp_a = i32::from(zp_a);
    let zp_b = i32::from(zp_b);
    for kb in (0..k).step_by(KC) {
        let k_hi = (kb + KC).min(k);
        let mut i = 0;
        while i + MR <= m {
            let (r0, rest) = c[i * n..(i + MR) * n].split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            for kk in kb..k_hi {
                let a0 = i32::from(a[i * k + kk]) - zp_a;
                let a1 = i32::from(a[(i + 1) * k + kk]) - zp_a;
                let a2 = i32::from(a[(i + 2) * k + kk]) - zp_a;
                let a3 = i32::from(a[(i + 3) * k + kk]) - zp_a;
                let brow = &b[kk * n..(kk + 1) * n];
                for j in 0..n {
                    let bv = i32::from(brow[j]) - zp_b;
                    r0[j] += a0 * bv;
                    r1[j] += a1 * bv;
                    r2[j] += a2 * bv;
                    r3[j] += a3 * bv;
                }
            }
            i += MR;
        }
        while i < m {
            let crow = &mut c[i * n..(i + 1) * n];
            for kk in kb..k_hi {
                let av = i32::from(a[i * k + kk]) - zp_a;
                let brow = &b[kk * n..(kk + 1) * n];
                for j in 0..n {
                    crow[j] += av * (i32::from(brow[j]) - zp_b);
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn naive_f32(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn f32_matches_naive_on_awkward_dims() {
        // Dims chosen to exercise the MR tail, the KC boundary and n=1.
        for (m, k, n) in [(1, 1, 1), (5, 7, 3), (4, 300, 9), (7, 13, 1), (9, 257, 5)] {
            let mut rng = DetRng::new((m * 1000 + k * 10 + n) as u64);
            let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
            let mut c = vec![0.0; m * n];
            gemm_f32(m, k, n, &a, &b, &mut c);
            let expect = naive_f32(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn f32_accumulates_into_c() {
        let a = [1.0, 2.0];
        let b = [10.0, 100.0];
        let mut c = [5.0];
        gemm_f32(1, 2, 1, &a, &b, &mut c);
        assert_eq!(c[0], 5.0 + 210.0);
    }

    #[test]
    fn i8_matches_naive_with_zero_points() {
        let (m, k, n) = (6, 20, 11);
        let mut rng = DetRng::new(42);
        let a: Vec<i8> = (0..m * k).map(|_| rng.next_i8()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.next_i8()).collect();
        let (zp_a, zp_b) = (-3i8, 7i8);
        let mut c = vec![0i32; m * n];
        gemm_i8_i32(m, k, n, &a, zp_a, &b, zp_b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += (i32::from(a[i * k + kk]) - i32::from(zp_a))
                        * (i32::from(b[kk * n + j]) - i32::from(zp_b));
                }
                assert_eq!(c[i * n + j], acc, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn i8_zero_point_cells_contribute_nothing() {
        // A column of B equal to zp_b must vanish after Zero-Subtraction.
        let a = [5i8, -9, 3];
        let b = [4i8, 4, 4];
        let mut c = [0i32];
        gemm_i8_i32(1, 3, 1, &a, 0, &b, 4, &mut c);
        assert_eq!(c[0], 0);
    }

    #[test]
    fn degenerate_dims_are_no_ops() {
        let mut c: [f32; 0] = [];
        gemm_f32(0, 4, 0, &[], &[0.0; 0], &mut c);
        let mut c2 = [1.0f32, 2.0];
        gemm_f32(2, 0, 1, &[], &[], &mut c2);
        assert_eq!(c2, [1.0, 2.0]); // k == 0 leaves C untouched
    }

    #[test]
    #[should_panic(expected = "A must be m*k")]
    fn rejects_wrong_a_len() {
        let mut c = [0.0f32; 4];
        gemm_f32(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }

    #[test]
    fn large_product_crosses_thread_threshold_and_matches() {
        // m*k*n > PARALLEL_MAC_THRESHOLD so the scoped-thread path runs.
        let (m, k, n) = (64, 129, 130);
        let mut rng = DetRng::new(7);
        let a: Vec<f32> = (0..m * k).map(|_| rng.uniform_f32(-0.5, 0.5)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.uniform_f32(-0.5, 0.5)).collect();
        let mut c = vec![0.0; m * n];
        gemm_f32(m, k, n, &a, &b, &mut c);
        let expect = naive_f32(m, k, n, &a, &b);
        let max_err = c.iter().zip(&expect).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "max err {max_err}");
    }

    #[test]
    fn policy_resolution_follows_heuristics() {
        assert_eq!(KernelPolicy::Naive.resolve(usize::MAX, false), ConvBackend::Direct);
        assert_eq!(KernelPolicy::Im2colGemm.resolve(1, true), ConvBackend::Im2colGemm);
        assert_eq!(KernelPolicy::Auto.resolve(1 << 30, true), ConvBackend::Direct);
        assert_eq!(KernelPolicy::Auto.resolve(1 << 30, false), ConvBackend::Im2colGemm);
        assert_eq!(KernelPolicy::Auto.resolve(16, false), ConvBackend::Direct);
    }

    #[test]
    fn policy_parses_and_displays_round_trip() {
        for p in [KernelPolicy::Naive, KernelPolicy::Im2colGemm, KernelPolicy::Auto] {
            assert_eq!(p.to_string().parse::<KernelPolicy>().unwrap(), p);
        }
        assert!("fpga".parse::<KernelPolicy>().is_err());
        assert_eq!("im2col".parse::<KernelPolicy>().unwrap(), KernelPolicy::Im2colGemm);
    }
}
