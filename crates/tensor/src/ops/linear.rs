//! Fully-connected (classifier head) operator.

use crate::error::TensorError;
use crate::ops::gemm::{gemm_f32, ConvBackend, KernelPolicy};
use crate::tensor::Tensor;

/// `y = W·x + b` where `x` is a flattened NCHW tensor per batch element,
/// under [`KernelPolicy::Auto`].
///
/// `weights` is row-major `(out_features, in_features)`; `bias` has length
/// `out_features`. Returns one row of `out_features` scores per batch element.
///
/// # Errors
/// Returns [`TensorError::LengthMismatch`] when `in_features` does not match
/// the flattened input size or `bias` is the wrong length.
pub fn linear_f32(
    input: &Tensor<f32>,
    weights: &[f32],
    bias: Option<&[f32]>,
    out_features: usize,
) -> Result<Vec<Vec<f32>>, TensorError> {
    linear_f32_with(input, weights, bias, out_features, KernelPolicy::Auto)
}

/// Fully-connected layer with an explicit kernel backend policy.
///
/// [`KernelPolicy::Naive`] keeps the original dot-product loop as the
/// correctness oracle; `Im2colGemm` routes through the blocked GEMM
/// (`C = W · Xᵀ`, no patch materialization needed for a dense layer).
///
/// # Errors
/// Returns [`TensorError::LengthMismatch`] when `in_features` does not match
/// the flattened input size or `bias` is the wrong length.
pub fn linear_f32_with(
    input: &Tensor<f32>,
    weights: &[f32],
    bias: Option<&[f32]>,
    out_features: usize,
    policy: KernelPolicy,
) -> Result<Vec<Vec<f32>>, TensorError> {
    let ishape = input.shape();
    let in_features = ishape.c * ishape.h * ishape.w;
    if out_features == 0 {
        return Err(TensorError::InvalidParam { what: "out_features must be nonzero" });
    }
    if weights.len() != out_features * in_features {
        return Err(TensorError::LengthMismatch {
            expected: out_features * in_features,
            actual: weights.len(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_features {
            return Err(TensorError::LengthMismatch { expected: out_features, actual: b.len() });
        }
    }
    let macs = ishape.n * out_features * in_features;
    match policy.resolve(macs, false) {
        ConvBackend::Direct => Ok(linear_direct(input, weights, bias, out_features, in_features)),
        ConvBackend::Im2colGemm => linear_gemm(input, weights, bias, out_features, in_features),
    }
}

fn linear_direct(
    input: &Tensor<f32>,
    weights: &[f32],
    bias: Option<&[f32]>,
    out_features: usize,
    in_features: usize,
) -> Vec<Vec<f32>> {
    let data = input.as_slice();
    let batch = input.shape().n;
    let mut out = Vec::with_capacity(batch);
    for n in 0..batch {
        let x = &data[n * in_features..(n + 1) * in_features];
        let mut row = Vec::with_capacity(out_features);
        for o in 0..out_features {
            let w = &weights[o * in_features..(o + 1) * in_features];
            let mut acc: f32 = w.iter().zip(x).map(|(a, b)| a * b).sum();
            if let Some(b) = bias {
                acc += b[o];
            }
            row.push(acc);
        }
        out.push(row);
    }
    out
}

fn linear_gemm(
    input: &Tensor<f32>,
    weights: &[f32],
    bias: Option<&[f32]>,
    out_features: usize,
    in_features: usize,
) -> Result<Vec<Vec<f32>>, TensorError> {
    let data = input.as_slice();
    let batch = input.shape().n;
    // B = Xᵀ (in_features × batch), so C = W·B is (out_features × batch).
    let mut xt = vec![0.0_f32; in_features * batch];
    for n in 0..batch {
        for (f, &v) in data[n * in_features..(n + 1) * in_features].iter().enumerate() {
            xt[f * batch + n] = v;
        }
    }
    let mut c = vec![0.0_f32; out_features * batch];
    gemm_f32(out_features, in_features, batch, weights, &xt, &mut c)?;
    Ok((0..batch)
        .map(|n| (0..out_features).map(|o| c[o * batch + n] + bias.map_or(0.0, |b| b[o])).collect())
        .collect())
}

/// Index of the maximum score (argmax) per batch row.
#[must_use]
pub fn argmax(scores: &[f32]) -> Option<usize> {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use crate::shape::Shape4;

    #[test]
    fn linear_computes_dot_products() {
        let input = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let weights = vec![1.0, 0.0, 0.0, /* row2 */ 0.0, 1.0, 1.0];
        for policy in [KernelPolicy::Naive, KernelPolicy::Im2colGemm] {
            let out = linear_f32_with(&input, &weights, None, 2, policy).unwrap();
            assert_eq!(out, vec![vec![1.0, 5.0]]);
        }
    }

    #[test]
    fn linear_adds_bias() {
        let input = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0, 1.0]).unwrap();
        let out = linear_f32(&input, &[1.0, 1.0], Some(&[10.0]), 1).unwrap();
        assert_eq!(out[0][0], 12.0);
    }

    #[test]
    fn linear_handles_batches_independently() {
        let input = Tensor::from_vec(Shape4::new(2, 1, 1, 2), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        for policy in [KernelPolicy::Naive, KernelPolicy::Im2colGemm] {
            let out = linear_f32_with(&input, &[2.0, 3.0], None, 1, policy).unwrap();
            assert_eq!(out, vec![vec![2.0], vec![3.0]]);
        }
    }

    #[test]
    fn gemm_backend_matches_naive_on_random_data() {
        let shape = Shape4::new(3, 2, 4, 5);
        let in_features = 2 * 4 * 5;
        let out_features = 7;
        let mut rng = DetRng::new(123);
        let input = Tensor::from_vec(
            shape,
            (0..shape.volume()).map(|_| rng.uniform_f32(-1.0, 1.0)).collect(),
        )
        .unwrap();
        let weights: Vec<f32> =
            (0..out_features * in_features).map(|_| rng.uniform_f32(-0.5, 0.5)).collect();
        let bias: Vec<f32> = (0..out_features).map(|_| rng.uniform_f32(-1.0, 1.0)).collect();
        let a = linear_f32_with(&input, &weights, Some(&bias), out_features, KernelPolicy::Naive)
            .unwrap();
        let b =
            linear_f32_with(&input, &weights, Some(&bias), out_features, KernelPolicy::Im2colGemm)
                .unwrap();
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn linear_rejects_bad_weight_len() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 3));
        assert!(linear_f32(&input, &[0.0; 5], None, 2).is_err());
    }

    #[test]
    fn linear_rejects_bad_bias_len() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 2));
        assert!(linear_f32(&input, &[0.0; 4], Some(&[0.0; 3]), 2).is_err());
    }

    #[test]
    fn argmax_finds_peak() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_breaks_ties_toward_last_max() {
        // max_by keeps the later element on ties.
        assert_eq!(argmax(&[1.0, 1.0]), Some(1));
    }
}
