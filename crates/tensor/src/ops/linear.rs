//! Fully-connected (classifier head) operator.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// `y = W·x + b` where `x` is a flattened NCHW tensor per batch element.
///
/// `weights` is row-major `(out_features, in_features)`; `bias` has length
/// `out_features`. Returns one row of `out_features` scores per batch element.
///
/// # Errors
/// Returns [`TensorError::LengthMismatch`] when `in_features` does not match
/// the flattened input size or `bias` is the wrong length.
pub fn linear_f32(
    input: &Tensor<f32>,
    weights: &[f32],
    bias: Option<&[f32]>,
    out_features: usize,
) -> Result<Vec<Vec<f32>>, TensorError> {
    let ishape = input.shape();
    let in_features = ishape.c * ishape.h * ishape.w;
    if out_features == 0 {
        return Err(TensorError::InvalidParam { what: "out_features must be nonzero" });
    }
    if weights.len() != out_features * in_features {
        return Err(TensorError::LengthMismatch {
            expected: out_features * in_features,
            actual: weights.len(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_features {
            return Err(TensorError::LengthMismatch { expected: out_features, actual: b.len() });
        }
    }
    let data = input.as_slice();
    let mut out = Vec::with_capacity(ishape.n);
    for n in 0..ishape.n {
        let x = &data[n * in_features..(n + 1) * in_features];
        let mut row = Vec::with_capacity(out_features);
        for o in 0..out_features {
            let w = &weights[o * in_features..(o + 1) * in_features];
            let mut acc: f32 = w.iter().zip(x).map(|(a, b)| a * b).sum();
            if let Some(b) = bias {
                acc += b[o];
            }
            row.push(acc);
        }
        out.push(row);
    }
    Ok(out)
}

/// Index of the maximum score (argmax) per batch row.
#[must_use]
pub fn argmax(scores: &[f32]) -> Option<usize> {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn linear_computes_dot_products() {
        let input = Tensor::from_vec(Shape4::new(1, 1, 1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let weights = vec![1.0, 0.0, 0.0, /* row2 */ 0.0, 1.0, 1.0];
        let out = linear_f32(&input, &weights, None, 2).unwrap();
        assert_eq!(out, vec![vec![1.0, 5.0]]);
    }

    #[test]
    fn linear_adds_bias() {
        let input = Tensor::from_vec(Shape4::new(1, 1, 1, 2), vec![1.0, 1.0]).unwrap();
        let out = linear_f32(&input, &[1.0, 1.0], Some(&[10.0]), 1).unwrap();
        assert_eq!(out[0][0], 12.0);
    }

    #[test]
    fn linear_handles_batches_independently() {
        let input = Tensor::from_vec(Shape4::new(2, 1, 1, 2), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let out = linear_f32(&input, &[2.0, 3.0], None, 1).unwrap();
        assert_eq!(out, vec![vec![2.0], vec![3.0]]);
    }

    #[test]
    fn linear_rejects_bad_weight_len() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 3));
        assert!(linear_f32(&input, &[0.0; 5], None, 2).is_err());
    }

    #[test]
    fn linear_rejects_bad_bias_len() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 1, 1, 2));
        assert!(linear_f32(&input, &[0.0; 4], Some(&[0.0; 3]), 2).is_err());
    }

    #[test]
    fn argmax_finds_peak() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_breaks_ties_toward_last_max() {
        // max_by keeps the later element on ties.
        assert_eq!(argmax(&[1.0, 1.0]), Some(1));
    }
}
