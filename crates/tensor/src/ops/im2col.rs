//! im2col lowering: convolution windows materialized as a patch matrix.
//!
//! For one `(batch, group)` pair of a convolution, [`im2col`] writes a
//! row-major `K×N` matrix where `K = C_g·R·S` (one row per weight position)
//! and `N = OH·OW` (one column per output pixel). Multiplying the group's
//! `K_g×(C_g·R·S)` weight matrix against it — see [`crate::ops::gemm`] —
//! yields the convolution output in contiguous NCHW row order.
//!
//! Padded positions are filled with an explicit `pad` value: `0.0` for f32,
//! and the input *zero point* for the quantized path, so the GEMM's
//! Zero-Subtraction stage `(a − zp)` makes padding contribute exactly zero —
//! the same semantics as the reference loops. Valid output ranges per weight
//! position are precomputed once ([`out_range`]), so the inner copies are
//! branch-free and `stride == 1` rows degrade to `copy_from_slice`.
//!
//! `im2col` writes into a caller-provided buffer; on the serving hot path
//! that buffer comes from a reused [`crate::arena::Arena`], so no patch
//! matrix is heap-allocated per query (the conv entry points in
//! [`crate::ops::conv`] do the routing).

use crate::error::TensorError;
use crate::ops::conv::Conv2dParams;
use crate::tensor::{Element, Tensor};

/// The range `lo..hi` of output coordinates whose input coordinate
/// `o·stride + r − padding` lands inside `0..in_len`.
///
/// Hoisting this per weight position kills the per-pixel signed clamp that
/// the naive loops paid on every multiply-accumulate.
#[must_use]
pub fn out_range(
    r: usize,
    stride: usize,
    padding: usize,
    in_len: usize,
    out_len: usize,
) -> (usize, usize) {
    debug_assert!(stride > 0);
    let lo = padding.saturating_sub(r).div_ceil(stride).min(out_len);
    let hi = if in_len + padding > r {
        ((in_len + padding - r - 1) / stride + 1).min(out_len)
    } else {
        lo
    };
    (lo, hi.max(lo))
}

/// Materializes the patch matrix for batch element `n` and input channels
/// `c0..c0 + cg` into `out`, which must hold `cg·R·S · OH·OW` elements.
///
/// `oh`/`ow` are the validated output dims for `params` (the caller has run
/// [`Conv2dParams`] validation). Padded cells are written as `pad`.
///
/// # Errors
/// Returns an error if `out` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn im2col<T: Element>(
    input: &Tensor<T>,
    n: usize,
    c0: usize,
    cg: usize,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
    pad: T,
    out: &mut [T],
) -> Result<(), TensorError> {
    let ishape = input.shape();
    let (kh, kw, stride, padding) =
        (params.kernel_h, params.kernel_w, params.stride, params.padding);
    let npix = oh * ow;
    if out.len() != cg * kh * kw * npix {
        return Err(TensorError::LengthMismatch {
            expected: cg * kh * kw * npix,
            actual: out.len(),
        });
    }
    for cc in 0..cg {
        let c = c0 + cc;
        for ry in 0..kh {
            let (oy_lo, oy_hi) = out_range(ry, stride, padding, ishape.h, oh);
            for rx in 0..kw {
                let (ox_lo, ox_hi) = out_range(rx, stride, padding, ishape.w, ow);
                let kd = (cc * kh + ry) * kw + rx;
                let dst = &mut out[kd * npix..(kd + 1) * npix];
                dst[..oy_lo * ow].fill(pad);
                dst[oy_hi * ow..].fill(pad);
                for oy in oy_lo..oy_hi {
                    let iy = oy * stride + ry - padding;
                    let irow = input.row(n, c, iy);
                    let drow = &mut dst[oy * ow..(oy + 1) * ow];
                    drow[..ox_lo].fill(pad);
                    drow[ox_hi..].fill(pad);
                    if ox_lo >= ox_hi {
                        continue;
                    }
                    if stride == 1 {
                        let ix0 = ox_lo + rx - padding;
                        drow[ox_lo..ox_hi].copy_from_slice(&irow[ix0..ix0 + (ox_hi - ox_lo)]);
                    } else {
                        for (ox, d) in drow[ox_lo..ox_hi].iter_mut().enumerate() {
                            *d = irow[(ox_lo + ox) * stride + rx - padding];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{conv_out_dim, Shape4};

    fn reference_cell<T: Element>(
        input: &Tensor<T>,
        n: usize,
        c: usize,
        ry: usize,
        rx: usize,
        oy: usize,
        ox: usize,
        params: &Conv2dParams,
        pad: T,
    ) -> T {
        let ishape = input.shape();
        let iy = (oy * params.stride + ry) as isize - params.padding as isize;
        let ix = (ox * params.stride + rx) as isize - params.padding as isize;
        if iy < 0 || ix < 0 || iy >= ishape.h as isize || ix >= ishape.w as isize {
            pad
        } else {
            input.get(n, c, iy as usize, ix as usize)
        }
    }

    fn check(ishape: Shape4, params: &Conv2dParams, pad: f32) {
        let data: Vec<f32> = (0..ishape.volume()).map(|i| i as f32 + 1.0).collect();
        let input = Tensor::from_vec(ishape, data).unwrap();
        let oh = conv_out_dim(ishape.h, params.kernel_h, params.stride, params.padding).unwrap();
        let ow = conv_out_dim(ishape.w, params.kernel_w, params.stride, params.padding).unwrap();
        let cg = ishape.c;
        let mut patches = vec![0.0f32; cg * params.kernel_h * params.kernel_w * oh * ow];
        im2col(&input, 0, 0, cg, params, oh, ow, pad, &mut patches).unwrap();
        for cc in 0..cg {
            for ry in 0..params.kernel_h {
                for rx in 0..params.kernel_w {
                    let kd = (cc * params.kernel_h + ry) * params.kernel_w + rx;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let got = patches[kd * oh * ow + oy * ow + ox];
                            let want = reference_cell(&input, 0, cc, ry, rx, oy, ox, params, pad);
                            assert_eq!(got, want, "cell c={cc} ry={ry} rx={rx} oy={oy} ox={ox}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn matches_reference_same_padding_3x3() {
        check(Shape4::new(1, 2, 5, 6), &Conv2dParams::new(3, 3).with_padding(1), 0.0);
    }

    #[test]
    fn matches_reference_strided_with_padding() {
        check(
            Shape4::new(1, 3, 7, 7),
            &Conv2dParams::new(3, 3).with_stride(2).with_padding(1),
            0.0,
        );
    }

    #[test]
    fn matches_reference_1x1_and_5x5() {
        check(Shape4::new(1, 4, 6, 6), &Conv2dParams::new(1, 1), 0.0);
        check(Shape4::new(1, 1, 9, 8), &Conv2dParams::new(5, 5).with_padding(2), 0.0);
    }

    #[test]
    fn nonzero_pad_value_fills_borders() {
        check(Shape4::new(1, 1, 4, 4), &Conv2dParams::new(3, 3).with_padding(1), 42.5);
    }

    #[test]
    fn out_range_covers_edge_cases() {
        // No padding: everything valid.
        assert_eq!(out_range(0, 1, 0, 8, 6), (0, 6));
        // Same-padding 3x3 row 0: first output row reads above the input.
        assert_eq!(out_range(0, 1, 1, 8, 8), (1, 8));
        assert_eq!(out_range(2, 1, 1, 8, 8), (0, 7));
        // Stride 2: odd offsets round up.
        assert_eq!(out_range(0, 2, 1, 8, 4), (1, 4));
        // Kernel position entirely below the padded input.
        assert_eq!(out_range(9, 1, 0, 4, 2), (0, 0));
    }
}
