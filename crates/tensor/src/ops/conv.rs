//! 2-D convolution: f32 and int8-quantized (zero-point aware).
//!
//! Two interchangeable backends sit behind [`KernelPolicy`]:
//!
//! * **Direct** — the original loop nests, kept as the correctness oracle.
//!   Their padding clamp is hoisted: valid kernel ranges are precomputed per
//!   output coordinate, so the innermost loops run branch-free over
//!   contiguous rows.
//! * **Im2colGemm** — patch-matrix lowering ([`crate::ops::im2col`]) plus
//!   the panel-packed microkernel GEMM ([`crate::ops::gemm`]). All scratch
//!   (patch matrix, packed operands, accumulator) lives in an
//!   [`Arena`]: the `*_in` entry points reuse a
//!   caller-owned arena across calls, so steady-state serving performs no
//!   heap allocation for scratch; the plain entry points create a private
//!   arena per call. Weights can additionally be pre-packed once via
//!   [`PackedConv2d`] and reused across every query
//!   ([`conv2d_i8_prepacked`]) — the software analogue of the paper's
//!   SubGraph-Stationary weight reuse.
//!
//! The int8 results are bit-identical across backends (integer accumulation
//! is associative); the f32 backends agree to within reassociation error.
//! [`conv2d_f32`] / [`conv2d_i8`] resolve [`KernelPolicy::Auto`]; the
//! `*_with` variants pin a backend explicitly.

use serde::{Deserialize, Serialize};

use crate::arena::Arena;
use crate::error::TensorError;
use crate::ops::epilogue::Epilogue;
use crate::ops::gemm::{
    gemm_f32_packed, gemm_i8_packed, gemm_i8_packed_pairs, ConvBackend, KernelPolicy,
};
use crate::ops::im2col::im2col;
use crate::ops::pack::{
    pack_a_f32_into, pack_a_i8_into, pack_b_f32_into, pack_b_i8_into, pack_b_i8_pairs_into,
    packed_a_len, packed_b_len, packed_b_pairs_len, PackLayout, PackedConv2d,
};
use crate::quant::{requantize_accumulator, QuantParams};
use crate::shape::{conv_out_dim, Shape4};
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
///
/// `groups == 1` is a dense convolution; `groups == c_in == c_out` is a
/// depthwise convolution (MobileNetV3's dominant op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Kernel height `R`.
    pub kernel_h: usize,
    /// Kernel width `S`.
    pub kernel_w: usize,
    /// Stride (same in both spatial dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Number of channel groups.
    pub groups: usize,
}

impl Conv2dParams {
    /// Creates parameters with stride 1, no padding, one group.
    #[must_use]
    pub const fn new(kernel_h: usize, kernel_w: usize) -> Self {
        Self { kernel_h, kernel_w, stride: 1, padding: 0, groups: 1 }
    }

    /// Sets the stride.
    #[must_use]
    pub const fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the padding.
    #[must_use]
    pub const fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Sets the group count.
    #[must_use]
    pub const fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// "Same" padding for odd kernels.
    #[must_use]
    pub const fn same_padding(kernel: usize) -> usize {
        kernel / 2
    }

    fn validate(&self, input: Shape4, weights: Shape4) -> Result<(usize, usize), TensorError> {
        if self.stride == 0 {
            return Err(TensorError::InvalidParam { what: "stride must be nonzero" });
        }
        if self.groups == 0 {
            return Err(TensorError::InvalidParam { what: "groups must be nonzero" });
        }
        if !input.c.is_multiple_of(self.groups) || !weights.n.is_multiple_of(self.groups) {
            return Err(TensorError::InvalidParam { what: "channels not divisible by groups" });
        }
        if weights.c != input.c / self.groups {
            return Err(TensorError::ShapeMismatch {
                what: "input channels per group",
                lhs: input,
                rhs: weights,
            });
        }
        if weights.h != self.kernel_h || weights.w != self.kernel_w {
            return Err(TensorError::ShapeMismatch {
                what: "kernel spatial dims",
                lhs: input,
                rhs: weights,
            });
        }
        let oh = conv_out_dim(input.h, self.kernel_h, self.stride, self.padding);
        let ow = conv_out_dim(input.w, self.kernel_w, self.stride, self.padding);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => Ok((oh, ow)),
            _ => Err(TensorError::EmptyOutput { input }),
        }
    }

    /// Resolves the backend `policy` picks for this problem (`oh`/`ow` are
    /// the validated output dims). The single source of the `Auto`
    /// heuristic — every conv entry point, including `sushi-accel`'s
    /// `DpeArray`, must route through it so policies resolve identically
    /// across the stack.
    #[must_use]
    pub fn backend(
        &self,
        input: Shape4,
        weights: Shape4,
        oh: usize,
        ow: usize,
        policy: KernelPolicy,
    ) -> ConvBackend {
        let macs = input.n * weights.n * weights.c * weights.h * weights.w * oh * ow;
        let depthwise = weights.c == 1 && self.groups > 1;
        policy.resolve(macs, depthwise)
    }
}

/// Valid kernel coordinates `r_lo..r_hi` for output coordinate `o`: exactly
/// those `r` with `0 <= o*stride + r - padding < in_len`. Hoisted out of the
/// MAC loops so the direct backend never clamps per element.
pub(crate) fn kernel_range(
    o: usize,
    stride: usize,
    padding: usize,
    in_len: usize,
    k_len: usize,
) -> (usize, usize) {
    let base = o * stride;
    let lo = padding.saturating_sub(base).min(k_len);
    let hi = (in_len + padding).saturating_sub(base).min(k_len);
    (lo, hi.max(lo))
}

pub(crate) fn kernel_ranges(
    o_len: usize,
    stride: usize,
    padding: usize,
    in_len: usize,
    k_len: usize,
) -> Vec<(usize, usize)> {
    (0..o_len).map(|o| kernel_range(o, stride, padding, in_len, k_len)).collect()
}

/// f32 convolution under [`KernelPolicy::Auto`].
///
/// `weights` has shape `(K, C/groups, R, S)`; `bias`, if given, has length `K`.
///
/// # Errors
/// Returns an error on shape/parameter mismatch (see [`Conv2dParams`]).
pub fn conv2d_f32(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor<f32>, TensorError> {
    conv2d_f32_with(input, weights, bias, params, KernelPolicy::Auto)
}

/// f32 convolution with an explicit kernel backend policy.
///
/// [`KernelPolicy::Naive`] runs the reference loop nest; the backends agree
/// to within floating-point reassociation error (≪ 1e-4 on unit-range data).
/// Allocates private scratch; hot paths should use [`conv2d_f32_in`].
///
/// # Errors
/// Returns an error on shape/parameter mismatch (see [`Conv2dParams`]).
pub fn conv2d_f32_with(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    policy: KernelPolicy,
) -> Result<Tensor<f32>, TensorError> {
    conv2d_f32_in(input, weights, bias, params, policy, &mut Arena::new())
}

/// f32 convolution reusing a caller-owned [`Arena`] for all scratch.
///
/// # Errors
/// Returns an error on shape/parameter mismatch (see [`Conv2dParams`]).
pub fn conv2d_f32_in(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    policy: KernelPolicy,
    arena: &mut Arena,
) -> Result<Tensor<f32>, TensorError> {
    let ishape = input.shape();
    let wshape = weights.shape();
    let (oh, ow) = params.validate(ishape, wshape)?;
    if let Some(b) = bias {
        if b.len() != wshape.n {
            return Err(TensorError::LengthMismatch { expected: wshape.n, actual: b.len() });
        }
    }
    match params.backend(ishape, wshape, oh, ow, policy) {
        ConvBackend::Direct => Ok(conv2d_f32_direct(input, weights, bias, params, oh, ow)),
        ConvBackend::Im2colGemm => conv2d_f32_gemm(input, weights, bias, params, oh, ow, arena),
    }
}

/// Direct-loop oracle: shape checks already done.
fn conv2d_f32_direct(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
) -> Tensor<f32> {
    let ishape = input.shape();
    let wshape = weights.shape();
    let (stride, padding) = (params.stride, params.padding);
    let k_total = wshape.n;
    let cg = wshape.c; // channels per group
    let kg = k_total / params.groups; // kernels per group
    let mut out = Tensor::zeros(Shape4::new(ishape.n, k_total, oh, ow));
    let ry_ranges = kernel_ranges(oh, stride, padding, ishape.h, params.kernel_h);
    let rx_ranges = kernel_ranges(ow, stride, padding, ishape.w, params.kernel_w);

    for n in 0..ishape.n {
        for k in 0..k_total {
            let g = k / kg;
            let bias_v = bias.map_or(0.0, |b| b[k]);
            for oy in 0..oh {
                let (ry_lo, ry_hi) = ry_ranges[oy];
                let orow = out.row_mut(n, k, oy);
                for (ox, o) in orow.iter_mut().enumerate() {
                    let (rx_lo, rx_hi) = rx_ranges[ox];
                    let mut acc = 0.0_f32;
                    for cc in 0..cg {
                        let c = g * cg + cc;
                        for ry in ry_lo..ry_hi {
                            let irow = input.row(n, c, oy * stride + ry - padding);
                            let wrow = weights.row(k, cc, ry);
                            if stride == 1 && rx_lo < rx_hi {
                                let ix0 = ox + rx_lo - padding;
                                let iv = &irow[ix0..ix0 + (rx_hi - rx_lo)];
                                for (x, w) in iv.iter().zip(&wrow[rx_lo..rx_hi]) {
                                    acc += x * w;
                                }
                            } else {
                                for rx in rx_lo..rx_hi {
                                    acc += irow[ox * stride + rx - padding] * wrow[rx];
                                }
                            }
                        }
                    }
                    *o = acc + bias_v;
                }
            }
        }
    }
    out
}

/// im2col + packed-GEMM backend: shape checks already done. The weight
/// operand packs once per *group* (hoisted out of the batch loop); patches
/// pack per `(batch, group)` into arena scratch.
fn conv2d_f32_gemm(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
    arena: &mut Arena,
) -> Result<Tensor<f32>, TensorError> {
    let ishape = input.shape();
    let wshape = weights.shape();
    let k_total = wshape.n;
    let cg = wshape.c;
    let kg = k_total / params.groups;
    let kdim = cg * params.kernel_h * params.kernel_w;
    let npix = oh * ow;
    let mut out = Tensor::zeros(Shape4::new(ishape.n, k_total, oh, ow));
    let wdata = weights.as_slice();
    let (patches, pa, pb, acc) =
        arena.f32_conv(kdim * npix, packed_a_len(kg, kdim), packed_b_len(kdim, npix), kg * npix);
    for g in 0..params.groups {
        pack_a_f32_into(pa, &wdata[g * kg * kdim..(g + 1) * kg * kdim], kg, kdim)?;
        for n in 0..ishape.n {
            im2col(input, n, g * cg, cg, params, oh, ow, 0.0, patches)?;
            pack_b_f32_into(pb, patches, kdim, npix)?;
            acc.fill(0.0);
            gemm_f32_packed(kg, kdim, npix, pa, pb, acc)?;
            for kk in 0..kg {
                let k = g * kg + kk;
                let bias_v = bias.map_or(0.0, |b| b[k]);
                let base = out.shape().row_offset(n, k, 0);
                let dst = &mut out.as_mut_slice()[base..base + npix];
                for (d, &v) in dst.iter_mut().zip(&acc[kk * npix..(kk + 1) * npix]) {
                    *d = v + bias_v;
                }
            }
        }
    }
    Ok(out)
}

/// Quantized int8 convolution under [`KernelPolicy::Auto`].
///
/// Implements the accelerator's Zero-Subtraction (ZS) semantics:
/// `acc = Σ (iAct − zp_in) · (w − zp_w)` accumulated in `i32`, then
/// requantized with `in.scale · w.scale / out.scale` and offset by the output
/// zero point. Padding contributes *zero-valued real* input, i.e. the padded
/// quantized activation equals `zp_in` and vanishes after subtraction.
///
/// The result is **bit-identical** across kernel backends.
///
/// # Errors
/// Returns an error on shape/parameter mismatch (see [`Conv2dParams`]).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i8(
    input: &Tensor<i8>,
    in_q: QuantParams,
    weights: &Tensor<i8>,
    w_q: QuantParams,
    bias: Option<&[i32]>,
    out_q: QuantParams,
    params: &Conv2dParams,
) -> Result<Tensor<i8>, TensorError> {
    conv2d_i8_with(input, in_q, weights, w_q, bias, out_q, params, KernelPolicy::Auto)
}

/// Quantized int8 convolution with an explicit kernel backend policy.
///
/// See [`conv2d_i8`]; backends produce bit-identical outputs. Allocates
/// private scratch; hot paths should use [`conv2d_i8_in`].
///
/// # Errors
/// Returns an error on shape/parameter mismatch (see [`Conv2dParams`]).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i8_with(
    input: &Tensor<i8>,
    in_q: QuantParams,
    weights: &Tensor<i8>,
    w_q: QuantParams,
    bias: Option<&[i32]>,
    out_q: QuantParams,
    params: &Conv2dParams,
    policy: KernelPolicy,
) -> Result<Tensor<i8>, TensorError> {
    conv2d_i8_in(input, in_q, weights, w_q, bias, out_q, params, policy, &mut Arena::new())
}

/// Quantized int8 convolution reusing a caller-owned [`Arena`].
///
/// # Errors
/// Returns an error on shape/parameter mismatch (see [`Conv2dParams`]).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i8_in(
    input: &Tensor<i8>,
    in_q: QuantParams,
    weights: &Tensor<i8>,
    w_q: QuantParams,
    bias: Option<&[i32]>,
    out_q: QuantParams,
    params: &Conv2dParams,
    policy: KernelPolicy,
    arena: &mut Arena,
) -> Result<Tensor<i8>, TensorError> {
    let ishape = input.shape();
    let wshape = weights.shape();
    let (oh, ow) = params.validate(ishape, wshape)?;
    if let Some(b) = bias {
        if b.len() != wshape.n {
            return Err(TensorError::LengthMismatch { expected: wshape.n, actual: b.len() });
        }
    }
    match params.backend(ishape, wshape, oh, ow, policy) {
        ConvBackend::Direct => {
            Ok(conv2d_i8_direct(input, in_q, weights, w_q, bias, out_q, params, oh, ow))
        }
        ConvBackend::Im2colGemm => conv2d_i8_gemm(
            input,
            in_q,
            PackSource::Raw(weights.as_slice()),
            wshape,
            w_q,
            bias,
            out_q,
            params,
            oh,
            ow,
            arena,
        ),
    }
}

/// Quantized int8 convolution over weights packed once via
/// [`PackedConv2d::pack`], always on the GEMM backend.
///
/// Per-query work is exactly: im2col + patch packing (arena scratch) + the
/// microkernel sweep — the weight panels are read in place, never copied or
/// re-packed. Output is bit-identical to [`conv2d_i8`] on the raw weights.
///
/// # Errors
/// Returns an error on shape/parameter mismatch between `input`, the packed
/// weight shape and `params`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i8_prepacked(
    input: &Tensor<i8>,
    in_q: QuantParams,
    packed: &PackedConv2d,
    bias: Option<&[i32]>,
    out_q: QuantParams,
    params: &Conv2dParams,
    arena: &mut Arena,
) -> Result<Tensor<i8>, TensorError> {
    let ishape = input.shape();
    let wshape = packed.wshape();
    let (oh, ow) = params.validate(ishape, wshape)?;
    if params.groups != packed.groups() {
        return Err(TensorError::InvalidParam { what: "packed weights built for other groups" });
    }
    if packed.layout() != PackLayout::Panel {
        return Err(TensorError::InvalidParam {
            what: "k-pair packed weights require the fused conv entry point",
        });
    }
    if let Some(b) = bias {
        if b.len() != wshape.n {
            return Err(TensorError::LengthMismatch { expected: wshape.n, actual: b.len() });
        }
    }
    conv2d_i8_gemm(
        input,
        in_q,
        PackSource::Prepacked(packed),
        wshape,
        packed.w_q(),
        bias,
        out_q,
        params,
        oh,
        ow,
        arena,
    )
}

/// Where the GEMM core finds its packed weight panels.
enum PackSource<'a> {
    /// Raw row-major weights: pack each group into arena scratch per call.
    Raw(&'a [i8]),
    /// Panels packed once ahead of time (subgraph-stationary reuse).
    Prepacked(&'a PackedConv2d),
}

/// im2col + packed-GEMM backend for the quantized path: shape checks
/// already done. Weight panels come from `src` (arena-packed per call, or
/// pre-packed once per cache install); patches pack per `(batch, group)`.
#[allow(clippy::too_many_arguments)]
fn conv2d_i8_gemm(
    input: &Tensor<i8>,
    in_q: QuantParams,
    src: PackSource<'_>,
    wshape: Shape4,
    w_q: QuantParams,
    bias: Option<&[i32]>,
    out_q: QuantParams,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
    arena: &mut Arena,
) -> Result<Tensor<i8>, TensorError> {
    let ishape = input.shape();
    let k_total = wshape.n;
    let cg = wshape.c;
    let kg = k_total / params.groups;
    let kdim = cg * params.kernel_h * params.kernel_w;
    let npix = oh * ow;
    let acc_scale = in_q.scale * w_q.scale / out_q.scale;
    let mut out = Tensor::zeros(Shape4::new(ishape.n, k_total, oh, ow));
    let pa_scratch = match src {
        PackSource::Raw(_) => packed_a_len(kg, kdim),
        PackSource::Prepacked(_) => 0,
    };
    let (patches, pa_buf, pb, acc) =
        arena.i8_conv(kdim * npix, pa_scratch, packed_b_len(kdim, npix), kg * npix);
    for g in 0..params.groups {
        let pa: &[i16] = match src {
            PackSource::Raw(wdata) => {
                pack_a_i8_into(
                    pa_buf,
                    &wdata[g * kg * kdim..(g + 1) * kg * kdim],
                    w_q.zero_point,
                    kg,
                    kdim,
                )?;
                pa_buf
            }
            PackSource::Prepacked(p) => p.group(g),
        };
        for n in 0..ishape.n {
            // Padding cells are written as the input zero point so the
            // pack-time Zero-Subtraction turns them into literal zeros.
            im2col(input, n, g * cg, cg, params, oh, ow, in_q.zero_point, patches)?;
            pack_b_i8_into(pb, patches, in_q.zero_point, kdim, npix)?;
            acc.fill(0);
            gemm_i8_packed(kg, kdim, npix, pa, pb, acc)?;
            for kk in 0..kg {
                let k = g * kg + kk;
                let bias_v = bias.map_or(0, |b| b[k]);
                let base = out.shape().row_offset(n, k, 0);
                let dst = &mut out.as_mut_slice()[base..base + npix];
                for (d, &v) in dst.iter_mut().zip(&acc[kk * npix..(kk + 1) * npix]) {
                    *d = requantize_accumulator(v + bias_v, acc_scale, out_q.zero_point);
                }
            }
        }
    }
    Ok(out)
}

/// Fused quantized convolution: k-pair packed weights, the `pmaddwd` pair
/// microkernel, and a typed [`Epilogue`] (bias + requantization + activation)
/// applied to each accumulator row while it is cache-hot.
///
/// This is the IR-lowered datapath: `sushi-ir` rewrites fold batch-norm and
/// activations into the epilogue at cache-install time, and the install packs
/// weights in [`PackLayout::KPair`]. For 1×1/stride-1/unpadded dense convs the
/// im2col step is skipped entirely — the patch matrix *is* the input slice.
///
/// Output is bit-identical to [`conv2d_i8`] + reference activation for
/// uniform-scale epilogues (pinned by the cross-crate fusion proptests).
///
/// # Errors
/// Returns an error on shape/parameter mismatch, when `packed` is not in
/// [`PackLayout::KPair`], or when the epilogue's channel count disagrees with
/// the packed weights.
pub fn conv2d_i8_fused(
    input: &Tensor<i8>,
    in_q: QuantParams,
    packed: &PackedConv2d,
    epilogue: &Epilogue,
    params: &Conv2dParams,
    arena: &mut Arena,
) -> Result<Tensor<i8>, TensorError> {
    let ishape = input.shape();
    let wshape = packed.wshape();
    let (oh, ow) = params.validate(ishape, wshape)?;
    if params.groups != packed.groups() {
        return Err(TensorError::InvalidParam { what: "packed weights built for other groups" });
    }
    if packed.layout() != PackLayout::KPair {
        return Err(TensorError::InvalidParam {
            what: "fused conv requires k-pair packed weights",
        });
    }
    if epilogue.channels() != wshape.n {
        return Err(TensorError::LengthMismatch {
            expected: wshape.n,
            actual: epilogue.channels(),
        });
    }
    let k_total = wshape.n;
    let cg = wshape.c;
    let kg = k_total / params.groups;
    let kdim = cg * params.kernel_h * params.kernel_w;
    let npix = oh * ow;
    let chw = ishape.c * ishape.h * ishape.w;
    // A 1×1/stride-1/unpadded dense conv's patch matrix is exactly the
    // input batch slice: pack B straight from the input, no im2col copy.
    let direct_b = params.kernel_h == 1
        && params.kernel_w == 1
        && params.stride == 1
        && params.padding == 0
        && params.groups == 1;
    let mut out = Tensor::zeros(Shape4::new(ishape.n, k_total, oh, ow));
    let (patches, _pa_buf, pb, acc) = arena.i8_conv(
        if direct_b { 0 } else { kdim * npix },
        0,
        packed_b_pairs_len(kdim, npix),
        kg * npix,
    );
    for g in 0..params.groups {
        let pa = packed.group(g);
        for n in 0..ishape.n {
            let bsrc: &[i8] = if direct_b {
                &input.as_slice()[n * chw..(n + 1) * chw]
            } else {
                im2col(input, n, g * cg, cg, params, oh, ow, in_q.zero_point, patches)?;
                patches
            };
            pack_b_i8_pairs_into(pb, bsrc, in_q.zero_point, kdim, npix)?;
            acc.fill(0);
            gemm_i8_packed_pairs(kg, kdim, npix, pa, pb, acc)?;
            for kk in 0..kg {
                let k = g * kg + kk;
                let base = out.shape().row_offset(n, k, 0);
                epilogue.apply_row(
                    k,
                    &acc[kk * npix..(kk + 1) * npix],
                    &mut out.as_mut_slice()[base..base + npix],
                )?;
            }
        }
    }
    Ok(out)
}

/// Direct-loop oracle for the quantized path: shape checks already done.
#[allow(clippy::too_many_arguments)]
fn conv2d_i8_direct(
    input: &Tensor<i8>,
    in_q: QuantParams,
    weights: &Tensor<i8>,
    w_q: QuantParams,
    bias: Option<&[i32]>,
    out_q: QuantParams,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
) -> Tensor<i8> {
    let ishape = input.shape();
    let wshape = weights.shape();
    let (stride, padding) = (params.stride, params.padding);
    let k_total = wshape.n;
    let cg = wshape.c;
    let kg = k_total / params.groups;
    let acc_scale = in_q.scale * w_q.scale / out_q.scale;
    let zp_a = i32::from(in_q.zero_point);
    let zp_w = i32::from(w_q.zero_point);
    let mut out = Tensor::zeros(Shape4::new(ishape.n, k_total, oh, ow));
    let ry_ranges = kernel_ranges(oh, stride, padding, ishape.h, params.kernel_h);
    let rx_ranges = kernel_ranges(ow, stride, padding, ishape.w, params.kernel_w);

    for n in 0..ishape.n {
        for k in 0..k_total {
            let g = k / kg;
            let bias_v = bias.map_or(0, |b| b[k]);
            for oy in 0..oh {
                let (ry_lo, ry_hi) = ry_ranges[oy];
                let orow = out.row_mut(n, k, oy);
                for (ox, o) in orow.iter_mut().enumerate() {
                    let (rx_lo, rx_hi) = rx_ranges[ox];
                    let mut acc: i32 = bias_v;
                    for cc in 0..cg {
                        let c = g * cg + cc;
                        for ry in ry_lo..ry_hi {
                            let irow = input.row(n, c, oy * stride + ry - padding);
                            let wrow = weights.row(k, cc, ry);
                            if stride == 1 && rx_lo < rx_hi {
                                let ix0 = ox + rx_lo - padding;
                                let iv = &irow[ix0..ix0 + (rx_hi - rx_lo)];
                                for (x, w) in iv.iter().zip(&wrow[rx_lo..rx_hi]) {
                                    acc += (i32::from(*x) - zp_a) * (i32::from(*w) - zp_w);
                                }
                            } else {
                                for rx in rx_lo..rx_hi {
                                    let x = i32::from(irow[ox * stride + rx - padding]) - zp_a;
                                    acc += x * (i32::from(wrow[rx]) - zp_w);
                                }
                            }
                        }
                    }
                    *o = requantize_accumulator(acc, acc_scale, out_q.zero_point);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{calibrate_symmetric, dequantize_tensor, quantize_tensor};
    use crate::rng::DetRng;

    fn rand_tensor(shape: Shape4, seed: u64, range: f32) -> Tensor<f32> {
        let mut rng = DetRng::new(seed);
        let data = (0..shape.volume()).map(|_| rng.uniform_f32(-range, range)).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn identity_1x1_kernel_passes_input_through() {
        let input = rand_tensor(Shape4::new(1, 1, 4, 4), 1, 1.0);
        let weights = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![1.0]).unwrap();
        for policy in [KernelPolicy::Naive, KernelPolicy::Im2colGemm, KernelPolicy::Auto] {
            let out =
                conv2d_f32_with(&input, &weights, None, &Conv2dParams::new(1, 1), policy).unwrap();
            assert_eq!(out, input);
        }
    }

    #[test]
    fn all_ones_3x3_counts_window_elements() {
        let input = Tensor::<f32>::filled(Shape4::new(1, 1, 5, 5), 1.0);
        let weights = Tensor::<f32>::filled(Shape4::new(1, 1, 3, 3), 1.0);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        for policy in [KernelPolicy::Naive, KernelPolicy::Im2colGemm] {
            let out = conv2d_f32_with(&input, &weights, None, &p, policy).unwrap();
            // Corner windows see 4 elements, edges 6, interior 9.
            assert_eq!(out.get(0, 0, 0, 0), 4.0);
            assert_eq!(out.get(0, 0, 0, 2), 6.0);
            assert_eq!(out.get(0, 0, 2, 2), 9.0);
        }
    }

    #[test]
    fn stride_two_halves_output() {
        let input = rand_tensor(Shape4::new(1, 3, 8, 8), 2, 1.0);
        let weights = rand_tensor(Shape4::new(4, 3, 3, 3), 3, 0.5);
        let p = Conv2dParams::new(3, 3).with_stride(2).with_padding(1);
        let out = conv2d_f32(&input, &weights, None, &p).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 4, 4, 4));
    }

    #[test]
    fn bias_adds_per_kernel_constant() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 2, 3, 3));
        let weights = rand_tensor(Shape4::new(2, 2, 3, 3), 4, 1.0);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        for policy in [KernelPolicy::Naive, KernelPolicy::Im2colGemm] {
            let out = conv2d_f32_with(&input, &weights, Some(&[1.5, -2.0]), &p, policy).unwrap();
            assert_eq!(out.get(0, 0, 1, 1), 1.5);
            assert_eq!(out.get(0, 1, 2, 2), -2.0);
        }
    }

    #[test]
    fn depthwise_groups_isolate_channels() {
        // Two channels; each depthwise kernel is identity-like on its own channel.
        let mut input = Tensor::<f32>::zeros(Shape4::new(1, 2, 3, 3));
        input.set(0, 0, 1, 1, 5.0);
        input.set(0, 1, 1, 1, 7.0);
        let mut weights = Tensor::<f32>::zeros(Shape4::new(2, 1, 3, 3));
        weights.set(0, 0, 1, 1, 1.0);
        weights.set(1, 0, 1, 1, 2.0);
        let p = Conv2dParams::new(3, 3).with_padding(1).with_groups(2);
        for policy in [KernelPolicy::Naive, KernelPolicy::Im2colGemm] {
            let out = conv2d_f32_with(&input, &weights, None, &p, policy).unwrap();
            assert_eq!(out.get(0, 0, 1, 1), 5.0);
            assert_eq!(out.get(0, 1, 1, 1), 14.0);
            // Cross-channel leakage must be zero.
            assert_eq!(out.get(0, 0, 0, 0), 0.0);
        }
    }

    #[test]
    fn rejects_channel_mismatch() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 3, 4, 4));
        let weights = Tensor::<f32>::zeros(Shape4::new(2, 4, 3, 3));
        let err = conv2d_f32(&input, &weights, None, &Conv2dParams::new(3, 3)).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_kernel_param_mismatch() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 3, 4, 4));
        let weights = Tensor::<f32>::zeros(Shape4::new(2, 3, 5, 5));
        let err = conv2d_f32(&input, &weights, None, &Conv2dParams::new(3, 3)).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_empty_output() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 2));
        let weights = Tensor::<f32>::zeros(Shape4::new(1, 1, 5, 5));
        let err = conv2d_f32(&input, &weights, None, &Conv2dParams::new(5, 5)).unwrap_err();
        assert!(matches!(err, TensorError::EmptyOutput { .. }));
    }

    #[test]
    fn quantized_conv_tracks_f32_reference() {
        let input = rand_tensor(Shape4::new(1, 4, 6, 6), 10, 1.0);
        let weights = rand_tensor(Shape4::new(8, 4, 3, 3), 11, 0.25);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let ref_out = conv2d_f32(&input, &weights, None, &p).unwrap();

        let in_q = calibrate_symmetric(&input);
        let w_q = calibrate_symmetric(&weights);
        let out_q = calibrate_symmetric(&ref_out);
        let qi = quantize_tensor(&input, in_q);
        let qw = quantize_tensor(&weights, w_q);
        let qout = conv2d_i8(&qi, in_q, &qw, w_q, None, out_q, &p).unwrap();
        let deq = dequantize_tensor(&qout, out_q);

        // int8 conv should track the reference within a few output quanta.
        let tol = 4.0 * out_q.scale + 36.0 * in_q.scale * w_q.scale;
        assert!(ref_out.max_abs_diff(&deq).unwrap() <= tol);
    }

    #[test]
    fn quantized_conv_zero_point_padding_is_neutral() {
        // With a nonzero input zero point, padded border must behave as real 0.
        let input = Tensor::<f32>::filled(Shape4::new(1, 1, 3, 3), 2.0);
        let weights = Tensor::<f32>::filled(Shape4::new(1, 1, 3, 3), 1.0);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let ref_out = conv2d_f32(&input, &weights, None, &p).unwrap();

        let in_q = QuantParams::asymmetric(0.0, 2.0); // large zero point
        let w_q = QuantParams::symmetric(1.0);
        let out_q = QuantParams::symmetric(20.0);
        let qi = quantize_tensor(&input, in_q);
        let qw = quantize_tensor(&weights, w_q);
        for policy in [KernelPolicy::Naive, KernelPolicy::Im2colGemm] {
            let qout = conv2d_i8_with(&qi, in_q, &qw, w_q, None, out_q, &p, policy).unwrap();
            let deq = dequantize_tensor(&qout, out_q);
            assert!(ref_out.max_abs_diff(&deq).unwrap() <= 0.5);
        }
    }

    #[test]
    fn gemm_backend_is_bit_identical_to_naive_on_i8() {
        let mut rng = DetRng::new(77);
        let ishape = Shape4::new(2, 6, 9, 9);
        let wshape = Shape4::new(8, 3, 3, 3);
        let x = Tensor::from_vec(ishape, (0..ishape.volume()).map(|_| rng.next_i8()).collect())
            .unwrap();
        let w = Tensor::from_vec(wshape, (0..wshape.volume()).map(|_| rng.next_i8()).collect())
            .unwrap();
        let in_q = QuantParams::new(0.05, 7);
        let w_q = QuantParams::new(0.02, -3);
        let out_q = QuantParams::new(0.3, 5);
        let bias: Vec<i32> = (0..wshape.n).map(|i| (i as i32) * 17 - 40).collect();
        let p = Conv2dParams::new(3, 3).with_stride(2).with_padding(1).with_groups(2);
        let a =
            conv2d_i8_with(&x, in_q, &w, w_q, Some(&bias), out_q, &p, KernelPolicy::Naive).unwrap();
        let b = conv2d_i8_with(&x, in_q, &w, w_q, Some(&bias), out_q, &p, KernelPolicy::Im2colGemm)
            .unwrap();
        assert_eq!(a, b, "i8 backends must agree bit-for-bit");
    }

    #[test]
    fn prepacked_conv_is_bit_identical_and_reuses_arena() {
        let mut rng = DetRng::new(123);
        let ishape = Shape4::new(1, 5, 8, 8);
        let wshape = Shape4::new(6, 5, 3, 3);
        let x = Tensor::from_vec(ishape, (0..ishape.volume()).map(|_| rng.next_i8()).collect())
            .unwrap();
        let w = Tensor::from_vec(wshape, (0..wshape.volume()).map(|_| rng.next_i8()).collect())
            .unwrap();
        let in_q = QuantParams::new(0.04, -6);
        let w_q = QuantParams::new(0.03, 2);
        let out_q = QuantParams::new(0.25, 1);
        let bias: Vec<i32> = (0..wshape.n).map(|i| (i as i32) * 11 - 20).collect();
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let naive =
            conv2d_i8_with(&x, in_q, &w, w_q, Some(&bias), out_q, &p, KernelPolicy::Naive).unwrap();
        let packed = PackedConv2d::pack(&w, w_q, &p).unwrap();
        let mut arena = Arena::new();
        let first =
            conv2d_i8_prepacked(&x, in_q, &packed, Some(&bias), out_q, &p, &mut arena).unwrap();
        assert_eq!(naive, first, "prepacked path must match the oracle bit-for-bit");
        let reserved = arena.reserved_bytes();
        assert!(reserved > 0);
        // A second query reuses the arena without growing it.
        let second =
            conv2d_i8_prepacked(&x, in_q, &packed, Some(&bias), out_q, &p, &mut arena).unwrap();
        assert_eq!(first, second);
        assert_eq!(arena.reserved_bytes(), reserved, "steady state must not reallocate");
    }

    #[test]
    fn prepacked_conv_rejects_mismatched_shapes() {
        let w = Tensor::<i8>::zeros(Shape4::new(4, 3, 3, 3));
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let packed = PackedConv2d::pack(&w, QuantParams::new(0.1, 0), &p).unwrap();
        let x = Tensor::<i8>::zeros(Shape4::new(1, 5, 8, 8)); // 5 channels != 3
        let q = QuantParams::new(0.1, 0);
        let err = conv2d_i8_prepacked(&x, q, &packed, None, q, &p, &mut Arena::new()).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn fused_conv_matches_oracle_plus_activation_bitwise() {
        use crate::ops::activation::Activation;
        let mut rng = DetRng::new(321);
        let in_q = QuantParams::new(0.05, 3);
        let w_q = QuantParams::new(0.02, -1);
        let out_q = QuantParams::new(0.21, 2);
        // One 3×3 padded conv and one 1×1 (exercises the im2col-skip path).
        for (ishape, wshape, p) in [
            (
                Shape4::new(2, 5, 7, 7),
                Shape4::new(6, 5, 3, 3),
                Conv2dParams::new(3, 3).with_padding(1),
            ),
            (Shape4::new(1, 8, 6, 6), Shape4::new(10, 8, 1, 1), Conv2dParams::new(1, 1)),
        ] {
            let x = Tensor::from_vec(ishape, (0..ishape.volume()).map(|_| rng.next_i8()).collect())
                .unwrap();
            let w = Tensor::from_vec(wshape, (0..wshape.volume()).map(|_| rng.next_i8()).collect())
                .unwrap();
            let bias: Vec<i32> = (0..wshape.n).map(|i| (i as i32) * 13 - 31).collect();
            let acc_scale = in_q.scale * w_q.scale / out_q.scale;
            for act in [Activation::None, Activation::Relu, Activation::HSwish] {
                let oracle =
                    conv2d_i8_with(&x, in_q, &w, w_q, Some(&bias), out_q, &p, KernelPolicy::Naive)
                        .unwrap();
                let want = oracle.map(|q| match act {
                    Activation::None => q,
                    Activation::Relu => q.max(0),
                    other => out_q.quantize(other.apply(out_q.dequantize(q))),
                });
                let packed =
                    PackedConv2d::pack_with_layout(&w, w_q, &p, PackLayout::KPair).unwrap();
                let ep = Epilogue::uniform(bias.clone(), acc_scale, out_q, act).unwrap();
                let got = conv2d_i8_fused(&x, in_q, &packed, &ep, &p, &mut Arena::new()).unwrap();
                assert_eq!(want, got, "fused conv must match oracle+activation for {act:?}");
            }
        }
    }

    #[test]
    fn fused_conv_rejects_layout_and_channel_mismatch() {
        use crate::ops::activation::Activation;
        let w = Tensor::<i8>::zeros(Shape4::new(4, 3, 3, 3));
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let q = QuantParams::new(0.1, 0);
        let x = Tensor::<i8>::zeros(Shape4::new(1, 3, 8, 8));
        let ep = Epilogue::uniform(vec![0; 4], 0.1, q, Activation::None).unwrap();
        // Panel layout must be rejected by the fused path...
        let panel = PackedConv2d::pack(&w, q, &p).unwrap();
        assert!(conv2d_i8_fused(&x, q, &panel, &ep, &p, &mut Arena::new()).is_err());
        // ...and KPair layout by the unfused prepacked path.
        let kpair = PackedConv2d::pack_with_layout(&w, q, &p, PackLayout::KPair).unwrap();
        assert!(conv2d_i8_prepacked(&x, q, &kpair, None, q, &p, &mut Arena::new()).is_err());
        // Epilogue channel count must match the packed weights.
        let ep3 = Epilogue::uniform(vec![0; 3], 0.1, q, Activation::None).unwrap();
        assert!(conv2d_i8_fused(&x, q, &kpair, &ep3, &p, &mut Arena::new()).is_err());
    }

    /// Diagnostic, not a gate: prints direct-vs-packed-GEMM wall times
    /// around the `Auto` crossover so `AUTO_DIRECT_MAC_THRESHOLD` can be
    /// re-tuned when the kernels change. Run with
    /// `cargo test --release -p sushi-tensor -- --ignored auto_crossover`.
    #[test]
    #[ignore = "diagnostic probe for the Auto threshold; run explicitly in release"]
    fn auto_crossover_probe() {
        use std::time::Instant;
        let q = QuantParams::new(0.03, 2);
        println!("{:>10}  {:>9}  {:>11}  {:>11}", "macs", "shape", "direct", "gemm");
        for (c, hw, kk) in [(2, 4, 2), (4, 6, 4), (8, 8, 8), (8, 12, 8), (16, 14, 16), (32, 14, 32)]
        {
            let ishape = Shape4::new(1, c, hw, hw);
            let wshape = Shape4::new(kk, c, 3, 3);
            let x = rand_tensor(ishape, 1, 1.0).map(|v| (v * 100.0) as i8);
            let w = rand_tensor(wshape, 2, 1.0).map(|v| (v * 100.0) as i8);
            let p = Conv2dParams::new(3, 3).with_padding(1);
            let macs = kk * c * 9 * hw * hw;
            let mut arena = Arena::new();
            let time = |policy: KernelPolicy, arena: &mut Arena| {
                let mut best = f64::INFINITY;
                for _ in 0..50 {
                    let t = Instant::now();
                    let _ = conv2d_i8_in(&x, q, &w, q, None, q, &p, policy, arena).unwrap();
                    best = best.min(t.elapsed().as_secs_f64() * 1e6);
                }
                best
            };
            let direct = time(KernelPolicy::Naive, &mut arena);
            let gemm = time(KernelPolicy::Im2colGemm, &mut arena);
            println!("{macs:>10}  {c}x{hw}x{hw}x{kk}  {direct:>9.2} us  {gemm:>9.2} us");
        }
    }

    #[test]
    fn grouped_conv_matches_manual_group_split() {
        // groups=2 over 4 channels == two independent convs over 2 channels each.
        let input = rand_tensor(Shape4::new(1, 4, 5, 5), 20, 1.0);
        let weights = rand_tensor(Shape4::new(6, 2, 3, 3), 21, 0.5);
        let p = Conv2dParams::new(3, 3).with_padding(1).with_groups(2);
        let out = conv2d_f32(&input, &weights, None, &p).unwrap();

        // Manual: first 3 kernels see channels 0..2, last 3 see channels 2..4.
        let mut in_a = Tensor::<f32>::zeros(Shape4::new(1, 2, 5, 5));
        let mut in_b = Tensor::<f32>::zeros(Shape4::new(1, 2, 5, 5));
        for c in 0..2 {
            for y in 0..5 {
                for x in 0..5 {
                    in_a.set(0, c, y, x, input.get(0, c, y, x));
                    in_b.set(0, c, y, x, input.get(0, c + 2, y, x));
                }
            }
        }
        let mut w_a = Tensor::<f32>::zeros(Shape4::new(3, 2, 3, 3));
        let mut w_b = Tensor::<f32>::zeros(Shape4::new(3, 2, 3, 3));
        for k in 0..3 {
            for c in 0..2 {
                for y in 0..3 {
                    for x in 0..3 {
                        w_a.set(k, c, y, x, weights.get(k, c, y, x));
                        w_b.set(k, c, y, x, weights.get(k + 3, c, y, x));
                    }
                }
            }
        }
        let pa = Conv2dParams::new(3, 3).with_padding(1);
        let out_a = conv2d_f32(&in_a, &w_a, None, &pa).unwrap();
        let out_b = conv2d_f32(&in_b, &w_b, None, &pa).unwrap();
        for y in 0..5 {
            for x in 0..5 {
                for k in 0..3 {
                    assert!((out.get(0, k, y, x) - out_a.get(0, k, y, x)).abs() < 1e-5);
                    assert!((out.get(0, k + 3, y, x) - out_b.get(0, k, y, x)).abs() < 1e-5);
                }
            }
        }
    }
}
