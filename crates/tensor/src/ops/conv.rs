//! Reference 2-D convolution: f32 and int8-quantized (zero-point aware).

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::quant::{requantize_accumulator, QuantParams};
use crate::shape::{conv_out_dim, Shape4};
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
///
/// `groups == 1` is a dense convolution; `groups == c_in == c_out` is a
/// depthwise convolution (MobileNetV3's dominant op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Kernel height `R`.
    pub kernel_h: usize,
    /// Kernel width `S`.
    pub kernel_w: usize,
    /// Stride (same in both spatial dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Number of channel groups.
    pub groups: usize,
}

impl Conv2dParams {
    /// Creates parameters with stride 1, no padding, one group.
    #[must_use]
    pub const fn new(kernel_h: usize, kernel_w: usize) -> Self {
        Self { kernel_h, kernel_w, stride: 1, padding: 0, groups: 1 }
    }

    /// Sets the stride.
    #[must_use]
    pub const fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the padding.
    #[must_use]
    pub const fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Sets the group count.
    #[must_use]
    pub const fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// "Same" padding for odd kernels.
    #[must_use]
    pub const fn same_padding(kernel: usize) -> usize {
        kernel / 2
    }

    fn validate(&self, input: Shape4, weights: Shape4) -> Result<(usize, usize), TensorError> {
        if self.stride == 0 {
            return Err(TensorError::InvalidParam { what: "stride must be nonzero" });
        }
        if self.groups == 0 {
            return Err(TensorError::InvalidParam { what: "groups must be nonzero" });
        }
        if !input.c.is_multiple_of(self.groups) || !weights.n.is_multiple_of(self.groups) {
            return Err(TensorError::InvalidParam { what: "channels not divisible by groups" });
        }
        if weights.c != input.c / self.groups {
            return Err(TensorError::ShapeMismatch {
                what: "input channels per group",
                lhs: input,
                rhs: weights,
            });
        }
        if weights.h != self.kernel_h || weights.w != self.kernel_w {
            return Err(TensorError::ShapeMismatch {
                what: "kernel spatial dims",
                lhs: input,
                rhs: weights,
            });
        }
        let oh = conv_out_dim(input.h, self.kernel_h, self.stride, self.padding);
        let ow = conv_out_dim(input.w, self.kernel_w, self.stride, self.padding);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => Ok((oh, ow)),
            _ => Err(TensorError::EmptyOutput { input }),
        }
    }
}

/// f32 reference convolution.
///
/// `weights` has shape `(K, C/groups, R, S)`; `bias`, if given, has length `K`.
///
/// # Errors
/// Returns an error on shape/parameter mismatch (see [`Conv2dParams`]).
pub fn conv2d_f32(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor<f32>, TensorError> {
    let ishape = input.shape();
    let wshape = weights.shape();
    let (oh, ow) = params.validate(ishape, wshape)?;
    if let Some(b) = bias {
        if b.len() != wshape.n {
            return Err(TensorError::LengthMismatch { expected: wshape.n, actual: b.len() });
        }
    }
    let k_total = wshape.n;
    let cg = wshape.c; // channels per group
    let kg = k_total / params.groups; // kernels per group
    let oshape = Shape4::new(ishape.n, k_total, oh, ow);
    let mut out = Tensor::zeros(oshape);

    for n in 0..ishape.n {
        for k in 0..k_total {
            let g = k / kg;
            let bias_v = bias.map_or(0.0, |b| b[k]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0_f32;
                    for cc in 0..cg {
                        let c = g * cg + cc;
                        for ry in 0..params.kernel_h {
                            let iy = (oy * params.stride + ry) as isize - params.padding as isize;
                            if iy < 0 || iy >= ishape.h as isize {
                                continue;
                            }
                            for rx in 0..params.kernel_w {
                                let ix =
                                    (ox * params.stride + rx) as isize - params.padding as isize;
                                if ix < 0 || ix >= ishape.w as isize {
                                    continue;
                                }
                                acc += input.get(n, c, iy as usize, ix as usize)
                                    * weights.get(k, cc, ry, rx);
                            }
                        }
                    }
                    out.set(n, k, oy, ox, acc + bias_v);
                }
            }
        }
    }
    Ok(out)
}

/// Quantized int8 convolution with zero-point subtraction.
///
/// Implements the accelerator's Zero-Subtraction (ZS) semantics:
/// `acc = Σ (iAct − zp_in) · (w − zp_w)` accumulated in `i32`, then
/// requantized with `in.scale · w.scale / out.scale` and offset by the output
/// zero point. Padding contributes *zero-valued real* input, i.e. the padded
/// quantized activation equals `zp_in` and vanishes after subtraction.
///
/// # Errors
/// Returns an error on shape/parameter mismatch (see [`Conv2dParams`]).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i8(
    input: &Tensor<i8>,
    in_q: QuantParams,
    weights: &Tensor<i8>,
    w_q: QuantParams,
    bias: Option<&[i32]>,
    out_q: QuantParams,
    params: &Conv2dParams,
) -> Result<Tensor<i8>, TensorError> {
    let ishape = input.shape();
    let wshape = weights.shape();
    let (oh, ow) = params.validate(ishape, wshape)?;
    if let Some(b) = bias {
        if b.len() != wshape.n {
            return Err(TensorError::LengthMismatch { expected: wshape.n, actual: b.len() });
        }
    }
    let k_total = wshape.n;
    let cg = wshape.c;
    let kg = k_total / params.groups;
    let acc_scale = in_q.scale * w_q.scale / out_q.scale;
    let oshape = Shape4::new(ishape.n, k_total, oh, ow);
    let mut out = Tensor::zeros(oshape);

    for n in 0..ishape.n {
        for k in 0..k_total {
            let g = k / kg;
            let bias_v = bias.map_or(0, |b| b[k]);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc: i32 = bias_v;
                    for cc in 0..cg {
                        let c = g * cg + cc;
                        for ry in 0..params.kernel_h {
                            let iy = (oy * params.stride + ry) as isize - params.padding as isize;
                            if iy < 0 || iy >= ishape.h as isize {
                                continue;
                            }
                            for rx in 0..params.kernel_w {
                                let ix =
                                    (ox * params.stride + rx) as isize - params.padding as isize;
                                if ix < 0 || ix >= ishape.w as isize {
                                    continue;
                                }
                                let a = i32::from(input.get(n, c, iy as usize, ix as usize))
                                    - i32::from(in_q.zero_point);
                                let w = i32::from(weights.get(k, cc, ry, rx))
                                    - i32::from(w_q.zero_point);
                                acc += a * w;
                            }
                        }
                    }
                    out.set(n, k, oy, ox, requantize_accumulator(acc, acc_scale, out_q.zero_point));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{calibrate_symmetric, dequantize_tensor, quantize_tensor};
    use crate::rng::DetRng;

    fn rand_tensor(shape: Shape4, seed: u64, range: f32) -> Tensor<f32> {
        let mut rng = DetRng::new(seed);
        let data = (0..shape.volume()).map(|_| rng.uniform_f32(-range, range)).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn identity_1x1_kernel_passes_input_through() {
        let input = rand_tensor(Shape4::new(1, 1, 4, 4), 1, 1.0);
        let weights = Tensor::from_vec(Shape4::new(1, 1, 1, 1), vec![1.0]).unwrap();
        let out = conv2d_f32(&input, &weights, None, &Conv2dParams::new(1, 1)).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn all_ones_3x3_counts_window_elements() {
        let input = Tensor::<f32>::filled(Shape4::new(1, 1, 5, 5), 1.0);
        let weights = Tensor::<f32>::filled(Shape4::new(1, 1, 3, 3), 1.0);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let out = conv2d_f32(&input, &weights, None, &p).unwrap();
        // Corner windows see 4 elements, edges 6, interior 9.
        assert_eq!(out.get(0, 0, 0, 0), 4.0);
        assert_eq!(out.get(0, 0, 0, 2), 6.0);
        assert_eq!(out.get(0, 0, 2, 2), 9.0);
    }

    #[test]
    fn stride_two_halves_output() {
        let input = rand_tensor(Shape4::new(1, 3, 8, 8), 2, 1.0);
        let weights = rand_tensor(Shape4::new(4, 3, 3, 3), 3, 0.5);
        let p = Conv2dParams::new(3, 3).with_stride(2).with_padding(1);
        let out = conv2d_f32(&input, &weights, None, &p).unwrap();
        assert_eq!(out.shape(), Shape4::new(1, 4, 4, 4));
    }

    #[test]
    fn bias_adds_per_kernel_constant() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 2, 3, 3));
        let weights = rand_tensor(Shape4::new(2, 2, 3, 3), 4, 1.0);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let out = conv2d_f32(&input, &weights, Some(&[1.5, -2.0]), &p).unwrap();
        assert_eq!(out.get(0, 0, 1, 1), 1.5);
        assert_eq!(out.get(0, 1, 2, 2), -2.0);
    }

    #[test]
    fn depthwise_groups_isolate_channels() {
        // Two channels; each depthwise kernel is identity-like on its own channel.
        let mut input = Tensor::<f32>::zeros(Shape4::new(1, 2, 3, 3));
        input.set(0, 0, 1, 1, 5.0);
        input.set(0, 1, 1, 1, 7.0);
        let mut weights = Tensor::<f32>::zeros(Shape4::new(2, 1, 3, 3));
        weights.set(0, 0, 1, 1, 1.0);
        weights.set(1, 0, 1, 1, 2.0);
        let p = Conv2dParams::new(3, 3).with_padding(1).with_groups(2);
        let out = conv2d_f32(&input, &weights, None, &p).unwrap();
        assert_eq!(out.get(0, 0, 1, 1), 5.0);
        assert_eq!(out.get(0, 1, 1, 1), 14.0);
        // Cross-channel leakage must be zero.
        assert_eq!(out.get(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn rejects_channel_mismatch() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 3, 4, 4));
        let weights = Tensor::<f32>::zeros(Shape4::new(2, 4, 3, 3));
        let err = conv2d_f32(&input, &weights, None, &Conv2dParams::new(3, 3)).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_kernel_param_mismatch() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 3, 4, 4));
        let weights = Tensor::<f32>::zeros(Shape4::new(2, 3, 5, 5));
        let err = conv2d_f32(&input, &weights, None, &Conv2dParams::new(3, 3)).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_empty_output() {
        let input = Tensor::<f32>::zeros(Shape4::new(1, 1, 2, 2));
        let weights = Tensor::<f32>::zeros(Shape4::new(1, 1, 5, 5));
        let err = conv2d_f32(&input, &weights, None, &Conv2dParams::new(5, 5)).unwrap_err();
        assert!(matches!(err, TensorError::EmptyOutput { .. }));
    }

    #[test]
    fn quantized_conv_tracks_f32_reference() {
        let input = rand_tensor(Shape4::new(1, 4, 6, 6), 10, 1.0);
        let weights = rand_tensor(Shape4::new(8, 4, 3, 3), 11, 0.25);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let ref_out = conv2d_f32(&input, &weights, None, &p).unwrap();

        let in_q = calibrate_symmetric(&input);
        let w_q = calibrate_symmetric(&weights);
        let out_q = calibrate_symmetric(&ref_out);
        let qi = quantize_tensor(&input, in_q);
        let qw = quantize_tensor(&weights, w_q);
        let qout = conv2d_i8(&qi, in_q, &qw, w_q, None, out_q, &p).unwrap();
        let deq = dequantize_tensor(&qout, out_q);

        // int8 conv should track the reference within a few output quanta.
        let tol = 4.0 * out_q.scale + 36.0 * in_q.scale * w_q.scale;
        assert!(ref_out.max_abs_diff(&deq).unwrap() <= tol);
    }

    #[test]
    fn quantized_conv_zero_point_padding_is_neutral() {
        // With a nonzero input zero point, padded border must behave as real 0.
        let input = Tensor::<f32>::filled(Shape4::new(1, 1, 3, 3), 2.0);
        let weights = Tensor::<f32>::filled(Shape4::new(1, 1, 3, 3), 1.0);
        let p = Conv2dParams::new(3, 3).with_padding(1);
        let ref_out = conv2d_f32(&input, &weights, None, &p).unwrap();

        let in_q = QuantParams::asymmetric(0.0, 2.0); // large zero point
        let w_q = QuantParams::symmetric(1.0);
        let out_q = QuantParams::symmetric(20.0);
        let qi = quantize_tensor(&input, in_q);
        let qw = quantize_tensor(&weights, w_q);
        let qout = conv2d_i8(&qi, in_q, &qw, w_q, None, out_q, &p).unwrap();
        let deq = dequantize_tensor(&qout, out_q);
        assert!(ref_out.max_abs_diff(&deq).unwrap() <= 0.5);
    }

    #[test]
    fn grouped_conv_matches_manual_group_split() {
        // groups=2 over 4 channels == two independent convs over 2 channels each.
        let input = rand_tensor(Shape4::new(1, 4, 5, 5), 20, 1.0);
        let weights = rand_tensor(Shape4::new(6, 2, 3, 3), 21, 0.5);
        let p = Conv2dParams::new(3, 3).with_padding(1).with_groups(2);
        let out = conv2d_f32(&input, &weights, None, &p).unwrap();

        // Manual: first 3 kernels see channels 0..2, last 3 see channels 2..4.
        let mut in_a = Tensor::<f32>::zeros(Shape4::new(1, 2, 5, 5));
        let mut in_b = Tensor::<f32>::zeros(Shape4::new(1, 2, 5, 5));
        for c in 0..2 {
            for y in 0..5 {
                for x in 0..5 {
                    in_a.set(0, c, y, x, input.get(0, c, y, x));
                    in_b.set(0, c, y, x, input.get(0, c + 2, y, x));
                }
            }
        }
        let mut w_a = Tensor::<f32>::zeros(Shape4::new(3, 2, 3, 3));
        let mut w_b = Tensor::<f32>::zeros(Shape4::new(3, 2, 3, 3));
        for k in 0..3 {
            for c in 0..2 {
                for y in 0..3 {
                    for x in 0..3 {
                        w_a.set(k, c, y, x, weights.get(k, c, y, x));
                        w_b.set(k, c, y, x, weights.get(k + 3, c, y, x));
                    }
                }
            }
        }
        let pa = Conv2dParams::new(3, 3).with_padding(1);
        let out_a = conv2d_f32(&in_a, &w_a, None, &pa).unwrap();
        let out_b = conv2d_f32(&in_b, &w_b, None, &pa).unwrap();
        for y in 0..5 {
            for x in 0..5 {
                for k in 0..3 {
                    assert!((out.get(0, k, y, x) - out_a.get(0, k, y, x)).abs() < 1e-5);
                    assert!((out.get(0, k + 3, y, x) - out_b.get(0, k, y, x)).abs() < 1e-5);
                }
            }
        }
    }
}
